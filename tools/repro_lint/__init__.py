"""repro-lint: AST-based invariant checker for SPMD determinism and
transport safety.

The package's core guarantee -- bit-identical results AND modeled cost
across the ``sim``/``mp``/``tcp`` backends -- rests on conventions the
type system cannot express: SPMD generators must yield the same
collective sequence on every PE, worker kernels must derive randomness
only from the command's counter-addressed ``DrawAddress``, charge logs
must contain only ``replay_charges``-accepted entries, and
transport-decoded buffers must not outlive their segment's recycle
round.  ``repro-lint`` checks those conventions statically::

    python -m tools.repro_lint src/repro
    python -m tools.repro_lint src/repro --format json

See :mod:`tools.repro_lint.checks` for the check catalogue (RL001 --
RL009) and the README "Static analysis" section for the suppression
syntax (``# repro-lint: disable=RL001 -- reason``).
"""

from .core import (
    Check,
    Config,
    Finding,
    all_checks,
    lint_paths,
    lint_source,
    load_config,
    register_check,
)

__all__ = [
    "Check",
    "Config",
    "Finding",
    "all_checks",
    "lint_paths",
    "lint_source",
    "load_config",
    "register_check",
]

# importing the checks module populates the registry
from . import checks as _checks  # noqa: E402,F401
