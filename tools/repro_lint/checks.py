"""The repro-lint check catalogue (RL001 -- RL010).

Every check targets one hand-maintained invariant of the backend
machinery (see ROADMAP "Architecture notes"); breaking it produces a
deadlock, a silent cross-backend parity break, or a use-after-recycle
-- failure modes the parity suite only catches after the fact, at one
``(p, backend)`` grid point.

========  ==============================================================
RL001     rank-dependent control flow around a collective ``yield`` in
          an SPMD generator kernel (collective-sequence divergence)
RL002     unordered set/dict iteration feeding a collective payload,
          charge log, or kernel return value (order parity hazard)
RL003     global ``random`` / ``np.random`` use inside a worker kernel
          instead of the counter-addressed draw streams (ctrrng)
RL004     charge-log entry kind that ``Machine.replay_charges`` does not
          accept (the replay would raise, or worse, silently skew cost)
RL005     transport-decoded ``memoryview``/buffer stored beyond the
          command round (use-after-recycle once the pool recycles)
RL006     shm / out-of-band transport features used without consulting
          the backend capability flags
RL007     driver-side read of a backend's resident chunk store
          (``<backend>._store``) bypassing the pipelined dependency
          tracker (stale or mid-mutation data under overlapped issue)
RL008     zero-argument blocking ``.get()`` / ``.recv()`` -- an
          unbounded wait that turns a dead peer into a hang instead of
          a :class:`WorkerFailure` (pass a timeout / byte count and
          re-check liveness per cycle)
RL009     stateful ``Generator``/``default_rng`` construction inside a
          worker kernel, or a raw ``Philox`` bit generator built outside
          ``machine/ctrrng.py`` (counter-reuse hazard: hand-keyed
          streams can collide with the sanctioned address space)
RL010     the kernels-package boundary: a direct ``numba`` import
          outside ``src/repro/kernels/`` (jit must stay behind the
          dispatch registry so no-numba environments keep working), or
          an RNG constructed *inside* the package (native twins must
          derive their stream from the caller's generator state, or
          python/native modes consume different streams)
========  ==============================================================

Adding a check: subclass :class:`~tools.repro_lint.core.Check`, give it
the next ``RLxxx`` id and a one-line ``summary``, implement
``run(ctx) -> list[Finding]`` over ``ctx.tree`` (a parsed module;
``ctx.parents`` gives child->parent links), decorate with
``@register_check``, and add firing/non-firing fixtures to
``tests/unit/test_repro_lint.py``.
"""

from __future__ import annotations

import ast

from .core import Check, FileContext, Finding, register_check

# the collectives a worker-side SPMD generator may yield
# (see runtime._run_spmd_step and base.spmd_collective)
SPMD_YIELD_KINDS = {
    "allgather",
    "allreduce",
    "allreduce_exscan",
    "alltoall",
    "sendrecv",
}

#: collectives whose per-rank result is replicated (identical on every
#: rank) -- a value derived from one is NOT rank-dependent
_REPLICATED_RESULT = {"allgather", "allreduce"}

#: charge-log entry kinds Machine.replay_charges accepts; pinned against
#: the dispatch in src/repro/machine/comm.py by test_repro_lint.py
ACCEPTED_CHARGE_KINDS = {
    "ops",
    "allgather",
    "allreduce",
    "allreduce_exscan",
    "scan",
    "broadcast",
    "gather",
}

#: machine/backend collective entry points whose arguments travel
COLLECTIVE_CALL_NAMES = {
    "allgather",
    "allreduce",
    "allreduce_exscan",
    "alltoall",
    "aggregate_exchange",
    "broadcast",
    "gather",
    "p2p",
    "reduce",
    "reduce_allgather",
    "reduce_tree",
    "scan",
    "scatter",
    "send",
}

#: wrapping any expression in one of these makes iteration order moot
_ORDER_NEUTRALIZERS = {
    "sorted", "len", "sum", "min", "max", "any", "all",
    "set", "frozenset", "dict", "sort", "unique", "lexsort", "argsort",
}

#: backend attributes gated by capability flags (RL006)
_CAPABILITY_GATED_ATTRS = {"_pool", "shm_pool", "shm_threshold"}
_CAPABILITY_FLAGS = {"supports_shm", "supports_oob_pickle"}


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def iter_functions(tree: ast.Module):
    """Every function/method in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_nodes(func: ast.AST):
    """Walk a function's body without descending into nested functions
    (a nested def has its own rank/kernel context)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def spmd_yield_kind(node: ast.AST) -> str | None:
    """The collective name if ``node`` is ``yield ("<kind>", ...)``."""
    if not isinstance(node, ast.Yield) or node.value is None:
        return None
    val = node.value
    if (
        isinstance(val, ast.Tuple)
        and val.elts
        and isinstance(val.elts[0], ast.Constant)
        and isinstance(val.elts[0].value, str)
        and val.elts[0].value in SPMD_YIELD_KINDS
    ):
        return val.elts[0].value
    return None


def is_spmd_kernel(func: ast.AST) -> bool:
    """A function that yields at least one SPMD collective tuple."""
    return any(spmd_yield_kind(n) for n in own_nodes(func))


def is_worker_kernel(func: ast.AST) -> bool:
    """Resident/SPMD worker callback, by the repo-wide convention: the
    first positional parameter is named ``rank`` (the runtime calls
    ``fn(rank, *chunks, *args)``)."""
    args = getattr(func, "args", None)
    if args is None:
        return False
    pos = list(args.posonlyargs) + list(args.args)
    return bool(pos) and pos[0].arg == "rank"


def names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def mentions_rank(node: ast.AST, tainted: set[str]) -> bool:
    """True when the expression depends on the executing rank: a tainted
    name, or any ``<obj>.rank`` attribute (``comm.rank``, ``self.rank``)."""
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id in tainted:
            return True
        if isinstance(n, ast.Attribute) and n.attr == "rank":
            return True
    return False


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def rank_tainted_names(func: ast.AST) -> set[str]:
    """Names whose value depends on the executing rank.

    Seeds: parameters named ``rank``.  Propagates through assignments;
    a value drawn from a *replicated* collective yield (allgather /
    allreduce, or the total half of allreduce_exscan) is identical on
    every rank and therefore UNtaints its target, while rank-personal
    results (alltoall, sendrecv, the prefix half of allreduce_exscan)
    taint theirs.
    """
    tainted: set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        ):
            if a.arg == "rank":
                tainted.add(a.arg)
    for _ in range(8):  # fixpoint; tiny functions converge in 1-2 rounds
        changed = False
        for node in own_nodes(func):
            targets = _assign_targets(node)
            value = getattr(node, "value", None)
            if not targets or value is None:
                if isinstance(node, ast.For) and mentions_rank(node.iter, tainted):
                    for name in names_in(node.target):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
                continue
            kind = spmd_yield_kind(value)
            if kind is not None:
                if kind in _REPLICATED_RESULT:
                    continue  # replicated result: target stays clean
                if kind == "allreduce_exscan":
                    # (total, prefix): total replicated, prefix per-rank
                    for tgt in targets:
                        if isinstance(tgt, ast.Tuple) and len(tgt.elts) == 2:
                            for name in names_in(tgt.elts[1]):
                                if name not in tainted:
                                    tainted.add(name)
                                    changed = True
                        else:
                            for name in names_in(tgt):
                                if name not in tainted:
                                    tainted.add(name)
                                    changed = True
                    continue
                # alltoall / sendrecv rows are rank-personal
                for tgt in targets:
                    for name in names_in(tgt):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
                continue
            if isinstance(node, ast.AugAssign):
                dep = mentions_rank(value, tainted) or mentions_rank(
                    node.target, tainted
                )
            else:
                dep = mentions_rank(value, tainted)
            if dep:
                for tgt in targets:
                    for name in names_in(tgt):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        if not changed:
            break
    return tainted


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _has_neutralizing_ancestor(
    node: ast.AST, stop: ast.AST, parents: dict
) -> bool:
    """True when some enclosing expression makes iteration order moot:
    a sorting/aggregating call, or a membership test (``x in s``)."""
    cur = node
    while cur is not stop:
        par = parents.get(cur)
        if par is None:
            return False
        if isinstance(par, ast.Call):
            name = _call_name(par)
            if name in _ORDER_NEUTRALIZERS and cur in par.args:
                return True
        if isinstance(par, ast.Compare) and cur in par.comparators:
            ops_for_cur = [
                op
                for op, cmp in zip(par.ops, par.comparators)
                if cmp is cur
            ]
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in ops_for_cur):
                return True
        if isinstance(par, (ast.SetComp, ast.DictComp)):
            return True  # re-collected into an unordered container
        cur = par
    return False


# ----------------------------------------------------------------------
# RL001 -- rank-divergent collective sequences
# ----------------------------------------------------------------------

@register_check
class RankDivergentYield(Check):
    id = "RL001"
    summary = (
        "rank-dependent control flow around a collective yield in an SPMD "
        "generator (collective-sequence divergence: deadlock or silent "
        "parity break)"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in iter_functions(ctx.tree):
            if not is_spmd_kernel(func):
                continue
            tainted = rank_tainted_names(func)
            for node in own_nodes(func):
                kind = spmd_yield_kind(node)
                if kind is None:
                    continue
                guard = self._rank_guard(node, func, tainted, ctx.parents)
                if guard is not None:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"collective yield {kind!r} is guarded by "
                            f"rank-dependent control flow (line "
                            f"{guard.lineno}); every rank must issue the "
                            f"identical collective sequence",
                        )
                    )
        return findings

    @staticmethod
    def _rank_guard(node, func, tainted, parents):
        """Innermost enclosing branch/loop whose condition depends on
        the executing rank, or None."""
        cur = node
        while cur is not func:
            par = parents.get(cur)
            if par is None:
                return None
            if isinstance(par, (ast.If, ast.IfExp, ast.While)):
                in_test = any(cur is n or cur in ast.walk(n) for n in [par.test])
                if not in_test and mentions_rank(par.test, tainted):
                    return par
            if isinstance(par, ast.For):
                if cur is not par.iter and mentions_rank(par.iter, tainted):
                    return par
            cur = par
        return None


# ----------------------------------------------------------------------
# RL002 -- unordered iteration feeding collectives / charge logs
# ----------------------------------------------------------------------

def _is_log_receiver(expr: ast.AST) -> bool:
    name = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    return name is not None and (
        name == "log" or name.endswith("_log") or name == "charges"
    )


def _is_unordered_expr(node: ast.AST) -> bool:
    """Statically a set (iteration order not semantically defined) or a
    raw dict-view call (order = insertion history, which transport
    arrival order can perturb)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if isinstance(node.func, ast.Name) and name in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and name in {
            "keys",
            "values",
            "items",
        }:
            return not node.args  # d.keys() etc., not something.items(x)
    return False


@register_check
class UnorderedIterationFeedsCollective(Check):
    id = "RL002"
    summary = (
        "iteration over a set / raw dict view feeds a collective payload, "
        "charge log, or kernel return value (nondeterministic-order parity "
        "hazard); sort first"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in iter_functions(ctx.tree):
            sink_stmts = self._sink_statements(func)
            if not sink_stmts:
                continue
            sink_names = self._sink_reaching_names(func, sink_stmts)
            for node in own_nodes(func):
                unordered = self._order_sensitive_use(node, func, ctx.parents)
                if unordered is None:
                    continue
                stmt = self._enclosing_stmt(node, func, ctx.parents)
                if stmt is None:
                    continue
                hit = stmt in sink_stmts
                if not hit:
                    targets = _assign_targets(stmt)
                    hit = any(
                        name in sink_names
                        for tgt in targets
                        for name in names_in(tgt)
                    )
                    if not hit and isinstance(stmt, ast.For) and stmt.iter is node:
                        # a bare for-loop over an unordered iterable whose
                        # body writes into sink-feeding state
                        hit = any(
                            name in sink_names
                            for child in stmt.body
                            for t in ast.walk(child)
                            if isinstance(t, (ast.Assign, ast.AugAssign))
                            for tgt in _assign_targets(t)
                            for name in names_in(tgt)
                        )
                if hit:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            "unordered iteration feeds a collective payload/"
                            "charge log/kernel result; wrap in sorted(...) "
                            "(or justify with a suppression)",
                        )
                    )
        return findings

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _sink_statements(func) -> set[ast.AST]:
        sinks: set[ast.AST] = set()
        kernel = is_worker_kernel(func)
        stmts = [n for n in own_nodes(func) if isinstance(n, ast.stmt)]
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    fn = node.func
                    if (
                        isinstance(fn, ast.Attribute)
                        and fn.attr in COLLECTIVE_CALL_NAMES
                    ):
                        sinks.add(stmt)
                    elif (
                        isinstance(fn, ast.Attribute)
                        and fn.attr == "append"
                        and _is_log_receiver(fn.value)
                    ):
                        sinks.add(stmt)
                elif spmd_yield_kind(node) is not None:
                    sinks.add(stmt)
                elif kernel and isinstance(node, ast.Return) and node.value:
                    sinks.add(stmt)
        return sinks

    @staticmethod
    def _sink_reaching_names(func, sink_stmts) -> set[str]:
        """Names consumed inside sink statements, chased backward
        through plain assignments (bounded fixpoint)."""
        reaching: set[str] = set()
        for stmt in sink_stmts:
            reaching |= names_in(stmt)
        assigns = [
            n
            for n in own_nodes(func)
            if isinstance(n, (ast.Assign, ast.AugAssign, ast.AnnAssign))
            and getattr(n, "value", None) is not None
        ]
        for _ in range(4):
            changed = False
            for node in assigns:
                tgt_names = {
                    name for tgt in _assign_targets(node) for name in names_in(tgt)
                }
                if tgt_names & reaching:
                    for name in names_in(node.value):
                        if name not in reaching:
                            reaching.add(name)
                            changed = True
            if not changed:
                break
        return reaching

    @staticmethod
    def _order_sensitive_use(node, func, parents):
        """Return the unordered expression when ``node`` consumes one in
        an order-preserving way, else None."""
        if not _is_unordered_expr(node):
            return None
        if _has_neutralizing_ancestor(node, func, parents):
            return None
        par = parents.get(node)
        # direct iteration: for x in {...} / [f(x) for x in s]
        if isinstance(par, ast.For) and par.iter is node:
            return node
        if isinstance(par, ast.comprehension) and par.iter is node:
            comp = parents.get(par)
            if isinstance(comp, (ast.SetComp, ast.DictComp)):
                return None  # recollected into an unordered container
            return node
        # materialization: list(s) / tuple(s) / np.fromiter(d.keys(), ...)
        if isinstance(par, ast.Call) and node in par.args:
            name = _call_name(par)
            if name in {"list", "tuple", "fromiter", "array", "concatenate"}:
                return node
        # direct splice into a payload tuple of a yield
        if isinstance(par, ast.Tuple):
            grand = parents.get(par)
            if isinstance(grand, ast.Yield):
                return node
        return None

    @staticmethod
    def _enclosing_stmt(node, func, parents):
        cur = node
        while cur is not func:
            if isinstance(cur, ast.stmt):
                return cur
            cur = parents.get(cur)
            if cur is None:
                return None
        return None


# ----------------------------------------------------------------------
# RL003 -- global RNG inside worker kernels
# ----------------------------------------------------------------------

def _module_aliases(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """(numpy aliases, stdlib-random aliases, names imported straight
    from numpy.random / random)."""
    numpy_aliases: set[str] = set()
    random_aliases: set[str] = set()
    direct_fns: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    random_aliases.add(alias.asname or "numpy")
                elif alias.name == "random":
                    random_aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("numpy.random", "random"):
                for alias in node.names:
                    if alias.name in (
                        "default_rng", "seed", "random", "randint", "rand",
                        "randn", "choice", "shuffle", "sample", "randrange",
                    ):
                        direct_fns.add(alias.asname or alias.name)
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
    return numpy_aliases, random_aliases, direct_fns


@register_check
class GlobalRngInKernel(Check):
    id = "RL003"
    summary = (
        "global random / np.random draw inside a worker-resident kernel; "
        "draw from the command's counter-addressed DrawAddress "
        "(machine/ctrrng.py) so backends stay bit-identical"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        numpy_aliases, random_aliases, direct_fns = _module_aliases(ctx.tree)
        findings: list[Finding] = []
        for func in iter_functions(ctx.tree):
            if not (is_worker_kernel(func) or is_spmd_kernel(func)):
                continue
            for node in own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                offender = self._global_rng_call(
                    node, numpy_aliases, random_aliases, direct_fns
                )
                if offender:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"kernel draws from the process-global RNG "
                            f"({offender}); derive a generator from the "
                            f"shipped DrawAddress (addr.local(rank) / "
                            f"addr.shared()) instead",
                        )
                    )
        return findings

    @staticmethod
    def _global_rng_call(call, numpy_aliases, random_aliases, direct_fns):
        fn = call.func
        if isinstance(fn, ast.Name) and fn.id in direct_fns:
            return fn.id
        # np.random.<fn>(...) -- but np.random.Generator(...)/Philox(...)
        # wrap explicit state, not the process-global stream: whether
        # *constructing* them in a kernel is sound is RL009's question
        if isinstance(fn, ast.Attribute):
            chain = []
            cur = fn
            while isinstance(cur, ast.Attribute):
                chain.append(cur.attr)
                cur = cur.value
            chain.reverse()
            if not isinstance(cur, ast.Name):
                return None
            base = cur.id
            explicit_state = (
                "Generator", "PCG64", "Philox", "SeedSequence", "BitGenerator",
            )
            if base in numpy_aliases and chain[:1] == ["random"]:
                leaf = chain[-1]
                if leaf in explicit_state:
                    return None
                return f"{base}.{'.'.join(chain)}"
            if base in random_aliases and len(chain) == 1:
                leaf = chain[0]
                if leaf in explicit_state:
                    return None
                return f"{base}.{leaf}"
        return None


# ----------------------------------------------------------------------
# RL004 -- unknown charge-log entry kinds
# ----------------------------------------------------------------------

@register_check
class UnknownChargeKind(Check):
    id = "RL004"
    summary = (
        "charge-log entry kind not accepted by Machine.replay_charges "
        "(the replay raises, or modeled cost silently diverges)"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (
                isinstance(fn, ast.Attribute)
                and fn.attr == "append"
                and _is_log_receiver(fn.value)
            ):
                continue
            if len(node.args) != 1:
                continue
            arg = node.args[0]
            if not (
                isinstance(arg, ast.Tuple)
                and arg.elts
                and isinstance(arg.elts[0], ast.Constant)
                and isinstance(arg.elts[0].value, str)
            ):
                continue
            kind = arg.elts[0].value
            if kind not in ACCEPTED_CHARGE_KINDS:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"charge-log entry kind {kind!r} is not accepted by "
                        f"replay_charges (accepted: "
                        f"{', '.join(sorted(ACCEPTED_CHARGE_KINDS))})",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL005 -- transport buffers stored beyond the command round
# ----------------------------------------------------------------------

_BUFFER_SOURCES = {"memoryview", "frombuffer"}
_COPY_NEUTRALIZERS = {"bytes", "bytearray", "copy", "array", "deepcopy", "tobytes"}


def _buffer_tainted_names(func) -> set[str]:
    """Names bound (directly or via slices/casts) to a zero-copy view."""
    tainted: set[str] = set()
    for _ in range(4):
        changed = False
        for node in own_nodes(func):
            targets = _assign_targets(node)
            value = getattr(node, "value", None)
            if not targets or value is None:
                continue
            if _is_buffer_expr(value, tainted):
                for tgt in targets:
                    for name in names_in(tgt):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        if not changed:
            break
    return tainted


def _is_buffer_expr(node, tainted: set[str]) -> bool:
    """Expression that (still) aliases a transport-owned buffer."""
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _COPY_NEUTRALIZERS:
            return False
        if name in _BUFFER_SOURCES:
            return True
        if name == "cast" and isinstance(node.func, ast.Attribute):
            return _is_buffer_expr(node.func.value, tainted)
        return False
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Subscript):  # a slice of a view is a view
        return _is_buffer_expr(node.value, tainted)
    return False


@register_check
class BufferOutlivesRound(Check):
    id = "RL005"
    summary = (
        "transport-decoded memoryview / np.frombuffer view stored on self "
        "or in long-lived state (use-after-recycle once the shm pool "
        "recycles the segment); copy it out first"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in iter_functions(ctx.tree):
            tainted = _buffer_tainted_names(func)
            for node in own_nodes(func):
                msg = None
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    value = getattr(node, "value", None)
                    if value is None or not _is_buffer_expr(value, tainted):
                        continue
                    for tgt in _assign_targets(node):
                        if self._long_lived_target(tgt):
                            msg = (
                                "zero-copy buffer view stored in long-lived "
                                "state; it dies when the transport recycles "
                                "its segment -- copy with bytes()/np.array() "
                                "or keep it within the command round"
                            )
                elif isinstance(node, ast.Call):
                    fn = node.func
                    if (
                        isinstance(fn, ast.Attribute)
                        and fn.attr in {"append", "add", "extend", "insert"}
                        and isinstance(fn.value, ast.Attribute)
                        and isinstance(fn.value.value, ast.Name)
                        and fn.value.value.id == "self"
                        and any(_is_buffer_expr(a, tainted) for a in node.args)
                    ):
                        msg = (
                            "zero-copy buffer view appended to instance "
                            "state; copy it out before the round ends"
                        )
                if msg:
                    findings.append(ctx.finding(self.id, node, msg))
        return findings

    @staticmethod
    def _long_lived_target(tgt) -> bool:
        # self.x = view  /  self.x[k] = view
        if isinstance(tgt, ast.Attribute):
            return isinstance(tgt.value, ast.Name) and tgt.value.id == "self"
        if isinstance(tgt, ast.Subscript):
            inner = tgt.value
            return (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            )
        return False


# ----------------------------------------------------------------------
# RL006 -- capability flags not consulted
# ----------------------------------------------------------------------

@register_check
class CapabilityUnchecked(Check):
    id = "RL006"
    summary = (
        "shm / out-of-band transport feature used without checking the "
        "backend capability flags (supports_shm / supports_oob_pickle); "
        "sim and socket backends lack these lanes"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in iter_functions(ctx.tree):
            mentions = {
                n.attr for n in own_nodes(func) if isinstance(n, ast.Attribute)
            } | {n.id for n in own_nodes(func) if isinstance(n, ast.Name)}
            if mentions & _CAPABILITY_FLAGS:
                continue  # the function consults a capability flag
            for node in own_nodes(func):
                offender = None
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr in _CAPABILITY_GATED_ATTRS
                ):
                    offender = node.attr
                elif (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "SharedMemory"
                ):
                    offender = "SharedMemory"
                if offender:
                    findings.append(
                        ctx.finding(
                            self.id,
                            node,
                            f"{offender!r} used without consulting "
                            f"supports_shm/supports_oob_pickle; guard the "
                            f"path or exclude this transport-internal file "
                            f"in [tool.repro-lint]",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# RL007 -- resident store reads that bypass the dependency tracker
# ----------------------------------------------------------------------

@register_check
class ResidentStoreBypass(Check):
    id = "RL007"
    summary = (
        "driver-side read of a backend's resident chunk store "
        "(<backend>._store) bypasses the pipelined dependency tracker; "
        "under overlapped issue the chunk may be stale or mid-mutation -- "
        "go through get_chunks()/DistArray.chunks, which wait for "
        "in-flight commands touching the ref"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Attribute) and node.attr == "_store"):
                continue
            base = node.value
            # self._store inside a backend implementation IS the
            # sanctioned path (its accessors hold the tracker's
            # invariants); anything else reaches across the boundary
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                continue
            findings.append(
                ctx.finding(
                    self.id,
                    node,
                    "resident chunk store accessed from outside the "
                    "backend; use get_chunks()/DistArray.chunks (they "
                    "fence in-flight commands that touch the chunk) "
                    "instead of raw ._store",
                )
            )
        return findings


# ----------------------------------------------------------------------
# RL008 -- unbounded blocking get()/recv()
# ----------------------------------------------------------------------

#: zero-argument callees that block forever when the peer dies;
#: ``get_nowait`` / ``recv_bytes(n)`` / ``dict.get(key)`` all carry
#: arguments and never match
_BLOCKING_WAIT_ATTRS = {"get", "recv"}


@register_check
class UnboundedBlockingWait(Check):
    id = "RL008"
    summary = (
        "zero-argument .get()/.recv() blocks forever when the peer dies; "
        "pass a timeout (queue) or byte count (socket) and re-check "
        "liveness each cycle so a dead worker surfaces as WorkerFailure, "
        "not a hang"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (
                isinstance(fn, ast.Attribute)
                and fn.attr in _BLOCKING_WAIT_ATTRS
            ):
                continue
            if node.args or node.keywords:
                continue  # bounded (timeout / nbytes) or a keyed dict.get
            findings.append(
                ctx.finding(
                    self.id,
                    node,
                    f"unbounded blocking .{fn.attr}(): a dead peer turns "
                    f"this into a permanent hang; pass "
                    f"{'timeout=' if fn.attr == 'get' else 'a byte count'} "
                    f"and poll liveness between cycles",
                )
            )
        return findings


# ----------------------------------------------------------------------
# RL009 -- stateful RNG construction in kernels / raw Philox use
# ----------------------------------------------------------------------

#: constructors that mint a *stateful* generator; inside a kernel the
#: only sound source of randomness is the shipped DrawAddress
_KERNEL_RNG_CTORS = {"default_rng", "Generator"}


def _rng_ctor_aliases(tree: ast.Module) -> dict[str, str]:
    """asname -> real name for RL009's constructor set, imported
    straight from numpy.random."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                if alias.name in _KERNEL_RNG_CTORS or alias.name == "Philox":
                    out[alias.asname or alias.name] = alias.name
    return out


def _resolved_rng_ctor(call, numpy_aliases, random_aliases, from_aliases):
    """The real constructor name when ``call`` builds one of RL009's
    targets (``default_rng`` / ``Generator`` / ``Philox``), else None."""
    fn = call.func
    if isinstance(fn, ast.Name):
        return from_aliases.get(fn.id)
    if isinstance(fn, ast.Attribute):
        chain = []
        cur = fn
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        chain.reverse()
        if not isinstance(cur, ast.Name):
            return None
        leaf = chain[-1]
        if leaf not in _KERNEL_RNG_CTORS and leaf != "Philox":
            return None
        base = cur.id
        if base in numpy_aliases and chain[:1] == ["random"]:
            return leaf
        if base in random_aliases and len(chain) == 1:
            return leaf
    return None


@register_check
class StatefulRngConstruction(Check):
    id = "RL009"
    summary = (
        "stateful Generator/default_rng constructed inside a worker "
        "kernel, or a raw Philox bit generator built outside "
        "machine/ctrrng.py (counter-reuse hazard); derive kernel "
        "generators from the shipped DrawAddress (addr.local(rank) / "
        "addr.shared())"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        numpy_aliases, random_aliases, _ = _module_aliases(ctx.tree)
        from_aliases = _rng_ctor_aliases(ctx.tree)
        if not (numpy_aliases or random_aliases or from_aliases):
            return []
        kernel_nodes: set[int] = set()
        for func in iter_functions(ctx.tree):
            if is_worker_kernel(func) or is_spmd_kernel(func):
                kernel_nodes.update(id(n) for n in own_nodes(func))
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolved_rng_ctor(
                node, numpy_aliases, random_aliases, from_aliases
            )
            if name is None:
                continue
            if name == "Philox":
                # module-wide: a hand-keyed Philox stream can collide
                # with the (seed, stream, rank, seq) address space that
                # ctrrng.philox_generator hands out
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        "raw Philox construction bypasses the ctrrng "
                        "key/counter layout (possible stream collision "
                        "with sanctioned draw addresses); go through "
                        "machine.draw_addr() + addr.local()/addr.shared()",
                    )
                )
            elif id(node) in kernel_nodes:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"stateful {name}(...) constructed inside a worker "
                        f"kernel; draws must come from the command's "
                        f"DrawAddress (addr.local(rank) / addr.shared()) "
                        f"so every backend and pipeline depth replays the "
                        f"identical stream",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RL010 -- the kernels-package boundary
# ----------------------------------------------------------------------

def _in_kernels_package(path: str) -> bool:
    """True for files inside the ``repro.kernels`` package."""
    return "repro/kernels/" in path.replace("\\", "/")


@register_check
class KernelPackageBoundary(Check):
    id = "RL010"
    summary = (
        "direct numba import outside src/repro/kernels/ (jit belongs "
        "behind the kernel dispatch registry so no-numba environments "
        "keep working), or an RNG constructed inside the kernels package "
        "(native twins must derive their stream from the caller's "
        "generator state, never mint one)"
    )

    def run(self, ctx: FileContext) -> list[Finding]:
        if _in_kernels_package(ctx.path):
            return self._rng_construction_inside(ctx)
        return self._numba_import_outside(ctx)

    def _numba_import_outside(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            mod = None
            if isinstance(node, ast.Import):
                mod = next(
                    (
                        a.name
                        for a in node.names
                        if a.name == "numba" or a.name.startswith("numba.")
                    ),
                    None,
                )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numba" or (
                    node.module or ""
                ).startswith("numba."):
                    mod = node.module
            if mod:
                findings.append(
                    ctx.finding(
                        self.id,
                        node,
                        f"direct import of {mod!r} outside src/repro/"
                        f"kernels/; dispatch through the kernel registry "
                        f"(repro.kernels) instead, so environments without "
                        f"numba fall back to the python reference and every "
                        f"jitted loop keeps its bit-identical twin",
                    )
                )
        return findings

    def _rng_construction_inside(self, ctx: FileContext) -> list[Finding]:
        numpy_aliases, random_aliases, _ = _module_aliases(ctx.tree)
        from_aliases = _rng_ctor_aliases(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolved_rng_ctor(
                node, numpy_aliases, random_aliases, from_aliases
            )
            if name is None and _call_name(node) == "philox_generator":
                name = "philox_generator"
            if name is None:
                continue
            findings.append(
                ctx.finding(
                    self.id,
                    node,
                    f"{name}(...) constructed inside the kernels package; "
                    f"a native twin must consume the caller's generator "
                    f"state (philox.state_words/put_state) so python and "
                    f"native modes advance the identical stream -- minting "
                    f"a generator here desynchronizes the modes",
                )
            )
        return findings
