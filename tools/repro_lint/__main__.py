"""``python -m tools.repro_lint`` entry point."""

import sys

from . import checks as _checks  # noqa: F401  (populates the registry)
from .core import main

if __name__ == "__main__":
    sys.exit(main())
