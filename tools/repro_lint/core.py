"""The repro-lint framework: check registry, suppressions, config, CLI.

A *check* is a small class with an ``id`` (``RL001``...), a one-line
``summary`` and a ``run(ctx)`` method returning :class:`Finding`\\ s for
one parsed file.  Checks register themselves with
:func:`register_check`; the framework owns everything around them:

* **suppressions** -- a trailing ``# repro-lint: disable=RL001`` comment
  suppresses findings of that check on its line (or, when the comment
  stands alone, on the following line); ``disable-file=`` anywhere in a
  file suppresses for the whole file.  ``disable=all`` works in both
  forms.  Suppressed findings are still reported (marked), so the JSON
  artifact shows which waivers exist, but they never gate.
* **config** -- the ``[tool.repro-lint]`` table of ``pyproject.toml``:
  ``enable``/``disable`` check lists, tree-wide ``exclude`` globs, and
  per-check path excludes (``[tool.repro-lint.per-check-exclude]``),
  so behavior lives in one place rather than CLI flags.
* **output** -- human one-line-per-finding or a JSON report
  (``--format json``), exit code 1 when any unsuppressed finding
  remains (CI gating), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import fnmatch
import json
import re
import sys
from pathlib import Path

__all__ = [
    "Check",
    "Config",
    "FileContext",
    "Finding",
    "all_checks",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
    "register_check",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?)\s*(?:$|(?:--|—)\s*(.*))"
)


# ----------------------------------------------------------------------
# Findings and suppressions
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Finding:
    """One rule violation at a source location."""

    check: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.check} {self.message}{mark}"


class Suppressions:
    """Per-line and per-file ``# repro-lint: disable=...`` directives."""

    def __init__(self, src: str):
        self.by_line: dict[int, tuple[set[str], str | None]] = {}
        self.file_wide: set[str] = set()
        self.file_reason: str | None = None
        for lineno, text in enumerate(src.splitlines(), start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            kind, ids_text, reason = m.group(1), m.group(2), m.group(3)
            ids = {t.strip().upper() for t in ids_text.split(",") if t.strip()}
            if kind == "disable-file":
                self.file_wide |= ids
                self.file_reason = reason or self.file_reason
                continue
            target = lineno
            # a comment-only line applies to the line after it
            if text.lstrip().startswith("#"):
                target = lineno + 1
            known_ids, known_reason = self.by_line.get(target, (set(), None))
            self.by_line[target] = (known_ids | ids, reason or known_reason)

    def match(self, check_id: str, line: int) -> tuple[bool, str | None]:
        if check_id in self.file_wide or "ALL" in self.file_wide:
            return True, self.file_reason
        ids, reason = self.by_line.get(line, (set(), None))
        if check_id in ids or "ALL" in ids:
            return True, reason
        return False, None


# ----------------------------------------------------------------------
# Check protocol and registry
# ----------------------------------------------------------------------

class FileContext:
    """Everything a check needs about one parsed file."""

    def __init__(self, path: str, src: str, tree: ast.Module):
        self.path = path
        self.src = src
        self.tree = tree
        #: child -> parent links for ancestor walks (lazily built once)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def finding(self, check_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            check=check_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Check:
    """Base class for one lint rule.

    Subclasses set ``id`` (``RLxxx``), ``summary`` (one line, shown by
    ``--list-checks``) and implement ``run``.  Register with
    :func:`register_check` so the CLI and config see them.
    """

    id: str = "RL000"
    summary: str = ""

    def run(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: dict[str, Check] = {}


def register_check(cls: type[Check]) -> type[Check]:
    """Class decorator: instantiate and register one check by id."""
    inst = cls()
    if inst.id in _REGISTRY:
        raise ValueError(f"duplicate check id {inst.id}")
    _REGISTRY[inst.id] = inst
    return cls


def all_checks() -> dict[str, Check]:
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Config:
    """Resolved lint configuration (defaults + pyproject table)."""

    #: check ids to run; empty means "all registered"
    enable: set[str] = dataclasses.field(default_factory=set)
    disable: set[str] = dataclasses.field(default_factory=set)
    #: tree-wide path globs to skip entirely
    exclude: list[str] = dataclasses.field(default_factory=list)
    #: per-check path globs: {check_id: [glob, ...]}
    per_check_exclude: dict[str, list[str]] = dataclasses.field(default_factory=dict)

    def active_checks(self) -> list[Check]:
        checks = all_checks()
        ids = sorted(self.enable) if self.enable else sorted(checks)
        return [checks[i] for i in ids if i in checks and i not in self.disable]

    def file_excluded(self, path: str) -> bool:
        return any(_glob_match(path, pat) for pat in self.exclude)

    def check_excluded(self, check_id: str, path: str) -> bool:
        pats = self.per_check_exclude.get(check_id, ())
        return any(_glob_match(path, pat) for pat in pats)


def _glob_match(path: str, pattern: str) -> bool:
    norm = path.replace("\\", "/")
    return fnmatch.fnmatch(norm, pattern) or fnmatch.fnmatch(norm, f"*/{pattern}")


def _parse_mini_toml(text: str) -> dict[str, dict]:
    """Tiny TOML subset reader (sections, string/bool/list-of-string
    values) -- the py3.10 fallback when :mod:`tomllib` is unavailable.
    Handles exactly the shapes ``[tool.repro-lint]`` uses."""
    sections: dict[str, dict] = {}
    current: dict | None = None
    buffered = ""
    for raw in text.splitlines():
        line = raw.strip()
        if buffered:
            line = buffered + " " + line
            buffered = ""
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            name = line.strip("[]").strip().strip('"')
            current = sections.setdefault(name, {})
            continue
        if current is None or "=" not in line:
            continue
        if line.count("[") > line.count("]"):  # multi-line list
            buffered = line
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.split("#")[0].strip()
        if value.startswith("["):
            items = re.findall(r'"([^"]*)"|\'([^\']*)\'', value)
            current[key] = [a or b for a, b in items]
        elif value in ("true", "false"):
            current[key] = value == "true"
        else:
            current[key] = value.strip("\"'")
    return sections


def _read_pyproject(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib  # Python >= 3.11

        data = tomllib.loads(text)
        table = data.get("tool", {}).get("repro-lint", {})
        return table if isinstance(table, dict) else {}
    except ModuleNotFoundError:
        sections = _parse_mini_toml(text)
        table = dict(sections.get("tool.repro-lint", {}))
        sub = sections.get("tool.repro-lint.per-check-exclude")
        if sub:
            table["per-check-exclude"] = sub
        return table


def load_config(pyproject: Path | str | None = None) -> Config:
    """Build the configuration from a ``pyproject.toml`` (or defaults).

    With no explicit path, walks up from the current directory looking
    for a ``pyproject.toml`` containing a ``[tool.repro-lint]`` table.
    """
    cfg = Config()
    if pyproject is None:
        here = Path.cwd()
        for candidate in [here, *here.parents]:
            p = candidate / "pyproject.toml"
            if p.is_file():
                pyproject = p
                break
    if pyproject is None:
        return cfg
    path = Path(pyproject)
    if not path.is_file():
        return cfg
    table = _read_pyproject(path)
    cfg.enable = {str(x).upper() for x in table.get("enable", [])}
    cfg.disable = {str(x).upper() for x in table.get("disable", [])}
    cfg.exclude = [str(x) for x in table.get("exclude", [])]
    per = table.get("per-check-exclude", {})
    if isinstance(per, dict):
        cfg.per_check_exclude = {
            str(k).upper(): [str(v) for v in vs] for k, vs in per.items()
        }
    return cfg


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------

def lint_source(
    src: str, path: str = "<string>", config: Config | None = None
) -> list[Finding]:
    """Lint one source string; returns findings (suppressions applied)."""
    config = config if config is not None else Config()
    try:
        tree = ast.parse(src, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                check="RL000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path, src, tree)
    suppress = Suppressions(src)
    findings: list[Finding] = []
    for check in config.active_checks():
        if config.check_excluded(check.id, path):
            continue
        for f in check.run(ctx):
            f.suppressed, f.suppress_reason = suppress.match(f.check, f.line)
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    return findings


def lint_paths(
    paths: list[Path | str], config: Config | None = None
) -> list[Finding]:
    """Lint files and directory trees (``*.py``, recursively)."""
    config = config if config is not None else Config()
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: list[Finding] = []
    for f in files:
        rel = str(f)
        if config.file_excluded(rel):
            continue
        findings.extend(
            lint_source(f.read_text(encoding="utf-8"), path=rel, config=config)
        )
    return findings


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _json_report(findings: list[Finding], n_files_hint: int | None = None) -> dict:
    unsuppressed = [f for f in findings if not f.suppressed]
    return {
        "tool": "repro-lint",
        "checks": {c.id: c.summary for c in all_checks().values()},
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "findings": len(findings),
            "unsuppressed": len(unsuppressed),
            "suppressed": len(findings) - len(unsuppressed),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="AST invariant checker for SPMD determinism + transport safety",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human", dest="fmt"
    )
    parser.add_argument("--output", help="write the report to a file instead of stdout")
    parser.add_argument("--config", help="explicit pyproject.toml path")
    parser.add_argument(
        "--no-config", action="store_true", help="ignore pyproject configuration"
    )
    parser.add_argument(
        "--select", help="comma-separated check ids to run (overrides config)"
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in all_checks().values():
            print(f"{check.id}  {check.summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    config = Config() if args.no_config else load_config(args.config)
    if args.select:
        config.enable = {t.strip().upper() for t in args.select.split(",") if t.strip()}

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths, config)

    if args.fmt == "json":
        text = json.dumps(_json_report(findings), indent=2)
    else:
        lines = [f.render() for f in findings]
        unsuppressed = sum(1 for f in findings if not f.suppressed)
        lines.append(
            f"{len(findings)} finding(s), {unsuppressed} unsuppressed"
            if findings
            else "clean"
        )
        text = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return 1 if any(not f.suppressed for f in findings) else 0
