"""Unit tests: hashing utilities (repro.common.hashing)."""

import numpy as np
import pytest

from repro.common.hashing import key_owner, make_owner_fn, splitmix64, splitmix64_array


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_different_inputs_differ(self):
        outs = {splitmix64(i) for i in range(1000)}
        assert len(outs) == 1000

    def test_scalar_matches_vector(self):
        keys = np.arange(100, dtype=np.int64)
        vec = splitmix64_array(keys)
        for i in (0, 17, 99):
            assert int(vec[i]) == splitmix64(i)

    def test_range_is_64bit(self):
        assert 0 <= splitmix64(2**63) < 2**64


class TestKeyOwner:
    def test_in_range(self):
        owners = key_owner(np.arange(10_000), p=13)
        assert owners.min() >= 0 and owners.max() < 13

    def test_roughly_uniform(self):
        owners = key_owner(np.arange(100_000), p=8)
        counts = np.bincount(owners, minlength=8)
        assert counts.min() > 100_000 / 8 * 0.9

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            key_owner(np.arange(5), 0)


class TestOwnerFn:
    def test_consistent_with_array_form(self):
        fn = make_owner_fn(8)
        owners = key_owner(np.arange(50), 8)
        for i in range(50):
            assert fn(i) == owners[i]

    def test_salt_changes_placement(self):
        a = make_owner_fn(64, salt=0)
        b = make_owner_fn(64, salt=999)
        moved = sum(a(i) != b(i) for i in range(200))
        assert moved > 150

    def test_hashable_non_int_keys(self):
        fn = make_owner_fn(4)
        assert 0 <= fn("hello") < 4
        assert 0 <= fn((1, 2)) < 4

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            make_owner_fn(0)
