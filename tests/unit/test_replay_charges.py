"""Machine.replay_charges must re-play the alpha-beta model exactly.

A resident SPMD kernel records what it did (local ops + embedded
collectives) and the driver replays the model afterwards; the replayed
modeled quantities must be indistinguishable from charging the live
collectives directly.  These tests pin that equality for every
supported entry kind, including the gather/broadcast/scan entries that
let rooted driver algorithms move into single SPMD commands.
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.metrics import payload_words

PS = [1, 2, 4, 5, 8]


def _assert_same_model(direct: Machine, replayed: Machine):
    assert replayed.clock.makespan == direct.clock.makespan
    np.testing.assert_array_equal(
        replayed.metrics.words_sent, direct.metrics.words_sent
    )
    np.testing.assert_array_equal(
        replayed.metrics.words_recv, direct.metrics.words_recv
    )
    np.testing.assert_array_equal(
        replayed.metrics.msgs_sent, direct.metrics.msgs_sent
    )
    np.testing.assert_array_equal(
        replayed.metrics.msgs_recv, direct.metrics.msgs_recv
    )
    assert replayed.metrics.by_kind == direct.metrics.by_kind


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize("root", [0, "last"])
def test_broadcast_entry_matches_direct_call(p, root):
    root = p - 1 if root == "last" else root
    direct, replayed = Machine(p=p), Machine(p=p)
    value = np.arange(17, dtype=np.int64)
    direct.broadcast(value, root=root)
    replayed.replay_charges(
        [[("broadcast", payload_words(value), root)]] * p
    )
    _assert_same_model(direct, replayed)


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize("root", [0, "last"])
def test_gather_entry_matches_direct_call(p, root):
    root = p - 1 if root == "last" else root
    direct, replayed = Machine(p=p), Machine(p=p)
    values = [np.arange(3 + 2 * i, dtype=np.int64) for i in range(p)]
    direct.gather(values, root=root)
    replayed.replay_charges(
        [[("gather", payload_words(values[i]), root)] for i in range(p)]
    )
    _assert_same_model(direct, replayed)


@pytest.mark.parametrize("p", PS)
def test_scan_entry_matches_direct_call(p):
    direct, replayed = Machine(p=p), Machine(p=p)
    values = [np.arange(5, dtype=np.int64)] * p
    direct.scan(values)
    replayed.replay_charges([[("scan", payload_words(values[0]))]] * p)
    _assert_same_model(direct, replayed)


@pytest.mark.parametrize("p", [2, 5, 8])
def test_mixed_log_matches_direct_sequence(p):
    """Interleaved ops + collectives replay in execution order."""
    direct, replayed = Machine(p=p), Machine(p=p)
    vec = np.arange(4, dtype=np.int64)
    per_rank_ops = [float(3 * i + 1) for i in range(p)]
    direct.charge_ops(per_rank_ops)
    direct.broadcast(vec, root=0)
    direct.allreduce([7] * p)
    direct.gather([vec] * p, root=p - 1)
    direct.scan([1] * p)
    w = payload_words(vec)
    replayed.replay_charges(
        [
            [
                ("ops", per_rank_ops[i]),
                ("broadcast", w, 0),
                ("allreduce", 1),
                ("gather", w, p - 1),
                ("scan", 1),
            ]
            for i in range(p)
        ]
    )
    _assert_same_model(direct, replayed)


def test_unknown_entry_kind_rejected():
    m = Machine(p=2)
    with pytest.raises(ValueError, match="unknown charge-log entry"):
        m.replay_charges([[("scatter", 3)], [("scatter", 3)]])


def test_diverged_logs_rejected():
    m = Machine(p=2)
    with pytest.raises(ValueError, match="diverged"):
        m.replay_charges([[("ops", 1)], []])
