"""Unit tests: distributed unsorted selection (Section 4.1, Algorithm 1)."""

import numpy as np
import pytest

from repro.machine import DistArray, Machine
from repro.selection import select_kth, select_topk_largest, select_topk_smallest
from repro.testing import make_dist, sorted_oracle


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestSelectKth:
    def test_matches_oracle(self, machine, rng):
        data = make_dist(machine, rng, 2000)
        s = sorted_oracle(data)
        n = data.global_size
        for k in (1, n // 3, n):
            assert select_kth(machine, data, k) == s[k - 1]

    def test_odd_p(self, odd_machine, rng):
        data = make_dist(odd_machine, rng, 1500)
        s = sorted_oracle(data)
        assert select_kth(odd_machine, data, 100) == s[99]

    def test_single_pe(self, rng):
        m = Machine(p=1, seed=0)
        data = make_dist(m, rng, 5000)
        s = sorted_oracle(data)
        assert select_kth(m, data, 2500) == s[2499]

    def test_all_data_on_one_pe(self, machine8, rng):
        chunks = [rng.integers(0, 10**6, 8000)] + [np.empty(0, dtype=np.int64)] * 7
        data = DistArray(machine8, chunks)
        s = sorted_oracle(data)
        assert select_kth(machine8, data, 4000) == s[3999]

    def test_duplicate_heavy_input(self, machine8, rng):
        data = make_dist(machine8, rng, 3000, lo=0, hi=4)
        s = sorted_oracle(data)
        for k in (1, 9000, 24_000):
            assert select_kth(machine8, data, k) == s[k - 1]

    def test_all_equal(self, machine8):
        data = DistArray(machine8, [np.full(100, 3)] * 8)
        assert select_kth(machine8, data, 400) == 3

    def test_invalid_k(self, machine8, rng):
        data = make_dist(machine8, rng, 10)
        with pytest.raises(ValueError):
            select_kth(machine8, data, 0)
        with pytest.raises(ValueError):
            select_kth(machine8, data, 81)

    def test_stats(self, machine8, rng):
        data = make_dist(machine8, rng, 4000)
        stats = select_kth(machine8, data, 16_000, return_stats=True)
        assert stats.value == sorted_oracle(data)[15_999]
        assert stats.rounds >= 1
        assert stats.sample_total > 0

    def test_sublinear_communication(self, rng):
        """Theorem 1: per-PE volume should be far below n/p."""
        m = Machine(p=16, seed=2)
        n_per_pe = 4000
        data = make_dist(m, rng, n_per_pe)
        m.reset()
        select_kth(m, data, data.global_size // 2)
        assert m.metrics.bottleneck_words < n_per_pe / 4

    def test_sample_factor_knob(self, machine8, rng):
        data = make_dist(machine8, rng, 2000)
        s = sorted_oracle(data)
        for f in (0.5, 4.0):
            assert select_kth(machine8, data, 1000, sample_factor=f) == s[999]

    def test_float_values(self, machine8):
        data = DistArray.generate(machine8, lambda r, g: g.random(1000))
        s = sorted_oracle(data)
        assert select_kth(machine8, data, 4000) == pytest.approx(s[3999])


class TestTopkExtraction:
    def test_smallest_exact_k_with_ties(self, machine8, rng):
        data = make_dist(machine8, rng, 1000, lo=0, hi=50)  # many ties
        sel, thr = select_topk_smallest(machine8, data, 777)
        assert sel.global_size == 777
        assert np.array_equal(np.sort(sel.concat()), sorted_oracle(data)[:777])

    def test_largest(self, machine8, rng):
        data = make_dist(machine8, rng, 1000)
        sel, thr = select_topk_largest(machine8, data, 123)
        assert sel.global_size == 123
        assert np.array_equal(np.sort(sel.concat()), sorted_oracle(data)[-123:])

    def test_k_equals_n(self, machine8, rng):
        data = make_dist(machine8, rng, 100)
        sel, _ = select_topk_smallest(machine8, data, 800)
        assert sel.global_size == 800

    def test_selected_stay_on_owner_pes(self, machine8, rng):
        """Owner-computes: every selected element must come from its PE."""
        data = make_dist(machine8, rng, 500)
        sel, _ = select_topk_smallest(machine8, data, 100)
        for i in range(8):
            assert np.all(np.isin(sel.chunks[i], data.chunks[i]))
