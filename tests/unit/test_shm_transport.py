"""The zero-copy data plane: out-of-band framing + shared-memory lane.

Covers the mp transport's payload routing end to end: bit-identical
delivery of large/odd payloads over the shared-memory route, the size
threshold boundary, the byte-accounting counters the benches report,
and the segment lifecycle (nothing survives ``close()``, not even for
pools whose workers were killed).
"""

import os

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.backends import MultiprocessingBackend
from repro.machine.backends.shm import (
    DEFAULT_THRESHOLD,
    ShmPool,
    env_threshold,
    new_token,
    pool_family,
    segment_names,
)

#: a tiny threshold makes every array payload ride shared memory without
#: needing megabyte test inputs
TINY = 256


# ----------------------------------------------------------------------
# Module-level worker callbacks (picklable for the mp backend)
# ----------------------------------------------------------------------

def _make_big(rank: int, n: int):
    """Produce a worker-resident array so a later fetch must really
    cross the transport (no driver-side alias exists)."""
    return (np.arange(n, dtype=np.float64) * (rank + 1), None)


def _rotate_spmd(rank: int, chunk, p: int):
    """One sparse sendrecv hop: every rank ships its chunk to rank+1."""
    row = [None] * p
    row[(rank + 1) % p] = chunk + rank
    got = yield ("sendrecv", row, [(rank - 1) % p])
    return got[(rank - 1) % p], None


def _alltoall_spmd(rank: int, chunk, p: int):
    """Generic personalized exchange of chunk slices."""
    parts = np.array_split(chunk, p)
    got = yield ("alltoall", [parts[j] + rank for j in range(p)])
    return np.concatenate(got), None


def _fetch_ref(backend, ref):
    """Fetch chunks through the transport, defeating the driver-side
    alias ``put_chunks`` keeps for driver-born data."""
    backend._store.pop(ref.id, None)
    return backend.get_chunks(ref)


def _roundtrip(backend, chunks):
    ref = backend.put_chunks(chunks)
    return _fetch_ref(backend, ref)


# ----------------------------------------------------------------------
# Payload parity over the shared-memory route
# ----------------------------------------------------------------------

class TestShmPayloadParity:
    @pytest.mark.parametrize(
        "make",
        [
            lambda n: np.linspace(0.0, 1.0, n),                 # float64
            lambda n: np.arange(n, dtype=np.int64) - n // 2,     # int64
            lambda n: np.arange(2 * n, dtype=np.float64)[::2],   # non-contiguous
            lambda n: np.empty(0, dtype=np.float64),             # zero-length
        ],
        ids=["float64", "int64", "non_contiguous", "zero_length"],
    )
    def test_chunk_roundtrip_bit_identical(self, make):
        n = 9000  # 72 kB of float64: above the default threshold too
        with MultiprocessingBackend(2, shm_threshold=TINY) as backend:
            chunks = [make(n), make(n) * 3 if make(n).size else make(n)]
            got = _roundtrip(backend, chunks)
            for a, b in zip(chunks, got):
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)

    def test_mixed_lane_frame(self):
        """One message carrying below- and above-threshold buffers plus
        plain objects reassembles exactly."""
        with MultiprocessingBackend(2, shm_threshold=1 << 10) as backend:
            chunks = [
                {"big": np.arange(4096, dtype=np.float64), "small": np.ones(3),
                 "meta": ("tag", 7)},
                {"big": np.zeros(4096), "small": np.arange(5), "meta": None},
            ]
            got = _roundtrip(backend, chunks)
            for a, b in zip(chunks, got):
                assert a["meta"] == b["meta"]
                np.testing.assert_array_equal(a["big"], b["big"])
                np.testing.assert_array_equal(a["small"], b["small"])

    def test_worker_produced_payload_fetch(self):
        """Worker-to-driver results ride the workers' own pools."""
        n = 20000
        with MultiprocessingBackend(3, shm_threshold=TINY) as backend:
            refs, _, _ = backend.map_resident(
                _make_big, [], n_out=1, args=[(n,)] * 3
            )
            got = backend.get_chunks(refs[0])
            for rank, arr in enumerate(got):
                np.testing.assert_array_equal(
                    arr, np.arange(n, dtype=np.float64) * (rank + 1)
                )
            assert backend.transport_bytes()["get"]["shm"] > 0

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_spmd_sendrecv_parity_with_sim(self, p):
        sim = Machine(p=p, seed=3)
        with Machine(p=p, seed=3, backend=MultiprocessingBackend(
                p, shm_threshold=TINY)) as real:
            rng = np.random.default_rng(8)
            chunks = [rng.random(5000) for _ in range(p)]
            ref_s = sim.backend.put_chunks(chunks)
            ref_r = real.backend.put_chunks([c.copy() for c in chunks])
            out_s, _ = sim.backend.run_spmd(
                _rotate_spmd, [ref_s], n_out=1, args=[(p,)] * p
            )
            out_r, _ = real.backend.run_spmd(
                _rotate_spmd, [ref_r], n_out=1, args=[(p,)] * p
            )
            for a, b in zip(sim.backend.get_chunks(out_s[0]),
                            _fetch_ref(real.backend, out_r[0])):
                np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("p", [2, 4])
    def test_spmd_alltoall_parity_with_sim(self, p):
        sim = Machine(p=p, seed=4)
        with Machine(p=p, seed=4, backend=MultiprocessingBackend(
                p, shm_threshold=TINY)) as real:
            rng = np.random.default_rng(9)
            chunks = [rng.random(4000) for _ in range(p)]
            ref_s = sim.backend.put_chunks(chunks)
            ref_r = real.backend.put_chunks([c.copy() for c in chunks])
            out_s, _ = sim.backend.run_spmd(
                _alltoall_spmd, [ref_s], n_out=1, args=[(p,)] * p
            )
            out_r, _ = real.backend.run_spmd(
                _alltoall_spmd, [ref_r], n_out=1, args=[(p,)] * p
            )
            for a, b in zip(sim.backend.get_chunks(out_s[0]),
                            _fetch_ref(real.backend, out_r[0])):
                np.testing.assert_array_equal(a, b)

    def test_value_collective_large_payload(self):
        """Large values in plain collectives (broadcast/allgather) ride
        the same lanes with bit-identical results."""
        with Machine(p=4, seed=5, backend=MultiprocessingBackend(
                4, shm_threshold=TINY)) as m:
            big = np.arange(6000, dtype=np.float64)
            out = m.broadcast(big, root=2)
            for arr in out:
                np.testing.assert_array_equal(arr, big)
            gathered = m.allgather([big * i for i in range(4)])
            for row in gathered:
                for i, arr in enumerate(row):
                    np.testing.assert_array_equal(arr, big * i)


# ----------------------------------------------------------------------
# Threshold routing + byte accounting
# ----------------------------------------------------------------------

class TestThresholdRouting:
    def test_boundary_just_below_stays_on_the_wire(self):
        threshold = 1 << 12
        with MultiprocessingBackend(2, shm_threshold=threshold) as backend:
            below = np.zeros(threshold // 8 - 1, dtype=np.float64)
            _roundtrip(backend, [below, below.copy()])
            tb = backend.transport_bytes()
            assert tb["put"]["shm"] == 0
            assert tb["get"]["shm"] == 0
            assert tb["put"]["wire"] > 2 * below.nbytes  # rode the pipe

    def test_boundary_at_cutoff_rides_shm(self):
        threshold = 1 << 12
        with MultiprocessingBackend(2, shm_threshold=threshold) as backend:
            at = np.zeros(threshold // 8, dtype=np.float64)
            _roundtrip(backend, [at, at.copy()])
            tb = backend.transport_bytes()
            assert tb["put"]["shm"] == 2 * at.nbytes
            assert tb["get"]["shm"] == 2 * at.nbytes
            # only descriptors crossed the pipe
            assert tb["put"]["wire"] < at.nbytes

    def test_disabled_pool_keeps_everything_inline(self):
        with MultiprocessingBackend(2, shm_threshold=None) as backend:
            assert not backend.supports_shm
            big = np.arange(50000, dtype=np.float64)
            got = _roundtrip(backend, [big, big * 2])
            np.testing.assert_array_equal(got[1], big * 2)
            tb = backend.transport_bytes()
            assert tb["put"]["shm"] == tb["get"]["shm"] == 0
            assert segment_names(backend._shm_family) == []

    def test_zero_threshold_disables_like_the_env_knob(self):
        """``shm_threshold=0`` must disable the lane (not share every
        tiny buffer), matching the REPRO_SHM_THRESHOLD convention."""
        backend = MultiprocessingBackend(2, shm_threshold=0)
        try:
            assert backend.shm_threshold is None
            assert not backend.supports_shm
        finally:
            backend.close()
        pool = ShmPool(pool_family(new_token()), "d", threshold=0)
        assert pool.share(memoryview(b"xy")) is None
        pool.close()

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "0")
        assert env_threshold() is None
        backend = MultiprocessingBackend(2)
        assert backend.shm_threshold is None and not backend.supports_shm
        backend.close()
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "4096")
        assert env_threshold() == 4096
        backend = MultiprocessingBackend(2)
        assert backend.shm_threshold == 4096
        backend.close()
        monkeypatch.delenv("REPRO_SHM_THRESHOLD")
        assert env_threshold() == DEFAULT_THRESHOLD

    def test_capability_flags(self):
        from repro.machine.backends import SimBackend

        sim = SimBackend(2)
        assert not sim.supports_shm and not sim.supports_oob_pickle
        assert sim.transport_bytes() == {}
        with MultiprocessingBackend(2) as backend:
            assert backend.supports_oob_pickle and backend.supports_shm

    def test_machine_mirrors_transport_into_metrics(self):
        with Machine(p=2, seed=6, backend=MultiprocessingBackend(
                2, shm_threshold=TINY)) as m:
            big = np.arange(8000, dtype=np.float64)
            m.broadcast(big)
            m.sync_transport()
            assert m.metrics.shm_bytes.get("bcast", 0) > 0
            first = dict(m.metrics.shm_bytes)
            m.sync_transport()  # repeated syncs must not double-count
            assert m.metrics.shm_bytes == first
            rep = m.report()
            assert rep.shm_bytes >= first["bcast"]
            assert rep.wire_bytes > 0


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------

#: the liveness assertions below watch /dev/shm directly, which only
#: Linux exposes (segment_names() degrades to [] elsewhere)
_observable = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="/dev/shm not observable"
)


class TestSegmentLifecycle:
    @_observable
    def test_pool_share_materialize_roundtrip(self):
        pool = ShmPool(pool_family(new_token()), "d", threshold=64)
        try:
            payload = os.urandom(5000)
            assert pool.share(memoryview(b"tiny")) is None  # below cutoff
            name, offset, flag_off = pool.share(memoryview(payload))
            assert offset == flag_off + 64  # data follows the block header
            assert bytes(pool.materialize(name, offset, len(payload))) == payload
            # round recycling reuses the segment in place
            pool.release_round()
            name2, offset2, flag2 = pool.share(memoryview(payload))
            assert (name2, offset2, flag2) == (name, offset, flag_off)
        finally:
            pool.close()
        assert segment_names(pool.family) == []

    def test_release_round_retains_the_largest_segments(self):
        """Trimming drops small idle segments, never the hot big ones --
        steady-state rounds keep reusing stable segment names."""
        from repro.machine.backends.shm import _MAX_SEGMENTS, _SEGMENT_MIN

        pool = ShmPool(pool_family(new_token()), "d", threshold=64)
        try:
            big = memoryview(bytearray(2 * _SEGMENT_MIN))
            big_name = pool.share(big)[0]
            for _ in range(_MAX_SEGMENTS + 2):  # overflow with default-size segs
                pool.share(memoryview(bytearray(_SEGMENT_MIN)))
            pool.release_round()
            names = {seg.shm.name for seg in pool._segments}
            assert len(names) == _MAX_SEGMENTS
            assert big_name in names  # the largest survived the trim
            # and the next big share reuses it in place
            assert pool.share(big)[0] == big_name
        finally:
            pool.close()

    def test_attach_cache_evicts_least_recently_used(self, monkeypatch):
        """A hot attachment must survive a parade of one-shot names."""
        from repro.machine.backends import shm as shm_mod

        monkeypatch.setattr(shm_mod, "_MAX_ATTACHED", 3)
        owners = [ShmPool(pool_family(new_token()), f"o{i}", threshold=1)
                  for i in range(5)]  # distinct pools -> distinct segment names
        reader = ShmPool(pool_family(new_token()), "r", threshold=1)
        try:
            hot_name, hot_off, _ = owners[0].share(memoryview(b"hot payload"))
            reader.materialize(hot_name, hot_off, 11)
            for owner in owners[1:]:
                name, off, _ = owner.share(memoryview(b"cold"))
                reader.materialize(name, off, 4)
                # touching hot between one-shot names keeps it most recent
                reader.materialize(hot_name, hot_off, 11)
            assert hot_name in reader._attached
            assert len(reader._attached) <= 3
        finally:
            reader.close()
            for owner in owners:
                owner.close()

    @_observable
    def test_no_segments_survive_close(self):
        with MultiprocessingBackend(2, shm_threshold=TINY) as backend:
            family = backend._shm_family
            big = np.arange(30000, dtype=np.float64)
            _roundtrip(backend, [big, big + 1])  # driver + worker segments
            assert segment_names(family)  # live while the pool runs
        assert segment_names(family) == []

    @_observable
    def test_killed_pool_segments_are_reaped(self):
        backend = MultiprocessingBackend(2, shm_threshold=TINY)
        family = backend._shm_family
        big = np.arange(30000, dtype=np.float64)
        _roundtrip(backend, [big, big + 1])
        assert segment_names(family)
        # kill the workers uncleanly: their pools never run close()
        for w in backend._workers:
            w.terminate()
            w.join(timeout=5.0)
        backend.close()  # the reaping backstop
        assert segment_names(family) == []

    @_observable
    def test_zero_copy_block_aliases_the_segment(self):
        """A flagged materialize returns a live view of the owner's
        segment, not a copy."""
        pool = ShmPool(pool_family(new_token()), "d", threshold=16)
        try:
            payload = bytes(range(256)) * 32
            name, off, foff = pool.share(memoryview(payload))
            block = pool.materialize(name, off, len(payload), foff)
            assert isinstance(block, np.ndarray)
            assert bytes(block) == payload
            seg = pool._segments[0]
            seg.shm.buf[off] = (payload[0] + 1) % 256  # write as the owner
            assert int(block[0]) == (payload[0] + 1) % 256  # the view sees it
        finally:
            pool.close()

    @_observable
    def test_legacy_descriptor_materializes_a_copy(self):
        pool = ShmPool(pool_family(new_token()), "d", threshold=16)
        try:
            name, off, _ = pool.share(memoryview(b"q" * 256))
            out = pool.materialize(name, off, 256)
            assert isinstance(out, bytearray)
            out[0] = 0  # private memory: the segment is untouched
            assert pool._segments[0].shm.buf[off] == ord("q")
        finally:
            pool.close()

    @_observable
    def test_release_flag_fires_on_last_deref(self):
        """The block stays pending while any alias of the zero-copy
        carrier is alive; the last deref flags it and the owner
        recycles."""
        pool = ShmPool(pool_family(new_token()), "d", threshold=16)
        try:
            name, off, foff = pool.share(memoryview(b"z" * 128))
            seg = pool._segments[0]
            block = pool.materialize(name, off, 128, foff)
            pool.release_through(10)  # live view: no recycle
            assert seg.used and seg.pending
            view = memoryview(block)  # a second alias pins it too
            del block
            pool.release_through(10)
            assert seg.pending
            view.release()
            del view
            pool.release_through(10)  # last alias gone -> flag -> recycle
            assert seg.used == 0 and not seg.pending
        finally:
            pool.close()

    def test_resident_zero_copy_chunks_survive_later_rounds(self):
        """Workers keep decoded put-payloads as zero-copy views of the
        driver's segments; later rounds must never recycle over them."""
        n = 20000
        with MultiprocessingBackend(2, shm_threshold=TINY) as backend:
            keep = [np.arange(n, dtype=np.float64) * (r + 1) for r in range(2)]
            ref = backend.put_chunks([c.copy() for c in keep])
            # churn: enough later traffic that a wrongly-recycled block
            # would be overwritten
            for i in range(8):
                backend.put_chunks([np.full(n, float(i)),
                                    np.full(n, float(-i))])
            got = _fetch_ref(backend, ref)
            for a, b in zip(keep, got):
                np.testing.assert_array_equal(a, b)

    def test_pipelined_rounds_recycle_driver_segments(self):
        """Release flags + the ack frontier keep the driver pool's
        footprint bounded across many pipelined rounds."""
        with Machine(p=2, seed=11, backend=MultiprocessingBackend(
                2, shm_threshold=TINY, pipeline_depth=4)) as m:
            big = np.arange(1 << 17, dtype=np.float64)  # 1 MiB payload
            for i in range(12):
                out = m.broadcast(big * i)
                del out
            assert len(m.backend._pool._segments) <= 3
        assert segment_names(m.backend._shm_family) == []

    @_observable
    def test_machine_close_reaps(self):
        m = Machine(p=2, seed=7, backend=MultiprocessingBackend(
            2, shm_threshold=TINY))
        family = m.backend._shm_family
        _roundtrip(m.backend, [np.arange(20000.0), np.arange(20000.0) * 2])
        m.close()
        assert segment_names(family) == []
