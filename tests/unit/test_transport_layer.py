"""Unit: the extracted transport layer (framing, channels), no pool.

Exercises :mod:`repro.machine.backends.transport` directly against
pipes and socketpairs -- the edge cases a full worker pool would bury:
partial reads, short writes, EINTR retries, zero-length out-of-band
buffers, the large-frame direct-receive path, multi-producer frame
interleaving and the MultiInbox EOF rules.
"""

import multiprocessing
import os
import pickle
import queue
import socket
import threading

import numpy as np
import pytest

from repro.machine.backends.transport import (
    ALIAS_MIN,
    DIRECT_RX_MIN,
    FrameDecoder,
    MultiInbox,
    NO_FRAME,
    PipeChannel,
    SocketChannel,
    encode_frame,
    write_views,
)


def _sock_pair():
    a, b = socket.socketpair()
    return SocketChannel(a), SocketChannel(b)


def _flatten(views) -> bytes:
    return b"".join(bytes(v) for v in views)


# ----------------------------------------------------------------------
# Frame encoding
# ----------------------------------------------------------------------

class TestEncodeFrame:
    def test_roundtrip_through_decoder(self):
        obj = {"a": np.arange(100), "b": "text", "c": (1, 2.5)}
        views, frame_len, shm_bytes = encode_frame(obj)
        assert shm_bytes == 0
        raw = _flatten(views)
        assert len(raw) == 8 + frame_len
        dec = FrameDecoder()
        out = dec._decode(memoryview(raw)[8:], None, copy_buffers=True)
        np.testing.assert_array_equal(out["a"], obj["a"])
        assert out["b"] == "text" and out["c"] == (1, 2.5)
        assert dec.wire_rx == 8 + frame_len

    def test_zero_length_buffer_emits_no_empty_iovec(self):
        """A zero-size array must not contribute an empty view --
        ``os.writev`` reports 0 bytes for those and the advance loop
        would spin forever."""
        obj = ("tag", np.empty(0, dtype=np.float64), np.arange(3))
        views, _, _ = encode_frame(obj)
        assert all(len(v) > 0 for v in views)
        dec = FrameDecoder()
        out = dec._decode(memoryview(_flatten(views))[8:], None, True)
        assert out[0] == "tag"
        assert out[1].size == 0 and out[1].dtype == np.float64
        np.testing.assert_array_equal(out[2], np.arange(3))

    def test_shm_descriptor_without_pool_fails_loudly(self):
        """A descriptor frame arriving on a pool-less channel (e.g. a
        socket) must raise, not silently decode garbage."""
        class FakePool:
            def share(self, view):
                return ("segname", 64, 0)

        views, _, shm_bytes = encode_frame(np.arange(64), pool=FakePool())
        assert shm_bytes == 64 * 8
        dec = FrameDecoder()
        with pytest.raises(RuntimeError, match="no pool attached"):
            dec._decode(memoryview(_flatten(views))[8:], None, True)

    def test_non_contiguous_arrays_fall_back_inband(self):
        arr = np.arange(100).reshape(10, 10)[:, ::2]  # non-contiguous view
        views, _, _ = encode_frame(arr)
        dec = FrameDecoder()
        out = dec._decode(memoryview(_flatten(views))[8:], None, True)
        np.testing.assert_array_equal(out, arr)


# ----------------------------------------------------------------------
# Decoder reassembly
# ----------------------------------------------------------------------

class TestPartialReads:
    def test_byte_by_byte_arrival(self):
        """A frame dribbling in one byte at a time reassembles intact."""
        tx, rx = _sock_pair()
        obj = ("msg", 7, np.arange(50))
        raw = _flatten(encode_frame(obj)[0])
        sender = tx._sock
        for i in range(len(raw) - 1):
            sender.sendall(raw[i:i + 1])
            # no complete frame yet
            assert rx.fill() or True
            assert rx.pop() is NO_FRAME
        sender.sendall(raw[-1:])
        out = rx.get(timeout=1.0)
        assert out[0] == "msg" and out[1] == 7
        np.testing.assert_array_equal(out[2], np.arange(50))

    def test_two_frames_in_one_read(self):
        """Back-to-back frames landing in one recv buffer pop in order."""
        tx, rx = _sock_pair()
        raw = b"".join(
            _flatten(encode_frame(("n", i))[0]) for i in range(5)
        )
        tx._sock.sendall(raw)
        assert [rx.get(timeout=1.0)[1] for _ in range(5)] == list(range(5))

    def test_incomplete_timeout_raises_empty(self):
        tx, rx = _sock_pair()
        raw = _flatten(encode_frame(("x", 1))[0])
        tx._sock.sendall(raw[: len(raw) // 2])
        with pytest.raises(queue.Empty):
            rx.get(timeout=0.05)

    def test_large_frame_direct_receive_path(self):
        """Frames >= DIRECT_RX_MIN land in a dedicated buffer the decoded
        arrays own (no shared-read-buffer copy)."""
        tx, rx = _sock_pair()
        big = np.arange(DIRECT_RX_MIN, dtype=np.int64)  # 8x the threshold
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: (tx.put(("big", big)), done.set()))
        thread.start()
        out = rx.get(timeout=5.0)
        thread.join(timeout=5.0)
        assert done.is_set()
        np.testing.assert_array_equal(out[1], big)
        # the big array aliases the direct frame buffer, not a copy
        assert out[1].size * 8 >= ALIAS_MIN

    def test_eof_raises(self):
        tx, rx = _sock_pair()
        tx.close()
        with pytest.raises(EOFError):
            rx.get(timeout=1.0)


# ----------------------------------------------------------------------
# Short writes and EINTR
# ----------------------------------------------------------------------

class TestWritePath:
    def test_short_writes_recover(self, monkeypatch):
        """writev advancing a few bytes per call still ships the frame."""
        real_writev = os.writev

        def tiny_writev(fd, views):
            v = memoryview(views[0])
            return real_writev(fd, [v[:3]])

        monkeypatch.setattr(os, "writev", tiny_writev)
        tx, rx = _sock_pair()
        # consume concurrently: thousands of 3-byte writes exhaust the
        # kernel's per-skb accounting long before the frame is through,
        # so the writer must block until the reader drains
        out = {}
        thread = threading.Thread(
            target=lambda: out.__setitem__("v", rx.get(timeout=10.0)))
        thread.start()
        tx.put(("short-writes", np.arange(200)))
        thread.join(timeout=10.0)
        assert out["v"][0] == "short-writes"
        np.testing.assert_array_equal(out["v"][1], np.arange(200))

    def test_writev_eintr_retried(self, monkeypatch):
        real_writev = os.writev
        calls = {"n": 0}

        def flaky_writev(fd, views):
            calls["n"] += 1
            if calls["n"] % 2 == 1:
                raise InterruptedError  # EINTR
            return real_writev(fd, views)

        monkeypatch.setattr(os, "writev", flaky_writev)
        tx, rx = _sock_pair()
        tx.put(("eintr", 42))
        assert rx.get(timeout=1.0) == ("eintr", 42)
        assert calls["n"] >= 2

    def test_read_eintr_retried(self, monkeypatch):
        real_read = os.read
        calls = {"n": 0}

        def flaky_read(fd, n):
            calls["n"] += 1
            if calls["n"] == 1:
                raise InterruptedError
            return real_read(fd, n)

        tx, rx = _sock_pair()
        tx.put(("readback", 3))
        monkeypatch.setattr(os, "read", flaky_read)
        assert rx.get(timeout=1.0) == ("readback", 3)
        assert calls["n"] >= 2

    def test_full_buffer_invokes_drain(self):
        """A frame bigger than the socket buffer blocks until the other
        side consumes; the writer's drain callback keeps firing."""
        tx, rx = _sock_pair()
        drained = {"n": 0}
        out = {}

        def consume():
            out["v"] = rx.get(timeout=10.0)

        thread = threading.Thread(target=consume)
        thread.start()
        big = np.arange(1 << 20, dtype=np.int64)  # 8 MiB >> socket buffer
        tx.put(("bulk", big), drain=lambda: drained.__setitem__("n", drained["n"] + 1))
        thread.join(timeout=10.0)
        np.testing.assert_array_equal(out["v"][1], big)
        assert drained["n"] > 0


# ----------------------------------------------------------------------
# Pipe channel (multi-producer) and frame interleaving
# ----------------------------------------------------------------------

def _producer(chan, sender_id, n):
    for seq in range(n):
        chan.put(("msg", seq, sender_id, b"x" * (17 * (seq % 5))))


class TestPipeChannel:
    def test_same_process_roundtrip(self):
        chan = PipeChannel(multiprocessing.get_context())
        chan.put({"k": np.arange(10)})
        out = chan.get(timeout=1.0)
        np.testing.assert_array_equal(out["k"], np.arange(10))
        chan.close()

    def test_interleaved_sequence_numbers_from_two_producers(self):
        """Two processes writing whole frames under the channel lock:
        every frame arrives intact and per-producer seq order holds."""
        ctx = multiprocessing.get_context()
        chan = PipeChannel(ctx)
        n = 40
        procs = [
            ctx.Process(target=_producer, args=(chan, sid, n))
            for sid in (1, 2)
        ]
        for pr in procs:
            pr.start()
        seen = {1: [], 2: []}
        for _ in range(2 * n):
            tag, seq, sid, payload = chan.get(timeout=10.0)
            assert tag == "msg" and len(payload) == 17 * (seq % 5)
            seen[sid].append(seq)
        for pr in procs:
            pr.join(timeout=5.0)
        # both producers' frames all arrived, each in FIFO order
        assert seen[1] == list(range(n)) and seen[2] == list(range(n))
        chan.close()

    def test_counters_account_frame_bytes(self):
        chan = PipeChannel(multiprocessing.get_context())
        counters = {"wire_tx": 0, "shm_tx": 0}
        chan.put(("x", np.arange(100)), counters=counters)
        chan.get(timeout=1.0)
        assert counters["wire_tx"] == chan.wire_rx > 800  # array + spec
        assert counters["shm_tx"] == 0
        chan.close()


# ----------------------------------------------------------------------
# MultiInbox
# ----------------------------------------------------------------------

class TestMultiInbox:
    def test_drains_multiple_sources(self):
        tx1, rx1 = _sock_pair()
        tx2, rx2 = _sock_pair()
        inbox = MultiInbox()
        inbox.add(rx1, primary=True)
        inbox.add(rx2)
        tx1.put(("from", 1))
        tx2.put(("from", 2))
        got = {inbox.get(timeout=1.0)[1], inbox.get(timeout=1.0)[1]}
        assert got == {1, 2}
        with pytest.raises(queue.Empty):
            inbox.get(timeout=0.05)

    def test_secondary_eof_is_tolerated(self):
        tx1, rx1 = _sock_pair()
        tx2, rx2 = _sock_pair()
        inbox = MultiInbox()
        inbox.add(rx1, primary=True)
        inbox.add(rx2)
        tx2.put(("last", 2))
        tx2.close()  # peer shut down after its final frame
        tx1.put(("alive", 1))
        got = {inbox.get(timeout=1.0)[0], inbox.get(timeout=1.0)[0]}
        assert got == {"last", "alive"}
        with pytest.raises(queue.Empty):  # rx2 was dropped, rx1 still live
            inbox.get(timeout=0.05)

    def test_primary_eof_raises(self):
        tx1, rx1 = _sock_pair()
        inbox = MultiInbox()
        inbox.add(rx1, primary=True)
        tx1.close()
        with pytest.raises(EOFError):
            inbox.get(timeout=1.0)

    def test_rx_accounting_survives_source_removal(self):
        tx1, rx1 = _sock_pair()
        tx2, rx2 = _sock_pair()
        inbox = MultiInbox()
        inbox.add(rx1, primary=True)
        inbox.add(rx2)
        tx2.put(("bye", np.arange(50)))
        inbox.get(timeout=1.0)
        before = inbox.wire_rx
        assert before > 0
        tx2.close()
        tx1.put(("ping",))
        inbox.get(timeout=1.0)  # triggers the rx2 EOF drop
        assert inbox.wire_rx > before  # rx2's bytes retained + rx1's added


# ----------------------------------------------------------------------
# TCP launcher lifecycle (registration edge cases, no algorithm pool)
# ----------------------------------------------------------------------

class TestTcpRegistration:
    def test_failed_start_releases_resources(self):
        """A rank that never registers must not leak the listener, the
        registered channels or the forked local workers."""
        from repro.machine.backends.tcp import TcpBackend

        backend = TcpBackend(
            2, hosts=["127.0.0.1", "never-launched-host"],
            bind="127.0.0.1", connect_timeout=1.0,
        )
        with pytest.raises(RuntimeError, match="never registered"):
            backend.allreduce([1, 2], "sum")
        assert backend._listener is None
        assert backend._workers == [] and backend._inboxes == []
        backend.close()  # idempotent after the failed start

    def test_stray_connection_does_not_claim_a_slot(self):
        """Garbage or volunteer connections with no open slot are
        dropped; real workers still register and the pool runs."""
        from repro.machine.backends.tcp import TcpBackend, worker_main

        backend = TcpBackend(1, hosts=["elsewhere"], bind="127.0.0.1",
                             connect_timeout=15.0)
        result = {}

        def run():
            try:
                result["out"] = backend.allreduce([7], "sum")
            except Exception as exc:  # pragma: no cover - surfaced below
                result["err"] = exc

        driver = threading.Thread(target=run)
        driver.start()
        while backend._listener is None:  # wait for the bind
            pass
        addr = ("127.0.0.1", backend._listener.getsockname()[1])
        # a well-formed frame with the wrong tag: rejected, not fatal
        bogus = SocketChannel(socket.create_connection(addr))
        bogus.put(("nonsense", 1, 2))
        # the real (externally launched) worker registers rank 0
        ctx = multiprocessing.get_context()
        worker = ctx.Process(target=worker_main, args=(addr,), daemon=True)
        worker.start()
        driver.join(timeout=30.0)
        assert result.get("out") == [7], result
        backend.close()
        worker.join(timeout=5.0)
        bogus.close()

    def test_register_timeout_bounds_a_missing_rank(self):
        """The overall registration deadline -- not the much longer
        per-connection timeout -- bounds a rank that never shows up,
        and the error names the missing ranks."""
        import time

        from repro.machine.backends.tcp import TcpBackend

        backend = TcpBackend(
            2, hosts=["127.0.0.1", "unlaunched-host"], bind="127.0.0.1",
            connect_timeout=60.0, register_timeout=1.5,
        )
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match=r"ranks \[1\] never registered"):
            backend.allreduce([1, 2], "sum")
        assert time.monotonic() - t0 < 30.0  # nowhere near connect_timeout
        backend.close()


# ----------------------------------------------------------------------
# Injected corruption (the transport half of the fault plans)
# ----------------------------------------------------------------------

class TestInjectedCorruption:
    def test_truncated_frame_stays_pending_then_eofs(self):
        """A worker dying mid-result-write leaves a frame prefix on the
        stream: the decoder must never surface a partial object, and the
        subsequent FIN is an EOF, not garbage."""
        from repro.machine.faults import truncated_frame_bytes

        obj = ("result", 3, {"x": np.arange(200)})
        a, b = socket.socketpair()
        rx = SocketChannel(b)
        a.sendall(truncated_frame_bytes(obj, fraction=0.5))
        with pytest.raises(queue.Empty):  # incomplete: keeps waiting
            rx.get(timeout=0.05)
        a.close()  # the death's FIN
        with pytest.raises(EOFError):
            rx.get(timeout=1.0)
        rx.close()

    def test_pipe_writer_severed_mid_frame(self):
        """The mp ``sever`` hook closes one inbox's writer end; with the
        frame half-written the reader gets EOF, never a partial frame."""
        from repro.machine.faults import truncated_frame_bytes

        ctx = multiprocessing.get_context()
        chan = PipeChannel(ctx)
        raw = truncated_frame_bytes(("item", 1, list(range(50))))
        write_views(chan._writer.fileno(), [memoryview(raw)])
        chan.close_writer()
        with pytest.raises(EOFError):
            chan.get(timeout=1.0)
        chan.close()

    def test_severed_secondary_socket_is_dropped_mid_stream(self):
        """The tcp ``sever`` fault shuts a pair socket down hard; the
        victim's MultiInbox drops that source and keeps serving the
        rest (the stall then surfaces as the driver's 'hung' phase)."""
        tx1, rx1 = _sock_pair()
        tx2, rx2 = _sock_pair()
        inbox = MultiInbox()
        inbox.add(rx1, primary=True)
        inbox.add(rx2)
        tx2.put(("pre", 2))
        assert inbox.get(timeout=1.0) == ("pre", 2)
        tx2.shutdown()  # the injected sever
        tx1.put(("alive", 1))
        assert inbox.get(timeout=1.0) == ("alive", 1)
        assert len(inbox._chans) == 1  # the severed source is gone
        with pytest.raises(queue.Empty):
            inbox.get(timeout=0.05)

    def test_severed_primary_socket_raises(self):
        """Losing the driver channel is fatal for a worker, sever or
        not: EOF propagates instead of being swallowed."""
        tx1, rx1 = _sock_pair()
        inbox = MultiInbox()
        inbox.add(rx1, primary=True)
        tx1.shutdown()
        with pytest.raises(EOFError):
            inbox.get(timeout=1.0)
