"""Unit tests: argument validation helpers (repro.common.validation)."""

import pytest

from repro.common.validation import (
    check_positive,
    check_probability,
    check_rank,
    check_rank_range,
)


class TestCheckRank:
    def test_valid_passes_through(self):
        assert check_rank(5, 10) == 5

    def test_bounds(self):
        assert check_rank(1, 10) == 1
        assert check_rank(10, 10) == 10

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="1 <= k"):
            check_rank(0, 10)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            check_rank(11, 10)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="kk"):
            check_rank(0, 10, what="kk")


class TestCheckRankRange:
    def test_valid(self):
        assert check_rank_range(2, 5, 10) == (2, 5)

    def test_degenerate_range_ok(self):
        assert check_rank_range(3, 3, 10) == (3, 3)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            check_rank_range(5, 2, 10)

    def test_out_of_n(self):
        with pytest.raises(ValueError):
            check_rank_range(1, 11, 10)


class TestOthers:
    def test_check_positive(self):
        assert check_positive(2, "x") == 2
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(0.0, "p")
        assert check_probability(0.0, "p", open_left=False) == 0.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")
