"""Unit tests: DTA, arbitrary data distribution (repro.topk.dta)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.topk import (
    SumScore,
    WeightedSum,
    build_distributed_index,
    dta_prefixes,
    dta_topk,
    global_topk_oracle,
    ta_topk,
)
from repro.topk.index import LocalIndex


@pytest.fixture
def rng():
    return np.random.default_rng(53)


def make_indexes(machine, rng, n, m, placement="random"):
    ids = np.arange(n)
    scores = rng.random((n, m))
    if placement == "random":
        order = rng.permutation(n)
    elif placement == "adversarial":
        order = np.argsort(-scores.sum(axis=1), kind="stable")
    else:
        order = np.arange(n)
    parts = np.array_split(order, machine.p)
    return (
        build_distributed_index(
            machine, [ids[pt] for pt in parts], [scores[pt] for pt in parts]
        ),
        ids,
        scores,
    )


class TestDtaPrefixes:
    def test_threshold_below_kth_relevance(self, machine8, rng):
        idx, ids, scores = make_indexes(machine8, rng, 1500, 3)
        scorer = SumScore(3)
        pre = dta_prefixes(machine8, idx, scorer, 20)
        oracle = global_topk_oracle(idx, scorer, 20)
        # whp the threshold admits at least the top-k
        assert pre.tmin <= oracle[0][1]

    def test_prefix_sizes_consistent(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 800, 2)
        pre = dta_prefixes(machine8, idx, SumScore(2), 10)
        for i, ix in enumerate(idx):
            for c in range(2):
                assert 0 <= pre.prefix_sizes[i][c] <= ix.n

    def test_hit_estimate_positive(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 800, 2)
        pre = dta_prefixes(machine8, idx, SumScore(2), 10)
        assert pre.hit_estimate > 0

    def test_exponential_search_grows_k(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 2000, 3)
        pre = dta_prefixes(machine8, idx, SumScore(3), 64)
        assert pre.scanned >= max(1, 64 // (3 * 8))
        assert pre.rounds >= 1


class TestDtaTopk:
    def test_random_placement(self, machine, rng):
        idx, *_ = make_indexes(machine, rng, 900, 3)
        scorer = SumScore(3)
        res = dta_topk(machine, idx, scorer, 15)
        assert list(res.items) == global_topk_oracle(idx, scorer, 15)

    def test_adversarial_placement(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 900, 3, placement="adversarial")
        scorer = SumScore(3)
        res = dta_topk(machine8, idx, scorer, 15)
        assert list(res.items) == global_topk_oracle(idx, scorer, 15)

    def test_weighted_scorer(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 700, 3)
        scorer = WeightedSum((0.6, 0.3, 0.1))
        res = dta_topk(machine8, idx, scorer, 12)
        assert list(res.items) == global_topk_oracle(idx, scorer, 12)

    def test_contains_sequential_ta_result(self, machine8, rng):
        """Theorem 6: DTA's output region covers what TA would scan."""
        idx, ids, scores = make_indexes(machine8, rng, 1000, 2)
        scorer = SumScore(2)
        merged = LocalIndex(ids, scores)
        seq = ta_topk(merged, scorer, 10)
        res = dta_topk(machine8, idx, scorer, 10)
        assert {o for o, _ in seq.items} == {o for o, _ in res.items}

    def test_k_equals_n(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 64, 2)
        res = dta_topk(machine8, idx, SumScore(2), 64)
        assert len(res.items) == 64

    def test_single_criterion(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 500, 1)
        scorer = SumScore(1)
        res = dta_topk(machine8, idx, scorer, 8)
        assert list(res.items) == global_topk_oracle(idx, scorer, 8)

    def test_invalid_k(self, machine8, rng):
        idx, *_ = make_indexes(machine8, rng, 50, 2)
        with pytest.raises(ValueError):
            dta_topk(machine8, idx, SumScore(2), 0)

    def test_sublinear_communication(self, rng):
        """The coordination volume must be far below the input size."""
        m = Machine(p=16, seed=6)
        idx, *_ = make_indexes(m, rng, 4000, 3)
        m.reset()
        dta_topk(m, idx, SumScore(3), 16)
        assert m.metrics.bottleneck_words < 4000 / 4
