"""Unit tests: sequential quickselect / Floyd-Rivest."""

import numpy as np
import pytest

from repro.selection import floyd_rivest_select, fr_pivots, kth_smallest, quickselect


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestQuickselect:
    def test_matches_sort(self, rng):
        data = rng.integers(0, 1000, 2000)
        s = np.sort(data)
        for k in (1, 2, 1000, 1999, 2000):
            assert quickselect(data, k) == s[k - 1]

    def test_all_equal(self):
        data = np.full(100, 7)
        assert quickselect(data, 50) == 7

    def test_duplicate_heavy(self, rng):
        data = rng.integers(0, 5, 1000)
        s = np.sort(data)
        for k in (1, 500, 1000):
            assert quickselect(data, k) == s[k - 1]

    def test_input_not_modified(self, rng):
        data = rng.integers(0, 100, 500)
        before = data.copy()
        quickselect(data, 250)
        assert np.array_equal(data, before)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            quickselect(np.arange(10), 0)
        with pytest.raises(ValueError):
            quickselect(np.arange(10), 11)

    def test_floats(self, rng):
        data = rng.random(777)
        assert quickselect(data, 300) == np.sort(data)[299]


class TestFloydRivest:
    def test_matches_sort_large(self, rng):
        data = rng.integers(0, 10**6, 50_000)
        s = np.sort(data)
        for k in (1, 100, 25_000, 50_000):
            assert floyd_rivest_select(data, k) == s[k - 1]

    def test_skewed_input(self, rng):
        data = np.concatenate([np.zeros(10_000), rng.integers(1, 100, 10_000)])
        s = np.sort(data)
        assert floyd_rivest_select(data, 10_000) == s[9999]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            floyd_rivest_select(np.arange(10), 0)


class TestFrPivots:
    def test_pivots_bracket_target(self, rng):
        sample = np.sort(rng.random(100))
        lo, hi = fr_pivots(sample, k=5000, n=10_000)
        assert lo <= sample[50] <= hi

    def test_pivots_ordered(self, rng):
        sample = np.sort(rng.random(64))
        lo, hi = fr_pivots(sample, k=1, n=1000)
        assert lo <= hi

    def test_extreme_ranks_clamped(self, rng):
        sample = np.sort(rng.random(32))
        lo, hi = fr_pivots(sample, k=10**9, n=10**9)
        assert hi == sample[-1]

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            fr_pivots(np.empty(0), 1, 10)


class TestDispatch:
    def test_kth_smallest_small_and_large(self, rng):
        small = rng.integers(0, 50, 100)
        large = rng.integers(0, 50, 10_000)
        assert kth_smallest(small, 50) == np.sort(small)[49]
        assert kth_smallest(large, 5000) == np.sort(large)[4999]

    def test_invalid(self):
        with pytest.raises(ValueError):
            kth_smallest(np.arange(5), 6)
