"""Kernel registry + twin bit-identity tests.

Every registered kernel has a python reference and a native twin; the
dispatch contract says swapping modes may change wall-clock time, never
a result, a modeled cost, or an RNG stream position.  These tests pin
that contract without numba: the native twins run interpreted through
the :func:`repro.kernels.jit` shim, which exercises the identical
arithmetic the compiled path runs.
"""

import numpy as np
import pytest

from repro.kernels import (
    MODES,
    ArrayTreap,
    Kernel,
    effective_mode,
    fingerprint32,
    get_mode,
    kernel,
    native_uniforms,
    numba_available,
    partition3,
    registered,
    set_mode,
    skip_sample_indices,
    spacesaving_offer,
    splitmix64_array,
    topk_count,
    topk_cut,
    treap_merge,
    use_mode,
    weighted_counts,
)
from repro.kernels.philox import is_philox, put_state, state_words
from repro.machine.ctrrng import philox_generator
from repro.trees import Treap


@pytest.fixture(autouse=True)
def _reset_mode():
    """Never leak an explicit mode override across tests."""
    set_mode(None)
    yield
    set_mode(None)


def rng_pair(seq=7):
    """Two generators at the same draw address (identical streams)."""
    return (
        philox_generator(0xC0FFEE, 0, 3, seq),
        philox_generator(0xC0FFEE, 0, 3, seq),
    )


# ----------------------------------------------------------------------
# Registry and mode selection
# ----------------------------------------------------------------------

class TestRegistry:
    def test_all_hot_loops_registered(self):
        assert set(registered()) == {
            "partition3", "topk_count", "topk_cut", "treap_merge",
            "spacesaving_offer", "fingerprint32", "splitmix64_array",
            "weighted_counts", "skip_sample_indices",
        }

    def test_every_kernel_has_a_native_twin(self):
        for name, k in registered().items():
            assert k.has_native, f"kernel {name!r} lacks a native twin"

    def test_set_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "native")
        assert get_mode() == "native"
        set_mode("python")
        assert get_mode() == "python"
        set_mode(None)
        assert get_mode() == "native"

    def test_env_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert get_mode() == "auto"
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        assert get_mode() == "auto"

    def test_auto_resolves_on_numba_availability(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        expect = "native" if numba_available() else "python"
        assert effective_mode() == expect

    def test_explicit_modes_resolve_to_themselves(self):
        for mode in ("python", "native"):
            with use_mode(mode):
                assert effective_mode() == mode

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernels mode"):
            set_mode("turbo")
        assert "turbo" not in MODES

    def test_use_mode_restores_on_exit(self):
        set_mode("python")
        with use_mode("native"):
            assert get_mode() == "native"
        assert get_mode() == "python"

    def test_use_mode_restores_on_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        with pytest.raises(RuntimeError):
            with use_mode("native"):
                raise RuntimeError("boom")
        assert get_mode() == "auto"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate kernel"):
            kernel("partition3")(lambda a: a)

    def test_dispatch_picks_the_twin_for_the_mode(self):
        k = Kernel("probe", lambda: "python")
        k.native(lambda: "native")
        with use_mode("python"):
            assert k() == "python"
        with use_mode("native"):
            assert k() == "native"

    def test_dispatch_without_twin_always_runs_python(self):
        k = Kernel("plain", lambda: "python")
        assert not k.has_native
        with use_mode("native"):
            assert k() == "python"


# ----------------------------------------------------------------------
# Philox state-word cores
# ----------------------------------------------------------------------

class TestPhilox:
    def test_native_uniforms_match_numpy_bit_for_bit(self):
        ref, native = rng_pair()
        want = ref.random(1000)
        got = native_uniforms(native, 1000)
        assert np.array_equal(want, got)

    def test_state_advances_identically(self):
        ref, native = rng_pair()
        ref.random(257)
        native_uniforms(native, 257)
        assert np.array_equal(ref.random(16), native.random(16))

    def test_mid_buffer_continuation(self):
        # 3 draws leave one word in the 4-word block; the native core
        # must consume it before generating the next block
        ref, native = rng_pair()
        ref.random(3)
        native.random(3)
        assert np.array_equal(ref.random(10), native_uniforms(native, 10))
        assert np.array_equal(ref.random(5), native.random(5))

    def test_interleaved_python_and_native_draws(self):
        ref, native = rng_pair()
        chunks = [1, 4, 7, 2, 9]
        for i, n in enumerate(chunks):
            want = ref.random(n)
            got = native_uniforms(native, n) if i % 2 else native.random(n)
            assert np.array_equal(want, got)

    def test_state_words_roundtrip(self):
        ref, native = rng_pair()
        k0, k1, c0, c1, c2, c3, buf, pos = state_words(native)
        put_state(native, c0, c1, c2, c3, buf, pos)
        assert np.array_equal(ref.random(8), native.random(8))

    def test_is_philox(self):
        assert is_philox(philox_generator(1, 0, 0, 0))
        assert not is_philox(np.random.default_rng(0))


# ----------------------------------------------------------------------
# Per-kernel twin bit-identity
# ----------------------------------------------------------------------

class TestTwinParity:
    def assert_twins_agree(self, k, *args_builders):
        """Run the reference and the native twin on identically built
        argument tuples and compare every returned array/scalar."""
        want = k.py(*args_builders[0]())
        got = k.native_fn(*args_builders[0]())
        if not isinstance(want, tuple):
            want, got = (want,), (got,)
        for w, g in zip(want, got):
            assert np.array_equal(np.asarray(w), np.asarray(g))

    def test_partition3(self):
        arr = np.random.default_rng(1).integers(0, 50, 10_000)
        for lo, hi in [(10, 30), (0, 49), (25, 25), (60, 70), (-5, -1)]:
            self.assert_twins_agree(partition3, lambda: (arr, lo, hi))

    def test_topk_count(self):
        arr = np.random.default_rng(2).integers(0, 20, 5_000)
        for t in [0, 7, 19, 25]:
            self.assert_twins_agree(topk_count, lambda: (arr, t))

    def test_topk_cut_including_tie_clipping(self):
        arr = np.random.default_rng(3).integers(0, 20, 5_000)
        n_eq = int((arr == 7).sum())
        for keep in [0, 1, n_eq // 2, n_eq, n_eq + 100]:
            self.assert_twins_agree(topk_cut, lambda: (arr, 7, keep))

    def test_treap_merge_stable_on_ties(self):
        r = np.random.default_rng(4)

        def run():
            s_a = np.sort(r.integers(0, 10, 300).astype(np.float64))
            s_b = np.sort(r.integers(0, 10, 200).astype(np.float64))
            a_a = np.arange(300, dtype=np.int64)
            a_b = np.arange(200, dtype=np.int64)
            return (s_a, a_a, a_a.copy(), s_b, a_b, a_b.copy())

        args = run()
        self.assert_twins_agree(treap_merge, lambda: args)

    def test_spacesaving_offer_with_evictions(self):
        r = np.random.default_rng(5)
        new_keys = r.integers(0, 40, 500).astype(np.int64)
        new_counts = r.integers(1, 9, 500).astype(np.int64)
        empty = np.empty(0, dtype=np.int64)
        self.assert_twins_agree(
            spacesaving_offer,
            lambda: (empty, empty, 16, 0, new_keys, new_counts),
        )

    def test_splitmix64_array(self):
        x = np.random.default_rng(6).integers(
            0, 2**63, 10_000, dtype=np.int64
        ).astype(np.uint64)
        self.assert_twins_agree(splitmix64_array, lambda: (x,))

    def test_fingerprint32(self):
        keys = np.random.default_rng(7).integers(0, 2**62, 10_000)
        for salt in [0, 0xDEADBEEF, 2**63 + 11]:
            self.assert_twins_agree(fingerprint32, lambda: (keys, salt))

    def test_weighted_counts_stream_and_result(self):
        values = np.random.default_rng(8).random(4_000) * 12.0
        ref, native = rng_pair()
        want = weighted_counts.py(ref, values, 3.0)
        got = weighted_counts.native_fn(native, values, 3.0)
        assert np.array_equal(want, got)
        # the native core advanced the generator exactly one uniform
        # per value, same as the reference
        assert np.array_equal(ref.random(32), native.random(32))

    def test_skip_sample_stream_and_result(self):
        ref, native = rng_pair(seq=11)
        want = skip_sample_indices.py(ref, 100_000, 0.01)
        got = skip_sample_indices.native_fn(native, 100_000, 0.01)
        assert np.array_equal(want, got)
        assert np.array_equal(ref.random(32), native.random(32))

    def test_rng_kernels_fall_back_for_non_philox(self):
        # PCG64 has no exposed counter form; the twin must detect it
        # and run the python reference rather than corrupt the stream
        values = np.linspace(0.0, 30.0, 500)
        want = weighted_counts.py(np.random.default_rng(42), values, 4.0)
        got = weighted_counts.native_fn(np.random.default_rng(42), values, 4.0)
        assert np.array_equal(want, got)
        want = skip_sample_indices.py(np.random.default_rng(43), 5_000, 0.05)
        got = skip_sample_indices.native_fn(np.random.default_rng(43), 5_000, 0.05)
        assert np.array_equal(want, got)


# ----------------------------------------------------------------------
# ArrayTreap vs the pointer Treap
# ----------------------------------------------------------------------

class TestArrayTreapParity:
    def build_pair(self):
        r_ptr, r_arr = rng_pair(seq=21)
        return Treap(r_ptr), ArrayTreap(r_arr), r_ptr, r_arr

    def test_same_observable_surface(self):
        ptr, arr, _, _ = self.build_pair()
        scores = np.random.default_rng(9).integers(0, 30, 200) / 4.0
        ptr.insert_batch(scores, rank=2, first_uid=100)
        arr.insert_batch(scores, rank=2, first_uid=100)
        assert len(ptr) == len(arr)
        assert ptr.min() == arr.min()
        assert ptr.max() == arr.max()
        assert ptr.to_list() == arr.to_list()
        for i in [0, 1, 99, 199]:
            assert ptr.select(i) == arr.select(i)
        for key in [(2.5, (0, 0)), (7.25, (2, 150)), (100.0, (9, 9))]:
            assert ptr.rank(key) == arr.rank(key)
            assert ptr.count_le(key) == arr.count_le(key)
        assert ptr.access_cost() == arr.access_cost()
        assert ptr.access_cost(16) == arr.access_cost(16)
        arr.check_invariants()

    def test_split_at_rank_matches(self):
        ptr, arr, _, _ = self.build_pair()
        scores = np.random.default_rng(10).random(150)
        ptr.insert_batch(scores, rank=0, first_uid=0)
        arr.insert_batch(scores, rank=0, first_uid=0)
        p_out = ptr.split_at_rank(40)
        a_out = arr.split_at_rank(40)
        assert p_out.to_list() == a_out.to_list()
        assert ptr.to_list() == arr.to_list()

    def test_split_at_key_matches(self):
        ptr, arr, _, _ = self.build_pair()
        scores = np.random.default_rng(11).integers(0, 12, 120).astype(float)
        ptr.insert_batch(scores, rank=1, first_uid=500)
        arr.insert_batch(scores, rank=1, first_uid=500)
        cut = (6.0, (10**9, 10**9))
        assert ptr.split_at_key(cut).to_list() == arr.split_at_key(cut).to_list()
        assert ptr.to_list() == arr.to_list()

    def test_priority_draws_advance_identically(self):
        # one draw per inserted key in both implementations, so the
        # counter-addressed stream stays interchangeable across modes
        ptr, arr, r_ptr, r_arr = self.build_pair()
        ptr.insert_batch([3.0, 1.0, 2.0], rank=0, first_uid=0)
        arr.insert_batch([3.0, 1.0, 2.0], rank=0, first_uid=0)
        ptr.insert((0.5, (1, 7)))
        arr.insert((0.5, (1, 7)))
        ptr.insert_many([(9.0, (2, 1)), (8.0, (2, 2))])
        arr.insert_many([(9.0, (2, 1)), (8.0, (2, 2))])
        assert np.array_equal(r_ptr.random(8), r_arr.random(8))

    def test_empty_tree_raises_like_treap(self):
        _, arr, _, _ = self.build_pair()
        with pytest.raises(IndexError):
            arr.min()
        with pytest.raises(IndexError):
            arr.select(0)
        with pytest.raises(ValueError):
            arr.split_at_rank(-1)
