"""Unit tests: the resident-chunk SPMD execution path.

DistArray chunks are pinned behind opaque handles in the execution
backend; per-PE callbacks run where the data lives and only small
values travel.  These tests cover the backend protocol (put/get/free,
``map_resident`` with fused value collectives, generator ``run_spmd``),
the DistArray surface on top of it, the driver fallback for unpicklable
callbacks, and the lifecycle guarantees (salvage at close, idempotent
close, atexit guard registration).
"""

import numpy as np
import pytest

from repro.machine import ChunkRef, DistArray, Machine

BACKENDS = ["sim", "mp"]


def _chunk_step(rank, chunk):
    return (chunk * 2, chunk.sum())


def _value_step(rank, chunk, offset):
    return int(chunk.sum()) + offset


def _split_step(rank, chunk, pivot):
    lo, hi = chunk[chunk < pivot], chunk[chunk >= pivot]
    return lo, hi, (lo.size, hi.size)


def _spmd_kernel(rank, chunk, scale):
    total = yield ("allreduce", int(chunk.sum()), "sum")
    gathered = yield ("allgather", rank * scale)
    return (chunk + total, (total, tuple(gathered)))


def _spmd_alltoall_kernel(rank, chunk, p):
    received = yield ("alltoall", [(rank, j) for j in range(p)])
    return tuple(received)


def _spmd_sendrecv_kernel(rank, chunk, p):
    # ring exchange: everyone sends one payload to rank+1
    row = [None] * p
    row[(rank + 1) % p] = ("from", rank)
    srcs = [(rank - 1) % p]
    received = yield ("sendrecv", row, srcs)
    return tuple(received)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendResidentProtocol:
    def _machine(self, backend, p=3):
        return Machine(p=p, seed=11, backend=backend)

    def test_put_get_roundtrip(self, backend):
        with self._machine(backend) as m:
            chunks = [np.arange(i + 2) for i in range(3)]
            ref = m.backend.put_chunks(chunks)
            assert isinstance(ref, ChunkRef)
            out = m.backend.get_chunks(ref)
            for a, b in zip(chunks, out):
                np.testing.assert_array_equal(a, b)

    def test_map_resident_values_only(self, backend):
        with self._machine(backend) as m:
            ref = m.backend.put_chunks([np.full(4, i) for i in range(3)])
            _, values, collected = m.backend.map_resident(
                _value_step, [ref], 0, args=[(10,), (20,), (30,)]
            )
            assert values == [10, 24, 38]
            assert collected is None

    def test_map_resident_with_outputs(self, backend):
        with self._machine(backend) as m:
            ref = m.backend.put_chunks([np.arange(6) for _ in range(3)])
            out_refs, values, _ = m.backend.map_resident(
                _split_step, [ref], 2, args=[(3,)] * 3
            )
            assert values == [(3, 3)] * 3
            lo = m.backend.get_chunks(out_refs[0])
            hi = m.backend.get_chunks(out_refs[1])
            for c in lo:
                np.testing.assert_array_equal(c, [0, 1, 2])
            for c in hi:
                np.testing.assert_array_equal(c, [3, 4, 5])

    def test_map_resident_fused_collect(self, backend):
        with self._machine(backend) as m:
            ref = m.backend.put_chunks([np.full(2, i + 1) for i in range(3)])
            _, values, gathered = m.backend.map_resident(
                _value_step, [ref], 0, args=[(0,)] * 3, collect=("allgather",)
            )
            assert values == [2, 4, 6]
            assert gathered == [[2, 4, 6]] * 3
            _, values, totals = m.backend.map_resident(
                _value_step, [ref], 0, args=[(0,)] * 3, collect=("allreduce", "sum")
            )
            assert totals == [12] * 3

    def test_run_spmd_generator(self, backend):
        with self._machine(backend) as m:
            ref = m.backend.put_chunks([np.full(2, i) for i in range(3)])
            out_refs, values = m.backend.run_spmd(
                _spmd_kernel, [ref], n_out=1, args=[(2,)] * 3
            )
            # allreduce of chunk sums 0+2+4 = 6; allgather of rank*2
            assert values == [(6, (0, 2, 4))] * 3
            out = m.backend.get_chunks(out_refs[0])
            for rank, c in enumerate(out):
                np.testing.assert_array_equal(c, np.full(2, rank) + 6)

    def test_run_spmd_alltoall(self, backend):
        with self._machine(backend) as m:
            p = m.p
            ref = m.backend.put_chunks([np.zeros(1)] * p)
            _, values = m.backend.run_spmd(
                _spmd_alltoall_kernel, [ref], args=[(p,)] * p
            )
            for j in range(p):
                assert values[j] == tuple((i, j) for i in range(p))

    def test_run_spmd_sendrecv(self, backend):
        with self._machine(backend) as m:
            p = m.p
            ref = m.backend.put_chunks([np.zeros(1)] * p)
            _, values = m.backend.run_spmd(
                _spmd_sendrecv_kernel, [ref], args=[(p,)] * p
            )
            for j in range(p):
                expected = [None] * p
                expected[(j - 1) % p] = ("from", (j - 1) % p)
                assert values[j] == tuple(expected)

    def test_free_reclaims_slots(self, backend):
        import gc

        with self._machine(backend) as m:
            ref = m.backend.put_chunks([np.arange(3)] * 3)
            ref_id = ref.id
            del ref
            gc.collect()
            # sim frees immediately; mp piggybacks on the next command
            m.allreduce([1, 1, 1])
            if m.backend.is_real:
                stats = m.backend._run(("stats",), [None] * 3)
                assert all(s["resident"] == 0 for s in stats)
            else:
                assert ref_id not in m.backend._store


class TestUnpicklableFallback:
    def test_mp_map_resident_falls_back(self):
        bias = 7  # closure -> unpicklable callback
        with Machine(p=2, seed=12, backend="mp") as m:
            ref = m.backend.put_chunks([np.arange(3), np.arange(3) + 1])
            out_refs, values, gathered = m.backend.map_resident(
                lambda rank, c: (int(c.sum()) + bias),
                [ref], 0, collect=("allgather",),
            )
            assert values == [10, 13]
            assert gathered == [[10, 13]] * 2

    def test_mp_run_spmd_falls_back(self):
        scale = 3

        def kernel(rank, chunk):
            total = yield ("allreduce", rank * scale, "sum")
            return total

        with Machine(p=2, seed=12, backend="mp") as m:
            ref = m.backend.put_chunks([np.arange(2)] * 2)
            _, values = m.backend.run_spmd(kernel, [ref])
            assert values == [3, 3]


@pytest.mark.parametrize("backend", BACKENDS)
class TestDistArrayResident:
    def test_chunks_property_fetches(self, backend):
        with Machine(p=2, seed=13, backend=backend) as m:
            da = DistArray(m, [np.array([3, 1]), np.array([2, 5])])
            sorted_da = da.sort_local()
            np.testing.assert_array_equal(sorted_da.chunks[0], [1, 3])
            np.testing.assert_array_equal(sorted_da.chunks[1], [2, 5])
            assert list(sorted_da.sizes()) == [2, 2]

    def test_negate_roundtrip(self, backend):
        with Machine(p=2, seed=13, backend=backend) as m:
            da = DistArray(m, [np.array([1, -2]), np.array([0, 4])])
            neg = da.negate()
            np.testing.assert_array_equal(neg.concat(), [-1, 2, 0, -4])
            assert neg.dtype == da.dtype

    def test_map_values_and_collect(self, backend):
        with Machine(p=2, seed=13, backend=backend) as m:
            da = DistArray(m, [np.arange(4), np.arange(4) + 10])
            values = da.map_values(_value_step, args=[(0,), (0,)])
            assert values == [6, 46]
            raw, collected = da.map_collect(_value_step, args=[(0,), (0,)])
            assert raw == [6, 46] and collected[0] == [6, 46]
            raw, totals = da.map_collect(_value_step, args=[(0,), (0,)], op="sum")
            assert totals[0] == 52

    def test_sizes_never_fetch(self, backend):
        with Machine(p=2, seed=13, backend=backend) as m:
            da = DistArray.from_global(m, np.arange(10))
            out = da.map_chunks(lambda r, c: c[c % 2 == 0])
            # sizes are tracked driver-side even for resident outputs
            assert int(out.sizes().sum()) == out.global_size == 5

    def test_bernoulli_sample_matches_counter_addressed_draws(self, backend):
        from repro.common.sampling import bernoulli_sample_indices
        from repro.machine.ctrrng import DrawAddress

        with Machine(p=2, seed=14, backend=backend) as m:
            chunks = [np.arange(100), np.arange(100, 200)]
            da = DistArray(m, chunks)
            samples = da.bernoulli_sample_local(0.2)
            # a fresh machine's first allocation is (seed, seq=0); the
            # kernel draws from each rank's counter-addressed stream
            addr = DrawAddress(14, 0)
            for i in range(2):
                idx = bernoulli_sample_indices(addr.local(i), 100, 0.2)
                np.testing.assert_array_equal(samples[i], chunks[i][idx])


class TestLifecycle:
    def test_results_readable_after_close(self):
        with Machine(p=2, seed=15, backend="mp") as m:
            da = DistArray(m, [np.array([3, 1, 2]), np.array([9, 7, 8])])
            out = da.sort_local()
        # the worker pool is gone; salvage must keep the handle readable
        np.testing.assert_array_equal(out.chunks[0], [1, 2, 3])
        np.testing.assert_array_equal(out.chunks[1], [7, 8, 9])

    def test_machine_context_manager_closes_backend(self):
        with Machine(p=2, seed=15, backend="mp") as m:
            m.allreduce([1, 2])
        assert m.backend.closed

    def test_close_idempotent_even_before_start(self):
        m = Machine(p=2, seed=15, backend="mp")
        m.close()
        m.close()
        assert m.backend.closed

    def test_atexit_guard_tracks_started_pools(self):
        import repro.machine.backends.runtime as rt_mod

        with Machine(p=2, seed=15, backend="mp") as m:
            m.allreduce([1, 2])
            assert m.backend in rt_mod._LIVE_POOLS
            assert rt_mod._ATEXIT_REGISTERED
        assert m.backend not in rt_mod._LIVE_POOLS

    def test_leaked_pool_closed_by_guard(self):
        import repro.machine.backends.runtime as rt_mod

        m = Machine(p=2, seed=15, backend="mp")
        m.allreduce([1, 2])
        assert m.backend in rt_mod._LIVE_POOLS
        rt_mod._close_leaked_pools()
        assert m.backend.closed
