"""Golden fixtures for the repro-lint checks (RL001 -- RL010).

Every check has at least one firing case, one non-firing case, and one
suppression case, so a behavior change in any check breaks a fixture
here before it silently stops protecting the tree.  The framework
itself (suppressions, config, mini-TOML fallback, CLI exit codes) is
covered at the bottom.
"""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import Config, all_checks, lint_source
from tools.repro_lint.checks import ACCEPTED_CHARGE_KINDS
from tools.repro_lint.core import _parse_mini_toml, load_config, main

REPO = Path(__file__).resolve().parents[2]


def lint(src: str, path: str = "fx.py", config: Config | None = None):
    return lint_source(textwrap.dedent(src), path=path, config=config)


def hits(src: str, check_id: str, **kw):
    """Unsuppressed findings of one check on a fixture."""
    return [
        f for f in lint(src, **kw) if f.check == check_id and not f.suppressed
    ]


# ----------------------------------------------------------------------
# RL001 -- rank-divergent collective sequences
# ----------------------------------------------------------------------

class TestRL001:
    def test_fires_on_rank_guarded_yield(self):
        found = hits(
            """
            def _kernel(rank, chunk):
                if rank == 0:
                    total = yield ("allreduce", 1.0, "sum")
                return chunk
            """,
            "RL001",
        )
        assert len(found) == 1
        assert "'allreduce'" in found[0].message

    def test_fires_on_derived_rank_taint(self):
        found = hits(
            """
            def _kernel(rank, chunk):
                me = rank * 2
                while me > 0:
                    yield ("allgather", me)
                    me -= 1
                return chunk
            """,
            "RL001",
        )
        assert len(found) == 1

    def test_fires_on_exscan_prefix_guard(self):
        # the prefix half of allreduce_exscan is rank-personal
        found = hits(
            """
            def _kernel(rank, chunk):
                total, prefix = yield ("allreduce_exscan", 1, "sum", 0)
                if prefix > 2:
                    yield ("allgather", prefix)
                return total
            """,
            "RL001",
        )
        assert len(found) == 1

    def test_clean_on_replicated_guard(self):
        # allreduce results are identical on every rank: branching on
        # them keeps the collective sequence lockstep
        assert not hits(
            """
            def _kernel(rank, chunk):
                total = yield ("allreduce", float(chunk.sum()), "sum")
                if total > 0:
                    extra = yield ("allgather", 1)
                return total
            """,
            "RL001",
        )

    def test_clean_on_unconditional_yields(self):
        assert not hits(
            """
            def _kernel(rank, chunk):
                for _ in range(3):
                    yield ("allgather", int(chunk.size))
                return chunk
            """,
            "RL001",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                def _kernel(rank, chunk):
                    if rank == 0:
                        # repro-lint: disable=RL001 -- intentionally divergent test kernel
                        yield ("allgather", 1)
                    return chunk
                """
            )
            if f.check == "RL001"
        ]
        assert len(found) == 1
        assert found[0].suppressed
        assert "intentionally divergent" in found[0].suppress_reason


# ----------------------------------------------------------------------
# RL002 -- unordered iteration feeding collectives / charge logs
# ----------------------------------------------------------------------

class TestRL002:
    def test_fires_on_dict_keys_into_payload(self):
        found = hits(
            """
            def _kernel(rank, chunk):
                d = {"b": 1, "a": 2}
                vals = list(d.keys())
                res = yield ("allgather", vals)
                return res
            """,
            "RL002",
        )
        assert len(found) == 1

    def test_fires_on_set_loop_into_charge_log(self):
        found = hits(
            """
            def run(machine, log):
                for x in set([3, 1, 2]):
                    log.append(("ops", x))
            """,
            "RL002",
        )
        assert len(found) == 1

    def test_fires_on_set_comprehension_into_collective_call(self):
        found = hits(
            """
            def run(machine, items):
                payload = [x for x in {i % 7 for i in items}]
                return machine.allgather(payload)
            """,
            "RL002",
        )
        assert len(found) == 1

    def test_clean_when_sorted(self):
        assert not hits(
            """
            def _kernel(rank, chunk):
                d = {"b": 1, "a": 2}
                vals = sorted(d.keys())
                res = yield ("allgather", vals)
                return res
            """,
            "RL002",
        )

    def test_clean_on_order_free_consumption(self):
        # len()/membership/sum() do not observe iteration order
        assert not hits(
            """
            def _kernel(rank, chunk):
                d = {"b": 1, "a": 2}
                n = len(d.keys())
                ok = 3 in set([1, 2, 3])
                res = yield ("allgather", (n, ok))
                return res
            """,
            "RL002",
        )

    def test_clean_when_not_reaching_a_sink(self):
        assert not hits(
            """
            def helper(d):
                return list(d.keys())
            """,
            "RL002",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                def _kernel(rank, chunk):
                    d = {"b": 1}
                    # repro-lint: disable=RL002 -- single-entry dict, order moot
                    vals = list(d.keys())
                    res = yield ("allgather", vals)
                    return res
                """
            )
            if f.check == "RL002"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL003 -- global RNG inside worker kernels
# ----------------------------------------------------------------------

class TestRL003:
    def test_fires_on_np_random_in_kernel(self):
        found = hits(
            """
            import numpy as np

            def _kernel(rank, chunk):
                noise = np.random.random(3)
                res = yield ("allgather", 1)
                return noise
            """,
            "RL003",
        )
        assert len(found) == 1
        assert "np.random.random" in found[0].message

    def test_fires_on_stdlib_random_in_resident_callback(self):
        found = hits(
            """
            import random

            def resident(rank, chunk):
                random.shuffle(chunk)
                return chunk
            """,
            "RL003",
        )
        assert len(found) == 1

    def test_fires_on_from_import(self):
        found = hits(
            """
            from numpy.random import default_rng

            def _kernel(rank, chunk):
                rng = default_rng()
                yield ("allgather", 1)
                return rng
            """,
            "RL003",
        )
        assert len(found) == 1

    def test_clean_on_counter_addressed_draws(self):
        # deriving a generator from the shipped draw address is the
        # sanctioned pattern (machine/ctrrng.py)
        assert not hits(
            """
            import numpy as np

            def _kernel(rank, chunk, addr):
                rng = addr.local(rank)
                draw = rng.integers(0, 10)
                yield ("allgather", int(draw))
                return draw
            """,
            "RL003",
        )

    def test_clean_outside_kernels(self):
        # driver-side code may seed however it likes
        assert not hits(
            """
            import numpy as np

            def make_inputs(n):
                return np.random.default_rng(0).integers(0, 100, n)
            """,
            "RL003",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                import numpy as np

                def _kernel(rank, chunk):
                    noise = np.random.random(3)  # repro-lint: disable=RL003 -- fixture exercising nondeterminism
                    yield ("allgather", 1)
                    return noise
                """
            )
            if f.check == "RL003"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL004 -- unknown charge-log entry kinds
# ----------------------------------------------------------------------

class TestRL004:
    def test_fires_on_unknown_kind(self):
        found = hits(
            """
            def _kernel(rank, chunk, log):
                log.append(("flops", 12))
                yield ("allgather", 1)
                return chunk
            """,
            "RL004",
        )
        assert len(found) == 1
        assert "'flops'" in found[0].message

    def test_clean_on_accepted_kinds(self):
        body = "\n".join(
            f'    log.append(("{kind}", 1.0, 0))'
            for kind in sorted(ACCEPTED_CHARGE_KINDS)
        )
        assert not hits(f"def f(log):\n{body}\n", "RL004")

    def test_clean_on_non_log_append(self):
        assert not hits(
            """
            def f(rows):
                rows.append(("flops", 12))
            """,
            "RL004",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                def f(charge_log):
                    charge_log.append(("custom", 1))  # repro-lint: disable=RL004 -- consumed by a local replayer
                """
            )
            if f.check == "RL004"
        ]
        assert len(found) == 1
        assert found[0].suppressed

    def test_accepted_kinds_pinned_to_replay_charges(self):
        """The hardcoded accept-set must match the dispatch in
        Machine.replay_charges -- this fixture fails when someone adds a
        charge kind to comm.py without teaching the linter."""
        src = (REPO / "src/repro/machine/comm.py").read_text(encoding="utf-8")
        tree = ast.parse(src)
        replay = next(
            n
            for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "replay_charges"
        )
        dispatched = {
            n.comparators[0].value
            for n in ast.walk(replay)
            if isinstance(n, ast.Compare)
            and isinstance(n.left, ast.Name)
            and n.left.id == "kind"
            and len(n.comparators) == 1
            and isinstance(n.comparators[0], ast.Constant)
            and isinstance(n.comparators[0].value, str)
        }
        assert dispatched == ACCEPTED_CHARGE_KINDS


# ----------------------------------------------------------------------
# RL005 -- transport buffers stored beyond the command round
# ----------------------------------------------------------------------

class TestRL005:
    def test_fires_on_self_storing_a_view(self):
        found = hits(
            """
            class Decoder:
                def decode(self, buf):
                    view = memoryview(buf)
                    self.cache = view[8:]
            """,
            "RL005",
        )
        assert len(found) == 1

    def test_fires_on_appending_view_to_instance_state(self):
        found = hits(
            """
            import numpy as np

            class Decoder:
                def decode(self, buf):
                    arr = np.frombuffer(buf, dtype=np.uint8)
                    self.frames.append(arr)
            """,
            "RL005",
        )
        assert len(found) == 1

    def test_clean_when_copied_out(self):
        assert not hits(
            """
            import numpy as np

            class Decoder:
                def decode(self, buf):
                    view = memoryview(buf)
                    self.cache = bytes(view)
                    self.arr = np.array(np.frombuffer(buf, dtype=np.uint8))
            """,
            "RL005",
        )

    def test_clean_within_round(self):
        # a view that stays local to the call is the whole point of the
        # zero-copy lane
        assert not hits(
            """
            import numpy as np

            def decode(buf):
                view = memoryview(buf)
                return np.frombuffer(view, dtype=np.int64).sum()
            """,
            "RL005",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                class Decoder:
                    def decode(self, buf):
                        view = memoryview(buf)
                        # repro-lint: disable=RL005 -- segment pinned for the pool's lifetime
                        self.cache = view
                """
            )
            if f.check == "RL005"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL006 -- capability flags not consulted
# ----------------------------------------------------------------------

class TestRL006:
    def test_fires_on_unguarded_pool_use(self):
        found = hits(
            """
            class Shipper:
                def ship(self, payload):
                    return self._pool.share(payload)
            """,
            "RL006",
        )
        assert len(found) == 1
        assert "_pool" in found[0].message

    def test_fires_on_raw_shared_memory(self):
        found = hits(
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """,
            "RL006",
        )
        assert len(found) == 1

    def test_clean_when_capability_checked(self):
        assert not hits(
            """
            class Shipper:
                def ship(self, backend, payload):
                    if backend.supports_shm:
                        return self._pool.share(payload)
                    return payload
            """,
            "RL006",
        )

    def test_per_check_path_exclusion(self):
        cfg = Config(per_check_exclude={"RL006": ["src/x/backends/*"]})
        assert not hits(
            """
            class Shipper:
                def ship(self, payload):
                    return self._pool.share(payload)
            """,
            "RL006",
            path="src/x/backends/mp.py",
            config=cfg,
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                class Shipper:
                    def ship(self, payload):
                        # repro-lint: disable=RL006 -- mp-only helper, pool always present
                        return self._pool.share(payload)
                """
            )
            if f.check == "RL006"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL007 -- resident store reads bypassing the dependency tracker
# ----------------------------------------------------------------------

class TestRL007:
    def test_fires_on_driver_side_store_read(self):
        found = hits(
            """
            def peek(machine, ref):
                return machine.backend._store[ref.id]
            """,
            "RL007",
        )
        assert len(found) == 1
        assert "get_chunks" in found[0].message

    def test_fires_on_store_mutation(self):
        found = hits(
            """
            def drop(backend, ref):
                backend._store.pop(ref.id, None)
            """,
            "RL007",
        )
        assert len(found) == 1

    def test_clean_on_backend_internal_self_access(self):
        assert not hits(
            """
            class SomeBackend:
                def get_chunks(self, ref):
                    self._wait_ref(ref.id)
                    return self._store[ref.id]
            """,
            "RL007",
        )

    def test_clean_on_sanctioned_accessors(self):
        assert not hits(
            """
            def peek(machine, ref, data):
                chunks = machine.backend.get_chunks(ref)
                return chunks, data.chunks
            """,
            "RL007",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                def salvage(backend, ref):
                    # repro-lint: disable=RL007 -- teardown path, engine already fenced
                    return backend._store.get(ref.id)
                """
            )
            if f.check == "RL007"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL008 -- unbounded blocking get()/recv()
# ----------------------------------------------------------------------

class TestRL008:
    def test_fires_on_zero_arg_queue_get(self):
        found = hits(
            """
            def worker_loop(results):
                while True:
                    item = results.get()
            """,
            "RL008",
        )
        assert len(found) == 1
        assert "timeout" in found[0].message

    def test_fires_on_zero_arg_pipe_recv(self):
        found = hits(
            """
            def pump(conn):
                return conn.recv()
            """,
            "RL008",
        )
        assert len(found) == 1
        assert "byte count" in found[0].message

    def test_clean_on_bounded_waits(self):
        assert not hits(
            """
            def pump(q, sock, conn, d):
                a = q.get(timeout=1.0)
                b = q.get(True, 5.0)
                c = q.get_nowait()
                e = sock.recv(65536)
                f = d.get("key")
                g = d.get("key", None)
                return a, b, c, e, f, g
            """,
            "RL008",
        )

    def test_clean_on_comm_recv_with_peer(self):
        # the runtime Comm.recv(src, tag) carries arguments and is
        # internally deadline-bounded
        assert not hits(
            """
            def _kernel(rank, chunk, comm):
                return comm.recv((rank + 1) % 2, tag=7)
            """,
            "RL008",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                def drain(q):
                    # repro-lint: disable=RL008 -- producer lifetime bounds this wait
                    return q.get()
                """
            )
            if f.check == "RL008"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL009 -- stateful RNG construction in kernels / raw Philox use
# ----------------------------------------------------------------------

class TestRL009:
    def test_fires_on_default_rng_in_kernel(self):
        found = hits(
            """
            import numpy as np

            def _kernel(rank, chunk):
                rng = np.random.default_rng(rank)
                return chunk[rng.integers(0, chunk.size)]
            """,
            "RL009",
        )
        assert len(found) == 1
        assert "default_rng" in found[0].message
        assert "DrawAddress" in found[0].message

    def test_fires_on_generator_construction_in_kernel(self):
        # wrapping hand-carried state was the pre-ctrrng idiom; in a
        # kernel it now reads as a counter-reuse hazard
        found = hits(
            """
            import numpy as np

            def _kernel(rank, chunk, state):
                rng = np.random.Generator(np.random.PCG64(state))
                yield ("allgather", 1)
                return rng.integers(0, 10)
            """,
            "RL009",
        )
        assert len(found) == 1
        assert "Generator" in found[0].message

    def test_fires_on_raw_philox_anywhere(self):
        # module-wide, not just kernels: driver-side hand-keyed Philox
        # can collide with the sanctioned address space
        found = hits(
            """
            import numpy as np

            def make_stream(seed):
                return np.random.Generator(np.random.Philox(key=seed))
            """,
            "RL009",
        )
        assert len(found) == 1
        assert "ctrrng" in found[0].message

    def test_fires_on_philox_from_import_alias(self):
        found = hits(
            """
            from numpy.random import Philox as PX

            def make_stream(seed):
                return PX(key=seed)
            """,
            "RL009",
        )
        assert len(found) == 1

    def test_clean_on_draw_address_use(self):
        assert not hits(
            """
            import numpy as np

            def _kernel(rank, chunk, addr):
                rng = addr.local(rank, draw=1)
                shared = addr.shared()
                yield ("allgather", int(shared.integers(0, 4)))
                return chunk[rng.integers(0, chunk.size)]
            """,
            "RL009",
        )

    def test_clean_on_driver_side_default_rng(self):
        # input/data generation outside kernels may seed however it likes
        assert not hits(
            """
            import numpy as np

            def make_inputs(n):
                return np.random.default_rng(0).integers(0, 100, n)
            """,
            "RL009",
        )

    def test_suppression(self):
        # mirrors the one sanctioned construction site in ctrrng.py
        found = [
            f
            for f in lint(
                """
                import numpy as np

                def philox_generator(seed, key, counter):
                    bg = np.random.Philox(key=key, counter=counter)  # repro-lint: disable=RL009 -- the one sanctioned Philox construction site
                    return np.random.Generator(bg)
                """
            )
            if f.check == "RL009"
        ]
        assert len(found) == 1
        assert found[0].suppressed
        assert "sanctioned" in found[0].suppress_reason

    def test_ctrrng_module_is_waived_not_silent(self):
        """The real construction site carries an inline suppression: the
        finding still appears in the report (marked), it just never
        gates."""
        src = (REPO / "src/repro/machine/ctrrng.py").read_text(encoding="utf-8")
        found = [
            f
            for f in lint_source(src, path="src/repro/machine/ctrrng.py")
            if f.check == "RL009"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# RL010 -- the kernels-package boundary
# ----------------------------------------------------------------------

class TestRL010:
    def test_fires_on_numba_import_outside_kernels(self):
        found = hits(
            """
            import numba

            def fast(a):
                return numba.njit(lambda x: x + 1)(a)
            """,
            "RL010",
            path="src/repro/selection/unsorted.py",
        )
        assert len(found) == 1
        assert "kernel" in found[0].message

    def test_fires_on_from_numba_import(self):
        found = hits(
            """
            from numba import njit

            @njit
            def fast(a):
                return a + 1
            """,
            "RL010",
            path="src/repro/machine/backends/runtime.py",
        )
        assert len(found) == 1

    def test_clean_on_numba_import_inside_kernels(self):
        assert not hits(
            """
            def numba_available():
                try:
                    import numba  # noqa: F401
                except ImportError:
                    return False
                return True
            """,
            "RL010",
            path="src/repro/kernels/registry.py",
        )

    def test_fires_on_rng_construction_inside_kernels(self):
        found = hits(
            """
            import numpy as np

            def weighted_counts_native(rng, values, v_avg):
                rng2 = np.random.default_rng(12345)
                return np.floor(values / v_avg) + rng2.random(values.size)
            """,
            "RL010",
            path="src/repro/kernels/sampling.py",
        )
        assert len(found) == 1
        assert "state_words" in found[0].message

    def test_fires_on_philox_generator_inside_kernels(self):
        found = hits(
            """
            from ..machine.ctrrng import philox_generator

            def native_uniforms(seed, n):
                return philox_generator(seed, 0, 0).random(n)
            """,
            "RL010",
            path="src/repro/kernels/philox.py",
        )
        assert len(found) == 1

    def test_clean_on_state_threading_inside_kernels(self):
        assert not hits(
            """
            import numpy as np

            def native_uniforms(rng, n):
                key, counter = state_words(rng)
                out = _uniform_fill(key, counter, n)
                put_state(rng, key, counter)
                return out
            """,
            "RL010",
            path="src/repro/kernels/philox.py",
        )

    def test_clean_on_driver_side_rng_outside_kernels(self):
        # only the kernels package is barred from minting generators
        assert not hits(
            """
            import numpy as np

            def make_inputs(n):
                return np.random.default_rng(0).integers(0, 100, n)
            """,
            "RL010",
            path="src/repro/common/sampling.py",
        )

    def test_suppression(self):
        found = [
            f
            for f in lint(
                """
                import numpy as np

                class ArrayTreap:
                    def __init__(self, rng=None):
                        self._rng = rng or np.random.default_rng(7)  # repro-lint: disable=RL010 -- standalone default, mirrors Treap
                """,
                path="src/repro/kernels/treap.py",
            )
            if f.check == "RL010"
        ]
        assert len(found) == 1
        assert found[0].suppressed
        assert "Treap" in found[0].suppress_reason

    def test_kernels_treap_module_is_waived_not_silent(self):
        """The real default-generator site carries an inline suppression:
        reported, marked, never gating."""
        src = (REPO / "src/repro/kernels/treap.py").read_text(encoding="utf-8")
        found = [
            f
            for f in lint_source(src, path="src/repro/kernels/treap.py")
            if f.check == "RL010"
        ]
        assert len(found) == 1
        assert found[0].suppressed


# ----------------------------------------------------------------------
# Framework: suppressions, config, CLI
# ----------------------------------------------------------------------

class TestFramework:
    def test_all_checks_registered(self):
        assert set(all_checks()) >= {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL008", "RL009", "RL010",
        }

    def test_syntax_error_reported_as_rl000(self):
        found = lint("def broken(:\n")
        assert [f.check for f in found] == ["RL000"]
        assert not found[0].suppressed

    def test_disable_file(self):
        found = lint(
            """
            # repro-lint: disable-file=RL004 -- synthetic charge kinds throughout
            def f(log):
                log.append(("custom_a", 1))
                log.append(("custom_b", 2))
            """
        )
        rl4 = [f for f in found if f.check == "RL004"]
        assert len(rl4) == 2
        assert all(f.suppressed for f in rl4)
        assert "synthetic" in rl4[0].suppress_reason

    def test_disable_all_on_line(self):
        found = lint(
            """
            def f(log):
                log.append(("custom", 1))  # repro-lint: disable=all -- demo
            """
        )
        assert all(f.suppressed for f in found)

    def test_config_disable_turns_check_off(self):
        cfg = Config(disable={"RL004"})
        found = lint(
            """
            def f(log):
                log.append(("custom", 1))
            """,
            config=cfg,
        )
        assert not [f for f in found if f.check == "RL004"]

    def test_config_enable_is_an_allowlist(self):
        cfg = Config(enable={"RL001"})
        found = lint(
            """
            def f(log):
                log.append(("custom", 1))
            """,
            config=cfg,
        )
        assert not found

    def test_mini_toml_matches_repo_config(self):
        """The py3.10 fallback parser reads the real pyproject the same
        way tomllib would."""
        text = (REPO / "pyproject.toml").read_text(encoding="utf-8")
        sections = _parse_mini_toml(text)
        table = sections["tool.repro-lint"]
        assert table["disable"] == []
        assert "tests/*" in table["exclude"]
        per = sections["tool.repro-lint.per-check-exclude"]
        assert per["RL006"] == [
            "src/repro/machine/backends/*",
            "src/repro/machine/faults.py",
        ]

    def test_load_config_reads_repo_pyproject(self):
        cfg = load_config(REPO / "pyproject.toml")
        assert cfg.check_excluded("RL006", "src/repro/machine/backends/mp.py")
        assert not cfg.check_excluded("RL006", "src/repro/frequent/dht.py")
        assert cfg.file_excluded("tests/unit/test_dsbf.py")

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(log):\n    log.append(('custom', 1))\n")
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        assert main(["--no-config", str(clean)]) == 0
        assert main(["--no-config", str(bad)]) == 1
        assert main([]) == 2
        assert main(["--no-config", str(tmp_path / "missing.py")]) == 2

    def test_cli_json_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(log):\n    log.append(('custom', 1))\n")
        rc = main(["--no-config", "--format", "json", str(bad)])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["unsuppressed"] == 1
        assert report["findings"][0]["check"] == "RL004"
        assert "RL001" in report["checks"]

    def test_cli_select(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(log):\n    log.append(('custom', 1))\n")
        assert main(["--no-config", "--select", "RL001", str(bad)]) == 0

    def test_module_entry_point(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "--no-config", str(clean)],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout
