"""Unit tests: the in-worker tree/hypercube exchange schedules.

The mp backend's workers route collectives over binomial trees (rooted
ops, reduction-type ops) and dissemination/hypercube schedules
(allgather, alltoall) instead of direct O(p^2) exchanges.  These tests
pin down

* the schedule helpers themselves (any ``p``, power of two or not),
* bit-identical results against the simulated backend at non-power-of-
  two ``p`` (the schedules must degrade gracefully), and
* the O(p log p) worker message-count bound the refactor exists for.
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.collectives import (
    binomial_edges,
    binomial_subtrees,
    bruck_hops,
    bruck_send_blocks,
)
from repro.machine.cost import log2_ceil

NON_POW2 = [3, 5, 6]


class TestScheduleHelpers:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 6, 7, 8, 13])
    def test_bruck_hops_cover_all_offsets(self, p):
        hops = bruck_hops(p)
        assert len(hops) == log2_ceil(p)
        # every offset 1..p-1 is a subset-sum of the hop distances
        reachable = {0}
        for h in hops:
            reachable |= {(r + h) for r in reachable}
        assert set(range(p)) <= reachable

    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_bruck_send_blocks_excludes_receiver_holdings(self, p):
        # after r rounds each PE holds the `hop` ranks ending at itself;
        # what it is sent must be exactly what it lacks
        for rank in range(p):
            held = [(rank - i) % p for i in range(1)]  # round 0: own block
            sends = bruck_send_blocks(p, rank, 1, held)
            dst = (rank + 1) % p
            assert dst not in sends
            assert all(b in held for b in sends)

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_binomial_subtrees_partition_the_machine(self, p, root):
        if root >= p:
            pytest.skip("root out of range")
        subtrees = binomial_subtrees(p, root)
        assert sorted(subtrees[root]) == list(range(p))
        children: dict[int, list[int]] = {i: [] for i in range(p)}
        for _, s, d in binomial_edges(p, root):
            children[s].append(d)
        for node, members in subtrees.items():
            # a node's subtree is itself plus the union of its children's
            expected = {node}
            stack = list(children[node])
            while stack:
                c = stack.pop()
                expected.add(c)
                stack.extend(children[c])
            assert set(members) == expected


@pytest.mark.parametrize("p", NON_POW2)
class TestNonPowerOfTwoParity:
    """The worker schedules must stay bit-identical to sim off the
    power-of-two fast path."""

    def test_value_collectives(self, p):
        sim = Machine(p=p, seed=3)
        with Machine(p=p, seed=3, backend="mp") as real:
            vals = [0.1 * (i + 1) for i in range(p)]
            vecs = [np.array([i + 1, 2 * i]) for i in range(p)]
            assert sim.allreduce(vals, op="sum") == real.allreduce(vals, op="sum")
            assert sim.scan(vals) == real.scan(vals)
            st, sp = sim.allreduce_exscan(vals)
            rt, rp = real.allreduce_exscan(vals)
            assert st == rt and sp == rp
            for a, b in zip(sim.allgather(vecs)[0], real.allgather(vecs)[0]):
                np.testing.assert_array_equal(a, b)
            for root in range(p):
                assert sim.reduce(vals, root=root) == real.reduce(vals, root=root)
                assert sim.broadcast(vals[root], root=root) == real.broadcast(
                    vals[root], root=root
                )
                assert sim.gather(vals, root=root) == real.gather(vals, root=root)

    def test_alltoall_store_and_forward(self, p):
        sim = Machine(p=p, seed=4)
        with Machine(p=p, seed=4, backend="mp") as real:
            matrix = [[(i, j) if i != j else None for j in range(p)] for i in range(p)]
            assert sim.alltoall(matrix) == real.alltoall(matrix)

    def test_fused_reduce_allgather(self, p):
        sim = Machine(p=p, seed=5)
        with Machine(p=p, seed=5, backend="mp") as real:
            values = [0.25 * (i + 1) for i in range(p)]
            payloads = [[i, i + 1] for i in range(p)]
            st, sg = sim.reduce_allgather(values, payloads)
            rt, rg = real.reduce_allgather(values, payloads)
            assert st == rt and sg == rg


class TestMessageCounts:
    """The acceptance bound: worker exchanges are O(p log p), not O(p^2)."""

    def _delta(self, machine, fn):
        before = sum(machine.backend.worker_message_counts())
        fn()
        return sum(machine.backend.worker_message_counts()) - before

    @pytest.mark.parametrize("p", [4, 5, 8])
    def test_allgather_is_dissemination(self, p):
        with Machine(p=p, seed=6, backend="mp") as m:
            vals = list(range(p))
            m.allgather(vals)  # warm up (starts the pool)
            delta = self._delta(m, lambda: m.allgather(vals))
        assert delta == p * log2_ceil(p)      # Bruck schedule, exactly
        assert delta < p * (p - 1)            # strictly beats direct

    @pytest.mark.parametrize("p", [4, 5, 8])
    def test_reduction_type_is_tree(self, p):
        with Machine(p=p, seed=6, backend="mp") as m:
            vals = list(range(p))
            m.allreduce(vals)
            for fn, count in [
                (lambda: m.allreduce(vals), 2 * (p - 1)),
                (lambda: m.scan(vals), 2 * (p - 1)),
                (lambda: m.allreduce_exscan(vals), 2 * (p - 1)),
                (lambda: m.broadcast(1, root=0), p - 1),
                (lambda: m.reduce(vals, root=0), p - 1),
                (lambda: m.gather(vals, root=0), p - 1),
                (lambda: m.scatter(vals, root=0), p - 1),
            ]:
                assert self._delta(m, fn) == count

    @pytest.mark.parametrize("p", [4, 5, 8])
    def test_alltoall_is_hypercube_routed(self, p):
        with Machine(p=p, seed=6, backend="mp") as m:
            m.allreduce(list(range(p)))
            matrix = [[(i, j) if i != j else None for j in range(p)] for i in range(p)]
            delta = self._delta(m, lambda: m.alltoall(matrix))
        assert delta == p * log2_ceil(p)
        assert delta < p * (p - 1) or p <= 3

    def test_selection_round_is_two_tree_exchanges(self):
        """One SPMD recursion level costs 4(p-1) worker messages (sample
        union + count reduction, each a tree gather+broadcast)."""
        from repro.machine import DistArray
        from repro.selection import select_kth

        p = 8
        with Machine(p=p, seed=7, backend="mp") as m:
            data = DistArray.generate(m, lambda r, g: g.integers(0, 10_000, 500))
            before = sum(m.backend.worker_message_counts())
            stats = select_kth(m, data, 1000, return_stats=True)
            delta = sum(m.backend.worker_message_counts()) - before
        # rounds SPMD levels + initial size allreduce + base-case
        # gather/broadcast, every one of them O(p log p)
        per_level = 4 * (p - 1)
        assert delta <= (stats.rounds + 1) * per_level + 4 * (p - 1)
        assert delta < stats.rounds * p * (p - 1)  # direct exchange would


class TestBroadcastCommandChannel:
    """Full-pool commands cost O(1) driver sends: one frame to rank 0,
    tree-forwarded by the workers (p - 1 forwards per command)."""

    @pytest.mark.parametrize("p", [2, 4, 5, 8])
    def test_driver_sends_one_frame_per_collective(self, p):
        with Machine(p=p, seed=9, backend="mp") as m:
            vals = list(range(p))
            m.allreduce(vals)  # start the pool
            matrix = [[(i, j) if i != j else None for j in range(p)] for i in range(p)]
            before = m.backend.driver_sends
            m.allreduce(vals)
            m.allgather(vals)
            m.scan(vals)
            m.alltoall(matrix)
            assert m.backend.driver_sends - before == 4

    @pytest.mark.parametrize("p", [4, 5, 8])
    def test_workers_forward_along_the_tree(self, p):
        with Machine(p=p, seed=9, backend="mp") as m:
            vals = list(range(p))
            m.allreduce(vals)
            base = sum(m.backend.command_fanout_counts())
            m.allreduce(vals)
            after = sum(m.backend.command_fanout_counts())
            # the allreduce plus the stats read itself: two commands,
            # p - 1 tree forwards each
            assert after - base == 2 * (p - 1)

    def test_p2p_keeps_the_direct_path(self):
        with Machine(p=4, seed=9, backend="mp") as m:
            m.allreduce([1, 2, 3, 4])
            before = m.backend.driver_sends
            assert m.send(0, 2, 17) == 17
            assert m.backend.driver_sends - before == 2  # src and dst only


class TestLargePayloads:
    """Payloads far beyond the pipe buffer must flow (the cooperative-
    drain path of the channel transport; a regression here deadlocks,
    which the suite-level timeout surfaces)."""

    @pytest.mark.parametrize("p", [3, 4])
    def test_big_allgather_and_alltoall(self, p):
        sim = Machine(p=p, seed=8)
        with Machine(p=p, seed=8, backend="mp") as real:
            big = [np.arange(60_000, dtype=np.int64) + i for i in range(p)]
            for a, b in zip(sim.allgather(big)[0], real.allgather(big)[0]):
                np.testing.assert_array_equal(a, b)
            matrix = [
                [np.full(30_000, i * p + j, dtype=np.int64) for j in range(p)]
                for i in range(p)
            ]
            out_s, out_r = sim.alltoall(matrix), real.alltoall(matrix)
            for row_s, row_r in zip(out_s, out_r):
                for a, b in zip(row_s, row_r):
                    np.testing.assert_array_equal(a, b)
