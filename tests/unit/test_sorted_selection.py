"""Unit tests: multisequence selection (Appendix A, Algorithm 9)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.selection import ms_select, ms_select_with_cuts


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def sorted_chunks(machine, rng, n_per_pe, lo=0, hi=10**6):
    return [np.sort(rng.integers(lo, hi, n_per_pe)) for _ in range(machine.p)]


class TestMsSelect:
    def test_matches_oracle(self, machine, rng):
        seqs = sorted_chunks(machine, rng, 500)
        s = np.sort(np.concatenate(seqs))
        for k in (1, len(s) // 2, len(s)):
            assert ms_select(machine, seqs, k) == s[k - 1]

    def test_odd_p(self, odd_machine, rng):
        seqs = sorted_chunks(odd_machine, rng, 300)
        s = np.sort(np.concatenate(seqs))
        assert ms_select(odd_machine, seqs, 200) == s[199]

    def test_uneven_lengths(self, machine8, rng):
        seqs = [np.sort(rng.integers(0, 1000, rng.integers(0, 500))) for _ in range(8)]
        s = np.sort(np.concatenate(seqs))
        if s.size:
            assert ms_select(machine8, seqs, s.size // 2 + 1) == s[s.size // 2]

    def test_empty_sequences_on_some_pes(self, machine8, rng):
        seqs = [np.sort(rng.integers(0, 100, 200))] + [np.empty(0)] * 7
        s = np.sort(seqs[0])
        assert ms_select(machine8, seqs, 100) == s[99]

    def test_duplicates(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 400, lo=0, hi=5)
        s = np.sort(np.concatenate(seqs))
        for k in (1, 1600, 3200):
            assert ms_select(machine8, seqs, k) == s[k - 1]

    def test_invalid_k(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 10)
        with pytest.raises(ValueError):
            ms_select(machine8, seqs, 0)
        with pytest.raises(ValueError):
            ms_select(machine8, seqs, 81)

    def test_wrong_seq_count(self, machine8, rng):
        with pytest.raises(ValueError, match="one sequence per PE"):
            ms_select(machine8, [np.arange(5)] * 3, 1)

    def test_stats_round_counting(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 1000)
        stats = ms_select(machine8, seqs, 4000, return_stats=True)
        assert stats.rounds >= 0
        assert stats.comm_rounds >= 1
        s = np.sort(np.concatenate(seqs))
        assert stats.value == s[3999]

    def test_restricts_to_first_k(self, machine8, rng):
        """k=1 must not look past the local heads (latency argument)."""
        seqs = sorted_chunks(machine8, rng, 2000)
        s = np.sort(np.concatenate(seqs))
        assert ms_select(machine8, seqs, 1) == s[0]

    def test_tuple_keys(self, machine8):
        seqs = [
            [(float(v), (i, j)) for j, v in enumerate(sorted(np.random.default_rng(i).integers(0, 100, 50)))]
            for i in range(8)
        ]

        class ListSeq:
            def __init__(self, xs):
                self.xs = xs

            def __len__(self):
                return len(self.xs)

            def item(self, i):
                return self.xs[i]

            def count_le(self, v):
                import bisect

                return bisect.bisect_right(self.xs, v)

        wrapped = [ListSeq(s) for s in seqs]
        allv = sorted(x for s in seqs for x in s)
        assert ms_select(machine8, wrapped, 100) == allv[99]


class TestMsSelectWithCuts:
    def test_cuts_sum_to_k(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 300)
        value, cuts = ms_select_with_cuts(machine8, seqs, 1000)
        assert sum(cuts) == 1000

    def test_cuts_select_global_prefix(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 300)
        s = np.sort(np.concatenate(seqs))
        value, cuts = ms_select_with_cuts(machine8, seqs, 500)
        got = np.sort(np.concatenate([seqs[i][: cuts[i]] for i in range(8)]))
        assert np.array_equal(got, s[:500])

    def test_cuts_with_heavy_ties(self, machine8):
        seqs = [np.zeros(100) for _ in range(8)]
        value, cuts = ms_select_with_cuts(machine8, seqs, 357)
        assert sum(cuts) == 357
        assert value == 0.0
