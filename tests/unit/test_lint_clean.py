"""Gate: the shipped tree stays repro-lint clean.

Mirrors the CI lint job (``python -m tools.repro_lint src/repro``) so a
violation fails the ordinary test run too, with the same diagnostics.
Suppressed findings are allowed -- they carry inline justifications --
but every *unsuppressed* finding fails here.
"""

from pathlib import Path

from tools.repro_lint import lint_paths, load_config

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_lint_clean():
    config = load_config(REPO / "pyproject.toml")
    findings = lint_paths([REPO / "src" / "repro"], config)
    bad = [f for f in findings if not f.suppressed]
    assert not bad, "unsuppressed repro-lint findings:\n" + "\n".join(
        f.render() for f in bad
    )


def test_suppressions_carry_reasons():
    """Every inline waiver in the tree must say why (the '-- reason'
    half of the suppression comment is not optional in src/)."""
    config = load_config(REPO / "pyproject.toml")
    findings = lint_paths([REPO / "src" / "repro"], config)
    missing = [
        f for f in findings if f.suppressed and not (f.suppress_reason or "").strip()
    ]
    assert not missing, "suppressions without a reason:\n" + "\n".join(
        f.render() for f in missing
    )


def test_tools_tree_parses_clean():
    """The linter lints itself (no SPMD kernels there, but RL000 syntax
    and the generic checks still apply)."""
    config = load_config(REPO / "pyproject.toml")
    findings = lint_paths([REPO / "tools"], config)
    bad = [f for f in findings if not f.suppressed]
    assert not bad, "\n".join(f.render() for f in bad)
