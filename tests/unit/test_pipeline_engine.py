"""Unit tests for the pipelined command engine's bounded resources.

Under overlapped issue (PRs before this one ran strictly
submit-then-wait) three driver/worker-side stores could in principle
grow with the number of in-flight or historical commands.  These tests
pin the bounds:

* the worker ``Comm`` stash (early frames of run-ahead peers) drains to
  empty once the engine quiesces -- stale keys of older seqs are
  evicted when a newer command starts;
* the driver ``_blob`` cache is LRU-bounded at ``_BLOB_CACHE``;
* the driver/worker shm pools recycle by consumer release flags gated
  on the ack frontier: :meth:`ShmPool.release_through` recycles a
  segment only once every block in it is flagged dead and nothing
  newer than the frontier has allocated in it.

Plus the engine mechanics themselves: futures resolve out of
completion order, ``pipeline_depth`` caps in-flight commands, direct
frames fence, and :class:`PendingValues` settles idempotently.
"""

import functools

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.backends import MultiprocessingBackend, make_backend
from repro.machine.backends.base import PendingValues
from repro.machine.backends.shm import ShmPool, new_token, pool_family


# ----------------------------------------------------------------------
# Module-level worker callbacks (picklable)
# ----------------------------------------------------------------------

def _make_vals(rank: int, base):
    return (np.arange(4, dtype=np.float64) + base * (rank + 1), None)


def _bump(rank: int, vals, inc):
    vals += inc
    return float(vals.sum())


def _noop(rank: int, tag):
    return tag


# ----------------------------------------------------------------------
# PendingValues
# ----------------------------------------------------------------------

class TestPendingValues:
    def test_thunk_runs_once(self):
        calls = []

        def settle():
            calls.append(1)
            return [1, 2, 3]

        pending = PendingValues(settle)
        assert not pending.done
        assert pending.wait() == [1, 2, 3]
        assert pending.done
        assert pending.wait() == [1, 2, 3]
        assert calls == [1]

    def test_resolved_is_immediate(self):
        pending = PendingValues.resolved(("a", "b"))
        assert pending.done
        assert pending.wait() == ("a", "b")


# ----------------------------------------------------------------------
# ShmPool ack-frontier recycling
# ----------------------------------------------------------------------

class TestShmPoolAckRecycling:
    def _pool(self):
        pool = ShmPool(pool_family(new_token()), "d", threshold=16)
        if not pool.enabled:  # pragma: no cover - shm-less platform
            pytest.skip("shared memory unavailable")
        return pool

    def _consume(self, pool, desc, nbytes):
        """Play the receiver: decode the block zero-copy and drop the
        last view, which writes the release flag."""
        name, off, foff = desc
        block = pool.materialize(name, off, nbytes, foff)
        del block

    def test_release_through_gates_on_flags_and_frontier(self):
        pool = self._pool()
        try:
            pool.begin_round(5)
            desc = pool.share(memoryview(b"x" * 64))
            assert desc is not None and desc[1] == desc[2] + 64
            seg = pool._segments[0]
            assert seg.used == 128 and seg.high_round == 5
            pool.release_through(5)  # consumer still holds it: no recycle
            assert seg.used == 128 and seg.pending
            self._consume(pool, desc, 64)  # last view dies -> flag set
            pool.release_through(4)  # frontier behind round 5: no recycle
            assert seg.used == 128
            pool.release_through(5)  # flags and frontier agree: recycle
            assert seg.used == 0 and seg.high_round == 0
        finally:
            pool.close()

    def test_one_outstanding_round_defers_the_segment_recycle(self):
        pool = self._pool()
        try:
            pool.begin_round(3)
            a = pool.share(memoryview(b"a" * 32))
            pool.begin_round(7)
            b = pool.share(memoryview(b"b" * 32))
            self._consume(pool, a, 32)
            self._consume(pool, b, 32)
            pool.release_through(3)  # round 7 shares the segment: stays
            assert pool._segments[0].used > 0
            pool.release_through(7)
            assert pool._segments[0].used == 0
        finally:
            pool.close()

    def test_release_through_without_allocations_is_safe(self):
        pool = self._pool()
        try:
            pool.release_through(0)
            pool.release_through(10)
            assert pool._segments == []
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Driver blob cache bound
# ----------------------------------------------------------------------

class TestBlobCacheBound:
    def test_lru_bound_holds_under_distinct_callbacks(self):
        backend = MultiprocessingBackend(2)
        try:
            for i in range(backend._BLOB_CACHE + 50):
                backend._blob(functools.partial(_noop, tag=i))
            assert len(backend._fn_blobs) <= backend._BLOB_CACHE
        finally:
            backend.close()

    def test_hot_entry_survives_eviction_pressure(self):
        backend = MultiprocessingBackend(2)
        try:
            hot = functools.partial(_noop, tag="hot")
            blob = backend._blob(hot)
            for i in range(backend._BLOB_CACHE - 1):
                backend._blob(functools.partial(_noop, tag=i))
                backend._blob(hot)  # LRU touch keeps it resident
            assert backend._blob(hot) is blob
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Engine mechanics on a live mp pool
# ----------------------------------------------------------------------

class TestPipelinedEngine:
    def test_depth_caps_inflight_and_results_demux(self):
        with Machine(p=2, backend="mp", pipeline_depth=3) as m:
            backend = m.backend
            refs, pending0 = backend.submit_map_resident(
                _make_vals, [], n_out=1, args=[(10,)] * 2
            )
            ref = refs[0]
            pendings = [
                backend.submit_map_resident(
                    _bump, [ref], n_out=0, args=[(i + 1,)] * 2
                )[1]
                for i in range(6)
            ]
            assert len(backend._inflight) <= backend.pipeline_depth
            assert backend.max_inflight <= backend.pipeline_depth
            pending0.wait()
            # per-rank expected sums after each in-place bump, in seq
            # order: base sums 10+{0..3}=46 / 20+{0..3}=86, +4*inc each
            expect = [46.0, 86.0]
            for i, pending in enumerate(pendings):
                expect = [e + 4 * (i + 1) for e in expect]
                values, _ = pending.wait()
                assert values == expect
            assert backend.max_inflight > 1
            assert backend._inflight == {}

    def test_depth_one_serializes(self):
        with Machine(p=2, backend="mp", pipeline_depth=1) as m:
            backend = m.backend
            refs, _ = backend.submit_map_resident(
                _make_vals, [], n_out=1, args=[(1,)] * 2
            )
            for i in range(3):
                backend.submit_map_resident(
                    _bump, [refs[0]], n_out=0, args=[(1,)] * 2
                )
            assert backend.max_inflight == 1

    def test_get_chunks_waits_on_inflight_mutator(self):
        with Machine(p=2, backend="mp") as m:
            backend = m.backend
            refs, _ = backend.submit_map_resident(
                _make_vals, [], n_out=1, args=[(10,)] * 2
            )
            for i in range(4):
                backend.submit_map_resident(
                    _bump, [refs[0]], n_out=0, args=[(2,)] * 2
                )
            # read through the sanctioned path without waiting the
            # pendings: the dependency tracker must settle the mutators
            chunks = backend.get_chunks(refs[0])
            np.testing.assert_array_equal(
                chunks[0], np.arange(4, dtype=np.float64) + 10 + 8
            )
            np.testing.assert_array_equal(
                chunks[1], np.arange(4, dtype=np.float64) + 20 + 8
            )

    def test_direct_frames_fence_the_pipe(self):
        with Machine(p=2, backend="mp") as m:
            backend = m.backend
            refs, _ = backend.submit_map_resident(
                _make_vals, [], n_out=1, args=[(1,)] * 2
            )
            backend.submit_map_resident(
                _bump, [refs[0]], n_out=0, args=[(1,)] * 2
            )
            assert backend._inflight
            backend.put_chunks([np.zeros(2), np.ones(2)])  # direct path
            assert backend._inflight == {}

    def test_stash_and_trackers_empty_after_quiesce(self):
        with Machine(p=3, backend="mp") as m:
            backend = m.backend
            refs, _ = backend.submit_map_resident(
                _make_vals, [], n_out=1, args=[(5,)] * 3
            )
            for i in range(5):
                backend.submit_map_resident(
                    _bump, [refs[0]], n_out=0, args=[(1,)] * 3
                )
            stats = backend._run(("stats",), [None] * 3)
            assert [s["stash"] for s in stats] == [0, 0, 0]
            # the stats round trip itself fenced nothing -- but by the
            # ordered-completion lemma its results imply all earlier
            # seqs resolved, so the trackers must be empty now
            assert backend._inflight == {}
            assert backend._ref_seq == {}
            assert backend._done_seqs == set()

    def test_ack_frontier_tracks_seq(self):
        with Machine(p=2, backend="mp") as m:
            backend = m.backend
            backend.allreduce([1, 2], op="sum")
            assert backend._acked == backend._seq

    def test_make_backend_threads_pipeline_depth(self):
        backend = make_backend("mp", 2, pipeline_depth=4)
        try:
            assert backend.pipeline_depth == 4
        finally:
            backend.close()
        sim = make_backend("sim", 2, pipeline_depth=4)  # knob ignored
        assert not sim.is_real

    def test_machine_knob_reaches_backend(self):
        with Machine(p=2, backend="mp", pipeline_depth=2) as m:
            assert m.backend.pipeline_depth == 2
