"""Unit tests: random-allocation PQ baseline (repro.pqueue.karp_zhang)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.pqueue import BulkParallelPQ, RandomAllocPQ


@pytest.fixture
def rng():
    return np.random.default_rng(37)


class TestRandomAllocPQ:
    def test_insert_and_delete_correct(self, machine, rng):
        pq = RandomAllocPQ(machine)
        batches = [list(rng.random(50)) for _ in range(machine.p)]
        pq.insert(batches)
        allv = sorted(v for b in batches for v in b)
        assert pq.total_size() == len(allv)
        got = sorted(s for b in pq.delete_min(20) for s, _ in b)
        assert got == pytest.approx(allv[:20])

    def test_insert_pays_communication(self, rng):
        """The defining contrast to Section 5's queue: insertions move
        elements to random PEs."""
        m_kz = Machine(p=8, seed=1)
        kz = RandomAllocPQ(m_kz)
        m_kz.reset()
        kz.insert([list(rng.random(50)) for _ in range(8)])
        m_bulk = Machine(p=8, seed=1)
        bulk = BulkParallelPQ(m_bulk)
        m_bulk.reset()
        bulk.insert([list(rng.random(50)) for _ in range(8)])
        assert m_kz.metrics.total_traffic > 0
        assert m_bulk.metrics.total_traffic == 0

    def test_placement_is_balanced(self, rng):
        m = Machine(p=8, seed=2)
        pq = RandomAllocPQ(m)
        pq.insert([list(rng.random(400)) for _ in range(8)])
        sizes = [len(h) for h in pq.heaps]
        assert max(sizes) < 2 * min(sizes) + 50

    def test_invalid_k(self, machine8, rng):
        pq = RandomAllocPQ(machine8)
        pq.insert([[1.0]] * 8)
        with pytest.raises(ValueError):
            pq.delete_min(9)

    def test_wrong_arity(self, machine8):
        with pytest.raises(ValueError):
            RandomAllocPQ(machine8).insert([[1.0]] * 2)

    def test_empty_batches_ok(self, machine8):
        pq = RandomAllocPQ(machine8)
        pq.insert([[] for _ in range(8)])
        assert pq.total_size() == 0
