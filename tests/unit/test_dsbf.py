"""Unit tests: dSBF fingerprint counting (repro.frequent.dsbf)."""

import numpy as np
import pytest

from repro.common import zipf_sample
from repro.frequent import (
    dsbf_top_candidates,
    exact_counts_oracle,
    pac_error,
    top_k_frequent_ec,
    top_k_frequent_ec_dsbf,
)
from repro.machine import DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(103)


def zipf_data(machine, n_per_pe=20_000, universe=2048):
    return DistArray.generate(
        machine, lambda r, g: zipf_sample(g, n_per_pe, universe=universe, s=1.0)
    )


class TestCandidates:
    def test_matches_direct_counting(self, machine8, rng):
        samples = [rng.integers(0, 200, 2000) for _ in range(8)]
        cands, stats = dsbf_top_candidates(machine8, samples, 16)
        # oracle: most frequent sampled keys
        allv, allc = np.unique(np.concatenate(samples), return_counts=True)
        oracle = sorted(zip(allv.tolist(), allc.tolist()), key=lambda t: (-t[1], t[0]))
        assert [key for key, _ in cands] == [key for key, _ in oracle[:16]]
        # sample counts must be exact despite the fingerprint indirection
        cmap = dict(oracle)
        for key, c in cands:
            assert c == cmap[key]

    def test_k_star_larger_than_distinct(self, machine8, rng):
        samples = [rng.integers(0, 30, 500) for _ in range(8)]
        cands, stats = dsbf_top_candidates(machine8, samples, 1000)
        assert len(cands) <= 30
        assert not stats.flat_suspected

    def test_invalid_k_star(self, machine8):
        with pytest.raises(ValueError):
            dsbf_top_candidates(machine8, [np.arange(5)] * 8, 0)

    def test_collision_margin_grows(self, machine8, rng):
        """With a tiny initial margin the retry loop must still converge
        to a correct candidate set (count-equivalent to the oracle: at
        the boundary count, any tie member is a valid candidate)."""
        samples = [rng.integers(0, 400, 3000) for _ in range(8)]
        cands, stats = dsbf_top_candidates(machine8, samples, 32, kappa0=1)
        allv, allc = np.unique(np.concatenate(samples), return_counts=True)
        oracle = sorted(zip(allv.tolist(), allc.tolist()), key=lambda t: (-t[1], t[0]))
        cmap = dict(zip(allv.tolist(), allc.tolist()))
        # counts sequence identical to the oracle's
        assert [c for _, c in cands] == [c for _, c in oracle[:32]]
        # every reported count is the key's true sample count
        assert all(cmap[key] == c for key, c in cands)
        # keys strictly above the boundary count must all be present
        boundary = oracle[31][1]
        must_have = {key for key, c in oracle if c > boundary}
        assert must_have <= {key for key, _ in cands}


class TestEcDsbf:
    def test_same_guarantees_as_ec(self, machine8):
        data = zipf_data(machine8)
        true = exact_counts_oracle(data)
        eps = 5e-3
        res = top_k_frequent_ec_dsbf(machine8, data, 16, eps=eps, delta=1e-3)
        assert res.exact_counts
        for key, c in res.items:
            assert c == true[key]
        assert pac_error(res.keys, true, 16) <= eps * data.global_size

    def test_reduced_insertion_volume(self):
        """The point of dSBF: the DHT insertion phase ships fewer words
        than the key-based exchange at equal sampling rate."""
        kwargs = dict(eps=5e-3, delta=1e-3, k_star=64, rho=0.05)
        m1 = Machine(p=16, seed=11)
        d1 = zipf_data(m1, 10_000, universe=1 << 14)
        m1.reset()
        top_k_frequent_ec(m1, d1, 16, **kwargs)
        vol_keys = m1.metrics.by_kind.get("dht_exchange", 0)
        m2 = Machine(p=16, seed=11)
        d2 = zipf_data(m2, 10_000, universe=1 << 14)
        m2.reset()
        top_k_frequent_ec_dsbf(m2, d2, 16, **kwargs)
        vol_fp = m2.metrics.by_kind.get("dht_exchange", 0)
        # fingerprints collide and merge: strictly no more DHT volume
        assert vol_fp <= vol_keys

    def test_empty_input(self, machine8):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        assert top_k_frequent_ec_dsbf(machine8, data, 4).items == ()

    def test_stats_reported(self, machine8):
        data = zipf_data(machine8, 5000)
        res = top_k_frequent_ec_dsbf(machine8, data, 8, eps=1e-2, delta=1e-3, k_star=32)
        assert "dsbf_rounds" in res.info
        assert res.info["dsbf_rounds"] >= 1
