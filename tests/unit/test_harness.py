"""Unit tests: benchmark harness (repro.bench.harness)."""

import numpy as np
import pytest

from repro.bench import (
    BenchRow,
    format_table,
    run_algorithm,
    weak_scaling,
    write_csv,
)
from repro.machine import DistArray


class TestRunAlgorithm:
    def test_excludes_generation_cost(self):
        def make(machine):
            machine.charge_ops(10**9)  # expensive generation
            return DistArray(machine, [np.arange(10)] * machine.p)

        row = run_algorithm("exp", "algo", 4, 10, make, lambda m, d: None)
        assert row.time_s == 0.0

    def test_extra_columns(self):
        row = run_algorithm(
            "exp", "a", 2, 5,
            lambda m: None,
            lambda m, d: {"custom": 42},
        )
        assert row.extra["custom"] == 42
        assert row.as_dict()["custom"] == 42

    def test_measures_modeled_time(self):
        def run(machine, _):
            machine.allreduce([1] * machine.p)

        row = run_algorithm("exp", "a", 8, 1, lambda m: None, run)
        assert row.time_s > 0
        assert row.startups > 0


class TestWeakScaling:
    def test_row_grid(self):
        rows = weak_scaling(
            "exp",
            {"x": lambda m, d: None, "y": lambda m, d: None},
            (1, 2, 4),
            10,
            lambda m: None,
        )
        assert len(rows) == 6
        assert {r.p for r in rows} == {1, 2, 4}
        assert {r.algorithm for r in rows} == {"x", "y"}


class TestFormatting:
    def _rows(self):
        return weak_scaling(
            "exp", {"a": lambda m, d: m.allreduce([1] * m.p) and None},
            (2, 4), 10, lambda m: None,
        )

    def test_format_table_contains_columns(self):
        txt = format_table(self._rows())
        assert "algorithm" in txt and "time_s" in txt

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv(self._rows(), path)
        content = path.read_text().splitlines()
        assert content[0].startswith("experiment,")
        assert len(content) == 3
