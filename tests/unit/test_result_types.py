"""Unit tests: result containers and report dataclasses."""

import pytest

from repro.aggregation import SumAggResult
from repro.frequent import FrequentResult
from repro.machine import Machine, MachineReport
from repro.pqueue import DeleteMinResult
from repro.selection import AmsResult, SelectionStats


class TestFrequentResult:
    def _res(self):
        return FrequentResult(
            items=((5, 100.0), (9, 80.0)),
            exact_counts=True,
            rho=0.5,
            sample_size=200,
            k_star=4,
        )

    def test_keys_property(self):
        assert self._res().keys == (5, 9)

    def test_count_of_present(self):
        assert self._res().count_of(9) == 80.0

    def test_count_of_absent(self):
        assert self._res().count_of(42) is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self._res().rho = 0.9

    def test_info_defaults_empty(self):
        assert self._res().info == {}


class TestSumAggResult:
    def test_keys(self):
        r = SumAggResult(
            items=((3, 10.0),), exact_sums=True, v_avg=1.0, sample_size=5, k_star=1
        )
        assert r.keys == (3,)


class TestSelectionResults:
    def test_selection_stats_fields(self):
        s = SelectionStats(value=7.0, rounds=3, sample_total=40, base_case_size=16)
        assert s.value == 7.0 and s.rounds == 3

    def test_ams_result_defaults(self):
        r = AmsResult(value=1.0, k=5, cuts=(2, 3), rounds=1)
        assert not r.exact_fallback


class TestDeleteMinResult:
    def test_fields(self):
        r = DeleteMinResult(batches=((1.0,),), k=1, threshold=1.0, rounds=2)
        assert r.k == 1 and r.rounds == 2


class TestMachineReport:
    def test_row_round_trip(self):
        m = Machine(p=4, seed=1)
        m.allreduce([1, 2, 3, 4])
        rep = m.report()
        row = rep.row()
        assert row["p"] == 4
        assert row["time_s"] == rep.makespan
        assert row["volume_words"] == rep.bottleneck_words

    def test_phases_tuple(self):
        m = Machine(p=2, seed=2)
        with m.phase("x"):
            m.barrier()
        rep = m.report()
        assert isinstance(rep.phases, tuple)
        assert rep.phases[0].name == "x"
