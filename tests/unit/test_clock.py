"""Unit tests: simulated per-PE clocks (repro.machine.clock)."""

import numpy as np
import pytest

from repro.machine.clock import SimClock


class TestLocalCharging:
    def test_scalar_applies_to_all(self):
        c = SimClock(4)
        c.charge_local(1.5)
        assert np.allclose(c.t, 1.5)

    def test_vector_applies_per_pe(self):
        c = SimClock(3)
        c.charge_local([1.0, 2.0, 3.0])
        assert c.makespan == pytest.approx(3.0)

    def test_negative_duration_rejected(self):
        c = SimClock(2)
        with pytest.raises(ValueError):
            c.charge_local(-1.0)

    def test_single_pe_charge(self):
        c = SimClock(4)
        c.charge_local_one(2, 5.0)
        assert c.t[2] == pytest.approx(5.0)
        assert c.t[0] == 0.0


class TestCollectiveSync:
    def test_all_pes_end_at_max_plus_cost(self):
        c = SimClock(3)
        c.charge_local([1.0, 5.0, 2.0])
        end = c.sync_collective(0.5)
        assert end == pytest.approx(5.5)
        assert np.allclose(c.t, 5.5)

    def test_waiting_counts_as_comm_time(self):
        c = SimClock(2)
        c.charge_local([0.0, 10.0])
        c.sync_collective(1.0)
        assert c.comm_time[0] == pytest.approx(11.0)
        assert c.comm_time[1] == pytest.approx(1.0)

    def test_subset_sync_leaves_others_untouched(self):
        c = SimClock(4)
        c.charge_local([1.0, 2.0, 3.0, 4.0])
        c.sync_collective(1.0, ranks=[0, 1])
        assert c.t[0] == c.t[1] == pytest.approx(3.0)
        assert c.t[3] == pytest.approx(4.0)


class TestP2P:
    def test_both_endpoints_meet(self):
        c = SimClock(3)
        c.charge_local([1.0, 4.0, 0.0])
        end = c.charge_p2p(0, 1, 2.0)
        assert end == pytest.approx(6.0)
        assert c.t[0] == c.t[1] == pytest.approx(6.0)
        assert c.t[2] == 0.0


class TestDerivedStats:
    def test_imbalance_balanced(self):
        c = SimClock(4)
        c.charge_local(2.0)
        assert c.imbalance == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        c = SimClock(2)
        c.charge_local([0.0, 4.0])
        assert c.imbalance == pytest.approx(2.0)

    def test_imbalance_of_idle_machine_is_one(self):
        assert SimClock(4).imbalance == 1.0

    def test_reset(self):
        c = SimClock(2)
        c.charge_local(3.0)
        c.reset()
        assert c.makespan == 0.0
