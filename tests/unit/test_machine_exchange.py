"""Unit tests: personalized exchanges (alltoall, aggregate_exchange,
reduce_tree, point-to-point send)."""

import numpy as np
import pytest

from repro.machine import Machine


class TestAlltoall:
    def test_transpose_semantics(self, machine):
        p = machine.p
        matrix = [[i * p + j for j in range(p)] for i in range(p)]
        out = machine.alltoall(matrix)
        for i in range(p):
            for j in range(p):
                assert out[j][i] == matrix[i][j]

    def test_none_payloads_are_free(self, machine8):
        matrix = [[None] * 8 for _ in range(8)]
        machine8.alltoall(matrix)
        assert machine8.metrics.total_traffic == 0

    def test_hypercube_mode_charges_more_volume(self):
        p = 8
        matrix = [[np.zeros(10) for _ in range(p)] for _ in range(p)]
        m_dir = Machine(p=p, seed=1)
        m_dir.alltoall(matrix, mode="direct")
        m_hc = Machine(p=p, seed=1)
        m_hc.alltoall(matrix, mode="hypercube")
        assert m_hc.metrics.total_traffic > m_dir.metrics.total_traffic
        assert m_hc.metrics.bottleneck_startups < m_dir.metrics.bottleneck_startups

    def test_bad_row_length(self, machine8):
        with pytest.raises(ValueError, match="length"):
            machine8.alltoall([[None] * 3 for _ in range(8)])

    def test_unknown_mode(self, machine8):
        with pytest.raises(ValueError):
            machine8.alltoall([[None] * 8 for _ in range(8)], mode="warp")


class TestAggregateExchange:
    def _total(self, dicts):
        out = {}
        for d in dicts:
            for key, v in d.items():
                out[key] = out.get(key, 0) + v
        return out

    def test_counts_conserved(self, machine):
        p = machine.p
        dicts = [{j: i + j for j in range(10)} for i in range(p)]
        owner = lambda key: key % p
        routed = machine.aggregate_exchange(dicts, owner)
        assert self._total(routed) == self._total(dicts)

    def test_keys_land_at_owner(self, machine):
        p = machine.p
        dicts = [{j: 1 for j in range(16)} for _ in range(p)]
        owner = lambda key: (key * 7) % p
        routed = machine.aggregate_exchange(dicts, owner)
        for pe, d in enumerate(routed):
            for key in d:
                assert owner(key) == pe

    def test_odd_p_fallback(self, odd_machine):
        p = odd_machine.p
        dicts = [{j: 1 for j in range(8)} for _ in range(p)]
        routed = odd_machine.aggregate_exchange(dicts, lambda key: key % p)
        assert self._total(routed) == {j: p for j in range(8)}

    def test_custom_combiner(self, machine8):
        dicts = [{0: i} for i in range(8)]
        routed = machine8.aggregate_exchange(dicts, lambda key: 0, combine_values=max)
        assert routed[0][0] == 7

    def test_out_of_range_owner_rejected(self, machine8):
        with pytest.raises(ValueError, match="out of range"):
            machine8.aggregate_exchange([{1: 1}] + [{}] * 7, lambda key: 99)

    def test_single_pe_shortcut(self):
        m = Machine(p=1, seed=0)
        out = m.aggregate_exchange([{1: 2, 3: 4}], lambda key: 0)
        assert out == [{1: 2, 3: 4}]
        assert m.metrics.total_traffic == 0

    def test_merging_bounds_volume(self):
        """With heavy key collision, on-the-way aggregation keeps the
        per-PE received volume near the distinct-key count, far below
        the raw pair count."""
        p = 16
        m = Machine(p=p, seed=3)
        dicts = [{j: 1 for j in range(32)} for _ in range(p)]  # all PEs same keys
        m.aggregate_exchange(dicts, lambda key: key % p)
        raw_pairs = p * 32 * 2
        assert m.metrics.bottleneck_words < raw_pairs / 2


class TestReduceTree:
    def test_merge_dicts(self, machine):
        p = machine.p
        dicts = [{i: 1, "x": 1} for i in range(p)]
        merged = machine.reduce_tree(
            dicts, lambda a, b: {k: a.get(k, 0) + b.get(k, 0) for k in set(a) | set(b)}
        )[0]
        assert merged["x"] == p

    def test_nonroot_gets_none(self, machine8):
        out = machine8.reduce_tree([{1: 1}] * 8, lambda a, b: a)
        assert out[0] is not None
        assert all(x is None for x in out[1:])

    def test_logarithmic_startups_at_root(self):
        m = Machine(p=16, seed=0)
        m.reduce_tree([{i: 1} for i in range(16)], lambda a, b: {**a, **b})
        assert m.metrics.msgs_recv[0] <= 4  # log2(16)


class TestSend:
    def test_payload_returned(self, machine8):
        out = machine8.send(1, 2, np.arange(5))
        assert list(out) == [0, 1, 2, 3, 4]

    def test_metrics_and_clock_charged(self, machine8):
        machine8.send(0, 7, np.zeros(100))
        assert machine8.metrics.words_sent[0] == 100
        assert machine8.clock.t[7] > 0

    def test_self_send_free(self, machine8):
        machine8.send(3, 3, np.zeros(100))
        assert machine8.metrics.total_traffic == 0

    def test_rank_bounds(self, machine8):
        with pytest.raises(ValueError):
            machine8.send(0, 8, 1)


class TestPhasesAndReport:
    def test_phase_attribution(self, machine8):
        with machine8.phase("a"):
            machine8.allreduce([1] * 8)
        with machine8.phase("b"):
            pass
        rep = machine8.report()
        names = [ph.name for ph in rep.phases]
        assert names == ["a", "b"]
        assert rep.phases[0].total_traffic > rep.phases[1].total_traffic

    def test_report_row_keys(self, machine8):
        row = machine8.report().row()
        for key in ("p", "time_s", "volume_words", "startups"):
            assert key in row

    def test_reset_clears_everything(self, machine8):
        machine8.allreduce([1] * 8)
        machine8.reset()
        rep = machine8.report()
        assert rep.makespan == 0.0
        assert rep.bottleneck_words == 0.0
        assert rep.phases == ()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Machine(p=0)

    def test_determinism_same_seed(self):
        a = Machine(p=4, seed=7)
        b = Machine(p=4, seed=7)
        assert a.rngs[2].random() == b.rngs[2].random()
        assert a.shared_rng.random() == b.shared_rng.random()
