"""Unit tests: distributed multiselection and quantiles."""

import numpy as np
import pytest

from repro.machine import DistArray, Machine
from repro.selection import multi_select, quantiles
from repro.testing import make_dist, sorted_oracle


@pytest.fixture
def rng():
    return np.random.default_rng(101)


class TestMultiSelect:
    def test_matches_oracle_many_ranks(self, machine8, rng):
        data = make_dist(machine8, rng, 2000)
        s = sorted_oracle(data)
        ks = [1, 7, 500, 8000, 15999, 16000]
        vals = multi_select(machine8, data, ks)
        for k, v in zip(sorted(set(ks)), vals):
            assert v == s[k - 1]

    def test_single_rank_matches_select_kth(self, machine8, rng):
        from repro.selection import select_kth

        data = make_dist(machine8, rng, 1000)
        assert multi_select(machine8, data, [4000])[0] == select_kth(
            machine8, data, 4000
        )

    def test_duplicate_ranks_deduplicated(self, machine8, rng):
        data = make_dist(machine8, rng, 500)
        vals = multi_select(machine8, data, [100, 100, 100])
        assert len(vals) == 1

    def test_duplicate_heavy_values(self, machine8, rng):
        data = make_dist(machine8, rng, 1000, lo=0, hi=5)
        s = sorted_oracle(data)
        ks = [1, 2000, 4000, 8000]
        vals = multi_select(machine8, data, ks)
        for k, v in zip(ks, vals):
            assert v == s[k - 1]

    def test_empty_ranks(self, machine8, rng):
        data = make_dist(machine8, rng, 10)
        assert multi_select(machine8, data, []) == []

    def test_rank_out_of_range(self, machine8, rng):
        data = make_dist(machine8, rng, 10)
        with pytest.raises(ValueError):
            multi_select(machine8, data, [0])
        with pytest.raises(ValueError):
            multi_select(machine8, data, [81])

    def test_skewed_placement(self, machine8, rng):
        chunks = [rng.integers(0, 10**6, 5000)] + [np.empty(0, dtype=np.int64)] * 7
        data = DistArray(machine8, chunks)
        s = sorted_oracle(data)
        vals = multi_select(machine8, data, [1, 2500, 5000])
        assert vals == [s[0], s[2499], s[4999]]

    def test_shared_recursion_cheaper_than_independent(self, rng):
        """m shared ranks must beat m independent selections on local
        work: every element is partitioned once per shared level instead
        of once per rank (traffic is comparable since the deep segments
        dominate either way)."""
        from repro.selection import select_kth

        ks = [1000, 2000, 4000, 8000, 12000]
        m1 = Machine(p=8, seed=9)
        data1 = make_dist(m1, np.random.default_rng(5), 2000)
        m1.reset()
        multi_select(m1, data1, ks)
        shared = m1.clock.work_time.max()
        m2 = Machine(p=8, seed=9)
        data2 = make_dist(m2, np.random.default_rng(5), 2000)
        m2.reset()
        for k in ks:
            select_kth(m2, data2, k)
        independent = m2.clock.work_time.max()
        assert shared < independent


class TestQuantiles:
    def test_median(self, machine8, rng):
        data = make_dist(machine8, rng, 1000)
        s = sorted_oracle(data)
        med = quantiles(machine8, data, [0.5])[0]
        assert med == s[int(np.ceil(0.5 * 8000)) - 1]

    def test_order_preserved(self, machine8, rng):
        data = make_dist(machine8, rng, 500)
        out = quantiles(machine8, data, [0.9, 0.1])
        assert out[0] >= out[1]

    def test_extremes(self, machine8, rng):
        data = make_dist(machine8, rng, 300)
        s = sorted_oracle(data)
        lo, hi = quantiles(machine8, data, [0.0, 1.0])
        assert lo == s[0] and hi == s[-1]

    def test_invalid_q(self, machine8, rng):
        data = make_dist(machine8, rng, 10)
        with pytest.raises(ValueError):
            quantiles(machine8, data, [1.5])

    def test_empty_data(self, machine8):
        data = DistArray(machine8, [np.empty(0)] * 8)
        with pytest.raises(ValueError):
            quantiles(machine8, data, [0.5])
