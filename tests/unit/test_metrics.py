"""Unit tests: per-PE communication metering (repro.machine.metrics)."""

import numpy as np
import pytest

from repro.machine.metrics import CommMetrics, payload_words


class TestPayloadWords:
    def test_scalars_cost_one_word(self):
        assert payload_words(5) == 1
        assert payload_words(3.14) == 1
        assert payload_words(np.int64(7)) == 1
        assert payload_words(True) == 1

    def test_none_is_free(self):
        assert payload_words(None) == 0

    def test_array_costs_size(self):
        assert payload_words(np.zeros(17)) == 17
        assert payload_words(np.zeros((0,))) == 0

    def test_dict_costs_two_per_entry(self):
        assert payload_words({1: 2, 3: 4, 5: 6}) == 6

    def test_nested_list(self):
        assert payload_words([1, 2.0, np.arange(3)]) == 5

    def test_string_costs_words(self):
        assert payload_words("ab") == 1
        assert payload_words("x" * 17) == 3

    def test_custom_comm_words_protocol(self):
        class Thing:
            def comm_words(self):
                return 42

        assert payload_words(Thing()) == 42

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_words(object())


class TestCommMetrics:
    def test_requires_at_least_one_pe(self):
        with pytest.raises(ValueError):
            CommMetrics(0)

    def test_p2p_recording(self):
        m = CommMetrics(4)
        m.record_p2p(0, 3, 10)
        assert m.words_sent[0] == 10
        assert m.words_recv[3] == 10
        assert m.msgs_sent[0] == 1
        assert m.bottleneck_words == 10

    def test_self_message_not_counted(self):
        m = CommMetrics(4)
        m.record_p2p(2, 2, 100)
        assert m.total_traffic == 0

    def test_bottleneck_is_max_of_sent_and_recv(self):
        m = CommMetrics(3)
        m.record_p2p(0, 1, 5)
        m.record_p2p(2, 1, 7)
        assert m.bottleneck_words == 12  # PE 1 receives 12

    def test_schedule_recording_tracks_kind(self):
        m = CommMetrics(4)
        m.record_schedule([(0, 1, 4.0), (2, 3, 6.0)], kind="mykind")
        assert m.by_kind["mykind"] == 10.0
        assert m.calls["mykind"] == 1

    def test_snapshot_diff(self):
        m = CommMetrics(2)
        m.record_p2p(0, 1, 5)
        snap = m.snapshot()
        m.record_p2p(0, 1, 7)
        diff = m.snapshot() - snap
        assert diff.bottleneck_words == 7

    def test_reset(self):
        m = CommMetrics(2)
        m.record_p2p(0, 1, 5)
        m.reset()
        assert m.total_traffic == 0
        assert m.by_kind == {}

    def test_describe_mentions_kinds(self):
        m = CommMetrics(2)
        m.record_p2p(0, 1, 5, kind="zz_test")
        assert "zz_test" in m.describe()

    def test_bottleneck_startups(self):
        m = CommMetrics(3)
        for _ in range(4):
            m.record_p2p(0, 1, 1)
        assert m.bottleneck_startups == 4
