"""Unit tests: the pluggable execution-backend layer.

The contract under test: for every collective, the real
``multiprocessing`` backend produces bit-identical results to the
simulated backend (same combination orders), while the control plane
(modeled cost, metering) charges identically on both.
"""

import numpy as np
import pytest

from repro.machine import (
    Machine,
    MultiprocessingBackend,
    SimBackend,
    available_backends,
    make_backend,
)

PS = [1, 2, 4]


def _pair(p, seed=42):
    """A (sim, mp) machine pair with identical seeds."""
    sim = Machine(p=p, seed=seed)
    real = Machine(p=p, seed=seed, backend="mp")
    return sim, real


def _assert_same(a, b):
    """Deep equality across the payload types the machine ships."""
    assert type(a) is type(b) or (a is None) == (b is None)
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_same(x, y)
    elif isinstance(a, dict):
        assert list(a.keys()) == list(b.keys())
        for k in a:
            _assert_same(a[k], b[k])
    else:
        assert a == b


class TestRegistry:
    def test_available(self):
        assert {"sim", "mp"} <= set(available_backends())

    def test_default_is_sim(self):
        m = Machine(p=2)
        assert isinstance(m.backend, SimBackend)
        assert m.backend.name == "sim"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Machine(p=2, backend="smoke-signals")

    def test_instance_accepted(self):
        be = SimBackend(3)
        assert Machine(p=3, backend=be).backend is be

    def test_instance_p_mismatch_rejected(self):
        with pytest.raises(ValueError, match="built for p=2"):
            Machine(p=4, backend=SimBackend(2))

    def test_make_backend_none_is_sim(self):
        assert isinstance(make_backend(None, 2), SimBackend)


@pytest.mark.parametrize("p", PS)
class TestCollectiveParity:
    """Every collective: mp result == sim result, bit for bit."""

    def test_allreduce_ops(self, p):
        sim, real = _pair(p)
        vals = [np.array([i + 1, 2 * i], dtype=np.int64) for i in range(p)]
        with real:
            for op in ("sum", "min", "max"):
                _assert_same(sim.allreduce(vals, op=op), real.allreduce(vals, op=op))

    def test_allreduce_float_rounding_matches(self, p):
        sim, real = _pair(p)
        vals = [0.1 * (i + 1) for i in range(p)]
        with real:
            _assert_same(sim.allreduce(vals, op="sum"), real.allreduce(vals, op="sum"))

    def test_reduce(self, p):
        sim, real = _pair(p)
        vals = [float(i) for i in range(p)]
        with real:
            _assert_same(sim.reduce(vals, root=p - 1), real.reduce(vals, root=p - 1))

    def test_broadcast(self, p):
        sim, real = _pair(p)
        payload = np.arange(5)
        with real:
            _assert_same(sim.broadcast(payload, root=0), real.broadcast(payload, root=0))

    def test_scan_exscan(self, p):
        sim, real = _pair(p)
        vals = [i + 1 for i in range(p)]
        with real:
            _assert_same(sim.scan(vals), real.scan(vals))
            _assert_same(sim.exscan(vals), real.exscan(vals))

    def test_allreduce_exscan_fused(self, p):
        sim, real = _pair(p)
        vals = [np.array([i, 2 * i], dtype=np.int64) for i in range(p)]
        init = np.zeros(2, dtype=np.int64)
        with real:
            st, sp = sim.allreduce_exscan(vals, initial=init)
            rt, rp = real.allreduce_exscan(vals, initial=init)
        _assert_same(st, rt)
        _assert_same(sp, rp)

    def test_gather_and_allgather(self, p):
        sim, real = _pair(p)
        vals = [np.full(i + 1, i) for i in range(p)]
        with real:
            _assert_same(sim.gather(vals, root=0), real.gather(vals, root=0))
            _assert_same(sim.allgather(vals), real.allgather(vals))

    def test_scatter(self, p):
        sim, real = _pair(p)
        pieces = [np.arange(i + 2) for i in range(p)]
        with real:
            _assert_same(sim.scatter(pieces, root=0), real.scatter(pieces, root=0))

    def test_alltoall(self, p):
        sim, real = _pair(p)
        matrix = [
            [np.array([i, j]) if i != j else None for j in range(p)] for i in range(p)
        ]
        with real:
            _assert_same(sim.alltoall(matrix), real.alltoall(matrix))

    def test_send(self, p):
        sim, real = _pair(p)
        payload = {"k": np.arange(3)}
        with real:
            _assert_same(
                sim.send(0, p - 1, payload), real.send(0, p - 1, payload)
            )

    def test_aggregate_exchange(self, p):
        sim, real = _pair(p)
        dicts = [{10 * i + j: j + 1 for j in range(4)} for i in range(p)]
        with real:
            _assert_same(
                sim.aggregate_exchange(dicts, owner=lambda k: k % p),
                real.aggregate_exchange(dicts, owner=lambda k: k % p),
            )

    def test_reduce_tree(self, p):
        def merge(a, b):
            out = dict(a)
            for k, v in b.items():
                out[k] = out.get(k, 0) + v
            return out

        sim, real = _pair(p)
        dicts = [{i: 1, 99: 1} for i in range(p)]
        with real:
            _assert_same(
                sim.reduce_tree(dicts, merge), real.reduce_tree(dicts, merge)
            )

    def test_control_plane_charges_identically(self, p):
        """Modeled cost/metering must not depend on the backend."""
        sim, real = _pair(p)
        vals = [np.arange(4) for _ in range(p)]
        with real:
            for m in (sim, real):
                m.allreduce(vals, op="sum")
                m.allgather(vals)
                m.allreduce_exscan([1] * p)
        assert sim.clock.makespan == real.clock.makespan
        assert sim.metrics.bottleneck_words == real.metrics.bottleneck_words
        assert sim.metrics.bottleneck_startups == real.metrics.bottleneck_startups

    def test_wall_time_only_tracked_for_real_backend(self, p):
        sim, real = _pair(p)
        vals = [1] * p
        with real:
            sim.allreduce(vals)
            real.allreduce(vals)
            assert sim.report().backend == "sim"
            assert real.report().backend == "mp"
            assert sim.backend.wall_time == 0.0
            assert real.backend.wall_time > 0.0


class TestMpLifecycle:
    def test_close_is_idempotent(self):
        m = Machine(p=2, backend="mp")
        m.allreduce([1, 2])
        m.close()
        m.close()

    def test_use_after_close_rejected(self):
        m = Machine(p=2, backend="mp")
        m.allreduce([1, 2])
        m.close()
        with pytest.raises(RuntimeError, match="closed"):
            m.allreduce([1, 2])

    def test_many_collectives_one_pool(self):
        """Sequence-number protocol survives a long mixed workload."""
        with Machine(p=4, seed=3, backend="mp") as m:
            for i in range(10):
                assert m.allreduce([i] * 4)[0] == 4 * i
                assert m.scan([1] * 4) == [1, 2, 3, 4]
                assert m.broadcast(i, root=i % 4)[0] == i

    def test_worker_error_is_surfaced(self):
        with Machine(p=2, backend="mp") as m:
            with pytest.raises(RuntimeError, match="worker"):
                # min of unorderable payloads explodes inside the workers
                m.allreduce([{1: 1}, {2: 2}], op="min")


class TestBackendMap:
    def test_sim_map(self):
        m = Machine(p=3)
        out = m.backend.map(lambda i, x: x + i, [10, 20, 30])
        assert out == [10, 21, 32]

    def test_mp_map_picklable(self):
        with Machine(p=3, backend="mp") as m:
            out = m.backend.map(_double, [np.arange(2), np.arange(3), np.arange(4)])
        for i, c in enumerate(out):
            np.testing.assert_array_equal(c, 2 * np.arange(i + 2))

    def test_mp_map_unpicklable_falls_back(self):
        local = 5
        with Machine(p=2, backend="mp") as m:
            out = m.backend.map(lambda i, x: x + local, [1, 2])
        assert out == [6, 7]

    def test_dist_array_sort_local_on_mp(self):
        from repro.machine import DistArray

        with Machine(p=2, seed=0, backend="mp") as m:
            da = DistArray(m, [np.array([3, 1, 2]), np.array([9, 7, 8])])
            out = da.sort_local()
        np.testing.assert_array_equal(out.chunks[0], [1, 2, 3])
        np.testing.assert_array_equal(out.chunks[1], [7, 8, 9])


def _double(rank, chunk):
    return 2 * chunk


class TestMultiprocessingBackendDirect:
    def test_repr_and_protocol_attrs(self):
        be = MultiprocessingBackend(2)
        assert be.is_real and be.name == "mp"
        be.close()
