"""Unit tests: DistArray (repro.machine.dist_array)."""

import numpy as np
import pytest

from repro.machine import DistArray, Machine


class TestConstruction:
    def test_from_global_splits_evenly(self, machine8):
        d = DistArray.from_global(machine8, np.arange(80))
        assert all(s == 10 for s in d.sizes())
        assert np.array_equal(d.concat(), np.arange(80))

    def test_from_global_uneven(self, machine8):
        d = DistArray.from_global(machine8, np.arange(83))
        assert d.global_size == 83
        assert d.sizes().max() - d.sizes().min() <= 1

    def test_generate_uses_per_pe_rngs(self, machine8):
        d = DistArray.generate(machine8, lambda r, g: g.random(10))
        # different PEs draw from different streams
        assert not np.allclose(d.chunks[0], d.chunks[1])

    def test_wrong_chunk_count(self, machine8):
        with pytest.raises(ValueError, match="one chunk per PE"):
            DistArray(machine8, [np.zeros(3)] * 7)

    def test_rejects_2d_chunks(self, machine8):
        with pytest.raises(ValueError, match="one-dimensional"):
            DistArray(machine8, [np.zeros((2, 2))] * 8)

    def test_empty_like(self, machine8):
        d = DistArray.from_global(machine8, np.arange(10, dtype=np.int32))
        e = DistArray.empty_like(d)
        assert e.global_size == 0
        assert e.dtype == np.int32


class TestOps:
    def test_len_matches_global_size(self, machine8):
        d = DistArray.from_global(machine8, np.arange(40))
        assert len(d) == 40

    def test_map_chunks_charges_work(self, machine8):
        d = DistArray.from_global(machine8, np.arange(40))
        out = d.map_chunks(lambda r, c: c * 2)
        assert np.array_equal(out.concat(), np.arange(40) * 2)
        assert machine8.clock.makespan > 0

    def test_sort_local_sorts_each_chunk(self, machine8):
        d = DistArray.generate(machine8, lambda r, g: g.integers(0, 100, 20))
        s = d.sort_local()
        for c in s.chunks:
            assert np.all(np.diff(c) >= 0)
