"""Unit tests: the size-augmented treap (repro.trees.treap)."""

import numpy as np
import pytest

from repro.trees import Treap


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def build(rng, values):
    t = Treap(rng)
    t.insert_many(values)
    return t


class TestBasics:
    def test_empty(self, rng):
        t = Treap(rng)
        assert len(t) == 0
        assert not t
        assert t.to_list() == []

    def test_min_max_on_empty_raise(self, rng):
        t = Treap(rng)
        with pytest.raises(IndexError):
            t.min()
        with pytest.raises(IndexError):
            t.max()

    def test_insert_iterate_sorted(self, rng):
        vals = [5, 1, 4, 1, 3]
        t = build(rng, vals)
        assert t.to_list() == sorted(vals)
        t.check_invariants()

    def test_contains(self, rng):
        t = build(rng, [2, 4, 6])
        assert 4 in t
        assert 5 not in t

    def test_min_max(self, rng):
        t = build(rng, [9, 2, 7])
        assert t.min() == 2
        assert t.max() == 9

    def test_duplicates_kept(self, rng):
        t = build(rng, [3, 3, 3])
        assert len(t) == 3


class TestOrderStatistics:
    def test_select_matches_sorted(self, rng):
        vals = list(rng.integers(0, 100, 200))
        t = build(rng, vals)
        s = sorted(vals)
        for i in (0, 1, 50, 199):
            assert t.select(i) == s[i]

    def test_select_out_of_range(self, rng):
        t = build(rng, [1, 2])
        with pytest.raises(IndexError):
            t.select(2)
        with pytest.raises(IndexError):
            t.select(-1)

    def test_rank_strict(self, rng):
        t = build(rng, [10, 20, 20, 30])
        assert t.rank(20) == 1
        assert t.rank(25) == 3
        assert t.rank(5) == 0

    def test_count_le(self, rng):
        t = build(rng, [10, 20, 20, 30])
        assert t.count_le(20) == 3
        assert t.count_le(9) == 0
        assert t.count_le(99) == 4

    def test_rank_select_inverse(self, rng):
        vals = sorted(set(rng.integers(0, 10_000, 300).tolist()))
        t = Treap.from_sorted(vals, rng)
        for i in range(0, len(vals), 37):
            assert t.rank(t.select(i)) == i


class TestDelete:
    def test_delete_existing(self, rng):
        t = build(rng, [1, 2, 3])
        assert t.delete(2)
        assert t.to_list() == [1, 3]
        t.check_invariants()

    def test_delete_missing_returns_false(self, rng):
        t = build(rng, [1, 3])
        assert not t.delete(2)
        assert len(t) == 2

    def test_delete_one_of_duplicates(self, rng):
        t = build(rng, [5, 5, 5])
        assert t.delete(5)
        assert len(t) == 2


class TestBulkOps:
    def test_split_at_rank(self, rng):
        vals = sorted(rng.integers(0, 1000, 100).tolist())
        t = build(rng, vals)
        low = t.split_at_rank(30)
        assert low.to_list() == vals[:30]
        assert t.to_list() == vals[30:]
        low.check_invariants()
        t.check_invariants()

    def test_split_at_rank_zero_and_all(self, rng):
        t = build(rng, [1, 2, 3])
        empty = t.split_at_rank(0)
        assert len(empty) == 0
        rest = t.split_at_rank(99)  # clamped
        assert rest.to_list() == [1, 2, 3]
        assert len(t) == 0

    def test_split_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            build(rng, [1]).split_at_rank(-1)

    def test_split_at_key(self, rng):
        t = build(rng, [1, 2, 2, 3, 4])
        low = t.split_at_key(2)
        assert low.to_list() == [1, 2, 2]
        assert t.to_list() == [3, 4]

    def test_concat(self, rng):
        a = build(rng, [1, 2])
        b = build(rng, [3, 4])
        a.concat(b)
        assert a.to_list() == [1, 2, 3, 4]
        assert len(b) == 0
        a.check_invariants()

    def test_concat_overlap_rejected(self, rng):
        a = build(rng, [1, 5])
        b = build(rng, [3])
        with pytest.raises(ValueError, match="ordered"):
            a.concat(b)


class TestFromSorted:
    def test_roundtrip(self, rng):
        vals = sorted(rng.integers(0, 100, 64).tolist())
        t = Treap.from_sorted(vals, rng)
        assert t.to_list() == vals
        t.check_invariants()

    def test_rejects_unsorted(self, rng):
        with pytest.raises(ValueError):
            Treap.from_sorted([3, 1, 2], rng)

    def test_empty(self, rng):
        assert len(Treap.from_sorted([], rng)) == 0

    def test_subsequent_mutation_keeps_invariants(self, rng):
        t = Treap.from_sorted(list(range(0, 100, 2)), rng)
        for x in rng.integers(0, 100, 50):
            t.insert(int(x))
        t.check_invariants()


class TestTupleKeys:
    def test_score_uid_ordering(self, rng):
        t = Treap(rng)
        t.insert((1.5, (0, 1)))
        t.insert((1.5, (0, 0)))
        t.insert((0.5, (1, 7)))
        assert t.select(0) == (0.5, (1, 7))
        assert t.select(1) == (1.5, (0, 0))

    def test_access_cost_log_bounded(self, rng):
        t = build(rng, list(range(1024)))
        assert t.access_cost() == pytest.approx(10.0)
        assert t.access_cost(k=16) == pytest.approx(4.0)
