"""Unit tests: benchmark workload generators (repro.bench.workloads)."""

import numpy as np
import pytest

from repro.bench.workloads import (
    gapped_workload,
    multicriteria_workload,
    negative_binomial_workload,
    selection_workload,
    skewed_sizes_workload,
    sum_workload,
    zipf_keys_workload,
)
from repro.machine import Machine


class TestSelectionWorkload:
    def test_shape(self, machine8):
        d = selection_workload(machine8, 500)
        assert d.global_size == 500 * 8

    def test_per_pe_distributions_differ(self, machine8):
        d = selection_workload(machine8, 2000)
        maxima = [c.max() for c in d.chunks]
        assert len(set(maxima)) > 1  # randomized universes


class TestKeyWorkloads:
    def test_zipf_universe(self, machine8):
        d = zipf_keys_workload(machine8, 1000, universe=128, s=1.0)
        assert d.concat().max() <= 128

    def test_negative_binomial_plateau(self, machine8):
        d = negative_binomial_workload(machine8, 2000)
        assert 15_000 < d.concat().mean() < 23_000

    def test_gapped(self, machine8):
        d = gapped_workload(machine8, 2000, universe=64, k=4, gap=8.0)
        assert d.concat().max() <= 64


class TestMulticriteria:
    def test_index_count_and_dims(self, machine8):
        idx = multicriteria_workload(machine8, 100, 3)
        assert len(idx) == 8
        assert all(ix.m == 3 and ix.n == 100 for ix in idx)

    def test_globally_unique_ids(self, machine8):
        idx = multicriteria_workload(machine8, 200, 2)
        ids = np.concatenate([ix.ids for ix in idx])
        assert len(np.unique(ids)) == len(ids)

    def test_adversarial_concentrates_best(self, machine8):
        idx = multicriteria_workload(machine8, 200, 2, adversarial=True)
        mean0 = idx[0].scores.sum(axis=1).mean()
        mean7 = idx[7].scores.sum(axis=1).mean()
        assert mean0 > mean7


class TestSumWorkload:
    def test_nonnegative_values(self, machine8):
        kv = sum_workload(machine8, 500)
        assert all((v >= 0).all() for v in kv.values)


class TestSkewedSizes:
    def test_point(self, machine8):
        d = skewed_sizes_workload(machine8, 1000, "point")
        assert d.sizes()[0] == 1000
        assert d.sizes()[1:].sum() == 0

    def test_ramp_monotone(self, machine8):
        d = skewed_sizes_workload(machine8, 10_000, "ramp")
        sizes = d.sizes()
        assert sizes[-1] > sizes[0]
        assert sizes.sum() == 10_000

    def test_random_conserves_total(self, machine8):
        d = skewed_sizes_workload(machine8, 5000, "random")
        assert d.sizes().sum() == 5000

    def test_balanced(self, machine8):
        d = skewed_sizes_workload(machine8, 801, "balanced")
        assert d.sizes().max() - d.sizes().min() <= 1

    def test_unknown_kind(self, machine8):
        with pytest.raises(ValueError):
            skewed_sizes_workload(machine8, 100, "sawtooth")
