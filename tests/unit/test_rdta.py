"""Unit tests: RDTA (repro.topk.rdta)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.topk import SumScore, build_distributed_index, global_topk_oracle, rdta_topk


@pytest.fixture
def rng():
    return np.random.default_rng(47)


def random_placement(machine, rng, n, m):
    ids = np.arange(n)
    scores = rng.random((n, m))
    parts = np.array_split(rng.permutation(n), machine.p)
    return build_distributed_index(
        machine, [ids[pt] for pt in parts], [scores[pt] for pt in parts]
    )


class TestRDTA:
    def test_matches_oracle(self, machine, rng):
        idx = random_placement(machine, rng, 1200, 3)
        scorer = SumScore(3)
        res = rdta_topk(machine, idx, scorer, 25)
        assert list(res.items) == global_topk_oracle(idx, scorer, 25)

    def test_k_one(self, machine8, rng):
        idx = random_placement(machine8, rng, 800, 2)
        scorer = SumScore(2)
        res = rdta_topk(machine8, idx, scorer, 1)
        assert list(res.items) == global_topk_oracle(idx, scorer, 1)

    def test_larger_k(self, machine8, rng):
        idx = random_placement(machine8, rng, 800, 2)
        scorer = SumScore(2)
        res = rdta_topk(machine8, idx, scorer, 100)
        assert list(res.items) == global_topk_oracle(idx, scorer, 100)

    def test_rounds_small_for_random_placement(self, machine8, rng):
        idx = random_placement(machine8, rng, 2000, 3)
        res = rdta_topk(machine8, idx, scorer=SumScore(3), k=32)
        assert res.rounds <= 3

    def test_invalid_k(self, machine8, rng):
        idx = random_placement(machine8, rng, 100, 2)
        with pytest.raises(ValueError):
            rdta_topk(machine8, idx, SumScore(2), 0)

    def test_wrong_index_count(self, machine8, rng):
        idx = random_placement(machine8, rng, 100, 2)
        with pytest.raises(ValueError):
            rdta_topk(machine8, idx[:4], SumScore(2), 5)

    def test_result_replicated_and_sorted(self, machine8, rng):
        idx = random_placement(machine8, rng, 500, 2)
        res = rdta_topk(machine8, idx, SumScore(2), 10)
        rels = [r for _, r in res.items]
        assert rels == sorted(rels, reverse=True)
