"""Unit tests: Batcher networks (repro.redistribution.batcher)."""

import numpy as np
import pytest

from repro.redistribution import (
    apply_network,
    levelize,
    merge_round_count,
    odd_even_merge_network,
    odd_even_mergesort_network,
)
from repro.redistribution.batcher import merge_sorted_pair


@pytest.fixture
def rng():
    return np.random.default_rng(83)


class TestMergeNetwork:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128])
    def test_merges_sorted_halves(self, rng, n):
        a = np.sort(rng.integers(0, 100, n // 2))
        b = np.sort(rng.integers(0, 100, n // 2))
        vals = np.concatenate([a, b]).astype(float)
        out = apply_network(vals, odd_even_merge_network(n))
        assert np.array_equal(out, np.sort(vals))

    def test_power_of_two_required(self):
        with pytest.raises(ValueError, match="power-of-two"):
            odd_even_merge_network(6)

    def test_depth_logarithmic(self):
        for n in (4, 16, 64, 256):
            depth = len(levelize(odd_even_merge_network(n)))
            assert depth <= int(np.log2(n)) + 1

    def test_trivial_sizes(self):
        assert odd_even_merge_network(1) == []

    def test_zero_one_principle_spot_check(self, rng):
        n = 16
        net = odd_even_merge_network(n)
        for _ in range(200):
            half = rng.integers(0, 2, n)
            vals = np.concatenate([np.sort(half[: n // 2]), np.sort(half[n // 2:])])
            out = apply_network(vals.astype(float), net)
            assert np.array_equal(out, np.sort(vals))


class TestSortNetwork:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_sorts_permutations(self, rng, n):
        out = apply_network(
            rng.permutation(n).astype(float), odd_even_mergesort_network(n)
        )
        assert np.array_equal(out, np.arange(n))

    def test_sorts_duplicates(self, rng):
        vals = rng.integers(0, 3, 32).astype(float)
        out = apply_network(vals, odd_even_mergesort_network(32))
        assert np.array_equal(out, np.sort(vals))


class TestMergeSortedPair:
    @pytest.mark.parametrize("la,lb", [(3, 5), (1, 9), (7, 7), (0, 4), (13, 2), (0, 0)])
    def test_arbitrary_lengths(self, rng, la, lb):
        a = np.sort(rng.integers(0, 50, la))
        b = np.sort(rng.integers(0, 50, lb))
        got = merge_sorted_pair(a, b)
        assert np.array_equal(got, np.sort(np.concatenate([a, b])))


class TestRoundCount:
    def test_monotone_in_n(self):
        assert merge_round_count(16) <= merge_round_count(64)

    def test_pads_non_pow2(self):
        assert merge_round_count(20) == merge_round_count(32)

    def test_levelize_pairs_disjoint_per_round(self, rng):
        net = odd_even_mergesort_network(32)
        for rnd in levelize(net):
            wires = [w for pair in rnd for w in pair]
            assert len(wires) == len(set(wires))
