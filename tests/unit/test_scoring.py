"""Unit tests: scoring functions (repro.topk.scoring)."""

import numpy as np
import pytest

from repro.topk import MinScore, SumScore, WeightedSum


class TestSumScore:
    def test_scalar(self):
        assert SumScore(3)(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_rows(self):
        rows = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert list(SumScore(2).apply_rows(rows)) == [3.0, 7.0]

    def test_ops_per_eval(self):
        assert SumScore(5).ops_per_eval == 5


class TestWeightedSum:
    def test_scalar(self):
        assert WeightedSum((2.0, 0.5))(np.array([1.0, 4.0])) == 4.0

    def test_scalar_vector_bit_identical(self):
        rng = np.random.default_rng(1)
        rows = rng.random((100, 4))
        w = WeightedSum((0.3, 0.1, 0.45, 0.15))
        vec = w.apply_rows(rows)
        for i in (0, 13, 99):
            assert w(rows[i]) == vec[i]  # exact equality required

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WeightedSum((1.0, -0.1))

    def test_monotone(self):
        w = WeightedSum((1.0, 2.0))
        assert w(np.array([1.0, 1.0])) < w(np.array([1.0, 1.1]))


class TestMinScore:
    def test_scalar(self):
        assert MinScore(3)(np.array([0.5, 0.2, 0.9])) == 0.2

    def test_rows(self):
        rows = np.array([[1.0, 2.0], [0.5, 3.0]])
        assert list(MinScore(2).apply_rows(rows)) == [1.0, 0.5]
