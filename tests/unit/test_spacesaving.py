"""Unit tests: space-saving summaries (repro.frequent.spacesaving)."""

import numpy as np
import pytest

from repro.common import zipf_sample
from repro.frequent import SpaceSaving, heavy_hitters
from repro.machine import DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(73)


class TestSpaceSaving:
    def test_small_stream_exact(self):
        s = SpaceSaving(10)
        for key in [1, 1, 2, 3, 1]:
            s.offer(key)
        assert s.estimate(1) == 3
        assert s.estimate(2) == 1

    def test_overestimate_bound(self, rng):
        capacity = 50
        s = SpaceSaving(capacity)
        keys = zipf_sample(rng, 20_000, universe=500, s=1.0)
        s.offer_array(keys)
        true = {int(key): int(c) for key, c in zip(*np.unique(keys, return_counts=True))}
        for key, est in s.counters.items():
            assert est >= true.get(key, 0)  # never underestimates tracked keys
            assert est - true.get(key, 0) <= s.n / capacity + 1

    def test_capacity_respected(self, rng):
        s = SpaceSaving(8)
        s.offer_array(rng.integers(0, 1000, 5000))
        assert len(s.counters) <= 8

    def test_merge_conserves_n(self, rng):
        a, b = SpaceSaving(16), SpaceSaving(16)
        a.offer_array(rng.integers(0, 50, 1000))
        b.offer_array(rng.integers(0, 50, 2000))
        merged = a.merge(b)
        assert merged.n == 3000
        assert len(merged.counters) <= 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        with pytest.raises(ValueError):
            SpaceSaving(4).offer(1, weight=0)

    def test_top_sorted(self, rng):
        s = SpaceSaving(32)
        s.offer_array(zipf_sample(rng, 5000, universe=100, s=1.2))
        top = s.top(5)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_comm_words(self):
        s = SpaceSaving(4)
        s.offer(1)
        assert s.comm_words() == 4


class TestHeavyHitters:
    def test_contains_all_true_hitters(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 20_000, universe=1024, s=1.1)
        )
        phi = 0.02
        n = data.global_size
        allv, allc = np.unique(data.concat(), return_counts=True)
        true_hh = {int(v) for v, c in zip(allv, allc) if c > phi * n}
        got = {key for key, _ in heavy_hitters(machine8, data, phi)}
        assert true_hh <= got

    def test_reported_counts_not_below_truth(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 5000, universe=256, s=1.2)
        )
        true = {int(v): int(c) for v, c in zip(*np.unique(data.concat(), return_counts=True))}
        for key, est in heavy_hitters(machine8, data, 0.05):
            assert est >= true.get(key, 0)

    def test_invalid_phi(self, machine8):
        data = DistArray(machine8, [np.arange(10)] * 8)
        with pytest.raises(ValueError):
            heavy_hitters(machine8, data, 0.0)
