"""Unit tests: samplers and sample-size formulas (repro.common.sampling)."""

import numpy as np
import pytest

from repro.common.sampling import (
    bernoulli_sample,
    bernoulli_skip_indices,
    ec_sample_rate,
    geometric_rank,
    pac_sample_rate,
    weighted_sample_counts,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestBernoulliSample:
    def test_rate_zero_empty(self, rng):
        assert bernoulli_sample(rng, np.arange(100), 0.0).size == 0

    def test_rate_one_everything(self, rng):
        data = np.arange(50)
        out = bernoulli_sample(rng, data, 1.0)
        assert np.array_equal(np.sort(out), data)

    def test_sample_is_subset(self, rng):
        data = np.arange(1000)
        out = bernoulli_sample(rng, data, 0.1)
        assert np.all(np.isin(out, data))

    def test_expected_size(self, rng):
        sizes = [bernoulli_sample(rng, np.arange(10_000), 0.2).size for _ in range(30)]
        assert abs(np.mean(sizes) - 2000) < 100

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            bernoulli_sample(rng, np.arange(5), 1.5)

    def test_empty_input(self, rng):
        assert bernoulli_sample(rng, np.empty(0), 0.5).size == 0


class TestSkipIndices:
    def test_indices_in_range_and_increasing(self, rng):
        idx = bernoulli_skip_indices(rng, 1000, 0.05)
        assert np.all(idx >= 0) and np.all(idx < 1000)
        assert np.all(np.diff(idx) > 0)

    def test_expected_count(self, rng):
        counts = [bernoulli_skip_indices(rng, 20_000, 0.1).size for _ in range(20)]
        assert abs(np.mean(counts) - 2000) < 150

    def test_rate_one_takes_all(self, rng):
        idx = bernoulli_skip_indices(rng, 17, 1.0)
        assert np.array_equal(idx, np.arange(17))

    def test_zero_rate(self, rng):
        assert bernoulli_skip_indices(rng, 100, 0.0).size == 0

    def test_zero_length(self, rng):
        assert bernoulli_skip_indices(rng, 0, 0.3).size == 0


class TestGeometricRank:
    def test_mean_close_to_inverse_rate(self, rng):
        draws = [geometric_rank(rng, 0.1) for _ in range(3000)]
        assert abs(np.mean(draws) - 10.0) < 1.0

    def test_always_at_least_one(self, rng):
        assert all(geometric_rank(rng, 0.9) >= 1 for _ in range(100))

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            geometric_rank(rng, 0.0)


class TestWeightedSampleCounts:
    def test_unbiased(self, rng):
        values = np.full(5000, 3.7)
        counts = weighted_sample_counts(rng, values, v_avg=2.0)
        assert abs(counts.mean() - 3.7 / 2.0) < 0.05

    def test_deterministic_part(self, rng):
        values = np.array([10.0, 20.0])
        counts = weighted_sample_counts(rng, values, v_avg=5.0)
        assert counts[0] == 2 and counts[1] == 4  # integral: no randomness

    def test_deviation_at_most_one_per_key(self, rng):
        values = rng.exponential(5.0, 1000)
        counts = weighted_sample_counts(rng, values, v_avg=2.0)
        assert np.all(np.abs(counts - values / 2.0) <= 1.0)

    def test_rejects_negative_values(self, rng):
        with pytest.raises(ValueError):
            weighted_sample_counts(rng, np.array([-1.0]), 1.0)

    def test_rejects_bad_vavg(self, rng):
        with pytest.raises(ValueError):
            weighted_sample_counts(rng, np.array([1.0]), 0.0)


class TestSampleRates:
    def test_pac_rate_decreases_with_eps(self):
        lo = pac_sample_rate(10**9, 32, 1e-2, 1e-4)
        hi = pac_sample_rate(10**9, 32, 1e-3, 1e-4)
        assert hi > lo

    def test_pac_rate_capped_at_one(self):
        assert pac_sample_rate(100, 32, 1e-6, 1e-8) == 1.0

    def test_ec_rate_smaller_than_pac(self):
        n, k = 10**9, 32
        k_star = 10_000
        assert ec_sample_rate(n, k_star, 1e-4, 1e-6) < pac_sample_rate(n, k, 1e-4, 1e-6)

    def test_ec_rate_scales_inverse_kstar(self):
        n = 10**10
        r1 = ec_sample_rate(n, 100, 1e-4, 1e-6)
        r2 = ec_sample_rate(n, 400, 1e-4, 1e-6)
        assert r1 / r2 == pytest.approx(4.0, rel=1e-6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            pac_sample_rate(100, 32, 0.0, 0.1)
        with pytest.raises(ValueError):
            pac_sample_rate(100, 32, 0.1, 1.5)
        with pytest.raises(ValueError):
            pac_sample_rate(100, 0, 0.1, 0.1)
        with pytest.raises(ValueError):
            ec_sample_rate(100, 0, 0.1, 0.1)
