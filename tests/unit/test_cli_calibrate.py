"""Unit tests: CLI entry points and cost calibration."""

import pytest

from repro.cli import build_parser, main
from repro.machine.calibrate import calibrated_params, measure_local_rate, preset


class TestCalibrate:
    def test_presets_exist(self):
        for name in ("infiniband-cluster", "ethernet-cluster", "wan", "shared-memory"):
            c = preset(name)
            assert c.alpha > 0 and c.beta > 0

    def test_wan_slower_than_infiniband(self):
        assert preset("wan").alpha > preset("infiniband-cluster").alpha
        assert preset("wan").beta > preset("infiniband-cluster").beta

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset("quantum-link")

    def test_measure_local_rate_sane(self):
        rate = measure_local_rate(n=1 << 16, repeats=1)
        assert 1e-12 < rate < 1e-5  # between a picosecond and 10 us/op

    def test_measure_requires_enough_elements(self):
        with pytest.raises(ValueError):
            measure_local_rate(n=10)

    def test_calibrated_params_host(self):
        c = calibrated_params(host_ops=True)
        assert c.time_per_op > 0
        assert c.alpha == preset("infiniband-cluster").alpha


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["demo", "-p", "4"])
        assert args.command == "demo" and args.p == 4

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "infiniband-cluster" in out
        assert "fig6_unsorted_selection" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "-p", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "median" in out
        assert "deleteMin*" in out

    def test_selftest_passes(self, capsys):
        assert main(["selftest", "-p", "4"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "redistribution_comparison"]) == 0
        out = capsys.readouterr().out
        assert "adaptive/point" in out
