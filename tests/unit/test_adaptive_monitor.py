"""Unit tests: adaptive two-pass sampling and the streaming monitor."""

import numpy as np
import pytest

from repro.common import gapped_sample, zipf_sample
from repro.frequent import (
    StreamingTopKMonitor,
    exact_counts_oracle,
    pac_error,
    top_k_frequent_adaptive,
)
from repro.machine import DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(107)


class TestAdaptive:
    def test_gapped_input_stops_after_probe(self, machine8):
        data = DistArray.generate(
            machine8,
            lambda r, g: gapped_sample(g, 20_000, universe=512, k=8, gap=10.0),
        )
        res = top_k_frequent_adaptive(machine8, data, 8, eps=1e-2, delta=1e-3)
        assert not res.info["escalated"]
        true = exact_counts_oracle(data)
        assert pac_error(res.keys, true, 8) <= 1e-2 * data.global_size

    def test_flat_input_escalates(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: g.integers(0, 128, 20_000).astype(np.int64)
        )
        res = top_k_frequent_adaptive(machine8, data, 8, eps=5e-3, delta=1e-3)
        assert res.info["escalated"]
        assert res.exact_counts

    def test_escalation_meets_bound(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 20_000, universe=4096, s=0.7)
        )
        true = exact_counts_oracle(data)
        res = top_k_frequent_adaptive(machine8, data, 16, eps=8e-3, delta=1e-2)
        assert pac_error(res.keys, true, 16) <= 8e-3 * data.global_size

    def test_empty(self, machine8):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        res = top_k_frequent_adaptive(machine8, data, 4)
        assert res.items == ()


class TestStreamingMonitor:
    def _feed(self, machine, monitor, steps=4, per_pe=4000, s=1.1):
        for _ in range(steps):
            monitor.ingest(
                [zipf_sample(g, per_pe, universe=256, s=s) for g in machine.rngs]
            )

    def test_topk_tracks_truth(self):
        m = Machine(p=4, seed=20)
        mon = StreamingTopKMonitor(m, k=8, eps=2e-2, delta=1e-3)
        self._feed(m, mon)
        res = mon.top_k(force=True)
        # oracle from the tables themselves
        true: dict = {}
        for t in mon.tables:
            for key, c in t.items():
                true[key] = true.get(key, 0) + c
        assert pac_error(res.keys, true, 8) <= 2e-2 * res.info["stream"]

    def test_cache_behavior(self):
        m = Machine(p=4, seed=21)
        mon = StreamingTopKMonitor(m, k=4, refresh_fraction=0.5)
        self._feed(m, mon, steps=1)
        first = mon.top_k()
        again = mon.top_k()  # no growth: cached
        assert again is first
        assert mon.cache_hits == 1
        self._feed(m, mon, steps=2)  # 200% growth: refresh
        third = mon.top_k()
        assert third is not first

    def test_force_refresh(self):
        m = Machine(p=4, seed=22)
        mon = StreamingTopKMonitor(m, k=4)
        self._feed(m, mon, steps=1)
        a = mon.top_k()
        b = mon.top_k(force=True)
        assert b is not a

    def test_ingest_is_communication_free(self):
        m = Machine(p=4, seed=23)
        mon = StreamingTopKMonitor(m, k=4)
        m.reset()
        self._feed(m, mon, steps=2)
        assert m.metrics.total_traffic == 0

    def test_query_volume_independent_of_stream_length(self):
        """The monitoring promise: query cost does not grow with the
        amount of history ingested."""
        vols = []
        for steps in (1, 8):
            m = Machine(p=8, seed=24)
            mon = StreamingTopKMonitor(m, k=8, eps=2e-2, delta=1e-3)
            self._feed(m, mon, steps=steps, per_pe=2000)
            m.reset()
            mon.top_k(force=True)
            vols.append(m.metrics.bottleneck_words)
        assert vols[1] < 3 * vols[0]

    def test_validation(self):
        m = Machine(p=4, seed=25)
        with pytest.raises(ValueError):
            StreamingTopKMonitor(m, k=0)
        with pytest.raises(ValueError):
            StreamingTopKMonitor(m, k=2, refresh_fraction=0.0)
        mon = StreamingTopKMonitor(m, k=2)
        with pytest.raises(ValueError):
            mon.ingest([np.arange(3)] * 2)

    def test_empty_stream(self):
        m = Machine(p=4, seed=26)
        mon = StreamingTopKMonitor(m, k=2)
        assert mon.top_k().items == ()


class TestDtaProbes:
    def test_probes_reduce_rounds(self):
        from repro.bench.workloads import multicriteria_workload
        from repro.topk import SumScore, dta_prefixes

        m = Machine(p=8, seed=30)
        idx = multicriteria_workload(m, 1500, 3)
        scorer = SumScore(3)
        r1 = dta_prefixes(m, idx, scorer, 32, probes=1)
        r4 = dta_prefixes(m, idx, scorer, 32, probes=4)
        assert r4.rounds <= r1.rounds
        assert r4.hit_estimate >= 2 * 32 or r4.scanned >= 1500 * 8

    def test_probes_validation(self):
        from repro.bench.workloads import multicriteria_workload
        from repro.topk import SumScore, dta_prefixes

        m = Machine(p=2, seed=31)
        idx = multicriteria_workload(m, 50, 2)
        with pytest.raises(ValueError):
            dta_prefixes(m, idx, SumScore(2), 4, probes=0)
