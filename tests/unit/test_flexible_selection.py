"""Unit tests: flexible-k selection (Section 4.3, Algorithm 2)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.selection import ams_select, ams_select_batched
from repro.selection.flexible import _max_based_rate, _min_based_rate


@pytest.fixture
def rng():
    return np.random.default_rng(29)


def sorted_chunks(machine, rng, n_per_pe):
    return [np.sort(rng.random(n_per_pe)) for _ in range(machine.p)]


def check_prefix(seqs, res):
    """The cuts must select exactly the res.k globally smallest."""
    allv = np.sort(np.concatenate(seqs))
    got = np.sort(np.concatenate([seqs[i][: res.cuts[i]] for i in range(len(seqs))]))
    assert got.size == res.k
    assert np.array_equal(got, allv[: res.k])


class TestRates:
    def test_min_rate_k_lo_one(self):
        assert _min_based_rate(1, 100) == 1.0

    def test_min_rate_in_unit_interval(self):
        for k_lo, k_hi in ((2, 4), (100, 200), (1000, 1001)):
            r = _min_based_rate(k_lo, k_hi)
            assert 0.0 < r <= 1.0

    def test_min_rate_decreases_with_k(self):
        assert _min_based_rate(1000, 2000) < _min_based_rate(10, 20)

    def test_max_rate_full_range(self):
        assert _max_based_rate(50, 100, 100) == 1.0

    def test_max_rate_in_unit_interval(self):
        r = _max_based_rate(900, 950, 1000)
        assert 0.0 < r <= 1.0


class TestAmsSelect:
    def test_k_within_range(self, machine, rng):
        seqs = sorted_chunks(machine, rng, 500)
        n = 500 * machine.p
        for k_lo, k_hi in ((1, 10), (n // 4, n // 2), (max(1, n - 10), n)):
            res = ams_select(machine, seqs, k_lo, k_hi)
            assert k_lo <= res.k <= k_hi
            check_prefix(seqs, res)

    def test_wide_range_few_rounds(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 1000)
        rounds = [ams_select(machine8, seqs, 1000, 2000).rounds for _ in range(10)]
        assert np.mean(rounds) < 4  # Theorem 3: O(1) expected

    def test_degenerate_range_falls_back(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 200)
        res = ams_select(machine8, seqs, 700, 700, max_rounds=3)
        assert res.k == 700
        check_prefix(seqs, res)

    def test_max_estimator_branch(self, machine8, rng):
        """k close to n triggers the dual (max-based) estimator."""
        seqs = sorted_chunks(machine8, rng, 300)
        n = 2400
        res = ams_select(machine8, seqs, n - 20, n - 1)
        assert n - 20 <= res.k <= n - 1
        check_prefix(seqs, res)

    def test_empty_some_pes(self, machine8, rng):
        seqs = [np.sort(rng.random(500))] + [np.empty(0)] * 7
        res = ams_select(machine8, seqs, 100, 200)
        assert 100 <= res.k <= 200
        check_prefix(seqs, res)

    def test_invalid_range(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 10)
        with pytest.raises(ValueError):
            ams_select(machine8, seqs, 10, 5)
        with pytest.raises(ValueError):
            ams_select(machine8, seqs, 1, 100)

    def test_single_pe(self, rng):
        m = Machine(p=1, seed=4)
        seqs = [np.sort(rng.random(1000))]
        res = ams_select(m, seqs, 100, 200)
        assert 100 <= res.k <= 200
        assert res.cuts[0] == res.k

    def test_latency_advantage_over_exact(self, rng):
        """Flexible selection should need fewer collective rounds than
        exact msSelect at the same scale (Table 1, rows 2-3)."""
        from repro.selection import ms_select

        p, n_per_pe, k = 16, 2000, 8000
        m1 = Machine(p=p, seed=5)
        seqs = [np.sort(m1.rngs[i].random(n_per_pe)) for i in range(p)]
        m1.reset()
        ms_select(m1, seqs, k)
        exact_startups = m1.metrics.bottleneck_startups
        m2 = Machine(p=p, seed=5)
        m2.reset()
        flex_total = 0
        for _ in range(5):
            mm = Machine(p=p, seed=5)
            ams_select(mm, seqs, k, 2 * k)
            flex_total += mm.metrics.bottleneck_startups
        assert flex_total / 5 < exact_startups


class TestAmsBatched:
    def test_k_within_range(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 500)
        for d in (2, 8):
            res = ams_select_batched(machine8, seqs, 1000, 2000, d=d)
            assert 1000 <= res.k <= 2000
            check_prefix(seqs, res)

    def test_narrow_range_benefits_from_d(self, machine8, rng):
        """Theorem 4: d trials tolerate windows of width k/d."""
        seqs = sorted_chunks(machine8, rng, 1000)
        k = 4000
        narrow = (k, k + k // 16)
        rounds_d16 = [
            ams_select_batched(machine8, seqs, *narrow, d=16).rounds for _ in range(5)
        ]
        assert np.mean(rounds_d16) <= 4

    def test_d_one_matches_scalar_semantics(self, machine8, rng):
        seqs = sorted_chunks(machine8, rng, 200)
        res = ams_select_batched(machine8, seqs, 100, 400, d=1)
        assert 100 <= res.k <= 400

    def test_invalid_d(self, machine8, rng):
        with pytest.raises(ValueError):
            ams_select_batched(machine8, sorted_chunks(machine8, rng, 10), 1, 5, d=0)
