"""Unit: the deterministic fault-injection plan layer (no pool).

:class:`FaultPlan` is pure data -- builders, the ``REPRO_FAULTS`` spec
grammar, per-rank slicing, and seeded randomization are all testable
without spawning a single worker.  The integration matrix
(``tests/integration/test_fault_tolerance.py``) covers what the plans
*do* to a live pool.
"""

import pickle

import pytest

from repro.machine.faults import (
    FAULT_EXIT,
    CorruptingPool,
    FaultAction,
    FaultPlan,
    truncated_frame_bytes,
)


class TestFaultAction:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction("explode", 0, 1)

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError, match="before/after"):
            FaultAction("kill", 0, 1, phase="during")

    def test_pickles_by_value(self):
        a = FaultAction("sever", 1, 3, arg=0)
        b = pickle.loads(pickle.dumps(a))
        assert b == a and b.arg == 0

    def test_fault_exit_is_distinctive(self):
        # not a shell builtin code (1/2/126/127) and not a signal death
        assert FAULT_EXIT == 70


class TestFaultPlanBuilders:
    def test_builders_chain(self):
        plan = (
            FaultPlan()
            .kill(1, seq=3)
            .delay(0, seq=2, seconds=0.5)
            .truncate(2, seq=4)
            .sever(1, seq=3, peer=0)
            .corrupt_shm(0, seq=2)
        )
        assert len(plan.actions) == 5
        assert bool(plan)
        assert not bool(FaultPlan())

    def test_spec_roundtrip(self):
        plan = (
            FaultPlan()
            .kill(1, seq=3)
            .kill(2, seq=5, phase="after")
            .delay(0, seq=2, seconds=0.5)
            .truncate(2, seq=4)
            .sever(1, seq=3, peer=0)
            .corrupt_shm(0, seq=2)
        )
        spec = plan.spec()
        assert spec == (
            "kill@r1:s3;kill@r2:s5:after;delay@r0:s2:0.5;"
            "truncate@r2:s4;sever@r1:s3:p0;shmcorrupt@r0:s2"
        )
        again = FaultPlan.parse(spec)
        assert again.actions == plan.actions
        assert again.spec() == spec

    def test_parse_tolerates_whitespace_and_empties(self):
        plan = FaultPlan.parse(" kill@r1:s3 ; ;delay@r0:s1:0.1 ")
        assert [a.kind for a in plan.actions] == ["kill", "delay"]

    @pytest.mark.parametrize(
        "bad",
        [
            "kill@r1",            # missing seq
            "kill@1:3",           # missing r/s markers is fine... but:
            "kaboom@r1:s3",       # unknown kind
            "delay@r0:s2",        # delay without seconds
            "delay@r0:s2:fast",   # non-numeric seconds
            "sever@r1:s3",        # sever without peer
            "kill@rX:s3",         # non-integer rank
        ],
    )
    def test_parse_rejects_bad_specs(self, bad):
        if bad == "kill@1:3":
            # bare integers are accepted (r/s prefixes are optional sugar)
            plan = FaultPlan.parse(bad)
            assert plan.actions == [FaultAction("kill", 1, 3)]
            return
        with pytest.raises(ValueError, match="bad fault spec|unknown fault"):
            FaultPlan.parse(bad)


class TestFaultPlanViews:
    def test_for_rank_slices_and_skips(self):
        plan = FaultPlan().kill(1, seq=3).delay(1, seq=2, seconds=0.1).sever(
            2, seq=4, peer=0
        )
        mine = plan.for_rank(1)
        assert mine is not None and len(mine.actions) == 2
        assert all(a.rank == 1 for a in mine.actions)
        other = plan.for_rank(2)
        assert other is not None and other.actions[0].kind == "sever"
        # the common case: a rank with no actions pays nothing
        assert plan.for_rank(0) is None

    def test_rank_faults_pickle(self):
        mine = FaultPlan().kill(1, seq=3).for_rank(1)
        again = pickle.loads(pickle.dumps(mine))
        assert again.rank == 1 and again.actions == mine.actions

    def test_truncate_and_corrupt_lookups(self):
        mine = FaultPlan().truncate(0, seq=4).corrupt_shm(0, seq=2).for_rank(0)
        assert mine.truncate_at(4) and not mine.truncate_at(3)
        assert mine.corrupt_at(2) and not mine.corrupt_at(4)

    def test_random_kill_is_seed_deterministic(self):
        a = FaultPlan.random_kill(4, seed=7)
        b = FaultPlan.random_kill(4, seed=7)
        c = FaultPlan.random_kill(4, seed=8)
        assert a.spec() == b.spec()
        assert len(a.actions) == 1
        act = a.actions[0]
        assert 0 <= act.rank < 4 and 1 <= act.seq <= 8
        assert act.phase in ("before", "after")
        # a different seed must be able to produce a different plan
        # (7 vs 8 differ for this generator; pinned so a silent rng
        # change surfaces here)
        assert a.spec() != c.spec()


class TestWireHelpers:
    def test_truncated_frame_bytes_is_a_strict_prefix(self):
        obj = ("result", 5, {"x": list(range(100))})
        from repro.machine.backends.transport import encode_frame

        views, _, _ = encode_frame(obj)
        full = b"".join(bytes(v) for v in views)
        half = truncated_frame_bytes(obj, fraction=0.5)
        assert 0 < len(half) < len(full)
        assert full.startswith(half)

    def test_corrupting_pool_mangles_descriptor(self):
        class FakePool:
            threshold = 64

            def share(self, view):
                return ("reproshm-seg-3", len(view))

        pool = CorruptingPool(FakePool())
        desc = pool.share(memoryview(b"x" * 128))
        assert desc[0].startswith("reproshm-corrupt-")
        assert pool.threshold == 64  # passthrough for everything else

    def test_corrupting_pool_passes_inline_none(self):
        class InlinePool:
            def share(self, view):
                return None

        assert CorruptingPool(InlinePool()).share(memoryview(b"x")) is None
