"""Unit tests: input distributions (repro.common.distributions)."""

import numpy as np
import pytest

from repro.common.distributions import (
    GappedSpec,
    ZipfDistribution,
    gapped_sample,
    harmonic_number,
    negative_binomial_sample,
    zipf_sample,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestHarmonic:
    def test_known_values(self):
        assert harmonic_number(1, 1.0) == pytest.approx(1.0)
        assert harmonic_number(3, 1.0) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_s_zero_counts(self):
        assert harmonic_number(10, 0.0) == pytest.approx(10.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            harmonic_number(0, 1.0)


class TestZipf:
    def test_range(self, rng):
        x = ZipfDistribution(100, 1.0).sample(rng, 5000)
        assert x.min() >= 1 and x.max() <= 100

    def test_rank_one_most_frequent(self, rng):
        x = ZipfDistribution(1000, 1.2).sample(rng, 50_000)
        vals, counts = np.unique(x, return_counts=True)
        assert vals[np.argmax(counts)] == 1

    def test_frequency_matches_law(self, rng):
        d = ZipfDistribution(64, 1.0)
        n = 200_000
        x = d.sample(rng, n)
        c1 = (x == 1).sum()
        c2 = (x == 2).sum()
        # expect c1/c2 ~= 2
        assert 1.7 < c1 / c2 < 2.3

    def test_expected_count_formula(self, rng):
        d = ZipfDistribution(64, 1.0)
        n = 100_000
        x = d.sample(rng, n)
        exp1 = d.expected_count(1, n)
        assert abs((x == 1).sum() - exp1) < 0.1 * exp1

    def test_pmf_sums_to_one(self):
        assert ZipfDistribution(500, 1.3).pmf().sum() == pytest.approx(1.0)

    def test_s_zero_is_uniform(self, rng):
        pmf = ZipfDistribution(10, 0.0).pmf()
        assert np.allclose(pmf, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ValueError):
            ZipfDistribution(10, -1.0)

    def test_wrapper(self, rng):
        x = zipf_sample(rng, 100, universe=50, s=1.0)
        assert x.dtype == np.int64 and x.size == 100


class TestNegativeBinomial:
    def test_plateau_center(self, rng):
        x = negative_binomial_sample(rng, 100_000, r=1000, p_success=0.05)
        # mean of NB(r, p) counting failures: r (1-p)/p = 19000
        assert abs(x.mean() - 19_000) < 200

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            negative_binomial_sample(rng, 10, r=0)
        with pytest.raises(ValueError):
            negative_binomial_sample(rng, 10, p_success=1.5)


class TestGapped:
    def test_head_heavier_than_tail(self, rng):
        spec = GappedSpec(universe=256, k=8, gap=6.0)
        x = spec.sample(rng, 100_000)
        vals, counts = np.unique(x, return_counts=True)
        cmap = dict(zip(vals, counts))
        head_min = min(cmap.get(i, 0) for i in range(1, 9))
        tail_max = max(cmap.get(i, 0) for i in range(9, 257))
        assert head_min > 2 * tail_max  # gap factor 6 with noise margin

    def test_pmf_gap_ratio(self):
        spec = GappedSpec(universe=100, k=5, gap=4.0)
        pmf = spec.pmf()
        assert pmf[0] / pmf[50] == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GappedSpec(universe=10, k=10, gap=2.0)
        with pytest.raises(ValueError):
            GappedSpec(universe=10, k=2, gap=1.0)

    def test_wrapper(self, rng):
        x = gapped_sample(rng, 1000, universe=64, k=4, gap=8.0)
        assert x.min() >= 1 and x.max() <= 64
