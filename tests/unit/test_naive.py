"""Unit tests: Naive / Naive-Tree baselines (repro.frequent.naive)."""

import numpy as np
import pytest

from repro.common import zipf_sample
from repro.frequent import (
    exact_counts_oracle,
    pac_error,
    top_k_frequent_naive,
    top_k_frequent_naive_tree,
)
from repro.machine import DistArray, Machine


def zipf_data(machine, n_per_pe=10_000, universe=1024):
    return DistArray.generate(
        machine, lambda r, g: zipf_sample(g, n_per_pe, universe=universe, s=1.0)
    )


class TestCorrectness:
    @pytest.mark.parametrize("fn", [top_k_frequent_naive, top_k_frequent_naive_tree])
    def test_rho_one_exact(self, machine8, fn):
        data = zipf_data(machine8, 3000)
        true = exact_counts_oracle(data)
        res = fn(machine8, data, 8, rho=1.0)
        oracle = sorted(true.items(), key=lambda t: (-t[1], t[0]))[:8]
        assert [(key, int(c)) for key, c in res.items] == oracle

    @pytest.mark.parametrize("fn", [top_k_frequent_naive, top_k_frequent_naive_tree])
    def test_error_bound(self, machine8, fn):
        data = zipf_data(machine8, 20_000)
        true = exact_counts_oracle(data)
        eps = 5e-3
        res = fn(machine8, data, 16, eps=eps, delta=1e-3)
        assert pac_error(res.keys, true, 16) <= eps * data.global_size

    @pytest.mark.parametrize("fn", [top_k_frequent_naive, top_k_frequent_naive_tree])
    def test_empty(self, machine8, fn):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        assert fn(machine8, data, 4).items == ()


class TestScalingStructure:
    def test_naive_coordinator_receives_everything(self):
        p = 16
        m = Machine(p=p, seed=9)
        data = zipf_data(m, 2000, universe=256)
        m.reset()
        top_k_frequent_naive(m, data, 8, rho=1.0)
        # coordinator inbound messages = p - 1 (the scaling killer)
        assert m.metrics.msgs_recv[0] >= p - 1

    def test_tree_coordinator_less_loaded_than_naive(self):
        p = 16
        m_tree = Machine(p=p, seed=9)
        data = zipf_data(m_tree, 2000, universe=256)
        m_tree.reset()
        top_k_frequent_naive_tree(m_tree, data, 8, rho=1.0)
        m_dir = Machine(p=p, seed=9)
        data2 = zipf_data(m_dir, 2000, universe=256)
        m_dir.reset()
        top_k_frequent_naive(m_dir, data2, 8, rho=1.0)
        # the aggregation-tree coordinator accepts fewer messages than
        # the direct-gather coordinator (log p vs p - 1)
        tree_msgs = m_tree.metrics.calls.get("naive_tree", 0)
        assert tree_msgs <= p - 1
        assert m_tree.metrics.msgs_recv[0] < m_dir.metrics.msgs_recv[0]

    def test_naive_slower_than_tree_at_scale(self):
        p = 32
        rows = {}
        for name, fn in (("naive", top_k_frequent_naive), ("tree", top_k_frequent_naive_tree)):
            m = Machine(p=p, seed=10)
            data = zipf_data(m, 1000, universe=256)
            m.reset()
            fn(m, data, 8, rho=1.0)
            rows[name] = m.clock.makespan
        assert rows["naive"] > rows["tree"]
