"""Unit tests: top-k sum aggregation (repro.aggregation.sum_topk)."""

import numpy as np
import pytest

from repro.aggregation import (
    DistKeyValue,
    exact_sums_oracle,
    sum_sample_size,
    top_k_sums_ec,
    top_k_sums_pac,
)
from repro.common import zipf_sample
from repro.machine import Machine


@pytest.fixture
def rng():
    return np.random.default_rng(79)


def kv_data(machine, n_per_pe=15_000, universe=1024, s=1.1):
    def make(rank, rng):
        keys = zipf_sample(rng, n_per_pe, universe=universe, s=s)
        values = rng.exponential(5.0, size=keys.size)
        return keys, values

    return DistKeyValue.generate(machine, make)


class TestDistKeyValue:
    def test_shapes_checked(self, machine8):
        with pytest.raises(ValueError, match="differ in length"):
            DistKeyValue(machine8, [np.arange(3)] * 8, [np.zeros(2)] * 8)

    def test_negative_values_rejected(self, machine8):
        with pytest.raises(ValueError, match="non-negative"):
            DistKeyValue(machine8, [np.arange(2)] * 8, [np.array([-1.0, 1.0])] * 8)

    def test_local_aggregate(self, machine8):
        kv = DistKeyValue(
            machine8,
            [np.array([1, 1, 2])] * 8,
            [np.array([2.0, 3.0, 4.0])] * 8,
        )
        uniq, sums = kv.local_aggregate(0)
        assert list(uniq) == [1, 2]
        assert list(sums) == [5.0, 4.0]

    def test_global_size(self, machine8):
        kv = DistKeyValue(machine8, [np.arange(5)] * 8, [np.ones(5)] * 8)
        assert kv.global_size == 40


class TestOracle:
    def test_exact_sums(self, machine8):
        kv = DistKeyValue(
            machine8, [np.array([7, 7])] * 8, [np.array([1.0, 2.0])] * 8
        )
        assert exact_sums_oracle(kv) == {7: 24.0}


class TestSampleSize:
    def test_grows_with_p(self):
        assert sum_sample_size(10**6, 64, 1e-3, 1e-4) > sum_sample_size(
            10**6, 4, 1e-3, 1e-4
        )

    def test_inverse_in_eps(self):
        a = sum_sample_size(10**6, 16, 1e-2, 1e-4)
        b = sum_sample_size(10**6, 16, 1e-3, 1e-4)
        assert b / a == pytest.approx(10.0, rel=1e-6)


class TestPacSum:
    def test_estimates_within_bound(self, machine8):
        kv = kv_data(machine8)
        oracle = exact_sums_oracle(kv)
        mass = sum(oracle.values())
        eps = 1e-2
        res = top_k_sums_pac(machine8, kv, 12, eps=eps, delta=1e-3)
        for key, est in res.items:
            assert abs(est - oracle.get(key, 0.0)) <= 2 * eps * mass

    def test_top_set_quality(self, machine8):
        kv = kv_data(machine8)
        oracle = exact_sums_oracle(kv)
        rank = sorted(oracle.items(), key=lambda t: (-t[1], t[0]))
        res = top_k_sums_pac(machine8, kv, 12, eps=5e-3, delta=1e-3)
        # every reported key must have a true sum no worse than the
        # k-th best minus the error budget
        kth = rank[11][1]
        mass = sum(oracle.values())
        for key in res.keys:
            assert oracle.get(key, 0.0) >= kth - 2 * 5e-3 * mass

    def test_empty(self, machine8):
        kv = DistKeyValue(machine8, [np.empty(0, dtype=np.int64)] * 8, [np.empty(0)] * 8)
        assert top_k_sums_pac(machine8, kv, 4).items == ()

    def test_zero_mass(self, machine8):
        kv = DistKeyValue(machine8, [np.arange(5)] * 8, [np.zeros(5)] * 8)
        res = top_k_sums_pac(machine8, kv, 4)
        assert res.items == ()

    def test_subnormal_mass_does_not_underflow(self):
        """Regression: a subnormal total mass made v_avg = m/s round to
        0.0, which weighted_sample_counts rejects."""
        m = Machine(p=1, seed=13)
        kv = DistKeyValue(m, [np.array([0], dtype=np.int64)], [np.array([5e-324])])
        assert top_k_sums_pac(m, kv, 1).v_avg > 0
        m2 = Machine(p=1, seed=13)
        kv2 = DistKeyValue(m2, [np.array([0], dtype=np.int64)], [np.array([5e-324])])
        res = top_k_sums_ec(m2, kv2, 1, k_star=8)
        for key, s in res.items:
            assert s == 5e-324


class TestEcSum:
    def test_sums_exact(self, machine8):
        kv = kv_data(machine8)
        oracle = exact_sums_oracle(kv)
        res = top_k_sums_ec(machine8, kv, 12, eps=1e-2, delta=1e-3)
        assert res.exact_sums
        for key, s in res.items:
            assert s == pytest.approx(oracle[key], rel=1e-9)

    def test_recovers_true_topk(self, machine8):
        kv = kv_data(machine8, s=1.3)  # steep: clear ranking
        oracle = exact_sums_oracle(kv)
        rank = sorted(oracle.items(), key=lambda t: (-t[1], t[0]))[:8]
        res = top_k_sums_ec(machine8, kv, 8, eps=5e-3, delta=1e-3)
        assert set(res.keys) == {key for key, _ in rank}

    def test_k_star_override(self, machine8):
        kv = kv_data(machine8, 2000)
        res = top_k_sums_ec(machine8, kv, 4, k_star=32)
        assert res.k_star == 32

    def test_no_second_input_scan_needed(self, machine8):
        """EC-sum answers exact sums from the aggregation tables; the
        communication for it is just the k*-vector reduction."""
        kv = kv_data(machine8, 4000, universe=256)
        machine8.reset()
        top_k_sums_ec(machine8, kv, 8, k_star=32)
        # candidate identities + exact count vectors: O(k*) words/PE
        assert machine8.metrics.bottleneck_words < 4000
