"""Unit tests: distributed hash table counting (repro.frequent.dht)."""

import numpy as np
import pytest

from repro.frequent import count_into_dht, local_key_counts, take_topk_entries
from repro.machine import Machine


@pytest.fixture
def rng():
    return np.random.default_rng(59)


class TestLocalKeyCounts:
    def test_counts(self, machine8):
        d = local_key_counts(machine8, 0, np.array([1, 1, 2, 3, 3, 3]))
        assert d == {1: 2, 2: 1, 3: 3}

    def test_empty(self, machine8):
        assert local_key_counts(machine8, 0, np.empty(0, dtype=np.int64)) == {}

    def test_charges_work(self, machine8):
        local_key_counts(machine8, 2, np.arange(100))
        assert machine8.clock.work_time[2] > 0


class TestCountIntoDht:
    def test_global_counts_conserved(self, machine, rng):
        samples = [rng.integers(0, 50, 200) for _ in range(machine.p)]
        routed = count_into_dht(machine, samples)
        total: dict = {}
        for d in routed:
            for key, c in d.items():
                total[key] = total.get(key, 0) + c
        allv, allc = np.unique(np.concatenate(samples), return_counts=True)
        assert total == {int(key): int(c) for key, c in zip(allv, allc)}

    def test_each_key_on_exactly_one_pe(self, machine8, rng):
        samples = [rng.integers(0, 100, 300) for _ in range(8)]
        routed = count_into_dht(machine8, samples)
        seen = set()
        for d in routed:
            for key in d:
                assert key not in seen
                seen.add(key)

    def test_salt_moves_keys(self, machine8, rng):
        samples = [rng.integers(0, 64, 100) for _ in range(8)]
        a = count_into_dht(machine8, samples, salt=0)
        b = count_into_dht(machine8, samples, salt=12345)
        placement_a = {key: i for i, d in enumerate(a) for key in d}
        placement_b = {key: i for i, d in enumerate(b) for key in d}
        assert placement_a != placement_b


class TestTakeTopk:
    def test_exact_k_entries(self, machine8, rng):
        samples = [rng.integers(0, 40, 500) for _ in range(8)]
        routed = count_into_dht(machine8, samples)
        items = take_topk_entries(machine8, routed, 10)
        assert len(items) == 10

    def test_matches_oracle_ranking(self, machine8, rng):
        samples = [rng.integers(0, 40, 500) for _ in range(8)]
        routed = count_into_dht(machine8, samples)
        items = take_topk_entries(machine8, routed, 10)
        allv, allc = np.unique(np.concatenate(samples), return_counts=True)
        oracle = sorted(
            zip(allv.tolist(), allc.tolist()), key=lambda t: (-t[1], t[0])
        )[:10]
        assert [(int(a), int(b)) for a, b in items] == oracle

    def test_fewer_entries_than_k(self, machine8):
        routed = count_into_dht(machine8, [np.array([1, 1, 2])] + [np.empty(0, dtype=np.int64)] * 7)
        items = take_topk_entries(machine8, routed, 10)
        assert len(items) == 2

    def test_tie_handling_exact_k(self, machine8):
        # 20 keys all with equal counts; k=7 must return exactly 7
        samples = [np.arange(20) for _ in range(8)]
        routed = count_into_dht(machine8, samples)
        items = take_topk_entries(machine8, routed, 7)
        assert len(items) == 7
        assert all(c == 8 for _, c in items)

    def test_invalid_k(self, machine8):
        with pytest.raises(ValueError):
            take_topk_entries(machine8, [{} for _ in range(8)], 0)

    def test_empty_input(self, machine8):
        assert take_topk_entries(machine8, [{} for _ in range(8)], 5) == []

    def test_sorted_output(self, machine8, rng):
        samples = [rng.integers(0, 30, 200) for _ in range(8)]
        routed = count_into_dht(machine8, samples)
        items = take_topk_entries(machine8, routed, 8)
        counts = [c for _, c in items]
        assert counts == sorted(counts, reverse=True)
