"""Unit tests: collective operations (repro.machine.comm/collectives)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.collectives import (
    binomial_edges,
    combine,
    hypercube_rounds,
    inclusive_scan,
    tree_reduce_order,
)


class TestSchedules:
    def test_binomial_edges_cover_all_pes(self):
        for p in (1, 2, 3, 5, 8, 13, 16):
            edges = binomial_edges(p, root=0)
            reached = {0}
            for _, s, d in edges:
                assert s in reached, "parent must already hold the message"
                reached.add(d)
            assert reached == set(range(p))

    def test_binomial_edges_count(self):
        for p in (1, 2, 7, 16):
            assert len(binomial_edges(p)) == p - 1

    def test_binomial_edges_nonzero_root(self):
        edges = binomial_edges(4, root=2)
        reached = {2}
        for _, s, d in edges:
            reached.add(d)
        assert reached == {0, 1, 2, 3}

    def test_hypercube_rounds_pair_disjointness(self):
        for p in (2, 4, 8, 16):
            for rnd in hypercube_rounds(p):
                seen = set()
                for i, j in rnd:
                    assert i not in seen and j not in seen
                    seen.update((i, j))

    def test_combine_named_ops(self):
        assert combine("sum", 2, 3) == 5
        assert combine("min", 2, 3) == 2
        assert combine("max", 2, 3) == 3

    def test_combine_arrays_elementwise(self):
        a = np.array([1, 5])
        b = np.array([4, 2])
        assert list(combine("min", a, b)) == [1, 2]

    def test_combine_callable(self):
        assert combine(lambda a, b: a * b, 3, 4) == 12

    def test_combine_unknown_op(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            combine("mean", 1, 2)

    def test_tree_reduce_order_matches_sum(self):
        vals = list(range(17))
        assert tree_reduce_order(vals, "sum") == sum(vals)

    def test_tree_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            tree_reduce_order([], "sum")

    def test_inclusive_scan(self):
        assert inclusive_scan([1, 2, 3], "sum") == [1, 3, 6]


class TestBroadcast:
    def test_value_reaches_all(self, machine):
        out = machine.broadcast("hello", root=0)
        assert out == ["hello"] * machine.p

    def test_nonzero_root(self, machine8):
        out = machine8.broadcast(42, root=5)
        assert out[0] == 42

    def test_charges_time(self, machine8):
        machine8.broadcast(np.zeros(100))
        assert machine8.clock.makespan > 0


class TestReductions:
    def test_reduce_sum_at_root(self, machine):
        out = machine.reduce(list(range(machine.p)), op="sum", root=0)
        assert out[0] == sum(range(machine.p))
        if machine.p > 1:
            assert out[1] is None

    def test_allreduce_replicates(self, machine):
        out = machine.allreduce([2] * machine.p, op="sum")
        assert out == [2 * machine.p] * machine.p

    def test_allreduce_min_max(self, machine8):
        vals = [5, 3, 9, 1, 7, 2, 8, 6]
        assert machine8.allreduce(vals, op="min")[0] == 1
        assert machine8.allreduce(vals, op="max")[0] == 9

    def test_vector_allreduce(self, machine8):
        vecs = [np.array([i, -i]) for i in range(8)]
        out = machine8.allreduce(vecs, op="sum")[0]
        assert list(out) == [28, -28]

    def test_wrong_arity_rejected(self, machine8):
        with pytest.raises(ValueError, match="one contribution per PE"):
            machine8.allreduce([1, 2, 3])


class TestScans:
    def test_inclusive_scan(self, machine8):
        out = machine8.scan([1] * 8, op="sum")
        assert out == list(range(1, 9))

    def test_exscan_with_initial(self, machine8):
        out = machine8.exscan([1] * 8, op="sum", initial=0)
        assert out == list(range(8))

    def test_exscan_on_odd_machine(self, odd_machine):
        p = odd_machine.p
        out = odd_machine.exscan(list(range(p)), op="sum")
        expect = [sum(range(i)) for i in range(p)]
        assert out == expect


class TestGatherScatter:
    def test_gather_orders_by_rank(self, machine8):
        out = machine8.gather([f"pe{i}" for i in range(8)], root=0)
        assert out[0] == [f"pe{i}" for i in range(8)]

    def test_gather_direct_costs_linear_startups(self):
        m_tree = Machine(p=16, seed=1)
        m_tree.gather([np.zeros(4)] * 16, root=0, mode="tree")
        m_dir = Machine(p=16, seed=1)
        m_dir.gather([np.zeros(4)] * 16, root=0, mode="direct")
        assert m_dir.metrics.msgs_recv[0] > m_tree.metrics.msgs_recv[0]

    def test_gather_unknown_mode(self, machine8):
        with pytest.raises(ValueError):
            machine8.gather([1] * 8, mode="quantum")

    def test_scatter_delivers_pieces(self, machine8):
        out = machine8.scatter([i * 10 for i in range(8)], root=0)
        assert out == [i * 10 for i in range(8)]

    def test_allgather(self, machine):
        out = machine.allgather(list(range(machine.p)))
        for row in out:
            assert row == list(range(machine.p))


class TestTimeAdvancement:
    def test_collectives_synchronize_clocks(self, machine8):
        machine8.clock.charge_local_one(3, 1.0)
        machine8.allreduce([0] * 8)
        assert np.allclose(machine8.clock.t, machine8.clock.t[0])
        assert machine8.clock.makespan > 1.0

    def test_metrics_track_bottleneck(self, machine8):
        machine8.allgather([np.zeros(10)] * 8)
        # every PE must end up holding 70 foreign words
        assert machine8.metrics.words_recv.min() >= 70
