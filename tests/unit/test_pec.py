"""Unit tests: Algorithm PEC (repro.frequent.pec)."""

import numpy as np
import pytest

from repro.common import gapped_sample, zipf_sample
from repro.frequent import (
    exact_counts_oracle,
    top_k_frequent_pec,
    top_k_frequent_pec_zipf,
)
from repro.machine import DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(71)


def gapped_data(machine, k=16, gap=6.0, n_per_pe=20_000, universe=1024):
    return DistArray.generate(
        machine,
        lambda r, g: gapped_sample(g, n_per_pe, universe=universe, k=k, gap=gap),
    )


class TestPec:
    def test_exact_on_gapped_input(self, machine8):
        k = 16
        data = gapped_data(machine8, k=k)
        true = exact_counts_oracle(data)
        oracle = sorted(true.items(), key=lambda t: (-t[1], t[0]))[:k]
        res = top_k_frequent_pec(machine8, data, k, delta=1e-3)
        assert set(res.keys) == {key for key, _ in oracle}
        assert res.info["gap_found"]

    def test_counts_exact(self, machine8):
        data = gapped_data(machine8, k=8)
        true = exact_counts_oracle(data)
        res = top_k_frequent_pec(machine8, data, 8, delta=1e-3)
        for key, c in res.items:
            assert c == true[key]

    def test_k_star_moderate_for_big_gap(self, machine8):
        data = gapped_data(machine8, k=8, gap=10.0)
        res = top_k_frequent_pec(machine8, data, 8, delta=1e-3)
        assert res.k_star <= 64  # far below the 16k cap

    def test_flat_distribution_reports_no_gap(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: g.integers(0, 512, 10_000).astype(np.int64)
        )
        res = top_k_frequent_pec(machine8, data, 8, delta=1e-3, cap_factor=4)
        # uniform input: either no gap found, or the cap was hit
        assert (not res.info["gap_found"]) or res.k_star <= 4 * 8

    def test_empty_input(self, machine8):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        res = top_k_frequent_pec(machine8, data, 4)
        assert res.items == ()


class TestPecZipf:
    def test_exact_on_zipf(self, machine8):
        k = 8
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 30_000, universe=4096, s=1.0)
        )
        true = exact_counts_oracle(data)
        oracle = {key for key, _ in sorted(true.items(), key=lambda t: (-t[1], t[0]))[:k]}
        res = top_k_frequent_pec_zipf(machine8, data, k, delta=1e-3, s=1.0, universe=4096)
        assert set(res.keys) == oracle

    def test_k_star_closed_form(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 1000, universe=256, s=1.0)
        )
        res = top_k_frequent_pec_zipf(machine8, data, 10, s=1.0, universe=256)
        assert res.k_star == int(np.ceil((2 + np.sqrt(2)) * 10))

    def test_steeper_exponent_needs_smaller_sample(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 20_000, universe=1024, s=1.5)
        )
        res_steep = top_k_frequent_pec_zipf(machine8, data, 8, s=1.5, universe=1024)
        res_flat = top_k_frequent_pec_zipf(machine8, data, 8, s=1.0, universe=1024)
        # k* shrinks with s (fewer candidates hide near the boundary)
        assert res_steep.k_star <= res_flat.k_star

    def test_universe_inferred(self, machine8):
        data = DistArray.generate(
            machine8, lambda r, g: zipf_sample(g, 5000, universe=512, s=1.0)
        )
        res = top_k_frequent_pec_zipf(machine8, data, 4, s=1.0)
        assert res.info["universe"] <= 512
