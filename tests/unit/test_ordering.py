"""Unit tests: order sentinels (repro.common.ordering)."""

import pytest

from repro.common.ordering import BOTTOM, TOP, is_sentinel


class TestSentinels:
    def test_top_greater_than_everything(self):
        for x in (0, 1e300, "zzz", (99, 99), float("inf")):
            assert TOP > x
            assert x < TOP
            assert not (TOP < x)

    def test_bottom_smaller_than_everything(self):
        for x in (0, -1e300, "", (0,), float("-inf")):
            assert BOTTOM < x
            assert x > BOTTOM
            assert not (BOTTOM > x)

    def test_ordering_between_sentinels(self):
        assert BOTTOM < TOP
        assert TOP > BOTTOM

    def test_equality_is_identity(self):
        assert TOP == TOP
        assert BOTTOM == BOTTOM
        assert TOP != BOTTOM
        assert TOP != 5

    def test_singletons(self):
        from repro.common.ordering import _Bottom, _Top

        assert _Top() is TOP
        assert _Bottom() is BOTTOM

    def test_min_max_builtin_compatibility(self):
        vals = [3, TOP, 1, BOTTOM, 2]
        assert min(vals) is BOTTOM
        assert max(vals) is TOP

    def test_works_with_tuples(self):
        assert min([(2, 1), TOP]) == (2, 1)
        assert max([(2, 1), BOTTOM]) == (2, 1)

    def test_comm_words(self):
        assert TOP.comm_words() == 1
        assert BOTTOM.comm_words() == 1

    def test_is_sentinel(self):
        assert is_sentinel(TOP)
        assert is_sentinel(BOTTOM)
        assert is_sentinel(float("inf"))
        assert not is_sentinel(42)
