"""Unit tests: the per-PE score index (repro.topk.index)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.topk import LocalIndex, SumScore, build_distributed_index, global_topk_oracle


@pytest.fixture
def rng():
    return np.random.default_rng(41)


class TestLocalIndex:
    def test_entries_sorted_descending(self, rng):
        ix = LocalIndex(np.arange(50), rng.random((50, 3)))
        for c in range(3):
            scores = [ix.entry(c, r)[1] for r in range(50)]
            assert scores == sorted(scores, reverse=True)

    def test_scores_desc(self, rng):
        ix = LocalIndex(np.arange(20), rng.random((20, 2)))
        col = ix.scores_desc(1)
        assert np.all(np.diff(col) <= 0)

    def test_row_of(self, rng):
        scores = rng.random((10, 2))
        ix = LocalIndex(np.arange(100, 110), scores)
        assert np.array_equal(ix.row_of(105), scores[5])
        assert ix.row_of(999) is None

    def test_prefix_size(self, rng):
        scores = np.array([[0.9], [0.5], [0.5], [0.1]])
        ix = LocalIndex(np.arange(4), scores)
        assert ix.prefix_size(0, 0.5) == 3
        assert ix.prefix_size(0, 0.95) == 0
        assert ix.prefix_size(0, 0.0) == 4

    def test_prefix_rows_match_entries(self, rng):
        ix = LocalIndex(np.arange(30), rng.random((30, 2)))
        rows = ix.prefix_rows(0, 5)
        ids = [ix.entry(0, r)[0] for r in range(5)]
        assert [int(ix.ids[r]) for r in rows] == ids

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            LocalIndex(np.array([1, 1]), np.zeros((2, 1)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LocalIndex(np.arange(3), np.zeros((2, 1)))


class TestBuilders:
    def test_build_distributed_index_charges(self, machine8, rng):
        ids = [np.arange(i * 10, i * 10 + 10) for i in range(8)]
        scores = [rng.random((10, 2)) for _ in range(8)]
        t0 = machine8.clock.makespan
        idx = build_distributed_index(machine8, ids, scores)
        assert len(idx) == 8
        assert machine8.clock.work_time.max() > 0

    def test_oracle_ranks_by_relevance(self, machine8, rng):
        ids = [np.arange(i * 10, i * 10 + 10) for i in range(8)]
        scores = [rng.random((10, 3)) for _ in range(8)]
        idx = build_distributed_index(machine8, ids, scores)
        top = global_topk_oracle(idx, SumScore(3), 5)
        rels = [r for _, r in top]
        assert rels == sorted(rels, reverse=True)
        assert len(top) == 5
