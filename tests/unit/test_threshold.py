"""Unit tests: sequential threshold algorithm (repro.topk.threshold)."""

import numpy as np
import pytest

from repro.topk import LocalIndex, MinScore, SumScore, global_topk_oracle, ta_topk


@pytest.fixture
def rng():
    return np.random.default_rng(43)


class TestTA:
    def test_matches_oracle(self, rng):
        ix = LocalIndex(np.arange(500), rng.random((500, 3)))
        scorer = SumScore(3)
        res = ta_topk(ix, scorer, 10)
        assert list(res.items) == global_topk_oracle([ix], scorer, 10)

    def test_scan_depth_less_than_n(self, rng):
        """TA's whole point: stop well before scanning everything."""
        ix = LocalIndex(np.arange(2000), rng.random((2000, 2)) ** 3)
        res = ta_topk(ix, SumScore(2), 5)
        assert res.scan_depth < 2000

    def test_threshold_bounds_result(self, rng):
        ix = LocalIndex(np.arange(300), rng.random((300, 2)))
        res = ta_topk(ix, SumScore(2), 10)
        kth = res.items[-1][1]
        assert kth >= res.threshold or res.scan_depth == 300

    def test_min_scorer(self, rng):
        ix = LocalIndex(np.arange(400), rng.random((400, 3)))
        scorer = MinScore(3)
        res = ta_topk(ix, scorer, 7)
        assert list(res.items) == global_topk_oracle([ix], scorer, 7)

    def test_k_clamped_to_n(self, rng):
        ix = LocalIndex(np.arange(5), rng.random((5, 2)))
        res = ta_topk(ix, SumScore(2), 50)
        assert len(res.items) == 5

    def test_k_one(self, rng):
        ix = LocalIndex(np.arange(100), rng.random((100, 2)))
        res = ta_topk(ix, SumScore(2), 1)
        assert len(res.items) == 1
        oracle = global_topk_oracle([ix], SumScore(2), 1)
        assert list(res.items) == oracle

    def test_invalid_k(self, rng):
        ix = LocalIndex(np.arange(5), rng.random((5, 2)))
        with pytest.raises(ValueError):
            ta_topk(ix, SumScore(2), 0)

    def test_empty_index(self):
        ix = LocalIndex(np.empty(0, dtype=np.int64), np.zeros((0, 2)))
        res = ta_topk(ix, SumScore(2), 3)
        assert res.items == ()

    def test_items_sorted_best_first(self, rng):
        ix = LocalIndex(np.arange(200), rng.random((200, 2)))
        res = ta_topk(ix, SumScore(2), 20)
        rels = [r for _, r in res.items]
        assert rels == sorted(rels, reverse=True)

    def test_random_access_count_bounded(self, rng):
        ix = LocalIndex(np.arange(100), rng.random((100, 2)))
        res = ta_topk(ix, SumScore(2), 5)
        assert res.random_accesses <= 100 * 1  # at most (m-1) per object
