"""Unit tests: Algorithm PAC (repro.frequent.pac)."""

import numpy as np
import pytest

from repro.common import zipf_sample
from repro.frequent import (
    exact_counts_oracle,
    pac_error,
    top_k_frequent_exact,
    top_k_frequent_pac,
)
from repro.machine import DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(61)


def zipf_data(machine, n_per_pe=20_000, universe=2048, s=1.0):
    return DistArray.generate(
        machine, lambda r, g: zipf_sample(g, n_per_pe, universe=universe, s=s)
    )


class TestExactReference:
    def test_exact_matches_oracle(self, machine, rng):
        data = zipf_data(machine, 5000)
        res = top_k_frequent_exact(machine, data, 8)
        true = exact_counts_oracle(data)
        oracle = sorted(true.items(), key=lambda t: (-t[1], t[0]))[:8]
        assert [(key, int(c)) for key, c in res.items] == oracle

    def test_empty_input(self, machine8):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        res = top_k_frequent_exact(machine8, data, 5)
        assert res.items == ()


class TestPac:
    def test_error_bound_holds(self, machine8):
        data = zipf_data(machine8)
        true = exact_counts_oracle(data)
        n = data.global_size
        eps = 5e-3
        res = top_k_frequent_pac(machine8, data, 16, eps=eps, delta=1e-3)
        assert pac_error(res.keys, true, 16) <= eps * n

    def test_estimates_scale_with_rho(self, machine8):
        data = zipf_data(machine8)
        true = exact_counts_oracle(data)
        res = top_k_frequent_pac(machine8, data, 8, rho=0.25)
        n = data.global_size
        for key, est in res.items:
            assert abs(est - true[key]) < 0.3 * true[key] + 0.01 * n

    def test_rho_one_is_exact(self, machine8):
        data = zipf_data(machine8, 2000)
        true = exact_counts_oracle(data)
        res = top_k_frequent_pac(machine8, data, 8, rho=1.0)
        assert res.exact_counts
        for key, est in res.items:
            assert est == true[key]

    def test_items_sorted(self, machine8):
        data = zipf_data(machine8, 3000)
        res = top_k_frequent_pac(machine8, data, 10, rho=0.5)
        counts = [c for _, c in res.items]
        assert counts == sorted(counts, reverse=True)

    def test_empty_input(self, machine8):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        res = top_k_frequent_pac(machine8, data, 3)
        assert res.items == ()

    def test_sublinear_communication(self):
        m = Machine(p=16, seed=7)
        data = zipf_data(m, 10_000, universe=1 << 14)
        m.reset()
        top_k_frequent_pac(m, data, 16, rho=0.02)
        assert m.metrics.bottleneck_words < 10_000 / 4

    def test_sample_size_reported(self, machine8):
        data = zipf_data(machine8, 5000)
        res = top_k_frequent_pac(machine8, data, 8, rho=0.1)
        n = data.global_size
        assert 0.05 * n < res.sample_size < 0.2 * n


class TestPacError:
    def test_exact_answer_zero_error(self):
        true = {1: 100, 2: 50, 3: 10}
        assert pac_error([1, 2], true, 2) == 0

    def test_missed_object_counted(self):
        true = {1: 100, 2: 50, 3: 40}
        # output {1, 3}: missed 2 (50), worst chosen 3 (40) -> error 10
        assert pac_error([1, 3], true, 2) == 10

    def test_unknown_key_counts_zero(self):
        true = {1: 100, 2: 50}
        assert pac_error([1, 99], true, 2) == 50

    def test_empty(self):
        assert pac_error([], {}, 3) == 0
