"""Unit tests: bulk-parallel priority queue (Section 5)."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.pqueue import BulkParallelPQ, TreapSeq
from repro.trees import Treap


@pytest.fixture
def rng():
    return np.random.default_rng(31)


def fill(machine, rng, per_pe=100):
    pq = BulkParallelPQ(machine)
    batches = [list(rng.random(per_pe)) for _ in range(machine.p)]
    pq.insert(batches)
    allv = sorted(v for b in batches for v in b)
    return pq, allv


class TestTreapSeq:
    def test_adapter_protocol(self, rng):
        t = Treap(rng)
        t.insert_many([3, 1, 2])
        seq = TreapSeq(t)
        assert len(seq) == 3
        assert seq.item(0) == 1
        assert seq.count_le(2) == 2


class TestInsert:
    def test_insert_is_communication_free(self, machine8, rng):
        pq = BulkParallelPQ(machine8)
        machine8.reset()
        pq.insert([list(rng.random(50)) for _ in range(8)])
        assert machine8.metrics.total_traffic == 0

    def test_insert_wrong_arity(self, machine8):
        pq = BulkParallelPQ(machine8)
        with pytest.raises(ValueError, match="one insertion batch"):
            pq.insert([[1.0]] * 3)

    def test_insert_local_returns_uids(self, machine8):
        pq = BulkParallelPQ(machine8)
        uids = pq.insert_local(3, [0.5, 0.7])
        assert uids == [(3, 0), (3, 1)]

    def test_total_size(self, machine8, rng):
        pq, allv = fill(machine8, rng, 40)
        assert pq.total_size() == len(allv)


class TestPeekAndDelete:
    def test_peek_min(self, machine, rng):
        pq, allv = fill(machine, rng, 64)
        assert pq.peek_min() == pytest.approx(allv[0])

    def test_peek_empty_raises(self, machine8):
        pq = BulkParallelPQ(machine8)
        with pytest.raises(IndexError):
            pq.peek_min()

    def test_delete_min_exact(self, machine, rng):
        pq, allv = fill(machine, rng, 64)
        res = pq.delete_min(32)
        got = sorted(s for b in res.batches for s, _ in b)
        assert got == pytest.approx(allv[:32])
        assert res.k == 32

    def test_delete_min_removes(self, machine8, rng):
        pq, allv = fill(machine8, rng, 64)
        pq.delete_min(100)
        res2 = pq.delete_min(10)
        got = sorted(s for b in res2.batches for s, _ in b)
        assert got == pytest.approx(allv[100:110])

    def test_delete_min_invalid_k(self, machine8, rng):
        pq, _ = fill(machine8, rng, 10)
        with pytest.raises(ValueError):
            pq.delete_min(0)
        with pytest.raises(ValueError):
            pq.delete_min(81)

    def test_batches_stay_on_owner_pe(self, machine8, rng):
        """Owner-computes: extracted elements carry their origin rank."""
        pq, _ = fill(machine8, rng, 32)
        res = pq.delete_min(64)
        for rank, batch in enumerate(res.batches):
            for _, uid in batch:
                assert uid[0] == rank

    def test_batches_ascending(self, machine8, rng):
        pq, _ = fill(machine8, rng, 32)
        res = pq.delete_min(64)
        for batch in res.batches:
            scores = [s for s, _ in batch]
            assert scores == sorted(scores)


class TestDeleteFlexible:
    def test_k_in_range(self, machine, rng):
        pq, allv = fill(machine, rng, 128)
        n = len(allv)
        res = pq.delete_min_flexible(n // 8, n // 4)
        assert n // 8 <= res.k <= n // 4
        got = sorted(s for b in res.batches for s, _ in b)
        assert got == pytest.approx(allv[: res.k])

    def test_sequence_of_flexible_deletes_drains(self, machine8, rng):
        pq, allv = fill(machine8, rng, 32)
        drained = []
        while pq.total_size() > 0:
            hi = min(64, pq.total_size())
            lo = max(1, hi // 2)
            res = pq.delete_min_flexible(lo, hi)
            drained += [s for b in res.batches for s, _ in b]
        assert sorted(drained) == pytest.approx(allv)

    def test_interleaved_insert_delete(self, machine8, rng):
        pq = BulkParallelPQ(machine8)
        reference = []
        for it in range(5):
            batches = [list(rng.random(20)) for _ in range(8)]
            pq.insert(batches)
            reference += [v for b in batches for v in b]
            reference.sort()
            res = pq.delete_min(30)
            got = sorted(s for b in res.batches for s, _ in b)
            assert got == pytest.approx(reference[:30])
            reference = reference[30:]

    def test_duplicate_scores_unique_uids(self, machine8):
        pq = BulkParallelPQ(machine8)
        pq.insert([[1.0, 1.0, 1.0] for _ in range(8)])
        res = pq.delete_min(12)
        uids = [uid for b in res.batches for _, uid in b]
        assert len(set(uids)) == 12
