"""Unit tests: the alpha-beta cost model (repro.machine.cost)."""

import math

import pytest

from repro.machine.cost import FREE_COMMUNICATION, CollectiveCost, CostParams, log2_ceil


class TestLog2Ceil:
    def test_single_pe_is_free(self):
        assert log2_ceil(1) == 0

    def test_powers_of_two(self):
        assert log2_ceil(2) == 1
        assert log2_ceil(8) == 3
        assert log2_ceil(1024) == 10

    def test_non_powers_round_up(self):
        assert log2_ceil(3) == 2
        assert log2_ceil(5) == 3
        assert log2_ceil(1000) == 10


class TestPointToPoint:
    def test_message_cost_is_alpha_plus_beta_m(self):
        c = CostParams(alpha=2.0, beta=0.5)
        assert c.p2p(10) == pytest.approx(2.0 + 5.0)

    def test_empty_message_still_pays_startup(self):
        c = CostParams(alpha=3.0, beta=1.0)
        assert c.p2p(0) == pytest.approx(3.0)

    def test_local_work_scales_linearly(self):
        c = CostParams(time_per_op=1e-9)
        assert c.local(1000) == pytest.approx(1e-6)


class TestCollectiveFormulas:
    C = CostParams(alpha=1.0, beta=0.01)

    def test_broadcast_has_log_p_startups(self):
        for p in (2, 4, 16, 64):
            cc = self.C.broadcast(10, p)
            assert cc.startups == log2_ceil(p)

    def test_broadcast_volume_independent_of_p(self):
        v8 = self.C.broadcast(100, 8).words
        v64 = self.C.broadcast(100, 64).words
        assert v8 == v64 == 100

    def test_allreduce_doubles_volume(self):
        assert self.C.allreduce(50, 8).words == 2 * self.C.reduce(50, 8).words

    def test_gather_direct_startups_linear_in_p(self):
        assert self.C.gather_direct(100, 32).startups == 31
        assert self.C.gather(100, 32).startups == 5

    def test_allgather_volume_scales_with_p(self):
        cc = self.C.allgather(10, 16)
        assert cc.words == 10 * 15

    def test_alltoall_direct_vs_hypercube_tradeoff(self):
        p = 64
        direct = self.C.alltoall_direct(10, p)
        hyper = self.C.alltoall_hypercube(10, p)
        # direct: fewer transferred words, more startups
        assert direct.startups > hyper.startups
        assert direct.words < hyper.words

    def test_barrier_moves_no_data(self):
        assert self.C.barrier(32).words == 0

    def test_single_pe_collectives_free(self):
        for fn in ("broadcast", "reduce", "allreduce", "scan"):
            cc = getattr(self.C, fn)(100, 1)
            assert cc.startups == 0
            assert cc.time == pytest.approx(self.C.beta * cc.words)


class TestFreeCommunication:
    def test_zero_cost(self):
        assert FREE_COMMUNICATION.p2p(1_000_000) == 0.0
        assert FREE_COMMUNICATION.broadcast(100, 64).time == 0.0

    def test_local_work_still_costs(self):
        assert FREE_COMMUNICATION.local(100) > 0


class TestCollectiveCostDataclass:
    def test_frozen(self):
        cc = CollectiveCost(1.0, 2, 3.0)
        with pytest.raises(AttributeError):
            cc.time = 5.0
