"""Unit tests: Algorithm EC (repro.frequent.ec)."""

import numpy as np
import pytest

from repro.common import zipf_sample
from repro.frequent import (
    exact_count_keys,
    exact_counts_oracle,
    optimal_k_star,
    pac_error,
    top_k_frequent_ec,
)
from repro.machine import DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(67)


def zipf_data(machine, n_per_pe=20_000, universe=2048, s=1.0):
    return DistArray.generate(
        machine, lambda r, g: zipf_sample(g, n_per_pe, universe=universe, s=s)
    )


class TestExactCountKeys:
    def test_counts_match_oracle(self, machine8):
        data = zipf_data(machine8, 3000)
        true = exact_counts_oracle(data)
        keys = np.array(sorted(true)[:50], dtype=np.int64)
        counts = exact_count_keys(machine8, data, keys)
        for key, c in zip(keys, counts):
            assert c == true[int(key)]

    def test_absent_keys_zero(self, machine8):
        data = zipf_data(machine8, 1000, universe=100)
        counts = exact_count_keys(machine8, data, np.array([10**9, 10**9 + 1]))
        assert list(counts) == [0, 0]

    def test_unsorted_candidate_keys(self, machine8):
        data = zipf_data(machine8, 2000, universe=64)
        true = exact_counts_oracle(data)
        keys = np.array([5, 1, 3], dtype=np.int64)
        counts = exact_count_keys(machine8, data, keys)
        assert counts[0] == true.get(5, 0)
        assert counts[1] == true.get(1, 0)


class TestOptimalKStar:
    def test_at_least_k(self):
        assert optimal_k_star(10**6, 32, 64, 1e-3, 1e-4) >= 32

    def test_grows_as_eps_shrinks(self):
        a = optimal_k_star(10**8, 32, 64, 1e-2, 1e-4)
        b = optimal_k_star(10**8, 32, 64, 1e-4, 1e-4)
        assert b > a

    def test_shrinks_with_more_pes(self):
        a = optimal_k_star(10**8, 32, 16, 1e-4, 1e-4)
        b = optimal_k_star(10**8, 32, 1024, 1e-4, 1e-4)
        assert b < a


class TestEc:
    def test_counts_are_exact(self, machine8):
        data = zipf_data(machine8)
        true = exact_counts_oracle(data)
        res = top_k_frequent_ec(machine8, data, 16, eps=5e-3, delta=1e-3)
        assert res.exact_counts
        for key, c in res.items:
            assert c == true[key]

    def test_error_bound(self, machine8):
        data = zipf_data(machine8)
        true = exact_counts_oracle(data)
        n = data.global_size
        eps = 5e-3
        res = top_k_frequent_ec(machine8, data, 16, eps=eps, delta=1e-3)
        assert pac_error(res.keys, true, 16) <= eps * n

    def test_smaller_sample_than_pac(self, machine8):
        """Lemma 10: EC's sampling rate is ~k* times below PAC's."""
        from repro.common.sampling import ec_sample_rate, pac_sample_rate

        n = 10**9
        k, k_star = 32, 10_000
        assert ec_sample_rate(n, k_star, 1e-4, 1e-6) < pac_sample_rate(
            n, k, 1e-4, 1e-6
        ) / 100

    def test_explicit_k_star(self, machine8):
        data = zipf_data(machine8, 5000)
        res = top_k_frequent_ec(machine8, data, 8, eps=1e-2, delta=1e-3, k_star=64)
        assert res.k_star == 64
        assert len(res.items) == 8

    def test_k_star_smaller_than_distinct(self, machine8):
        data = zipf_data(machine8, 5000, universe=4096)
        res = top_k_frequent_ec(machine8, data, 4, eps=1e-2, delta=1e-3, k_star=8)
        assert len(res.items) == 4

    def test_empty_input(self, machine8):
        data = DistArray(machine8, [np.empty(0, dtype=np.int64)] * 8)
        res = top_k_frequent_ec(machine8, data, 4)
        assert res.items == ()

    def test_broadcast_volume_scales_with_k_star(self):
        m1 = Machine(p=8, seed=8)
        d1 = zipf_data(m1, 5000)
        m1.reset()
        top_k_frequent_ec(m1, d1, 8, eps=1e-2, delta=1e-3, k_star=16)
        # the candidate exchange is fused (reduce+allgather); count both
        v_small = m1.metrics.by_kind.get("allgather", 0) + m1.metrics.by_kind.get(
            "reduce_allgather", 0
        )
        m2 = Machine(p=8, seed=8)
        d2 = zipf_data(m2, 5000)
        m2.reset()
        top_k_frequent_ec(m2, d2, 8, eps=1e-2, delta=1e-3, k_star=512)
        v_large = m2.metrics.by_kind.get("allgather", 0) + m2.metrics.by_kind.get(
            "reduce_allgather", 0
        )
        assert v_large > v_small
