"""Unit tests: branch-and-bound application (repro.apps.branch_and_bound)."""

import numpy as np
import pytest

from repro.apps import (
    KnapsackInstance,
    knapsack_dp,
    random_knapsack,
    solve_knapsack_parallel,
    solve_knapsack_sequential,
)
from repro.machine import Machine


@pytest.fixture
def rng():
    return np.random.default_rng(97)


class TestInstance:
    def test_density_sorted(self, rng):
        inst = random_knapsack(rng, 20)
        density = inst.values / inst.weights
        assert np.all(np.diff(density) <= 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            KnapsackInstance.create([1.0], [0.0], 10)
        with pytest.raises(ValueError):
            KnapsackInstance.create([-1.0], [1.0], 10)
        with pytest.raises(ValueError):
            KnapsackInstance.create([1.0, 2.0], [1.0], 10)

    def test_greedy_bound_upper_bounds_dp(self, rng):
        inst = random_knapsack(rng, 25)
        assert inst.greedy_bound(0, 0.0, 0.0) >= knapsack_dp(inst) - 1e-9


class TestDP:
    def test_tiny_instance(self):
        inst = KnapsackInstance.create([6.0, 10.0, 12.0], [1.0, 2.0, 3.0], 5)
        assert knapsack_dp(inst) == 22.0

    def test_zero_capacity(self):
        inst = KnapsackInstance.create([5.0], [2.0], 0)
        assert knapsack_dp(inst) == 0.0

    def test_requires_integer_weights(self):
        inst = KnapsackInstance.create([1.0], [1.5], 10)
        with pytest.raises(ValueError):
            knapsack_dp(inst)


class TestSequentialBnB:
    def test_matches_dp(self, rng):
        for _ in range(8):
            inst = random_knapsack(rng, 24, tightness=0.4)
            assert solve_knapsack_sequential(inst).optimum == pytest.approx(
                knapsack_dp(inst)
            )

    def test_tight_capacity(self, rng):
        inst = random_knapsack(rng, 20, tightness=0.1)
        assert solve_knapsack_sequential(inst).optimum == pytest.approx(
            knapsack_dp(inst)
        )


class TestParallelBnB:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_dp(self, rng, p):
        inst = random_knapsack(rng, 26, tightness=0.4)
        m = Machine(p=p, seed=p)
        res = solve_knapsack_parallel(m, inst)
        assert res.optimum == pytest.approx(knapsack_dp(inst))

    def test_node_overhead_bounded(self, rng):
        """Section 5: K = m + O(hp) -- parallel expansion overhead stays
        within a small multiple of the sequential node count."""
        inst = random_knapsack(rng, 28, tightness=0.5)
        seq = solve_knapsack_sequential(inst)
        m = Machine(p=4, seed=3)
        par = solve_knapsack_parallel(m, inst)
        assert par.nodes_expanded <= 5 * seq.nodes_expanded + 40 * 4

    def test_insertions_stay_local(self, rng):
        """The bulk PQ advantage: expansion-phase traffic is only the
        selection coordination, not the node payloads."""
        inst = random_knapsack(rng, 26, tightness=0.5)
        m = Machine(p=4, seed=4)
        solve_knapsack_parallel(m, inst)
        # no per-node element movement: the redistribution kinds are absent
        assert "p2p" not in m.metrics.by_kind

    def test_loose_capacity_all_items_fit(self):
        inst = KnapsackInstance.create([1.0, 2.0], [1.0, 1.0], 10)
        m = Machine(p=2, seed=5)
        res = solve_knapsack_parallel(m, inst)
        assert res.optimum == 3.0
