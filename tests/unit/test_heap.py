"""Unit tests: binary heap (repro.pqueue.heap)."""

import numpy as np
import pytest

from repro.pqueue import BinaryHeap


class TestHeap:
    def test_heapify_constructor(self):
        h = BinaryHeap([5, 2, 8, 1])
        h.check_invariants()
        assert h.peek() == 1

    def test_push_pop_sorted_drain(self):
        rng = np.random.default_rng(3)
        vals = rng.integers(0, 1000, 500).tolist()
        h = BinaryHeap()
        for v in vals:
            h.push(v)
        h.check_invariants()
        assert [h.pop() for _ in range(len(vals))] == sorted(vals)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BinaryHeap().peek()

    def test_pop_k(self):
        h = BinaryHeap([4, 1, 3, 2])
        assert h.pop_k(2) == [1, 2]
        assert len(h) == 2

    def test_pop_k_clamps(self):
        h = BinaryHeap([2, 1])
        assert h.pop_k(10) == [1, 2]

    def test_pop_k_negative_rejected(self):
        with pytest.raises(ValueError):
            BinaryHeap([1]).pop_k(-1)

    def test_pushpop_smaller_than_min(self):
        h = BinaryHeap([5, 7])
        assert h.pushpop(1) == 1
        assert len(h) == 2

    def test_pushpop_larger_than_min(self):
        h = BinaryHeap([5, 7])
        assert h.pushpop(6) == 5
        assert sorted(h.items()) == [6, 7]

    def test_bool_and_len(self):
        h = BinaryHeap()
        assert not h
        h.push(1)
        assert h and len(h) == 1

    def test_tuple_keys(self):
        h = BinaryHeap([(2, "b"), (1, "a")])
        assert h.pop() == (1, "a")
