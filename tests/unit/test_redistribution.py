"""Unit tests: adaptive redistribution (repro.redistribution.balance)."""

import numpy as np
import pytest

from repro.machine import DistArray, Machine
from repro.redistribution import balance_plan, naive_rebalance, redistribute


@pytest.fixture
def rng():
    return np.random.default_rng(89)


def dist_with_sizes(machine, sizes, rng):
    chunks = [rng.integers(0, 10**6, size=int(s)).astype(np.int64) for s in sizes]
    return DistArray(machine, chunks)


class TestBalancePlan:
    def test_balanced_input_no_moves(self):
        assert balance_plan(np.array([10, 10, 10, 10])) == []

    def test_point_imbalance(self):
        plan = balance_plan(np.array([40, 0, 0, 0]))
        moved = sum(t.count for t in plan)
        assert moved == 30
        assert all(t.src == 0 for t in plan)

    def test_senders_only_send_receivers_only_receive(self, rng):
        sizes = rng.integers(0, 100, 16)
        n_bar = -(-int(sizes.sum()) // 16)
        plan = balance_plan(sizes)
        senders = {t.src for t in plan}
        receivers = {t.dst for t in plan}
        for s in senders:
            assert sizes[s] > n_bar
        for r in receivers:
            assert sizes[r] < n_bar

    def test_moved_equals_total_surplus(self, rng):
        sizes = rng.integers(0, 200, 8)
        n_bar = -(-int(sizes.sum()) // 8)
        surplus = np.maximum(sizes - n_bar, 0).sum()
        plan = balance_plan(sizes)
        assert sum(t.count for t in plan) == surplus

    def test_no_overfill(self, rng):
        sizes = rng.integers(0, 500, 32)
        n_bar = -(-int(sizes.sum()) // 32)
        plan = balance_plan(sizes)
        received = np.zeros(32, dtype=np.int64)
        for t in plan:
            received[t.dst] += t.count
        final = sizes + received - np.array(
            [sum(t.count for t in plan if t.src == i) for i in range(32)]
        )
        assert np.all(final <= n_bar)

    def test_custom_n_bar(self):
        plan = balance_plan(np.array([10, 0]), n_bar=8)
        assert sum(t.count for t in plan) == 2


class TestRedistribute:
    def test_multiset_preserved(self, machine8, rng):
        data = dist_with_sizes(machine8, [100, 0, 50, 300, 10, 0, 40, 20], rng)
        before = np.sort(data.concat())
        out, stats = redistribute(machine8, data)
        assert np.array_equal(np.sort(out.concat()), before)

    def test_capacity_respected(self, machine8, rng):
        data = dist_with_sizes(machine8, [400, 0, 0, 0, 0, 0, 0, 0], rng)
        out, stats = redistribute(machine8, data)
        assert all(s <= 50 for s in out.sizes())
        assert stats.moved == 350

    def test_balanced_input_moves_nothing(self, machine8, rng):
        data = dist_with_sizes(machine8, [50] * 8, rng)
        machine8.reset()
        out, stats = redistribute(machine8, data)
        assert stats.moved == 0
        assert machine8.metrics.by_kind.get("redistribute", 0) == 0

    def test_senders_keep_prefix(self, machine8, rng):
        """Kept elements preserve their local order (tail is shipped)."""
        data = dist_with_sizes(machine8, [200, 0, 0, 0, 0, 0, 0, 0], rng)
        orig = data.chunks[0].copy()
        out, _ = redistribute(machine8, data)
        keep = len(out.chunks[0])
        assert np.array_equal(out.chunks[0], orig[:keep])

    def test_stats_fields(self, machine8, rng):
        data = dist_with_sizes(machine8, [100, 20, 0, 0, 0, 0, 0, 0], rng)
        _, stats = redistribute(machine8, data)
        assert stats.max_sent <= stats.moved
        assert stats.merge_rounds >= 1

    def test_odd_p(self, odd_machine, rng):
        sizes = [60] + [2] * (odd_machine.p - 1)
        data = dist_with_sizes(odd_machine, sizes, rng)
        out, _ = redistribute(odd_machine, data)
        n_bar = -(-sum(sizes) // odd_machine.p)
        assert all(s <= n_bar for s in out.sizes())


class TestNaiveRebalance:
    def test_result_balanced(self, machine8, rng):
        data = dist_with_sizes(machine8, [100, 0, 50, 300, 10, 0, 40, 20], rng)
        out, moved = naive_rebalance(machine8, data)
        sizes = out.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_moves_at_least_adaptive(self, rng):
        sizes = [100, 0, 50, 300, 10, 0, 40, 20]
        m1 = Machine(p=8, seed=1)
        d1 = dist_with_sizes(m1, sizes, np.random.default_rng(0))
        _, stats = redistribute(m1, d1)
        m2 = Machine(p=8, seed=1)
        d2 = dist_with_sizes(m2, sizes, np.random.default_rng(0))
        _, moved = naive_rebalance(m2, d2)
        assert moved >= stats.moved

    def test_even_input_still_moves_data(self, machine8, rng):
        """The contrast case: naive repartition is not adaptive --
        with an uneven-but-acceptable layout it still shuffles."""
        data = dist_with_sizes(machine8, [51, 49, 50, 50, 50, 50, 50, 50], rng)
        _, moved = naive_rebalance(machine8, data)
        m2 = Machine(p=8, seed=2)
        d2 = dist_with_sizes(m2, [51, 49, 50, 50, 50, 50, 50, 50], rng)
        _, stats = redistribute(m2, d2)
        assert stats.moved <= 1
        assert moved >= stats.moved
