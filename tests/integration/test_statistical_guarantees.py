"""Statistical validation of the probabilistic guarantees.

The (eps, delta) analyses promise failure probability below delta.
These tests estimate the empirical failure frequency over repeated
seeded runs: with delta = 0.1 and 20 trials the expected number of
failures is 2; we assert a generous <= 6 (P[Binom(20, 0.1) > 6] < 1e-3)
so the suite stays deterministic-stable while still catching any
systematic violation (e.g. a sample-size formula off by a constant).
"""

import numpy as np
import pytest

from repro.common import zipf_sample
from repro.common.distributions import GappedSpec
from repro.frequent import (
    exact_counts_oracle,
    pac_error,
    top_k_frequent_pac,
    top_k_frequent_pec,
)
from repro.machine import DistArray, Machine
from repro.selection import ams_select

TRIALS = 20
DELTA = 0.1
MAX_FAILURES = 6


class TestPacGuarantee:
    def test_failure_rate_below_delta(self):
        k, eps = 8, 1e-2
        failures = 0
        for seed in range(TRIALS):
            m = Machine(p=4, seed=seed)
            data = DistArray.generate(
                m, lambda r, g: zipf_sample(g, 10_000, universe=1 << 11, s=0.9)
            )
            true = exact_counts_oracle(data)
            res = top_k_frequent_pac(m, data, k, eps=eps, delta=DELTA)
            if pac_error(res.keys, true, k) > eps * data.global_size:
                failures += 1
        assert failures <= MAX_FAILURES, f"{failures}/{TRIALS} eps-violations"


class TestPecGuarantee:
    def test_exactness_rate_on_gapped_input(self):
        k = 8
        spec = GappedSpec(universe=512, k=k, gap=8.0)
        failures = 0
        for seed in range(TRIALS):
            m = Machine(p=4, seed=100 + seed)
            data = DistArray.generate(m, lambda r, g: spec.sample(g, 10_000))
            true = exact_counts_oracle(data)
            oracle = {
                key for key, _ in sorted(true.items(), key=lambda t: (-t[1], t[0]))[:k]
            }
            res = top_k_frequent_pec(m, data, k, delta=DELTA)
            if set(res.keys) != oracle:
                failures += 1
        assert failures <= MAX_FAILURES, f"{failures}/{TRIALS} inexact results"


class TestAmsSelectExpectedRounds:
    def test_mean_rounds_constant_for_wide_windows(self):
        """Theorem 3: expected O(1) rounds when width = Omega(k)."""
        total_rounds = 0
        fallbacks = 0
        for seed in range(TRIALS):
            m = Machine(p=8, seed=200 + seed)
            seqs = [np.sort(m.rngs[i].random(1000)) for i in range(8)]
            res = ams_select(m, seqs, 2000, 4000)
            total_rounds += res.rounds
            fallbacks += res.exact_fallback
        assert fallbacks == 0
        assert total_rounds / TRIALS < 4.0

    def test_geometric_estimator_is_truthful(self):
        """The rank of the min-based pivot estimate is geometric: its
        empirical mean must track 1/rho."""
        from repro.selection.flexible import _min_based_rate

        rho = _min_based_rate(100, 200)
        rng = np.random.default_rng(0)
        draws = rng.geometric(rho, size=20_000)
        assert abs(draws.mean() - 1.0 / rho) < 0.05 / rho


class TestSamplingConcentration:
    def test_pac_estimate_concentration(self):
        """Scaled sample counts concentrate around true counts at the
        Chernoff rate: the RMS relative error over the top keys shrinks
        as the sampling rate grows."""
        rng = np.random.default_rng(7)
        data_global = zipf_sample(rng, 200_000, universe=1 << 10, s=1.0)
        true = {}
        for v in data_global:
            true[int(v)] = true.get(int(v), 0) + 1
        rms = []
        for rho in (0.02, 0.3):
            m = Machine(p=4, seed=9)
            d = DistArray.from_global(m, data_global)
            res = top_k_frequent_pac(m, d, 8, rho=rho)
            errs = [
                (est - true[key]) / true[key] for key, est in res.items if key in true
            ]
            rms.append(float(np.sqrt(np.mean(np.square(errs)))))
        assert rms[1] < rms[0]
