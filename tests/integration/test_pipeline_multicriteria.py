"""Integration: multicriteria top-k pipelines (Section 6)."""

import numpy as np
import pytest

from repro.bench.workloads import multicriteria_workload
from repro.machine import Machine
from repro.topk import (
    MinScore,
    SumScore,
    WeightedSum,
    dta_topk,
    global_topk_oracle,
    rdta_topk,
    ta_topk,
)
from repro.topk.index import LocalIndex


class TestEndToEnd:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_dta_exact_across_machine_sizes(self, p):
        m = Machine(p=p, seed=200 + p)
        idx = multicriteria_workload(m, 600, 3)
        scorer = SumScore(3)
        res = dta_topk(m, idx, scorer, 20)
        assert list(res.items) == global_topk_oracle(idx, scorer, 20)

    @pytest.mark.parametrize("m_crit", [1, 2, 5])
    def test_dta_across_criteria_counts(self, m_crit):
        m = Machine(p=4, seed=210 + m_crit)
        idx = multicriteria_workload(m, 500, m_crit)
        scorer = SumScore(m_crit)
        res = dta_topk(m, idx, scorer, 10)
        assert list(res.items) == global_topk_oracle(idx, scorer, 10)

    def test_rdta_and_dta_agree_on_random_placement(self):
        m = Machine(p=8, seed=220)
        idx = multicriteria_workload(m, 400, 3)
        scorer = WeightedSum((0.5, 0.3, 0.2))
        r1 = rdta_topk(m, idx, scorer, 15)
        r2 = dta_topk(m, idx, scorer, 15)
        assert list(r1.items) == list(r2.items)

    def test_dta_on_adversarial_placement(self):
        m = Machine(p=8, seed=230)
        idx = multicriteria_workload(m, 400, 3, adversarial=True)
        scorer = SumScore(3)
        res = dta_topk(m, idx, scorer, 25)
        assert list(res.items) == global_topk_oracle(idx, scorer, 25)

    def test_min_scorer_end_to_end(self):
        m = Machine(p=4, seed=240)
        idx = multicriteria_workload(m, 500, 3)
        scorer = MinScore(3)
        res = dta_topk(m, idx, scorer, 10)
        assert list(res.items) == global_topk_oracle(idx, scorer, 10)


class TestScanEfficiency:
    def test_dta_prefixes_near_sequential_scan_depth(self):
        """Theorem 6: DTA identifies O(K) objects where K is TA's scan
        depth -- the exponential search cannot overshoot by much more
        than a doubling."""
        m = Machine(p=8, seed=250)
        idx = multicriteria_workload(m, 1000, 2, skew=3.0)
        scorer = SumScore(2)
        merged = LocalIndex(
            np.concatenate([ix.ids for ix in idx]),
            np.vstack([ix.scores for ix in idx]),
        )
        seq = ta_topk(merged, scorer, 16)
        res = dta_topk(m, idx, scorer, 16)
        # DTA's guessed K should not exceed a generous multiple of TA's
        assert res.prefixes.scanned <= 64 * max(seq.scan_depth, 1)

    def test_work_sublinear_in_input(self):
        """DTA coordination volume must not scale with n/p."""
        vols = []
        for n_per_pe in (400, 3200):
            m = Machine(p=8, seed=260)
            idx = multicriteria_workload(m, n_per_pe, 3)
            m.reset()
            dta_topk(m, idx, SumScore(3), 16)
            vols.append(m.metrics.bottleneck_words)
        assert vols[1] < 4 * vols[0]
