"""Integration: every experiment driver runs and yields sane rows."""

import numpy as np
import pytest

from repro.bench import experiments as E
from repro.bench import format_table, write_csv


SMALL_P = (1, 2, 4)


class TestFigureDrivers:
    def test_fig6(self):
        rows = E.fig6_unsorted_selection(p_list=SMALL_P, n_per_pe=1 << 10, ks=(16, 256))
        assert len(rows) == 6
        assert all(r.time_s > 0 for r in rows)
        assert all(r.extra["k"] >= 1 for r in rows)

    def test_fig7(self):
        rows = E.fig7_topk_frequent(p_list=SMALL_P, n_per_pe=1 << 11)
        assert {r.algorithm for r in rows} == {"PAC", "EC", "Naive", "NaiveTree"}
        # communication ordering at the largest p
        at4 = {r.algorithm: r for r in rows if r.p == 4}
        assert at4["Naive"].volume_words >= at4["PAC"].volume_words

    def test_fig8(self):
        # n must be large enough for EC's (linear-in-1/eps) sample to
        # fit; PAC's quadratic one still cannot (the Figure 8 regime)
        rows = E.fig8_strict_accuracy(p_list=(4,), n_per_pe=1 << 14)
        at4 = {r.algorithm: r for r in rows if r.p == 4}
        assert at4["EC"].extra["rho"] < 1.0
        assert at4["PAC"].extra["rho"] == 1.0

    def test_table1(self):
        rows = E.table1_comm_volume(p=8, n_per_pe=1 << 10, k=64)
        by_algo = {r.algorithm: r for r in rows}
        assert (
            by_algo["unsorted-selection/new"].volume_words
            < by_algo["unsorted-selection/old"].volume_words
        )
        assert (
            by_algo["priority-queue/new"].volume_words
            < by_algo["priority-queue/old"].volume_words
        )
        assert (
            by_algo["topk-frequent/new"].volume_words
            < by_algo["topk-frequent/old"].volume_words
        )
        assert (
            by_algo["sum-aggregation/new"].volume_words
            < by_algo["sum-aggregation/old"].volume_words
        )

    def test_selection_latency(self):
        rows = E.selection_latency(p_list=(2, 8), n_per_pe=1 << 10, k=256)
        at8 = {r.algorithm: r for r in rows if r.p == 8}
        assert at8["amsSelect(flex)"].startups <= at8["msSelect(exact)"].startups


class TestComparisonDrivers:
    def test_priority_queue(self):
        rows = E.priority_queue_comparison(p_list=(2, 4), n_per_pe=256, batch=64, iterations=2)
        at4 = {r.algorithm: r for r in rows if r.p == 4}
        assert at4["BulkPQ(ours)"].volume_words < at4["RandomAlloc(KZ)"].volume_words

    def test_multicriteria(self):
        rows = E.multicriteria_comparison(p_list=(2, 4), n_per_pe=256, m_criteria=2, k=8)
        assert {r.algorithm for r in rows} == {"DTA", "RDTA", "TA(sequential)"}

    def test_sum_aggregation(self):
        rows = E.sum_aggregation_comparison(p_list=(2, 4), n_per_pe=1 << 10)
        assert {r.algorithm for r in rows} == {"SumPAC", "SumEC"}

    def test_redistribution(self):
        rows = E.redistribution_comparison(p=8, n_total=1 << 12)
        by_name = {r.algorithm: r for r in rows}
        assert by_name["adaptive/balanced"].extra["moved"] == 0
        assert (
            by_name["adaptive/point"].extra["moved"]
            <= by_name["naive/point"].extra["moved"]
        )


class TestAblationDrivers:
    def test_ams_trials(self):
        rows = E.ablation_ams_trials(
            p=8, n_per_pe=1 << 10, k=128, width_divisors=(1, 16), ds=(1, 8), trials=5
        )
        assert len(rows) == 4
        # narrow window: more trials help
        narrow = {r.extra["d"]: r.extra["avg_rounds"] for r in rows if r.extra["width_div"] == 16}
        assert narrow[8] <= narrow[1] + 1.0

    def test_ec_kstar(self):
        rows = E.ablation_ec_kstar(p=8, n_per_pe=1 << 11, factors=(1, 8))
        assert all(r.extra["rho"] <= 1.0 for r in rows)

    def test_selection_sampling(self):
        rows = E.ablation_selection_sampling(p=8, n_per_pe=1 << 10, factors=(0.5, 4.0))
        assert all(r.extra["rounds"] >= 1 for r in rows)


class TestHarnessPlumbing:
    def test_format_and_csv(self, tmp_path):
        rows = E.fig6_unsorted_selection(p_list=(1, 2), n_per_pe=256, ks=(8,))
        txt = format_table(rows)
        assert "select k=8" in txt
        path = tmp_path / "f6.csv"
        write_csv(rows, path)
        assert path.read_text().count("\n") == 3
