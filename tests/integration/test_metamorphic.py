"""Metamorphic and failure-injection tests across the whole library.

Metamorphic relations: answers must be invariant under PE-boundary
permutations, value translation, and duplication patterns; degenerate
inputs (empty PEs, single elements, all-equal keys) must not break any
algorithm.
"""

import numpy as np
import pytest

from repro.aggregation import DistKeyValue, exact_sums_oracle, top_k_sums_ec
from repro.frequent import (
    exact_counts_oracle,
    top_k_frequent_exact,
    top_k_frequent_pac,
)
from repro.machine import DistArray, Machine
from repro.selection import ams_select, ms_select, select_kth


class TestSelectionMetamorphic:
    def _value(self, values, k, p, seed, shuffle_seed):
        m = Machine(p=p, seed=seed)
        rng = np.random.default_rng(shuffle_seed)
        data = DistArray.from_global(m, values[rng.permutation(len(values))])
        return select_kth(m, data, k)

    def test_placement_invariance(self):
        rng = np.random.default_rng(400)
        values = rng.integers(0, 10**6, 4000)
        expected = np.sort(values)[999]
        for shuffle_seed in range(4):
            assert self._value(values, 1000, 8, 1, shuffle_seed) == expected

    def test_translation_equivariance(self):
        """select(data + c, k) == select(data, k) + c."""
        rng = np.random.default_rng(401)
        values = rng.integers(0, 1000, 2000).astype(np.int64)
        m1 = Machine(p=4, seed=2)
        d1 = DistArray.from_global(m1, values)
        m2 = Machine(p=4, seed=2)
        d2 = DistArray.from_global(m2, values + 777)
        assert select_kth(m2, d2, 500) == select_kth(m1, d1, 500) + 777

    def test_negation_duality(self):
        """k-th smallest of -x == -(k-th largest of x)."""
        rng = np.random.default_rng(402)
        values = rng.integers(0, 10**6, 3000).astype(np.int64)
        m1 = Machine(p=4, seed=3)
        d1 = DistArray.from_global(m1, values)
        m2 = Machine(p=4, seed=3)
        d2 = DistArray.from_global(m2, -values)
        n = len(values)
        k = 123
        assert select_kth(m2, d2, k) == -select_kth(m1, d1, n - k + 1)

    def test_duplication_shifts_rank(self):
        """Doubling every element doubles every rank boundary."""
        rng = np.random.default_rng(403)
        values = rng.integers(0, 10**5, 1500).astype(np.int64)
        m1 = Machine(p=4, seed=4)
        d1 = DistArray.from_global(m1, values)
        m2 = Machine(p=4, seed=4)
        d2 = DistArray.from_global(m2, np.repeat(values, 2))
        assert select_kth(m1, d1, 700) == select_kth(m2, d2, 1400)


class TestDegenerateInputs:
    def test_single_element_total(self):
        m = Machine(p=8, seed=5)
        chunks = [np.array([42])] + [np.empty(0, dtype=np.int64)] * 7
        d = DistArray(m, chunks)
        assert select_kth(m, d, 1) == 42
        assert ms_select(m, [np.sort(c) for c in chunks], 1) == 42

    def test_two_distinct_values(self):
        m = Machine(p=4, seed=6)
        d = DistArray(m, [np.array([0, 1] * 50)] * 4)
        s = np.sort(d.concat())
        for k in (1, 200, 201, 400):
            assert select_kth(m, d, k) == s[k - 1]

    def test_ams_on_all_equal(self):
        m = Machine(p=4, seed=7)
        seqs = [np.zeros(100) for _ in range(4)]
        res = ams_select(m, seqs, 50, 150)
        assert 50 <= res.k <= 150
        assert sum(res.cuts) == res.k

    def test_frequent_single_distinct_key(self):
        m = Machine(p=4, seed=8)
        d = DistArray(m, [np.full(500, 9, dtype=np.int64)] * 4)
        res = top_k_frequent_exact(m, d, 3)
        assert res.items == ((9, 2000.0),)

    def test_sums_all_zero_but_one(self):
        m = Machine(p=4, seed=9)
        keys = [np.arange(10, dtype=np.int64)] * 4
        values = [np.zeros(10)] * 3 + [np.eye(1, 10, 3).ravel() * 100.0]
        kv = DistKeyValue(m, keys, values)
        res = top_k_sums_ec(m, kv, 1, k_star=4)
        assert res.items[0][0] == 3
        assert res.items[0][1] == pytest.approx(100.0)

    def test_one_pe_machine_runs_everything(self):
        m = Machine(p=1, seed=10)
        d = DistArray(m, [np.arange(100, dtype=np.int64)])
        assert select_kth(m, d, 50) == 49
        res = top_k_frequent_pac(m, d, 5, rho=1.0)
        assert len(res.items) == 5
        kv = DistKeyValue(m, [np.arange(10, dtype=np.int64)], [np.ones(10)])
        assert top_k_sums_ec(m, kv, 2, k_star=4).items[0][1] == 1.0


class TestSeedDeterminism:
    def test_full_pipeline_bit_reproducible(self):
        def run(seed):
            m = Machine(p=8, seed=seed)
            d = DistArray.generate(m, lambda r, g: g.integers(0, 1000, 500))
            v = select_kth(m, d, 2000)
            res = top_k_frequent_pac(m, d, 4, rho=0.5)
            return v, res.items, m.metrics.total_traffic, m.clock.makespan

        a = run(123)
        b = run(123)
        c = run(124)
        assert a == b
        assert a != c  # different seed gives different trace
