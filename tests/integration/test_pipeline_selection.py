"""Integration: selection pipelines across modules.

Generate (bench workloads) -> select (Section 4) -> redistribute
(Section 9) -> verify, end to end on one machine instance, with
communication accounting sanity checks along the way.
"""

import numpy as np
import pytest

from repro.bench.workloads import selection_workload
from repro.machine import DistArray, Machine
from repro.redistribution import redistribute
from repro.selection import (
    ams_select,
    ms_select,
    select_kth,
    select_topk_largest,
    select_topk_smallest,
)


class TestSelectThenRedistribute:
    def test_full_pipeline(self):
        m = Machine(p=16, seed=100)
        data = selection_workload(m, 2000)
        k = 5000
        sel, thr = select_topk_largest(m, data, k)
        # the selected set may be arbitrarily skewed; redistribution
        # must even it out while preserving content
        before = np.sort(sel.concat())
        balanced, stats = redistribute(m, sel)
        assert np.array_equal(np.sort(balanced.concat()), before)
        n_bar = -(-k // 16)
        assert all(s <= n_bar for s in balanced.sizes())

    def test_pipeline_makespan_accumulates(self):
        m = Machine(p=8, seed=101)
        data = selection_workload(m, 1000)
        with m.phase("select"):
            sel, _ = select_topk_smallest(m, data, 500)
        with m.phase("balance"):
            redistribute(m, sel)
        rep = m.report()
        assert [ph.name for ph in rep.phases] == ["select", "balance"]
        assert rep.makespan >= max(ph.time for ph in rep.phases)


class TestCrossAlgorithmConsistency:
    """The three selection algorithms must agree on the same data."""

    def test_unsorted_vs_sorted_vs_flexible(self):
        m = Machine(p=8, seed=102)
        data = DistArray.generate(m, lambda r, g: g.random(3000))
        k = 9000
        v_unsorted = select_kth(m, data, k)
        sorted_chunks = [np.sort(c) for c in data.chunks]
        v_sorted = ms_select(m, sorted_chunks, k)
        assert v_unsorted == v_sorted
        res = ams_select(m, sorted_chunks, k, k + 2000)
        s = np.sort(data.concat())
        assert s[res.k - 1] == res.value

    def test_permutation_invariance_across_pes(self):
        """Moving elements between PEs must not change the answer."""
        rng = np.random.default_rng(103)
        values = rng.integers(0, 10**6, 8000)
        k = 1234
        expected = np.sort(values)[k - 1]
        for trial in range(3):
            m = Machine(p=8, seed=trial)
            perm = rng.permutation(len(values))
            data = DistArray.from_global(m, values[perm])
            assert select_kth(m, data, k) == expected

    def test_duplicate_only_input(self):
        m = Machine(p=8, seed=104)
        data = DistArray(m, [np.full(100, 42)] * 8)
        assert select_kth(m, data, 1) == 42
        assert select_kth(m, data, 800) == 42
        sel, _ = select_topk_smallest(m, data, 137)
        assert sel.global_size == 137


class TestCommunicationRegression:
    def test_volume_independent_of_local_size(self):
        """Theorem 1's point: growing n/p must not grow the per-PE
        communication volume proportionally."""
        vols = []
        for n_per_pe in (1000, 8000):
            m = Machine(p=16, seed=105)
            data = selection_workload(m, n_per_pe)
            m.reset()
            select_kth(m, data, data.global_size // 2)
            vols.append(m.metrics.bottleneck_words)
        assert vols[1] < 3 * vols[0]

    def test_latency_polylogarithmic_in_p(self):
        startups = []
        for p in (4, 64):
            m = Machine(p=p, seed=106)
            data = selection_workload(m, 512)
            m.reset()
            select_kth(m, data, data.global_size // 2)
            startups.append(m.metrics.bottleneck_startups)
        # weak scaling: 16x more PEs also means 16x larger n, so both the
        # level count (log n) and the per-level collectives (log p) grow;
        # the product must still stay far below the 16x data growth
        assert startups[1] < 12 * startups[0]
