"""Integration: fault injection -> detection -> recovery on live pools.

The acceptance matrix of the fault-tolerance layer: every injected
worker death surfaces as a structured
:class:`~repro.machine.WorkerFailure` (never a hang -- detection is
bounded by ``command_timeout``), a broken pool either refuses cleanly
(journal off) or restores itself bit-identically (journal on /
driver-born chunks), and the serve engine keeps answering through one
injected death.
"""

import time

import numpy as np
import pytest

from repro.machine import FaultPlan, Machine, WorkerFailure
from repro.machine.backends.shm import segment_names
from repro.machine.faults import FAULT_EXIT

BACKENDS = ["mp", "tcp"]


def _drive(machine, rounds=6):
    """``rounds`` serial allreduce commands (seq 1..rounds)."""
    out = None
    for i in range(rounds):
        out = machine.allreduce([float(i + 1)] * machine.p, op="sum")
    return out


def _bump(rank, chunk, inc):
    """Module-level resident kernel (pickles across the pool fork)."""
    return chunk + inc, None


# ----------------------------------------------------------------------
# Kill matrix: every rank, several pool widths, both real transports
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("p", [2, 4, 5])
class TestKillMatrix:
    def test_every_rank_death_is_detected(self, backend, p):
        for rank in range(p):
            machine = Machine(
                p=p, seed=11, backend=backend,
                faults=FaultPlan().kill(rank, seq=3),
                command_timeout=10,
            )
            fam = getattr(machine.backend, "_shm_family", None)
            try:
                t0 = time.monotonic()
                with pytest.raises(WorkerFailure) as ei:
                    _drive(machine, rounds=6)
                took = time.monotonic() - t0
                exc = ei.value
                assert exc.phase == "dead"
                assert exc.rank == rank
                assert exc.seq == 3
                # detection is the fast liveness probe, not the deadline
                assert took < 10, f"rank {rank} death took {took:.1f}s"
                assert machine.backend.broken
                if backend == "mp":
                    proc = machine.backend._workers[rank]
                    assert not proc.is_alive()
                    assert proc.exitcode == FAULT_EXIT
            finally:
                machine.close()
            assert not any(
                w.is_alive() for w in machine.backend._workers
            ), "workers survived close()"
            if backend == "mp" and fam is not None:
                assert segment_names(fam) == [], "leaked shm segments"


# ----------------------------------------------------------------------
# Detection modes beyond a plain kill
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestDetectionModes:
    def test_hung_pool_surfaces_within_command_timeout(self, backend):
        machine = Machine(
            p=2, seed=3, backend=backend,
            faults=FaultPlan().delay(0, seq=2, seconds=30.0),
            command_timeout=3,
        )
        try:
            _drive(machine, rounds=1)  # seq 1 is clean
            t0 = time.monotonic()
            with pytest.raises(WorkerFailure) as ei:
                _drive(machine, rounds=1)
            took = time.monotonic() - t0
            assert ei.value.phase == "hung"
            assert 2.5 <= took < 10, f"hang detection took {took:.1f}s"
            assert 0 in ei.value.ranks
        finally:
            machine.close()

    def test_truncated_result_frame_is_a_death_not_a_hang(self, backend):
        machine = Machine(
            p=3, seed=5, backend=backend,
            faults=FaultPlan().truncate(1, seq=2),
            command_timeout=15,
        )
        try:
            _drive(machine, rounds=1)
            t0 = time.monotonic()
            with pytest.raises(WorkerFailure) as ei:
                _drive(machine, rounds=1)
            assert time.monotonic() - t0 < 15
            assert ei.value.phase == "dead"
            assert 1 in ei.value.ranks
        finally:
            machine.close()

    def test_severed_peer_link_hangs_the_exchange_not_the_driver(self, backend):
        if backend == "mp":
            pytest.skip("mp severs the peer's inbox writer; covered on tcp "
                        "where a cut socket is detectable")
        machine = Machine(
            p=3, seed=7, backend=backend,
            faults=FaultPlan().sever(1, seq=2, peer=0),
            command_timeout=5,
        )
        try:
            _drive(machine, rounds=1)
            t0 = time.monotonic()
            with pytest.raises(WorkerFailure) as ei:
                _drive(machine, rounds=1)
            took = time.monotonic() - t0
            assert took < 12
            assert ei.value.phase in ("hung", "dead")
        finally:
            machine.close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------

class TestRecovery:
    def test_broken_pool_without_journal_fails_clean_then_recovers(self):
        machine = Machine(
            p=2, seed=13, backend="mp",
            faults=FaultPlan().kill(1, seq=2),
            command_timeout=10,
        )
        try:
            with pytest.raises(WorkerFailure):
                _drive(machine, rounds=3)
            # journal off: further use refuses with a pointer at the knob
            with pytest.raises(RuntimeError, match="journal"):
                machine.allreduce([1.0, 1.0], op="sum")
            machine.recover()
            assert not machine.backend.broken
            assert machine.backend.recoveries == 1
            # the recovered pool is fault-free: the same seqs run clean
            assert _drive(machine, rounds=3) == [3.0 * 2] * 2
        finally:
            machine.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_journal_replays_worker_computed_chunks_bit_identical(
        self, backend
    ):
        chunks = [np.arange(64, dtype=np.float64) + 100.0 * r
                  for r in range(2)]
        # the oracle: the same resident pipeline on the sim backend
        sim = Machine(p=2, seed=21, backend="sim")
        ref_s = sim.backend.put_chunks([c.copy() for c in chunks])
        (out_s,), _, _ = sim.backend.map_resident(
            _bump, [ref_s], n_out=1, args=[(r + 1,) for r in range(2)]
        )
        want = sim.backend.get_chunks(out_s)

        machine = Machine(
            p=2, seed=21, backend=backend, journal=True,
            faults=FaultPlan().kill(0, seq=4),
            command_timeout=10,
        )
        try:
            backend_ = machine.backend
            ref = backend_.put_chunks([c.copy() for c in chunks])   # seq 1
            (out,), _, _ = backend_.map_resident(                   # seq 2
                _bump, [ref], n_out=1, args=[(r + 1,) for r in range(2)]
            )
            before = [np.array(c) for c in backend_.get_chunks(out)]  # seq 3
            for got, exp in zip(before, want):
                np.testing.assert_array_equal(got, exp)
            with pytest.raises(WorkerFailure):
                _drive(machine, rounds=1)                           # seq 4
            # journal on: the next command auto-recovers the pool and
            # replays the provenance of every live ref
            assert machine.allreduce([1.0, 1.0], op="sum") == [2.0, 2.0]
            assert backend_.recoveries == 1
            after = backend_.get_chunks(out)
            for got, exp in zip(after, want):
                np.testing.assert_array_equal(got, exp)
        finally:
            machine.close()
            sim.close()

    def test_driver_born_chunks_survive_broken_close_without_journal(self):
        chunks = [np.full(32, float(r)) for r in range(2)]
        machine = Machine(
            p=2, seed=31, backend="mp",
            faults=FaultPlan().kill(1, seq=3),
            command_timeout=10,
        )
        try:
            ref = machine.backend.put_chunks(chunks)  # seq 1
            with pytest.raises(WorkerFailure):
                _drive(machine, rounds=2)  # dies at seq 3
        finally:
            machine.close()
        # put-born refs alias the driver store: readable after the wreck
        salvaged = machine.backend.get_chunks(ref)
        for got, exp in zip(salvaged, chunks):
            np.testing.assert_array_equal(got, exp)


# ----------------------------------------------------------------------
# Serve-engine failure isolation
# ----------------------------------------------------------------------

class TestServeIsolation:
    def test_engine_survives_one_injected_death(self):
        from repro.serve import default_datasets, QueryEngine

        with Machine(p=2, seed=99, backend="sim") as oracle_m:
            values = np.sort(
                default_datasets(oracle_m, 2000)["default"].concat()
            )
        n = values.size
        machine = Machine(
            p=2, seed=99, backend="mp",
            faults=FaultPlan().kill(1, seq=4),
            command_timeout=15,
        )
        engine = QueryEngine(
            machine, default_datasets(machine, 2000), batch_window=0.0
        )
        try:
            failed = 0
            answered = []
            for i in range(10):
                k = (i * 397) % n + 1
                try:
                    got = engine.query(op="select", k=k)
                except RuntimeError:
                    failed += 1
                    continue
                answered.append((k, got))
            assert failed >= 1, "the injected death never hit a query"
            assert len(answered) >= 5
            for k, got in answered:
                assert got == values[k - 1]
            assert engine.stats["worker_failures"] >= 1
            assert engine.stats["rebuilds"] >= 1
        finally:
            engine.close()
