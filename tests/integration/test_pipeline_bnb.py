"""Integration: branch-and-bound on the bulk priority queue vs DP."""

import numpy as np
import pytest

from repro.apps import (
    knapsack_dp,
    random_knapsack,
    solve_knapsack_parallel,
    solve_knapsack_sequential,
)
from repro.machine import Machine


class TestOptimality:
    @pytest.mark.parametrize("seed", range(6))
    def test_parallel_matches_dp_many_instances(self, seed):
        rng = np.random.default_rng(300 + seed)
        inst = random_knapsack(rng, n_items=24, tightness=0.3 + 0.05 * seed)
        m = Machine(p=4, seed=seed)
        res = solve_knapsack_parallel(m, inst)
        assert res.optimum == pytest.approx(knapsack_dp(inst))

    def test_larger_instance(self):
        rng = np.random.default_rng(310)
        inst = random_knapsack(rng, n_items=40, tightness=0.5)
        m = Machine(p=8, seed=1)
        res = solve_knapsack_parallel(m, inst)
        assert res.optimum == pytest.approx(knapsack_dp(inst))


class TestParallelStructure:
    def test_flexible_deletes_engage_many_pes(self):
        rng = np.random.default_rng(320)
        inst = random_knapsack(rng, n_items=34, tightness=0.5)
        m = Machine(p=8, seed=2)
        solve_knapsack_parallel(m, inst)
        busy = (m.clock.work_time > 0).sum()
        assert busy >= 4  # more than half the PEs did real work

    def test_communication_is_coordination_only(self):
        """Traffic should be dominated by selection reductions, not node
        payloads: total traffic stays far below nodes * node size."""
        rng = np.random.default_rng(330)
        inst = random_knapsack(rng, n_items=30, tightness=0.5)
        m = Machine(p=8, seed=3)
        res = solve_knapsack_parallel(m, inst)
        per_node_words = 3
        assert m.metrics.by_kind.get("p2p", 0) == 0
        # seeds move once via scatter; nothing else ships nodes
        moved = m.metrics.by_kind.get("scatter", 0)
        assert moved <= 4 * 8 * per_node_words * 4

    def test_sequential_reference_expands_fewer_or_equal(self):
        rng = np.random.default_rng(340)
        inst = random_knapsack(rng, n_items=30, tightness=0.45)
        seq = solve_knapsack_sequential(inst)
        m = Machine(p=8, seed=4)
        par = solve_knapsack_parallel(m, inst)
        # parallel best-first may speculatively expand extra nodes
        # (K = m + O(hp)); it must never expand fewer than optimal path
        assert par.nodes_expanded >= 1
        assert par.nodes_expanded <= 10 * seq.nodes_expanded + 50 * 8
