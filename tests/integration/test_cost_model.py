"""Integration: the cost model end to end.

The modeled times must (a) follow the analytic formulas exactly for
single collectives, (b) order machine classes sensibly (WAN >> ethernet
>> InfiniBand for latency-bound algorithms), and (c) split into
work/communication components that react to the right knobs.
"""

import numpy as np
import pytest

from repro.machine import CostParams, DistArray, Machine
from repro.machine.calibrate import preset
from repro.machine.cost import FREE_COMMUNICATION, log2_ceil
from repro.selection import ms_select, select_kth


class TestFormulaExactness:
    def test_broadcast_time_matches_formula(self):
        c = CostParams(alpha=1.0, beta=0.1, time_per_op=0.0)
        m = Machine(p=8, cost=c, seed=0)
        m.broadcast(np.zeros(50))
        expected = c.alpha * log2_ceil(8) + c.beta * 50
        assert m.clock.makespan == pytest.approx(expected)

    def test_allreduce_time_matches_formula(self):
        c = CostParams(alpha=2.0, beta=0.5, time_per_op=0.0)
        m = Machine(p=16, cost=c, seed=0)
        m.allreduce([np.zeros(10)] * 16)
        expected = c.alpha * 4 + 2 * c.beta * 10
        assert m.clock.makespan == pytest.approx(expected)

    def test_p2p_time_matches_formula(self):
        c = CostParams(alpha=3.0, beta=0.25, time_per_op=0.0)
        m = Machine(p=4, cost=c, seed=0)
        m.send(0, 1, np.zeros(100))
        assert m.clock.makespan == pytest.approx(3.0 + 25.0)

    def test_sequenced_collectives_accumulate(self):
        c = CostParams(alpha=1.0, beta=0.0, time_per_op=0.0)
        m = Machine(p=8, cost=c, seed=0)
        for _ in range(5):
            m.barrier()
        assert m.clock.makespan == pytest.approx(5 * 3.0)


class TestMachineClassOrdering:
    def _run_selection(self, cost):
        m = Machine(p=16, cost=cost, seed=1)
        data = DistArray.generate(m, lambda r, g: g.random(2000))
        m.reset()
        select_kth(m, data, 16_000)
        return m.report()

    def test_wan_much_slower_than_cluster(self):
        fast = self._run_selection(preset("infiniband-cluster"))
        slow = self._run_selection(preset("wan"))
        assert slow.makespan > 100 * fast.makespan

    def test_free_communication_isolates_work(self):
        free = self._run_selection(FREE_COMMUNICATION)
        # with alpha = beta = 0 the makespan is pure (possibly skewed)
        # local work; comm_time may still contain waiting at barriers
        assert free.work_time > 0.0
        assert free.makespan <= 1.5 * free.work_time + 1e-12

    def test_latency_bound_algorithm_feels_alpha(self):
        """msSelect is startup-dominated: scaling alpha by 100x must
        scale its makespan by nearly as much."""
        def run(alpha):
            c = CostParams(alpha=alpha, beta=1.6e-9, time_per_op=2e-9)
            m = Machine(p=16, cost=c, seed=2)
            seqs = [np.sort(m.rngs[i].random(2000)) for i in range(16)]
            m.reset()
            ms_select(m, seqs, 8000)
            return m.clock.makespan

        t1 = run(1e-6)
        t2 = run(1e-4)
        assert t2 > 30 * t1


class TestWorkCommSplit:
    def test_bigger_input_grows_work_not_comm(self):
        reports = []
        for n_per_pe in (1000, 8000):
            m = Machine(p=8, seed=3)
            data = DistArray.generate(m, lambda r, g: g.random(n_per_pe))
            m.reset()
            select_kth(m, data, data.global_size // 2)
            reports.append(m.report())
        assert reports[1].work_time > 3 * reports[0].work_time
        assert reports[1].comm_time < 5 * max(reports[0].comm_time, 1e-12)

    def test_imbalance_visible_in_report(self):
        m = Machine(p=8, seed=4)
        chunks = [np.random.default_rng(0).random(8000)] + [
            np.empty(0) for _ in range(7)
        ]
        data = DistArray(m, chunks)
        m.reset()
        select_kth(m, data, 4000)
        rep = m.report()
        assert rep.imbalance > 3.0  # one PE did almost all the work
