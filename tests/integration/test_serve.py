"""Integration: the ``repro serve`` front-end (engine + TCP server).

Engine-level tests drive :class:`QueryEngine` directly (sim and mp
backends): correctness against driver-side oracles, query fusion
(many rank queries -> one ``multi_select``), frequent-query dedup, and
error isolation.  The server-level test runs the real asyncio TCP
front-end in a background thread and exercises the JSON-lines protocol
end to end, including concurrent clients fusing into one batch.
"""

import threading

import numpy as np
import pytest

from repro.machine import Machine
from repro.serve import QueryEngine, ServeClient, default_datasets
from repro.serve.server import serve_forever


def _engine(backend="sim", p=4, n=2000, window=0.02, **kw):
    machine = Machine(p=p, seed=99, backend=backend)
    datasets = default_datasets(machine, n)
    return QueryEngine(machine, datasets, batch_window=window, **kw)


def _oracle(p=4, n=2000):
    with Machine(p=p, seed=99) as m:
        ds = default_datasets(m, n)
        values = np.sort(ds["default"].concat())
        keys = ds["keys"].concat()
    return values, keys


class TestQueryEngine:
    def test_rank_queries_match_oracle(self):
        values, _ = _oracle()
        n = values.size
        engine = _engine()
        try:
            assert engine.query(op="select", k=1) == values[0]
            assert engine.query(op="select", k=n) == values[-1]
            assert engine.query(op="quantile", q=0.5) == values[n // 2 - 1]
            assert engine.query(op="topk", k=3) == values[-3:][::-1].tolist()
        finally:
            engine.close()

    def test_burst_fuses_to_one_command(self):
        values, _ = _oracle()
        n = values.size
        engine = _engine(window=0.2)
        try:
            futures = [
                engine.submit({"op": "select", "k": 7}),
                engine.submit({"op": "quantile", "q": 0.25}),
                engine.submit({"op": "topk", "k": 5}),
                engine.submit({"op": "select", "k": n // 2}),
            ]
            got = [f.result(timeout=60) for f in futures]
            assert got[0] == values[6]
            assert got[3] == values[n // 2 - 1]
            assert engine.stats["queries"] == 4
            assert engine.stats["batches"] == 1
            assert engine.stats["fused_commands"] == 1
        finally:
            engine.close()

    def test_frequent_queries_dedupe(self):
        _, keys = _oracle()
        uniq, counts = np.unique(keys, return_counts=True)
        want = [
            [int(key), float(c)]
            for key, c in sorted(zip(uniq, counts), key=lambda t: (-t[1], t[0]))[:4]
        ]
        engine = _engine(window=0.2)
        try:
            futures = [
                engine.submit({"op": "frequent", "k": 4, "dataset": "keys"})
                for _ in range(3)
            ]
            got = [f.result(timeout=60) for f in futures]
            assert got == [want] * 3
            assert engine.stats["fused_commands"] == 1
        finally:
            engine.close()

    def test_bad_query_does_not_poison_the_batch(self):
        values, _ = _oracle()
        engine = _engine(window=0.2)
        try:
            futures = [
                engine.submit({"op": "select", "k": 10**9}),   # out of range
                engine.submit({"op": "nonsense"}),             # unknown op
                engine.submit({"op": "select", "k": 5, "dataset": "nope"}),
                engine.submit({"op": "select", "k": 1}),       # healthy
            ]
            for bad in futures[:3]:
                with pytest.raises(Exception):
                    bad.result(timeout=60)
            assert futures[3].result(timeout=60) == values[0]
        finally:
            engine.close()

    def test_mp_backend_pipelines_under_load(self):
        values, _ = _oracle()
        n = values.size
        engine = _engine(backend="mp", window=0.2)
        try:
            futures = [
                engine.submit({"op": "select", "k": 1 + (i * 37) % n})
                for i in range(6)
            ]
            for i, f in enumerate(futures):
                assert f.result(timeout=120) == values[(1 + (i * 37) % n) - 1]
            assert engine.stats["fused_commands"] == 1
            # the fused multi_select overlaps wrap with level 1
            assert engine.machine.backend.max_inflight > 1
        finally:
            engine.close()

    def test_submit_after_close_fails_fast(self):
        engine = _engine()
        engine.close()
        with pytest.raises(Exception):
            engine.submit({"op": "select", "k": 1}).result(timeout=10)


class TestServeServer:
    def test_tcp_round_trip_with_concurrent_clients(self):
        values, _ = _oracle(p=2, n=1000)
        n = values.size
        machine = Machine(p=2, seed=99, backend="mp")
        engine = QueryEngine(
            machine, default_datasets(machine, 1000), batch_window=0.1
        )
        port_box: list[int] = []
        ready = threading.Event()

        def ready_cb(port):
            port_box.append(port)
            ready.set()

        server = threading.Thread(
            target=serve_forever,
            args=(engine, "127.0.0.1", 0),
            kwargs={"ready_cb": ready_cb},
            daemon=True,
        )
        server.start()
        assert ready.wait(timeout=60)
        port = port_box[0]

        results = {}

        def client_worker(tid):
            with ServeClient("127.0.0.1", port) as c:
                results[tid] = c.query_many([
                    {"op": "select", "k": tid + 1},
                    {"op": "topk", "k": 2},
                ])

        threads = [
            threading.Thread(target=client_worker, args=(t,)) for t in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        for tid in range(3):
            assert results[tid][0] == values[tid]
            assert results[tid][1] == values[-2:][::-1].tolist()

        with ServeClient("127.0.0.1", port) as control:
            assert control.query("ping") == "pong"
            sizes = control.query("datasets")
            assert sizes == {"default": 1000, "keys": 1000}
            stats = control.query("stats")
            assert stats["queries"] == 6
            assert stats["fused_commands"] < stats["queries"]
            control.query("shutdown")
        server.join(timeout=60)
        assert not server.is_alive()
        assert engine.machine.backend.closed


# ----------------------------------------------------------------------
# Hardening: admission bound, query deadlines, client receive deadline
# ----------------------------------------------------------------------

class TestServeHardening:
    def test_overload_sheds_beyond_max_queue(self):
        from repro.serve import OverloadedError

        values, _ = _oracle()
        engine = _engine(window=0.0, max_batch=1, max_queue=2)
        gate = threading.Event()
        orig = engine._execute

        def gated(batch):
            gate.wait(30.0)
            orig(batch)

        engine._execute = gated
        try:
            futs = [engine.submit({"op": "select", "k": 1}) for _ in range(6)]
            shed = [
                f for f in futs
                if f.done() and isinstance(f.exception(), OverloadedError)
            ]
            # one query is (at most) in execution, max_queue=2 may wait;
            # everything beyond that must shed immediately, not queue up
            assert len(shed) >= 3
            assert engine.stats["overloads"] == len(shed)
            assert "retry with backoff" in str(shed[0].exception())
            gate.set()
            # the admitted head of the burst still answers correctly
            assert futs[0].result(timeout=60) == values[0]
        finally:
            gate.set()
            engine.close()

    def test_query_deadline_expires_stale_queries(self):
        from repro.serve import QueryError

        values, _ = _oracle()
        engine = _engine(window=0.0)
        try:
            # a deadline of 0 expires in admission, before any backend work
            with pytest.raises(QueryError, match="expired"):
                engine.submit(
                    {"op": "select", "k": 1, "deadline": 0.0}
                ).result(timeout=60)
            assert engine.stats["expired"] == 1
            # a generous deadline does not interfere
            assert engine.query(op="select", k=1, deadline=60.0) == values[0]
        finally:
            engine.close()

    def test_client_receive_deadline_names_pending_ids(self):
        """A server dribbling a partial JSON line must not hold the
        client forever: the overall per-response deadline fires and the
        error names what was in flight."""
        import socket
        import time

        srv = socket.create_server(("127.0.0.1", 0))
        port = srv.getsockname()[1]

        def dribble():
            conn, _ = srv.accept()
            conn.recv(65536)  # the request line
            conn.sendall(b'{"id": 1, "ok": true, "result": 4')  # no \n
            time.sleep(3.0)  # hold the socket open past the deadline
            conn.close()

        t = threading.Thread(target=dribble, daemon=True)
        t.start()
        client = ServeClient("127.0.0.1", port, timeout=0.5)
        try:
            t0 = time.monotonic()
            with pytest.raises(TimeoutError) as ei:
                client.query("select", k=1)
            took = time.monotonic() - t0
            assert took < 2.5, f"deadline did not bound the recv ({took:.1f}s)"
            msg = str(ei.value)
            assert "pending query ids: [1]" in msg
            assert "partial line buffered" in msg
        finally:
            client.close()
            srv.close()
            t.join(timeout=10)
