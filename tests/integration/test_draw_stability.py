"""Integration: counter-addressed draws are stable under every issue
schedule (the acceptance bar of the stateless-RNG conversion).

With draws addressed by ``(seed, stream, rank, seq, draw)`` instead of
shipped generator state (:mod:`repro.machine.ctrrng`), nothing about
*when* or *where* a command executes may change what it draws.  Three
schedule perturbations are locked in here:

* **pipeline depth** -- depth 8 overlaps command issue and settles
  results out of order; every rng-consuming algorithm must return the
  exact bits of the serial depth-1 run;
* **serve fusion** -- a fused query batch (one ``multi_select`` for
  many rank queries) must answer exactly what the same queries answer
  one at a time;
* **kill/recover** -- a journal replay re-runs kernels from recorded
  draw *addresses* (no generator state is journaled); the restored
  resident state and everything computed after recovery must match a
  machine that never failed.
"""

import numpy as np
import pytest

from repro.frequent import top_k_frequent_pac
from repro.machine import DistArray, FaultPlan, Machine, WorkerFailure
from repro.pqueue import BulkParallelPQ, RandomAllocPQ
from repro.selection import multi_select, select_kth
from repro.serve import QueryEngine, default_datasets
from repro.testing import make_dist


def _rng_workload(machine, seed):
    """Every counter-addressed draw site: in-kernel Bernoulli sampling
    (unsorted selection), per-level multiselection samples, PAC
    frequent sampling with a forced rho < 1, and both priority queues
    (treap priorities, shared pivot streams, random allocation)."""
    p = machine.p
    out = []
    d = make_dist(machine, np.random.default_rng(seed), 500)
    n = d.global_size
    out.append(select_kth(machine, d, n // 3))
    out.append(multi_select(machine, d, [1, n // 4, n // 2, n]))
    rng = np.random.default_rng(seed + 1)
    keys = DistArray(
        machine, [rng.integers(0, 40, 300).astype(np.int64) for _ in range(p)]
    )
    out.append(top_k_frequent_pac(machine, keys, 5, rho=0.5).items)
    q = BulkParallelPQ(machine)
    r = np.random.default_rng(seed + 2)
    for _ in range(2):
        q.insert([list(r.random(25)) for _ in range(p)])
        out.append(q.delete_min(5 * p))
    out.append(q.delete_min_flexible(2, 4 * p))
    kz = RandomAllocPQ(machine)
    kz.insert([list(r.random(20)) for _ in range(p)])
    out.append(kz.delete_min(6 * p))
    return out


class TestDepthStability:
    @pytest.mark.parametrize("p", [2, 4])
    def test_bit_identical_across_pipeline_depths(self, p):
        """Overlapped issue (depth 8, coalesced frames, out-of-order
        settling) draws the same bits as serial issue (depth 1)."""
        serial = Machine(p=p, seed=61, backend="mp", pipeline_depth=1)
        piped = Machine(p=p, seed=61, backend="mp", pipeline_depth=8)
        with serial, piped:
            out_serial = _rng_workload(serial, seed=37)
            out_piped = _rng_workload(piped, seed=37)
            assert out_serial == out_piped
            assert serial.backend.max_inflight == 1
            if p > 1:
                assert piped.backend.max_inflight > 1

    @pytest.mark.parametrize("depth", [1, 8])
    def test_real_backend_matches_sim_at_every_depth(self, depth):
        """The address stream is issue-ordered, so the in-process sim
        (which never overlaps) is the oracle for every depth."""
        sim = Machine(p=4, seed=62)
        real = Machine(p=4, seed=62, backend="mp", pipeline_depth=depth)
        with real:
            assert _rng_workload(sim, seed=41) == _rng_workload(real, seed=41)
        sim.close()


class TestServeFusionStability:
    QUERIES = [
        {"op": "select", "k": 7},
        {"op": "quantile", "q": 0.25},
        {"op": "topk", "k": 5},
        {"op": "frequent", "k": 4, "dataset": "keys"},
        {"op": "select", "k": 900},
    ]

    def _engine(self, window):
        machine = Machine(p=4, seed=63, backend="mp")
        datasets = default_datasets(machine, 1200)
        return QueryEngine(machine, datasets, batch_window=window)

    def test_fused_batch_answers_match_one_at_a_time(self):
        engine = self._engine(window=0.01)
        try:
            # sequential blocking queries: every one is its own batch
            unfused = [engine.query(**q) for q in self.QUERIES]
            assert engine.stats["batches"] == len(self.QUERIES)
        finally:
            engine.close()
        engine = self._engine(window=0.3)
        try:
            futures = [engine.submit(dict(q)) for q in self.QUERIES]
            fused = [f.result(timeout=60) for f in futures]
            assert engine.stats["batches"] == 1
        finally:
            engine.close()
        assert fused == unfused


class TestRecoveryStability:
    def _phase_a(self, machine, seed):
        """Resident rng-consuming state: treap priorities and pivot
        streams all derive from journaled draw addresses."""
        q = BulkParallelPQ(machine)
        rng = np.random.default_rng(seed)
        for _ in range(2):
            q.insert([list(rng.random(20)) for _ in range(machine.p)])
        first = q.delete_min(4 * machine.p)
        return q, first

    def _phase_b(self, machine, q, seed):
        rng = np.random.default_rng(seed)
        q.insert([list(rng.random(15)) for _ in range(machine.p)])
        return [q.peek_min(), q.delete_min(3 * machine.p),
                q.delete_min_flexible(2, 2 * machine.p)]

    def test_journal_recovery_replays_identical_draws(self):
        """Kill a worker between algorithm calls; the journal replay
        reconstructs the treaps from recorded draw addresses alone, and
        post-recovery draws continue the exact fault-free stream."""
        # calibrate where the kill lands: the drive phase right after
        # phase A (allreduces allocate no draw seqs, so a retry there
        # cannot skew the address stream)
        with Machine(p=2, seed=88, backend="mp") as scratch:
            self._phase_a(scratch, seed=5)
            kill_seq = scratch.backend._seq + 2

        oracle = Machine(p=2, seed=88, backend="sim")
        q_o, first_o = self._phase_a(oracle, seed=5)

        faulty = Machine(
            p=2, seed=88, backend="mp", journal=True,
            faults=FaultPlan().kill(1, seq=kill_seq),
            command_timeout=10,
        )
        try:
            q_f, first_f = self._phase_a(faulty, seed=5)
            assert first_f == first_o
            with pytest.raises(WorkerFailure):
                for _ in range(3):
                    faulty.allreduce([1.0, 1.0], op="sum")
            # journal on: the next command auto-recovers and replays
            # every live ref's provenance (addresses, not rng states)
            assert faulty.allreduce([1.0, 1.0], op="sum") == [2.0, 2.0]
            assert faulty.backend.recoveries == 1
            assert self._phase_b(faulty, q_f, seed=9) == \
                self._phase_b(oracle, q_o, seed=9)
        finally:
            faulty.close()
            oracle.close()
