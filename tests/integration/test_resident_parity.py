"""Integration: resident-SPMD execution is bit-identical across every
backend with unchanged modeled cost.

Covers the subsystems converted to resident-chunk SPMD execution after
the selection/frequent pipelines: multiselection (and quantiles), data
redistribution, and both bulk priority queues.  Each test builds a sim
machine and a *real* machine (``mp`` or ``tcp`` -- both run the shared
worker runtime, over pipes and sockets respectively) from the same
seed, runs the same workload, and demands identical outputs *and*
identical modeled quantities (makespan, bottleneck volume/startups) --
the acceptance bar of the conversion and of the transport split.

The parameter grid includes a non-power-of-two p so the in-worker
schedules' general-p paths are exercised end to end; the socket
transport runs at p in {1, 2, 4, 5} (same runtime, so the p=8
mesh-heavy case stays with the cheaper pipe transport).
"""

import time

import numpy as np
import pytest

from repro.aggregation import DistKeyValue, top_k_sums_ec
from repro.machine import DistArray, Machine
from repro.pqueue import BulkParallelPQ, RandomAllocPQ
from repro.redistribution import naive_rebalance, redistribute
from repro.selection import multi_select, quantiles, select_topk_smallest
from repro.testing import make_dist, sorted_oracle

MP_PS = [1, 2, 4, 5, 8]
TCP_PS = [1, 2, 4, 5]

#: (real backend, p) pairs every parity test runs on
GRID = [pytest.param("mp", p, id=f"mp-p{p}") for p in MP_PS] + [
    pytest.param("tcp", p, id=f"tcp-p{p}") for p in TCP_PS
]


def _machines(backend, p, seed):
    return Machine(p=p, seed=seed), Machine(p=p, seed=seed, backend=backend)


def _assert_model_equal(sim, real):
    assert sim.clock.makespan == real.clock.makespan
    assert sim.metrics.bottleneck_words == real.metrics.bottleneck_words
    assert sim.metrics.bottleneck_startups == real.metrics.bottleneck_startups


@pytest.mark.parametrize("backend,p", GRID)
class TestMultiSelectParity:
    def test_multi_select_bit_identical_and_cost_equal(self, backend, p):
        sim, real = _machines(backend, p, seed=41)
        with real:
            rng = np.random.default_rng(5)
            d_sim = make_dist(sim, np.random.default_rng(5), 700)
            d_real = make_dist(real, np.random.default_rng(5), 700)
            n = d_sim.global_size
            ks = [1, 13, n // 3, n // 2, n]
            sim.reset(), real.reset()
            v_sim = multi_select(sim, d_sim, ks)
            v_real = multi_select(real, d_real, ks)
        assert v_sim == v_real
        s = sorted_oracle(d_sim)
        assert v_sim == [s[k - 1] for k in sorted(set(ks))]
        _assert_model_equal(sim, real)

    def test_quantiles(self, backend, p):
        sim, real = _machines(backend, p, seed=42)
        with real:
            d_sim = make_dist(sim, np.random.default_rng(6), 300)
            d_real = make_dist(real, np.random.default_rng(6), 300)
            qs = [0.0, 0.25, 0.5, 0.9, 1.0]
            assert quantiles(sim, d_sim, qs) == quantiles(real, d_real, qs)


@pytest.mark.parametrize("backend,p", GRID)
class TestRedistributionParity:
    def _skewed(self, machine, seed):
        rng = np.random.default_rng(seed)
        sizes = [400] + [7] * (machine.p - 1)
        return DistArray(
            machine,
            [rng.integers(0, 10**6, s).astype(np.int64) for s in sizes],
        )

    def test_redistribute_bit_identical_and_cost_equal(self, backend, p):
        sim, real = _machines(backend, p, seed=43)
        with real:
            d_sim, d_real = self._skewed(sim, 7), self._skewed(real, 7)
            sim.reset(), real.reset()
            o_sim, s_sim = redistribute(sim, d_sim)
            o_real, s_real = redistribute(real, d_real)
            assert s_sim == s_real
            for a, b in zip(o_sim.chunks, o_real.chunks):
                np.testing.assert_array_equal(a, b)
            n_bar = -(-o_sim.global_size // p)
            assert all(s <= n_bar for s in o_sim.sizes())
            _assert_model_equal(sim, real)

    def test_naive_rebalance(self, backend, p):
        sim, real = _machines(backend, p, seed=44)
        with real:
            d_sim, d_real = self._skewed(sim, 8), self._skewed(real, 8)
            o_sim, m_sim = naive_rebalance(sim, d_sim)
            o_real, m_real = naive_rebalance(real, d_real)
            assert m_sim == m_real
            for a, b in zip(o_sim.chunks, o_real.chunks):
                np.testing.assert_array_equal(a, b)
            _assert_model_equal(sim, real)

    def test_balanced_input_shares_the_resident_chunks(self, backend, p):
        """No plan -> no worker exchange; the result aliases the input's
        resident handle instead of copying it."""
        sim, real = _machines(backend, p, seed=45)
        with real:
            rng = np.random.default_rng(9)
            mk = lambda m: DistArray(
                m, [rng.integers(0, 100, 20) for _ in range(p)]
            )
            rng = np.random.default_rng(9)
            d_sim = mk(sim)
            rng = np.random.default_rng(9)
            d_real = mk(real)
            o_sim, s_sim = redistribute(sim, d_sim)
            o_real, s_real = redistribute(real, d_real)
            assert s_sim.moved == s_real.moved == 0
            assert o_real._ref is d_real._ensure_ref()


@pytest.mark.parametrize("backend,p", GRID)
class TestPriorityQueueParity:
    def test_bulk_pq_full_cycle(self, backend, p):
        sim, real = _machines(backend, p, seed=46)
        with real:
            q_sim, q_real = BulkParallelPQ(sim), BulkParallelPQ(real)
            r1, r2 = np.random.default_rng(11), np.random.default_rng(11)
            sim.reset(), real.reset()
            for _ in range(3):
                q_sim.insert([list(r1.random(40)) for _ in range(p)])
                q_real.insert([list(r2.random(40)) for _ in range(p)])
                assert q_sim.peek_min() == q_real.peek_min()
                assert q_sim.total_size() == q_real.total_size()
                res_sim = q_sim.delete_min(15 * p)
                res_real = q_real.delete_min(15 * p)
                assert res_sim == res_real
            f_sim = q_sim.delete_min_flexible(3, 10 * p)
            f_real = q_real.delete_min_flexible(3, 10 * p)
            assert f_sim == f_real
            _assert_model_equal(sim, real)

    def test_bulk_pq_matches_oracle(self, backend, p):
        sim, real = _machines(backend, p, seed=47)
        with real:
            q = BulkParallelPQ(real)
            rng = np.random.default_rng(13)
            batches = [list(rng.random(30)) for _ in range(p)]
            q.insert(batches)
            res = q.delete_min(10 * p)
            got = sorted(s for b in res.batches for s, _ in b)
            allv = sorted(v for b in batches for v in b)
            assert got == pytest.approx(allv[: 10 * p])

    def test_random_alloc_pq(self, backend, p):
        sim, real = _machines(backend, p, seed=48)
        with real:
            q_sim, q_real = RandomAllocPQ(sim), RandomAllocPQ(real)
            r1, r2 = np.random.default_rng(17), np.random.default_rng(17)
            sim.reset(), real.reset()
            q_sim.insert([list(r1.random(30)) for _ in range(p)])
            q_real.insert([list(r2.random(30)) for _ in range(p)])
            assert q_sim.total_size() == q_real.total_size()
            assert q_sim.delete_min(9 * p) == q_real.delete_min(9 * p)
            _assert_model_equal(sim, real)

    def test_insert_stays_communication_free(self, backend, p):
        """Section 5's defining property survives the resident port."""
        with Machine(p=p, seed=49, backend=backend) as real:
            q = BulkParallelPQ(real)
            real.reset()
            q.insert([[0.5, 0.25] for _ in range(p)])
            assert real.metrics.total_traffic == 0


@pytest.mark.parametrize("backend,p", GRID)
class TestTopkCutParity:
    def test_one_step_cut_modeled_cost(self, backend, p):
        """The collapsed count+tie-grant+cut step stays bit-identical
        and model-identical (heavy ties force the tie-grant path)."""
        sim, real = _machines(backend, p, seed=50)
        with real:
            d_sim = make_dist(sim, np.random.default_rng(19), 200, lo=0, hi=5)
            d_real = make_dist(real, np.random.default_rng(19), 200, lo=0, hi=5)
            sim.reset(), real.reset()
            s_sel, s_thr = select_topk_smallest(sim, d_sim, 77)
            r_sel, r_thr = select_topk_smallest(real, d_real, 77)
            assert s_thr == r_thr
            assert s_sel.global_size == r_sel.global_size == 77
            for a, b in zip(s_sel.chunks, r_sel.chunks):
                np.testing.assert_array_equal(a, b)
            _assert_model_equal(sim, real)


# ----------------------------------------------------------------------
# Pipelined issue (depth > 1): bit-identity, cost parity, out-of-order
# completion, and lockstep verification under overlap
# ----------------------------------------------------------------------

def _make_stress_vals(rank: int, base):
    """Worker-born resident array (so get_chunks reads worker state)."""
    return (np.arange(8, dtype=np.float64) + base * (rank + 1), None)


def _delayed_bump(rank: int, vals, delay, inc):
    """In-place mutation behind a rank-skewed delay: completion order
    across ranks differs from issue order, but seq order must hold."""
    time.sleep(delay)
    vals += inc
    return float(vals.sum())


def _pq_mixed_workload(machine, seed):
    """Exercises every overlapped call site: flush+deleteMin,
    flush+peek, wrap+level-1 of multi_select."""
    rng = np.random.default_rng(seed)
    p = machine.p
    q = BulkParallelPQ(machine)
    outs = []
    for _ in range(3):
        q.insert([list(rng.random(25)) for _ in range(p)])
        outs.append(q.peek_min())
        outs.append(q.delete_min(6 * p))
    d = make_dist(machine, np.random.default_rng(seed + 1), 400)
    n = d.global_size
    outs.append(multi_select(machine, d, [1, n // 4, n // 2, n]))
    return outs


@pytest.mark.parametrize("backend,p", GRID)
class TestPipelinedParity:
    def test_pipelined_matches_serial_bit_identical(self, backend, p):
        """depth > 1 changes wall-clock interleaving only: results AND
        modeled cost stay bit-identical with depth = 1."""
        serial = Machine(p=p, seed=52, backend=backend, pipeline_depth=1)
        piped = Machine(p=p, seed=52, backend=backend, pipeline_depth=8)
        with serial, piped:
            serial.reset(), piped.reset()
            out_serial = _pq_mixed_workload(serial, seed=23)
            out_piped = _pq_mixed_workload(piped, seed=23)
            assert out_serial == out_piped
            assert serial.backend.max_inflight == 1
            assert piped.backend.max_inflight > 1
            _assert_model_equal(serial, piped)

    def test_pipelined_matches_sim(self, backend, p):
        sim, real = _machines(backend, p, seed=53)
        with real:
            assert real.backend.pipeline_depth > 1  # default overlaps
            sim.reset(), real.reset()
            assert _pq_mixed_workload(sim, 29) == _pq_mixed_workload(real, 29)
            _assert_model_equal(sim, real)

    def test_out_of_order_completion_stress(self, backend, p):
        """Rank-skewed delays force cross-rank result interleaving
        while several commands are in flight; per-worker seq order and
        the driver's demux must still produce serial semantics."""
        with Machine(p=p, seed=54, backend=backend, pipeline_depth=8) as m:
            backend_ = m.backend
            refs, pend0 = backend_.submit_map_resident(
                _make_stress_vals, [], n_out=1, args=[(10,)] * p
            )
            base = [
                float(np.sum(np.arange(8) + 10 * (r + 1))) for r in range(p)
            ]
            pendings = []
            expect = []
            for i in range(6):
                inc = i + 1
                delays = [0.002 * ((r + i) % max(p, 2)) for r in range(p)]
                args = [(delays[r], inc) for r in range(p)]
                _, pending = backend_.submit_map_resident(
                    _delayed_bump, [refs[0]], n_out=0, args=args
                )
                base = [b + 8 * inc for b in base]
                expect.append(list(base))
                pendings.append(pending)
            pend0.wait()
            for pending, want in zip(pendings, expect):
                values, _ = pending.wait()
                assert values == want
            if p > 1:
                assert backend_.max_inflight > 1
            final = backend_.get_chunks(refs[0])
            for r in range(p):
                np.testing.assert_array_equal(
                    final[r], np.arange(8, dtype=np.float64) + 10 * (r + 1) + 21
                )

    def test_verify_lockstep_under_pipelining(self, backend, p):
        """verify=True collects per-rank collective traces; the checks
        must attach to the right command when several are in flight."""
        plain = Machine(p=p, seed=55, backend=backend, pipeline_depth=8)
        checked = Machine(
            p=p, seed=55, backend=backend, verify=True, pipeline_depth=8
        )
        with plain, checked:
            plain.reset(), checked.reset()
            assert _pq_mixed_workload(plain, 31) == _pq_mixed_workload(checked, 31)
            _assert_model_equal(plain, checked)


@pytest.mark.parametrize(
    "backend,p",
    [pytest.param("mp", p, id=f"mp-p{p}") for p in [1, 2, 5, 8]]
    + [pytest.param("tcp", p, id=f"tcp-p{p}") for p in [1, 2, 5]],
)
class TestSumAggregationParity:
    def test_ec_resident_tables(self, backend, p):
        sim, real = _machines(backend, p, seed=51)
        with real:
            mk = lambda m: DistKeyValue.generate(
                m, lambda r, g: (g.integers(0, 48, 500), g.random(500) * 3)
            )
            d_sim, d_real = mk(sim), mk(real)
            sim.reset(), real.reset()
            r_sim = top_k_sums_ec(sim, d_sim, 5, eps=5e-2, delta=1e-3)
            r_real = top_k_sums_ec(real, d_real, 5, eps=5e-2, delta=1e-3)
            assert r_sim.items == r_real.items
            assert r_sim.sample_size == r_real.sample_size
            _assert_model_equal(sim, real)
