"""Integration: kernel modes are bit-identical across backends and
pipeline depths.

The dispatch contract (:mod:`repro.kernels`) promises that swapping
``kernels="python"`` for ``kernels="native"`` changes wall-clock time
only -- results and modeled costs (makespan, bottleneck volume and
startups) stay identical on every backend at every pipeline depth.
Each cell of the grid runs the same three workloads -- multiselection
(partition kernels), a bulk priority-queue cycle (treap merge + RNG
state threading), and heavy hitters (Space-Saving offers) -- under both
modes on a real backend and compares everything against the sim
python-mode reference.

Without numba the native twins run interpreted through the jit shim,
so this grid proves bit-identity of the *native arithmetic* even on
machines with no compiler toolchain; CI's native-smoke job re-runs it
with numba installed to cover the compiled path.
"""

import numpy as np
import pytest

from repro.bench.workloads import zipf_keys_workload
from repro.frequent import heavy_hitters
from repro.kernels import set_mode
from repro.machine import Machine
from repro.pqueue import BulkParallelPQ
from repro.selection import multi_select
from repro.testing import make_dist

P = 4

#: (real backend, pipeline depth): depth 1 serialises every round-trip,
#: depth 8 overlaps issue/settle -- kernels must not care either way
GRID = [
    pytest.param(backend, depth, id=f"{backend}-d{depth}")
    for backend in ("mp", "tcp")
    for depth in (1, 8)
]


@pytest.fixture(autouse=True)
def _reset_mode():
    """Machine(kernels=...) sets the process-global mode; never leak it."""
    yield
    set_mode(None)


def run_workloads(machine):
    """The kernel-exercising workload battery; returns results plus the
    modeled quantities of each phase."""
    out = {}

    data = make_dist(machine, np.random.default_rng(23), 600)
    n = data.global_size
    machine.reset()
    out["multi_select"] = multi_select(machine, data, [1, 7, n // 2, n])
    out["select_cost"] = (
        machine.clock.makespan,
        machine.metrics.bottleneck_words,
        machine.metrics.bottleneck_startups,
    )

    q = BulkParallelPQ(machine)
    r = np.random.default_rng(29)
    machine.reset()
    pq_results = []
    for _ in range(2):
        q.insert([list(r.random(30)) for _ in range(machine.p)])
        pq_results.append((q.peek_min(), q.delete_min(8 * machine.p)))
    out["pq"] = pq_results
    out["pq_cost"] = (
        machine.clock.makespan,
        machine.metrics.bottleneck_words,
        machine.metrics.bottleneck_startups,
    )

    keys = zipf_keys_workload(machine, 4_000, universe=1 << 10, s=1.2)
    machine.reset()
    out["heavy_hitters"] = heavy_hitters(machine, keys, 0.05)
    out["hh_cost"] = (
        machine.clock.makespan,
        machine.metrics.bottleneck_words,
        machine.metrics.bottleneck_startups,
    )
    return out


def run_on(backend, kernels, depth=None):
    kwargs = dict(p=P, seed=77, kernels=kernels)
    if backend is not None:
        kwargs.update(backend=backend, pipeline_depth=depth)
    try:
        if backend is None:
            return run_workloads(Machine(**kwargs))
        with Machine(**kwargs) as m:
            return run_workloads(m)
    finally:
        set_mode(None)


@pytest.mark.parametrize("backend,depth", GRID)
def test_kernel_modes_bit_identical(backend, depth):
    ref = run_on(None, "python")
    for mode in ("python", "native"):
        got = run_on(backend, mode, depth)
        for key in ref:
            assert got[key] == ref[key], (backend, depth, mode, key)


def test_sim_native_matches_python_reference():
    assert run_on(None, "native") == run_on(None, "python")


def test_machine_rejects_unknown_kernels_mode():
    with pytest.raises(ValueError, match="kernels"):
        Machine(p=2, seed=1, kernels="turbo")


def test_backend_reports_native_capability():
    from repro.kernels import numba_available

    with Machine(p=2, seed=2, backend="mp") as m:
        assert m.backend.supports_native_kernels == numba_available()
