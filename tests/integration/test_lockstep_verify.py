"""Integration: verify=True catches rank-divergent SPMD kernels.

The dangerous divergence class is a *kind swap*: allgather, allreduce
and allreduce_exscan all ride the same tree exchange inside the worker
runtime, so a kernel that yields different kinds on different ranks
completes silently with wrong data instead of deadlocking.  With
``Machine(..., verify=True)`` the driver must instead raise a
:class:`LockstepError` naming the command and the diverging rank -- on
both real transports -- while lockstep kernels run unperturbed with
bit-identical results.

Kernels live at module level so they pickle across the process
boundary (driver-side fallbacks would bypass the worker-side tracing).
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.machine.backends import LockstepError

GRID = [
    pytest.param("mp", 4, id="mp-p4"),
    pytest.param("mp", 3, id="mp-p3"),
    pytest.param("tcp", 4, id="tcp-p4"),
]


def lockstep_kernel(rank, chunk):
    total = yield ("allreduce", float(chunk.sum()), "sum")
    sizes = yield ("allgather", int(chunk.size))
    return (chunk, (total, tuple(sizes)))


def kind_swapped_kernel(rank, chunk):
    # rank 1 swaps allreduce for allgather: same arity, same wire
    # pattern, silently-wrong results without verification
    s = float(chunk.sum())
    if rank == 1:  # repro-lint: disable=RL001 -- deliberately divergent fixture
        total = yield ("allreduce", s, "sum")
    else:
        total = yield ("allgather", s)
    return (chunk, total)


def op_swapped_kernel(rank, chunk):
    op = "max" if rank == 1 else "sum"  # repro-lint: disable=RL001 -- deliberately divergent fixture
    total = yield ("allreduce", float(chunk.sum()), op)
    return (chunk, total)


def _chunks(p):
    return [np.arange(5, dtype=np.int64) + r for r in range(p)]


@pytest.mark.parametrize("backend,p", GRID)
def test_divergent_kernel_raises_with_diagnostic(backend, p):
    if p < 2:
        pytest.skip("divergence needs a second rank")
    with Machine(p=p, seed=3, backend=backend, verify=True) as m:
        ref = m.backend.put_chunks(_chunks(p))
        with pytest.raises(LockstepError) as exc:
            m.backend.run_spmd(kind_swapped_kernel, [ref], n_out=1)
        msg = str(exc.value)
        assert "seq" in msg  # names the command
        assert "rank(s) [1]" in msg  # names the diverging rank
        assert "allreduce" in msg and "allgather" in msg
        # the pool survives the diagnostic: the divergent exchange
        # completed on the wire, so the next command runs normally
        _, values = m.backend.run_spmd(lockstep_kernel, [ref], n_out=1)
        assert all(v == values[0] for v in values)


@pytest.mark.parametrize("backend,p", GRID)
def test_op_divergence_is_caught_too(backend, p):
    if p < 2:
        pytest.skip("divergence needs a second rank")
    with Machine(p=p, seed=3, backend=backend, verify=True) as m:
        ref = m.backend.put_chunks(_chunks(p))
        with pytest.raises(LockstepError, match="rank 1 issued"):
            m.backend.run_spmd(op_swapped_kernel, [ref], n_out=1)


@pytest.mark.parametrize("backend,p", GRID)
def test_lockstep_kernel_unperturbed(backend, p):
    """verify=True must not change results: compare against sim."""
    with Machine(p=p, seed=3) as sim:
        ref = sim.backend.put_chunks(_chunks(p))
        _, expected = sim.backend.run_spmd(lockstep_kernel, [ref], n_out=1)
    with Machine(p=p, seed=3, backend=backend, verify=True) as m:
        ref = m.backend.put_chunks(_chunks(p))
        out_refs, values = m.backend.run_spmd(lockstep_kernel, [ref], n_out=1)
        assert values == expected
        # output chunks were stored despite the verify wrapper
        chunks = m.backend.get_chunks(out_refs[0])
        for r, c in enumerate(chunks):
            np.testing.assert_array_equal(c, _chunks(p)[r])


def test_sim_raises_lockstep_error_by_construction():
    """The sim data plane needs no verify flag: it sees every rank's
    yield and raises the same exception type."""
    with Machine(p=4, seed=3) as m:
        ref = m.backend.put_chunks(_chunks(4))
        with pytest.raises(LockstepError, match="diverged"):
            m.backend.run_spmd(kind_swapped_kernel, [ref], n_out=1)


def test_verify_off_by_default():
    with Machine(p=2, seed=3, backend="mp") as m:
        assert m.backend.verify is False
    with Machine(p=2, seed=3, backend="mp", verify=True) as m:
        assert m.backend.verify is True
