"""Integration: whole pipelines produce identical results on every
backend (the acceptance bar of the backend refactor).

Runs the unsorted-selection and frequent-objects pipelines -- plus the
supporting multiselection and exact top-k paths -- on ``sim`` and
``mp`` machines built from the same seed, and demands *identical*
outputs: same values, same tie-breaks, same reported diagnostics.
"""

import numpy as np
import pytest

from repro.frequent import (
    top_k_frequent_ec,
    top_k_frequent_ec_dsbf,
    top_k_frequent_exact,
    top_k_frequent_pac,
    top_k_frequent_pec,
)
from repro.machine import DistArray, Machine
from repro.selection import (
    multi_select,
    select_kth,
    select_topk_largest,
    select_topk_smallest,
)
from repro.testing import make_dist, sorted_oracle

PS = [1, 2, 4, 8]


def _machines(p, seed):
    return Machine(p=p, seed=seed), Machine(p=p, seed=seed, backend="mp")


def _data(machine, seed, n_per_pe=400, lo=0, hi=2_000):
    # modest universe -> plenty of duplicates, exercising tie-granting
    return make_dist(machine, np.random.default_rng(seed), n_per_pe, lo=lo, hi=hi)


@pytest.mark.parametrize("p", PS)
class TestUnsortedSelectionParity:
    def test_select_kth(self, p):
        sim, real = _machines(p, seed=7)
        with real:
            d_sim, d_real = _data(sim, 1), _data(real, 1)
            n = d_sim.global_size
            for k in (1, n // 3, n):
                s_stats = select_kth(sim, d_sim, k, return_stats=True)
                r_stats = select_kth(real, d_real, k, return_stats=True)
                assert s_stats.value == r_stats.value
                assert s_stats.rounds == r_stats.rounds
                assert s_stats.sample_total == r_stats.sample_total
                assert s_stats.value == sorted_oracle(d_sim)[k - 1]

    def test_select_topk_smallest(self, p):
        sim, real = _machines(p, seed=8)
        with real:
            d_sim, d_real = _data(sim, 2), _data(real, 2)
            s_sel, s_thr = select_topk_smallest(sim, d_sim, 123)
            r_sel, r_thr = select_topk_smallest(real, d_real, 123)
        assert s_thr == r_thr
        for cs, cr in zip(s_sel.chunks, r_sel.chunks):
            np.testing.assert_array_equal(cs, cr)
        assert s_sel.global_size == 123

    def test_multi_select(self, p):
        sim, real = _machines(p, seed=9)
        with real:
            d_sim, d_real = _data(sim, 3), _data(real, 3)
            ks = [1, 50, d_sim.global_size // 2, d_sim.global_size]
            assert multi_select(sim, d_sim, ks) == multi_select(real, d_real, ks)

    def test_select_topk_largest(self, p):
        sim, real = _machines(p, seed=21)
        with real:
            d_sim, d_real = _data(sim, 4), _data(real, 4)
            s_sel, s_thr = select_topk_largest(sim, d_sim, 77)
            r_sel, r_thr = select_topk_largest(real, d_real, 77)
        assert s_thr == r_thr
        for cs, cr in zip(s_sel.chunks, r_sel.chunks):
            np.testing.assert_array_equal(cs, cr)
        assert r_sel.global_size == 77


@pytest.mark.parametrize("p", PS)
class TestFrequentObjectsParity:
    def test_pac_pipeline(self, p):
        sim, real = _machines(p, seed=10)
        with real:
            keys_sim = DistArray.generate(
                sim, lambda r, g: g.integers(0, 256, 3_000)
            )
            keys_real = DistArray.generate(
                real, lambda r, g: g.integers(0, 256, 3_000)
            )
            res_sim = top_k_frequent_pac(sim, keys_sim, 8, eps=5e-2, delta=1e-3)
            res_real = top_k_frequent_pac(real, keys_real, 8, eps=5e-2, delta=1e-3)
        assert res_sim.items == res_real.items
        assert res_sim.rho == res_real.rho
        assert res_sim.sample_size == res_real.sample_size

    def test_exact_pipeline(self, p):
        sim, real = _machines(p, seed=11)
        with real:
            keys_sim = DistArray.generate(sim, lambda r, g: g.integers(0, 64, 2_000))
            keys_real = DistArray.generate(real, lambda r, g: g.integers(0, 64, 2_000))
            res_sim = top_k_frequent_exact(sim, keys_sim, 5)
            res_real = top_k_frequent_exact(real, keys_real, 5)
        assert res_sim.items == res_real.items

    def test_ec_pipeline(self, p):
        sim, real = _machines(p, seed=22)
        with real:
            keys_sim = DistArray.generate(sim, lambda r, g: g.integers(0, 256, 3_000))
            keys_real = DistArray.generate(real, lambda r, g: g.integers(0, 256, 3_000))
            res_sim = top_k_frequent_ec(sim, keys_sim, 8, eps=5e-2, delta=1e-3)
            res_real = top_k_frequent_ec(real, keys_real, 8, eps=5e-2, delta=1e-3)
        assert res_sim.items == res_real.items
        assert res_sim.sample_size == res_real.sample_size
        assert res_sim.k_star == res_real.k_star

    def test_pec_pipeline(self, p):
        sim, real = _machines(p, seed=23)
        with real:
            keys_sim = DistArray.generate(sim, lambda r, g: g.integers(0, 128, 2_000))
            keys_real = DistArray.generate(real, lambda r, g: g.integers(0, 128, 2_000))
            res_sim = top_k_frequent_pec(sim, keys_sim, 6, delta=1e-3)
            res_real = top_k_frequent_pec(real, keys_real, 6, delta=1e-3)
        assert res_sim.items == res_real.items
        assert res_sim.sample_size == res_real.sample_size
        assert res_sim.info == res_real.info

    def test_ec_dsbf_pipeline(self, p):
        sim, real = _machines(p, seed=24)
        with real:
            keys_sim = DistArray.generate(sim, lambda r, g: g.integers(0, 256, 2_000))
            keys_real = DistArray.generate(real, lambda r, g: g.integers(0, 256, 2_000))
            res_sim = top_k_frequent_ec_dsbf(sim, keys_sim, 6, eps=5e-2, delta=1e-3)
            res_real = top_k_frequent_ec_dsbf(real, keys_real, 6, eps=5e-2, delta=1e-3)
        assert res_sim.items == res_real.items
        assert res_sim.sample_size == res_real.sample_size

    def test_modeled_cost_is_backend_independent(self, p):
        """The control plane must charge identically on both backends."""
        sim, real = _machines(p, seed=25)
        with real:
            d_sim, d_real = _data(sim, 5), _data(real, 5)
            sim.reset(), real.reset()
            select_topk_smallest(sim, d_sim, 99)
            select_topk_smallest(real, d_real, 99)
        assert sim.clock.makespan == real.clock.makespan
        assert sim.metrics.bottleneck_words == real.metrics.bottleneck_words
        assert sim.metrics.bottleneck_startups == real.metrics.bottleneck_startups


@pytest.mark.parametrize("p", PS)
class TestBenchHarnessBackends:
    def test_run_algorithm_mp(self, p):
        from repro.bench import run_algorithm

        row = run_algorithm(
            "parity", "median", p, 200,
            lambda m: DistArray.generate(m, lambda r, g: g.integers(0, 999, 200)),
            lambda m, d: {"v": select_kth(m, d, d.global_size // 2)},
            backend="mp",
        )
        row_sim = run_algorithm(
            "parity", "median", p, 200,
            lambda m: DistArray.generate(m, lambda r, g: g.integers(0, 999, 200)),
            lambda m, d: {"v": select_kth(m, d, d.global_size // 2)},
            backend="sim",
        )
        assert row.backend == "mp" and row_sim.backend == "sim"
        assert row.extra["v"] == row_sim.extra["v"]
        # modeled quantities are backend-independent
        assert row.time_s == row_sim.time_s
        assert row.volume_words == row_sim.volume_words
