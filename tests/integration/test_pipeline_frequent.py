"""Integration: frequent-objects algorithms under the paper's error
model, across seeds and distributions."""

import numpy as np
import pytest

from repro.bench.workloads import (
    gapped_workload,
    negative_binomial_workload,
    zipf_keys_workload,
)
from repro.frequent import (
    exact_counts_oracle,
    pac_error,
    top_k_frequent_ec,
    top_k_frequent_exact,
    top_k_frequent_naive,
    top_k_frequent_naive_tree,
    top_k_frequent_pac,
    top_k_frequent_pec,
)
from repro.machine import Machine


K = 16
EPS = 8e-3
DELTA = 1e-2


def check_eps_bound(machine, data, fn, **kwargs):
    true = exact_counts_oracle(data)
    res = fn(machine, data, K, **kwargs)
    err = pac_error(res.keys, true, K)
    assert err <= EPS * data.global_size, (fn.__name__, err)
    return res


class TestErrorBoundsAcrossSeeds:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_pac_zipf(self, seed):
        m = Machine(p=8, seed=seed)
        data = zipf_keys_workload(m, 20_000, universe=1 << 12, s=1.0)
        check_eps_bound(m, data, top_k_frequent_pac, eps=EPS, delta=DELTA)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ec_zipf(self, seed):
        m = Machine(p=8, seed=seed)
        data = zipf_keys_workload(m, 20_000, universe=1 << 12, s=1.0)
        res = check_eps_bound(m, data, top_k_frequent_ec, eps=EPS, delta=DELTA)
        assert res.exact_counts

    @pytest.mark.parametrize("seed", [0, 1])
    def test_baselines_zipf(self, seed):
        m = Machine(p=8, seed=seed)
        data = zipf_keys_workload(m, 15_000, universe=1 << 12, s=1.0)
        check_eps_bound(m, data, top_k_frequent_naive, eps=EPS, delta=DELTA)
        check_eps_bound(m, data, top_k_frequent_naive_tree, eps=EPS, delta=DELTA)


class TestHardDistributions:
    def test_negative_binomial_plateau(self):
        """The paper's hard case: near-equal frequencies.  The epsilon
        error model tolerates swaps inside the plateau."""
        m = Machine(p=8, seed=7)
        data = negative_binomial_workload(m, 20_000)
        true = exact_counts_oracle(data)
        res = top_k_frequent_pac(m, data, K, eps=EPS, delta=DELTA)
        assert pac_error(res.keys, true, K) <= EPS * data.global_size

    def test_gapped_pec_exact(self):
        m = Machine(p=8, seed=8)
        data = gapped_workload(m, 20_000, universe=1 << 10, k=K, gap=8.0)
        true = exact_counts_oracle(data)
        oracle = sorted(true.items(), key=lambda t: (-t[1], t[0]))[:K]
        res = top_k_frequent_pec(m, data, K, delta=1e-3)
        assert set(res.keys) == {key for key, _ in oracle}

    def test_all_same_key(self):
        m = Machine(p=8, seed=9)
        from repro.machine import DistArray

        data = DistArray(m, [np.full(1000, 5, dtype=np.int64)] * 8)
        res = top_k_frequent_pac(m, data, 3, rho=0.5)
        assert res.items[0][0] == 5
        assert len(res.items) == 1  # only one distinct key exists


class TestAlgorithmsAgreeAtFullSampling:
    def test_all_algorithms_identical_at_rho_one(self):
        m = Machine(p=8, seed=10)
        data = zipf_keys_workload(m, 5000, universe=1 << 10, s=1.1)
        exact = top_k_frequent_exact(m, data, K)
        pac = top_k_frequent_pac(m, data, K, rho=1.0)
        naive = top_k_frequent_naive(m, data, K, rho=1.0)
        tree = top_k_frequent_naive_tree(m, data, K, rho=1.0)
        keys = exact.keys
        assert pac.keys == keys
        assert naive.keys == keys
        assert tree.keys == keys


class TestCommunicationOrdering:
    def test_volume_ranking_matches_paper(self):
        """Figure 7's structural claim at fixed sampling rate:
        coordinator volume(Naive) > tree-root volume(NaiveTree) >
        hash-partitioned volume(PAC)."""
        p = 16
        vols = {}
        for name, fn in (
            ("pac", top_k_frequent_pac),
            ("naive", top_k_frequent_naive),
            ("tree", top_k_frequent_naive_tree),
        ):
            m = Machine(p=p, seed=11)
            data = zipf_keys_workload(m, 4000, universe=1 << 12, s=1.0)
            m.reset()
            fn(m, data, K, rho=0.5)
            vols[name] = m.metrics.bottleneck_words
        assert vols["naive"] > vols["tree"] > vols["pac"]
