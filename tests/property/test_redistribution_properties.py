"""Property-based tests: redistribution planning and execution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import DistArray, Machine
from repro.redistribution import balance_plan, redistribute
from repro.redistribution.batcher import merge_sorted_pair

sizes_strategy = st.lists(st.integers(0, 300), min_size=1, max_size=16)


class TestPlan:
    @given(sizes_strategy)
    @settings(max_examples=80, deadline=None)
    def test_plan_respects_roles_and_caps(self, sizes):
        sizes = np.array(sizes)
        p = sizes.size
        n_bar = -(-int(sizes.sum()) // p) if sizes.sum() else 0
        plan = balance_plan(sizes)
        sent = np.zeros(p, dtype=int)
        recv = np.zeros(p, dtype=int)
        for t in plan:
            assert t.count > 0
            sent[t.src] += t.count
            recv[t.dst] += t.count
        # senders only send, receivers only receive
        assert np.all(sent * recv == 0)
        final = sizes - sent + recv
        assert np.all(final <= max(n_bar, 0) + (sizes.sum() == 0))
        # surplus fully drained
        assert np.all(sent == np.maximum(sizes - n_bar, 0))

    @given(sizes_strategy)
    @settings(max_examples=50, deadline=None)
    def test_plan_is_minimal_volume(self, sizes):
        sizes = np.array(sizes)
        plan = balance_plan(sizes)
        n_bar = -(-int(sizes.sum()) // sizes.size) if sizes.sum() else 0
        lower_bound = int(np.maximum(sizes - n_bar, 0).sum())
        assert sum(t.count for t in plan) == lower_bound


class TestExecution:
    @given(sizes_strategy)
    @settings(max_examples=40, deadline=None)
    def test_redistribute_preserves_multiset(self, sizes):
        m = Machine(p=len(sizes), seed=6)
        rng = np.random.default_rng(7)
        data = DistArray(
            m, [rng.integers(0, 10**6, size=s).astype(np.int64) for s in sizes]
        )
        before = np.sort(data.concat())
        out, stats = redistribute(m, data)
        assert np.array_equal(np.sort(out.concat()), before)
        n_bar = -(-sum(sizes) // len(sizes)) if sum(sizes) else 0
        assert all(len(c) <= max(n_bar, 0) + (sum(sizes) == 0) for c in out.chunks)


class TestBatcherMerge:
    @given(
        st.lists(st.integers(0, 100), max_size=40),
        st.lists(st.integers(0, 100), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_sort(self, a, b):
        a = np.sort(np.array(a, dtype=float))
        b = np.sort(np.array(b, dtype=float))
        got = merge_sorted_pair(a, b)
        assert np.array_equal(got, np.sort(np.concatenate([a, b])))
