"""Property-based tests: DHT counting and top-k entry extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequent import count_into_dht, take_topk_entries
from repro.machine import Machine

key_chunks = st.lists(
    st.lists(st.integers(0, 40), max_size=80),
    min_size=1,
    max_size=8,
)


class TestCounting:
    @given(key_chunks)
    @settings(max_examples=50, deadline=None)
    def test_counts_match_oracle(self, chunks):
        m = Machine(p=len(chunks), seed=8)
        samples = [np.array(c, dtype=np.int64) for c in chunks]
        routed = count_into_dht(m, samples)
        got: dict = {}
        for d in routed:
            for key, c in d.items():
                got[key] = got.get(key, 0) + c
        allv = np.concatenate([s for s in samples if s.size] or [np.empty(0, dtype=np.int64)])
        expect = {}
        for v in allv:
            expect[int(v)] = expect.get(int(v), 0) + 1
        assert got == expect


class TestTopkEntries:
    @given(key_chunks, st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_topk_is_count_ranking_prefix(self, chunks, k):
        m = Machine(p=len(chunks), seed=9)
        samples = [np.array(c, dtype=np.int64) for c in chunks]
        routed = count_into_dht(m, samples)
        items = take_topk_entries(m, routed, k)
        # oracle ranking
        allv = np.concatenate([s for s in samples if s.size] or [np.empty(0, dtype=np.int64)])
        expect: dict = {}
        for v in allv:
            expect[int(v)] = expect.get(int(v), 0) + 1
        oracle = sorted(expect.items(), key=lambda t: (-t[1], t[0]))
        assert items == oracle[: len(items)]
        assert len(items) == min(k, len(oracle))
