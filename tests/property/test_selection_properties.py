"""Property-based tests: the selection algorithms vs the sort oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import DistArray, Machine
from repro.selection import (
    ams_select,
    kth_smallest,
    ms_select,
    ms_select_with_cuts,
    select_kth,
    select_topk_smallest,
)

# partition of a value list over up to 8 PEs, allowing empty PEs
chunk_lists = st.lists(
    st.lists(st.integers(-10_000, 10_000), max_size=60),
    min_size=1,
    max_size=8,
)


class TestSequential:
    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=300), st.data())
    @settings(max_examples=60, deadline=None)
    def test_kth_smallest_matches_sort(self, vals, data):
        k = data.draw(st.integers(1, len(vals)))
        arr = np.array(vals)
        assert kth_smallest(arr, k) == np.sort(arr)[k - 1]


class TestDistributedUnsorted:
    @given(chunk_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_select_kth_matches_oracle(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total == 0:
            return
        k = data.draw(st.integers(1, total))
        m = Machine(p=len(chunks), seed=42)
        d = DistArray(m, [np.array(c, dtype=np.int64) for c in chunks])
        s = np.sort(d.concat())
        assert select_kth(m, d, k) == s[k - 1]

    @given(chunk_lists, st.data())
    @settings(max_examples=30, deadline=None)
    def test_topk_extraction_exact_size_and_content(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total == 0:
            return
        k = data.draw(st.integers(1, total))
        m = Machine(p=len(chunks), seed=43)
        d = DistArray(m, [np.array(c, dtype=np.int64) for c in chunks])
        sel, thr = select_topk_smallest(m, d, k)
        s = np.sort(d.concat())
        assert sel.global_size == k
        assert np.array_equal(np.sort(sel.concat()), s[:k])


class TestDistributedSorted:
    @given(chunk_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_ms_select_matches_oracle(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total == 0:
            return
        k = data.draw(st.integers(1, total))
        m = Machine(p=len(chunks), seed=44)
        seqs = [np.sort(np.array(c, dtype=np.int64)) for c in chunks]
        s = np.sort(np.concatenate([q for q in seqs if q.size] or [np.empty(0)]))
        assert ms_select(m, seqs, k) == s[k - 1]

    @given(chunk_lists, st.data())
    @settings(max_examples=30, deadline=None)
    def test_cuts_partition_prefix(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total == 0:
            return
        k = data.draw(st.integers(1, total))
        m = Machine(p=len(chunks), seed=45)
        seqs = [np.sort(np.array(c, dtype=np.int64)) for c in chunks]
        value, cuts = ms_select_with_cuts(m, seqs, k)
        assert sum(cuts) == k
        got = np.sort(np.concatenate([seqs[i][: cuts[i]] for i in range(len(seqs))]))
        s = np.sort(np.concatenate(seqs))
        assert np.array_equal(got, s[:k])


class TestFlexible:
    @given(chunk_lists, st.data())
    @settings(max_examples=40, deadline=None)
    def test_ams_k_in_range_and_prefix(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total == 0:
            return
        k_lo = data.draw(st.integers(1, total))
        k_hi = data.draw(st.integers(k_lo, total))
        m = Machine(p=len(chunks), seed=46)
        seqs = [np.sort(np.array(c, dtype=np.float64)) for c in chunks]
        res = ams_select(m, seqs, k_lo, k_hi)
        assert k_lo <= res.k <= k_hi
        assert sum(res.cuts) == res.k
        got = np.sort(np.concatenate([seqs[i][: res.cuts[i]] for i in range(len(seqs))]))
        s = np.sort(np.concatenate(seqs))
        assert np.allclose(got, s[: res.k])
