"""Property-based tests: treap invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import Treap

keys = st.lists(st.integers(-1000, 1000), max_size=120)


def build(vals, seed=0):
    t = Treap(np.random.default_rng(seed))
    t.insert_many(vals)
    return t


class TestStructure:
    @given(keys)
    @settings(max_examples=60, deadline=None)
    def test_inorder_is_sorted_multiset(self, vals):
        t = build(vals)
        assert t.to_list() == sorted(vals)
        t.check_invariants()

    @given(keys, st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_split_at_rank_partitions(self, vals, i):
        t = build(vals)
        s = sorted(vals)
        low = t.split_at_rank(i)
        cut = min(i, len(s))
        assert low.to_list() == s[:cut]
        assert t.to_list() == s[cut:]
        low.check_invariants()
        t.check_invariants()

    @given(keys, st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_split_at_key_partitions(self, vals, x):
        t = build(vals)
        low = t.split_at_key(x)
        assert all(v <= x for v in low.to_list())
        assert all(v > x for v in t.to_list())
        assert sorted(low.to_list() + t.to_list()) == sorted(vals)

    @given(keys, st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_split_concat_roundtrip(self, vals, i):
        t = build(vals)
        low = t.split_at_rank(i)
        low.concat(t)
        assert low.to_list() == sorted(vals)
        low.check_invariants()


class TestQueries:
    @given(keys, st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_rank_and_count_le(self, vals, x):
        t = build(vals)
        assert t.rank(x) == sum(1 for v in vals if v < x)
        assert t.count_le(x) == sum(1 for v in vals if v <= x)

    @given(keys.filter(lambda v: len(v) > 0))
    @settings(max_examples=60, deadline=None)
    def test_select_matches_sorted(self, vals):
        t = build(vals)
        s = sorted(vals)
        for i in range(0, len(s), max(1, len(s) // 7)):
            assert t.select(i) == s[i]

    @given(keys, st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_delete_removes_one_occurrence(self, vals, x):
        t = build(vals)
        existed = t.delete(x)
        expected = sorted(vals)
        if x in vals:
            assert existed
            expected.remove(x)
        else:
            assert not existed
        assert t.to_list() == expected
        t.check_invariants()


class TestFromSorted:
    @given(keys)
    @settings(max_examples=40, deadline=None)
    def test_from_sorted_equivalent_to_inserts(self, vals):
        s = sorted(vals)
        t = Treap.from_sorted(s, np.random.default_rng(1))
        assert t.to_list() == s
        t.check_invariants()
