"""Property-based tests: collectives vs NumPy oracles."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine

pe_values = st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=16)


class TestReductions:
    @given(pe_values)
    @settings(max_examples=60, deadline=None)
    def test_allreduce_sum(self, vals):
        m = Machine(p=len(vals), seed=1)
        assert m.allreduce(vals, op="sum")[0] == sum(vals)

    @given(pe_values)
    @settings(max_examples=60, deadline=None)
    def test_allreduce_min_max(self, vals):
        m = Machine(p=len(vals), seed=1)
        assert m.allreduce(vals, op="min")[0] == min(vals)
        assert m.allreduce(vals, op="max")[0] == max(vals)

    @given(pe_values)
    @settings(max_examples=60, deadline=None)
    def test_scan_prefix_sums(self, vals):
        m = Machine(p=len(vals), seed=1)
        got = m.scan(vals, op="sum")
        assert got == list(np.cumsum(vals))

    @given(pe_values)
    @settings(max_examples=60, deadline=None)
    def test_exscan(self, vals):
        m = Machine(p=len(vals), seed=1)
        got = m.exscan(vals, op="sum")
        expect = [0] + list(np.cumsum(vals))[:-1]
        assert got == expect


class TestDataMovement:
    @given(st.integers(1, 12), st.data())
    @settings(max_examples=40, deadline=None)
    def test_alltoall_is_transpose(self, p, data):
        matrix = [
            [data.draw(st.integers(0, 100)) for _ in range(p)] for _ in range(p)
        ]
        m = Machine(p=p, seed=2)
        out = m.alltoall(matrix)
        for i in range(p):
            for j in range(p):
                assert out[j][i] == matrix[i][j]

    @given(st.integers(1, 12), st.data())
    @settings(max_examples=40, deadline=None)
    def test_gather_broadcast_roundtrip(self, p, data):
        vals = [data.draw(st.integers(-50, 50)) for _ in range(p)]
        m = Machine(p=p, seed=3)
        root_list = m.gather(vals, root=0)[0]
        back = m.broadcast(root_list, root=0)
        assert all(b == vals for b in back)

    @given(
        st.integers(1, 8),
        st.lists(st.tuples(st.integers(0, 30), st.integers(1, 9)), max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_aggregate_exchange_conserves_counts(self, p, pairs):
        m = Machine(p=p, seed=4)
        dicts = [dict() for _ in range(p)]
        for idx, (key, c) in enumerate(pairs):
            d = dicts[idx % p]
            d[key] = d.get(key, 0) + c
        expected: dict = {}
        for d in dicts:
            for key, c in d.items():
                expected[key] = expected.get(key, 0) + c
        routed = m.aggregate_exchange(dicts, lambda key: key % p)
        got: dict = {}
        for pe, d in enumerate(routed):
            for key, c in d.items():
                assert key % p == pe
                got[key] = got.get(key, 0) + c
        assert got == expected


class TestClockMonotonicity:
    @given(st.integers(2, 12), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_time_never_decreases(self, p, rounds):
        m = Machine(p=p, seed=5)
        last = 0.0
        for r in range(rounds):
            m.allreduce([r] * p)
            now = m.clock.makespan
            assert now >= last
            last = now
