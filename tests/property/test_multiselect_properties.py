"""Property-based tests: multiselection vs the sort oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import DistArray, Machine
from repro.selection import multi_select

chunk_lists = st.lists(
    st.lists(st.integers(-5000, 5000), max_size=50),
    min_size=1,
    max_size=6,
)


class TestMultiSelect:
    @given(chunk_lists, st.data())
    @settings(max_examples=40, deadline=None)
    def test_all_ranks_match_oracle(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total == 0:
            return
        n_ranks = data.draw(st.integers(1, min(5, total)))
        ks = sorted(
            set(data.draw(st.integers(1, total)) for _ in range(n_ranks))
        )
        m = Machine(p=len(chunks), seed=15)
        d = DistArray(m, [np.array(c, dtype=np.int64) for c in chunks])
        s = np.sort(d.concat())
        vals = multi_select(m, d, ks)
        for k, v in zip(ks, vals):
            assert v == s[k - 1]

    @given(chunk_lists, st.data())
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_rank(self, chunks, data):
        total = sum(len(c) for c in chunks)
        if total < 2:
            return
        ks = sorted(set(data.draw(st.integers(1, total)) for _ in range(4)))
        m = Machine(p=len(chunks), seed=16)
        d = DistArray(m, [np.array(c, dtype=np.int64) for c in chunks])
        vals = multi_select(m, d, ks)
        assert all(a <= b for a, b in zip(vals, vals[1:]))
