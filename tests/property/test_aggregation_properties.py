"""Property-based tests: sum aggregation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import DistKeyValue, exact_sums_oracle, top_k_sums_ec
from repro.machine import Machine

kv_chunks = st.lists(
    st.lists(
        st.tuples(st.integers(0, 20), st.floats(0.0, 100.0, allow_nan=False)),
        max_size=50,
    ),
    min_size=1,
    max_size=6,
)


class TestOracle:
    @given(kv_chunks)
    @settings(max_examples=50, deadline=None)
    def test_oracle_totals(self, chunks):
        m = Machine(p=len(chunks), seed=12)
        keys = [np.array([k for k, _ in c], dtype=np.int64) for c in chunks]
        vals = [np.array([v for _, v in c]) for c in chunks]
        kv = DistKeyValue(m, keys, vals)
        oracle = exact_sums_oracle(kv)
        assert sum(oracle.values()) == sum(
            v for c in chunks for _, v in c
        ) or np.isclose(sum(oracle.values()), sum(v for c in chunks for _, v in c))


class TestEcSums:
    @given(kv_chunks, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_ec_sums_are_exact_for_reported_keys(self, chunks, k):
        total_pairs = sum(len(c) for c in chunks)
        if total_pairs == 0:
            return
        m = Machine(p=len(chunks), seed=13)
        keys = [np.array([key for key, _ in c], dtype=np.int64) for c in chunks]
        vals = [np.array([v for _, v in c]) for c in chunks]
        kv = DistKeyValue(m, keys, vals)
        oracle = exact_sums_oracle(kv)
        if sum(oracle.values()) == 0.0:
            return
        res = top_k_sums_ec(m, kv, k, k_star=max(k, 8))
        for key, s in res.items:
            assert np.isclose(s, oracle[key], rtol=1e-9, atol=1e-9)

    @given(kv_chunks)
    @settings(max_examples=30, deadline=None)
    def test_top1_is_global_max_when_candidates_cover(self, chunks):
        total_pairs = sum(len(c) for c in chunks)
        if total_pairs == 0:
            return
        m = Machine(p=len(chunks), seed=14)
        keys = [np.array([key for key, _ in c], dtype=np.int64) for c in chunks]
        vals = [np.array([v for _, v in c]) for c in chunks]
        kv = DistKeyValue(m, keys, vals)
        oracle = exact_sums_oracle(kv)
        mass = sum(oracle.values())
        if mass == 0.0:
            return
        # k_star = all distinct keys: result must be the exact argmax
        res = top_k_sums_ec(m, kv, 1, k_star=max(1, len(oracle)), sample_size=64.0)
        if res.items:
            best = max(oracle.items(), key=lambda t: (t[1], -t[0]))
            assert np.isclose(res.items[0][1], best[1], rtol=1e-9)
