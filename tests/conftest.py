"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import CostParams, DistArray, Machine


@pytest.fixture
def rng():
    return np.random.default_rng(0xABCDEF)


@pytest.fixture(params=[1, 2, 4, 8])
def machine(request):
    """A machine at several PE counts (power-of-two, the common case)."""
    return Machine(p=request.param, seed=1234 + request.param)


@pytest.fixture(params=[3, 5, 7])
def odd_machine(request):
    """Non-power-of-two PE counts (exercise the fallback paths)."""
    return Machine(p=request.param, seed=4321 + request.param)


@pytest.fixture
def machine8():
    return Machine(p=8, seed=99)


def sorted_oracle(data: DistArray) -> np.ndarray:
    """Global ascending sort of a distributed array (driver-side)."""
    return np.sort(data.concat())


def make_dist(machine: Machine, rng: np.random.Generator, n_per_pe: int, lo=0, hi=1_000_000) -> DistArray:
    return DistArray(
        machine,
        [rng.integers(lo, hi, size=n_per_pe).astype(np.int64) for _ in range(machine.p)],
    )
