"""Shared fixtures for the test suite.

The plain-function helpers (``make_dist``, ``sorted_oracle``) live in
:mod:`repro.testing` so test modules can import them absolutely; they
are re-exported here for any remaining in-conftest users.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import CostParams, DistArray, Machine
from repro.testing import make_dist, sorted_oracle  # noqa: F401 (re-export)


@pytest.fixture
def rng():
    return np.random.default_rng(0xABCDEF)


@pytest.fixture(params=[1, 2, 4, 8])
def machine(request):
    """A machine at several PE counts (power-of-two, the common case)."""
    return Machine(p=request.param, seed=1234 + request.param)


@pytest.fixture(params=[3, 5, 7])
def odd_machine(request):
    """Non-power-of-two PE counts (exercise the fallback paths)."""
    return Machine(p=request.param, seed=4321 + request.param)


@pytest.fixture
def machine8():
    return Machine(p=8, seed=99)


