#!/usr/bin/env python
"""Multicriteria top-k: a sharded full-text search engine (Section 6).

Documents live sharded across 8 PEs; each document has one relevance
score per query keyword, and each shard keeps per-keyword sorted lists
(exactly the paper's distributed setting, where every object's list
entries are co-located with the object).  A disjunctive query "score =
sum of keyword scores" is answered three ways:

* sequential Fagin TA on a merged index (the reference),
* RDTA (valid here: shard assignment is random),
* DTA (Algorithm 3; also run against an adversarial shard layout where
  all good documents sit on shard 0, which breaks RDTA's assumption).

Run:  python examples/search_engine_topk.py
"""

import numpy as np

from repro import Machine
from repro.bench.workloads import multicriteria_workload
from repro.topk import (
    SumScore,
    dta_topk,
    global_topk_oracle,
    rdta_topk,
    ta_topk,
)
from repro.topk.index import LocalIndex

P = 8
DOCS_PER_SHARD = 5_000
M_KEYWORDS = 3
K = 10


def run_query(adversarial: bool) -> None:
    layout = "adversarial (best docs on shard 0)" if adversarial else "random"
    print(f"\n--- shard layout: {layout} ---")
    machine = Machine(p=P, seed=7 if adversarial else 3)
    shards = multicriteria_workload(
        machine, DOCS_PER_SHARD, M_KEYWORDS, skew=3.0, adversarial=adversarial
    )
    scorer = SumScore(M_KEYWORDS)
    oracle = global_topk_oracle(shards, scorer, K)

    # sequential reference
    merged = LocalIndex(
        np.concatenate([s.ids for s in shards]),
        np.vstack([s.scores for s in shards]),
    )
    seq = ta_topk(merged, scorer, K)
    print(f"sequential TA: scanned K={seq.scan_depth:,} of "
          f"{merged.n:,} list rows, {seq.random_accesses:,} random accesses")

    # distributed
    machine.reset()
    res = dta_topk(machine, shards, scorer, K)
    rep = machine.report()
    ok = list(res.items) == oracle
    print(f"DTA: guessed K={res.prefixes.scanned} in "
          f"{res.prefixes.rounds} rounds, hit estimate "
          f"{res.prefixes.hit_estimate:.0f}; exact={ok}")
    print(f"     volume={rep.bottleneck_words:,.0f} words, "
          f"startups={rep.bottleneck_startups}, time={rep.makespan:.3e}s")

    if not adversarial:
        machine.reset()
        r = rdta_topk(machine, shards, scorer, K)
        rep = machine.report()
        print(f"RDTA: {r.rounds} round(s), local budget k_hat={r.k_hat_final}; "
              f"exact={list(r.items) == oracle}; "
              f"volume={rep.bottleneck_words:,.0f} words")

    print("top-3 documents:", [(d, round(s, 4)) for d, s in oracle[:3]])


def main() -> None:
    print(f"search engine: {P} shards x {DOCS_PER_SHARD:,} docs, "
          f"{M_KEYWORDS} keywords, top-{K} query")
    run_query(adversarial=False)
    run_query(adversarial=True)


if __name__ == "__main__":
    main()
