#!/usr/bin/env python
"""Quickstart: the three core primitives in five minutes.

Creates a simulated 16-PE machine, then

1. selects the k-th smallest of 1.6M distributed values (Algorithm 1),
2. extracts the global top-k and rebalances it (Section 9),
3. runs a bulk priority queue with communication-free insertions
   (Section 5),

printing the communication metering after each step -- the quantity the
paper is about.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DistArray, Machine
from repro.pqueue import BulkParallelPQ
from repro.redistribution import redistribute
from repro.selection import select_kth, select_topk_smallest

P = 16
N_PER_PE = 100_000


def main() -> None:
    machine = Machine(p=P, seed=2016)
    print(f"machine: {P} PEs, alpha={machine.cost.alpha:.1e}s, "
          f"beta={machine.cost.beta:.2e}s/word")

    # ------------------------------------------------------------------
    # 1. distributed selection
    # ------------------------------------------------------------------
    data = DistArray.generate(machine, lambda rank, rng: rng.random(N_PER_PE))
    k = len(data) // 2
    with machine.phase("select_kth"):
        median = select_kth(machine, data, k)
    print(f"\nglobal median of {len(data):,} values: {median:.6f}")
    print(f"  (exact: {np.sort(data.concat())[k - 1]:.6f})")

    # ------------------------------------------------------------------
    # 2. top-k extraction + redistribution
    # ------------------------------------------------------------------
    with machine.phase("top-1000"):
        smallest, threshold = select_topk_smallest(machine, data, 1000)
    print(f"\ntop-1000 threshold: {threshold:.6f}; "
          f"per-PE output sizes: {[int(s) for s in smallest.sizes()]}")
    with machine.phase("rebalance"):
        balanced, stats = redistribute(machine, smallest)
    print(f"rebalanced to {[int(s) for s in balanced.sizes()]} moving only "
          f"{stats.moved} elements")

    # ------------------------------------------------------------------
    # 3. bulk priority queue
    # ------------------------------------------------------------------
    pq = BulkParallelPQ(machine)
    with machine.phase("pq_insert"):
        pq.insert([machine.rngs[i].random(1000) for i in range(P)])
    with machine.phase("pq_deleteMin*"):
        batch = pq.delete_min_flexible(64, 128)
    got = sorted(s for b in batch.batches for s, _ in b)
    print(f"\ndeleteMin* returned k={batch.k} elements "
          f"(threshold {batch.threshold[0]:.6f}) in {batch.rounds} round(s)")
    print(f"smallest three: {[round(v, 6) for v in got[:3]]}")

    # ------------------------------------------------------------------
    # communication report
    # ------------------------------------------------------------------
    print("\n--- communication / modeled time ---")
    rep = machine.report()
    for ph in rep.phases:
        print(
            f"  {ph.name:<15s} time={ph.time:.3e}s "
            f"volume={ph.bottleneck_words:>8.0f} words "
            f"startups={ph.bottleneck_startups}"
        )
    print(f"  {'TOTAL':<15s} time={rep.makespan:.3e}s "
          f"volume={rep.bottleneck_words:>8.0f} words")
    print(f"\nnote: per-PE input is {N_PER_PE:,} words; the selection moved "
          f"~{rep.bottleneck_words:.0f} -- that is the sublinearity the "
          f"paper proves.")


if __name__ == "__main__":
    main()
