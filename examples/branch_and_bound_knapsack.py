#!/usr/bin/env python
"""Parallel branch-and-bound on the bulk priority queue (Section 5).

Solves 0/1 knapsack instances with best-first B&B where each iteration
deletes the globally best O(p) tree nodes via ``deleteMin*`` (flexible
batch), expands them on their owner PEs (no node ever moves after the
initial seeding), and refreshes the incumbent with one reduction --
the application the paper uses to motivate communication-free
insertions.

Run:  python examples/branch_and_bound_knapsack.py
"""

import numpy as np

from repro import Machine
from repro.apps import (
    knapsack_dp,
    random_knapsack,
    solve_knapsack_parallel,
    solve_knapsack_sequential,
)


def main() -> None:
    rng = np.random.default_rng(1234)
    print(f"{'items':>6} {'p':>4} {'optimum':>10} {'DP':>10} "
          f"{'seq nodes':>10} {'par nodes':>10} {'iters':>6} {'vol(w)':>8}")
    for n_items, p in ((24, 4), (32, 8), (40, 8), (48, 16)):
        inst = random_knapsack(rng, n_items=n_items, tightness=0.5)
        opt = knapsack_dp(inst)
        seq = solve_knapsack_sequential(inst)
        machine = Machine(p=p, seed=n_items)
        par = solve_knapsack_parallel(machine, inst)
        rep = machine.report()
        assert abs(par.optimum - opt) < 1e-9, "parallel B&B must be optimal"
        print(
            f"{n_items:>6} {p:>4} {par.optimum:>10.1f} {opt:>10.1f} "
            f"{seq.nodes_expanded:>10,d} {par.nodes_expanded:>10,d} "
            f"{par.iterations:>6d} {rep.bottleneck_words:>8,.0f}"
        )
    print("\nEvery parallel run matches the DP optimum; expansion overhead "
          "vs sequential best-first is the paper's K = m + O(hp) term.")


if __name__ == "__main__":
    main()
