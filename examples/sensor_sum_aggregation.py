#!/usr/bin/env python
"""Top-k sum aggregation: fleet telemetry (Section 8).

A fleet of sensors reports (device_id, energy_draw) samples sharded
over 16 PEs; we want the k devices with the highest *total* draw.
PAC-sum estimates from a value-weighted sample; EC-sum then confirms the
candidates with exact sums straight out of the local aggregation tables
(no second pass over the raw data -- the Section 8.2 shortcut).

Run:  python examples/sensor_sum_aggregation.py
"""

import numpy as np

from repro import Machine
from repro.aggregation import (
    DistKeyValue,
    exact_sums_oracle,
    top_k_sums_ec,
    top_k_sums_pac,
)
from repro.common import zipf_sample

P = 16
READINGS_PER_PE = 40_000
K = 8


def main() -> None:
    machine = Machine(p=P, seed=77)

    def make_chunk(rank: int, rng: np.random.Generator):
        devices = zipf_sample(rng, READINGS_PER_PE, universe=4096, s=1.2)
        draw = rng.gamma(shape=2.0, scale=3.0, size=devices.size)
        return devices, draw

    telemetry = DistKeyValue.generate(machine, make_chunk)
    oracle = exact_sums_oracle(telemetry)
    truth = sorted(oracle.items(), key=lambda t: (-t[1], t[0]))[:K]
    mass = sum(oracle.values())
    print(f"{P} PEs x {READINGS_PER_PE:,} readings, "
          f"{len(oracle):,} devices, total draw {mass:,.0f}")

    machine.reset()
    est = top_k_sums_pac(machine, telemetry, K, eps=5e-3, delta=1e-4)
    rep = machine.report()
    print(f"\nPAC-sum ({est.sample_size:,} sample units, "
          f"volume {rep.bottleneck_words:,.0f} words):")
    for (dev, s), (tdev, ts) in zip(est.items, truth):
        flag = "==" if dev == tdev else "!="
        print(f"  device {dev:>5d} est {s:>12,.0f} {flag} true "
              f"{tdev:>5d} {ts:>12,.0f}")

    machine.reset()
    exact = top_k_sums_ec(machine, telemetry, K, eps=5e-3, delta=1e-4)
    rep = machine.report()
    hits = sum(1 for (d, _), (t, _) in zip(exact.items, truth) if d == t)
    print(f"\nEC-sum (k*={exact.k_star}, exact sums, "
          f"volume {rep.bottleneck_words:,.0f} words): "
          f"{hits}/{K} positions match the oracle")
    worst = max(abs(s - oracle[d]) for d, s in exact.items)
    print(f"largest sum error among winners: {worst:.2e} (exact counting)")


if __name__ == "__main__":
    main()
