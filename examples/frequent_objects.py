#!/usr/bin/env python
"""Top-k most frequent objects: the paper's Figure 4 example + a
realistic log-analytics run.

Part 1 replays Section 7.1's worked example: 4 PEs hold streams of
letters, a rho = 0.3 Bernoulli sample is counted in the distributed
hash table, and the k = 5 most frequently *sampled* letters are
reported with 1/rho-scaled counts -- including the kind of mistake the
(eps, delta) analysis allows (the paper's run returns O instead of D).

Part 2 runs PAC, EC and the exact counter on a Zipf-distributed URL log
and compares accuracy vs communication.

Run:  python examples/frequent_objects.py
"""

import numpy as np

from repro import DistArray, Machine
from repro.frequent import (
    exact_counts_oracle,
    pac_error,
    top_k_frequent_ec,
    top_k_frequent_exact,
    top_k_frequent_pac,
)


def figure4_example() -> None:
    print("=" * 64)
    print("Part 1: Figure 4 (letters on 4 PEs, rho=0.3, k=5)")
    print("=" * 64)
    streams = [
        "LDENAAAGUTIUOEHHTASSARGMR",
        "EESEAFDOTTITHAILDHMOESULT",
        "TAETSOHDENDGRWEAIEOEHOUOE",
        "EIDSIEPRTDNFEEAHWINTWYIID",
    ]
    machine = Machine(p=4, seed=4)
    # letters -> integer keys (A=1...)
    chunks = [
        np.array([ord(c) - ord("A") + 1 for c in s], dtype=np.int64)
        for s in streams
    ]
    data = DistArray(machine, chunks)
    true = exact_counts_oracle(data)
    res = top_k_frequent_pac(machine, data, k=5, rho=0.3)

    def letter(key: int) -> str:
        return chr(key + ord("A") - 1)

    exact5 = sorted(true.items(), key=lambda t: (-t[1], t[0]))[:5]
    print("sampled estimate :", [(letter(k_), round(c, 1)) for k_, c in res.items])
    print("exact top-5      :", [(letter(k_), c) for k_, c in exact5])
    err = pac_error(res.keys, true, 5)
    print(f"paper-style error eps~*n = {err} "
          f"(count of best missed minus worst chosen)")


def log_analytics() -> None:
    print()
    print("=" * 64)
    print("Part 2: URL log analytics (Zipf keys, 16 PEs x 50k events)")
    print("=" * 64)
    k, eps, delta = 10, 2e-2, 1e-4
    machine = Machine(p=16, seed=99)
    from repro.common import zipf_sample

    data = DistArray.generate(
        machine, lambda rank, rng: zipf_sample(rng, 50_000, universe=1 << 14, s=1.05)
    )
    true = exact_counts_oracle(data)
    n = data.global_size

    rows = []
    for name, fn, kwargs in (
        ("exact", top_k_frequent_exact, {}),
        ("PAC", top_k_frequent_pac, dict(eps=eps, delta=delta)),
        ("EC", top_k_frequent_ec, dict(eps=eps, delta=delta)),
    ):
        machine.reset()
        res = fn(machine, data, k, **kwargs)
        rep = machine.report()
        rows.append(
            (
                name,
                res.rho,
                res.sample_size,
                pac_error(res.keys, true, k),
                rep.bottleneck_words,
                rep.makespan,
            )
        )
    print(f"{'algo':<8}{'rho':>10}{'sample':>10}{'err':>8}"
          f"{'volume(w)':>12}{'time(s)':>12}")
    for name, rho, sample, err, vol, t in rows:
        print(f"{name:<8}{rho:>10.4f}{sample:>10,d}{err:>8d}{vol:>12,.0f}{t:>12.3e}")
    print(f"\n(error bound eps*n = {eps * n:,.0f}; all algorithms must stay below)")


if __name__ == "__main__":
    figure4_example()
    log_analytics()
