#!/usr/bin/env python
"""Streaming top-k monitoring (Section 11's outlook, implemented).

Simulates a day of traffic arriving in batches at 8 ingest nodes whose
popularity distribution *drifts* half-way through (a flash-crowd event:
a cold key suddenly becomes hot).  The monitor ingests batches with
zero communication and answers periodic top-k queries whose cost is
independent of the stream length; the cache makes repeated queries
between refreshes free.

Run:  python examples/streaming_monitor.py
"""

import numpy as np

from repro import Machine
from repro.common import zipf_sample
from repro.frequent import StreamingTopKMonitor

P = 8
BATCH = 10_000
STEPS = 12
FLASH_KEY = 4242


def main() -> None:
    machine = Machine(p=P, seed=11)
    monitor = StreamingTopKMonitor(
        machine, k=5, eps=2e-2, delta=1e-3, refresh_fraction=0.2
    )

    print(f"{'step':>4} {'stream':>10} {'refreshed':>10}  top-5 (key:est)")
    for step in range(STEPS):
        batches = []
        for rng in machine.rngs:
            keys = zipf_sample(rng, BATCH, universe=1 << 12, s=1.1)
            if step >= STEPS // 2:
                # flash crowd: 30% of traffic hits one previously cold key
                hot = rng.random(BATCH) < 0.3
                keys = keys.copy()
                keys[hot] = FLASH_KEY
            batches.append(keys)
        monitor.ingest(batches)

        res = monitor.top_k()
        refreshed = res.info.get("refreshed", False) and res.info["stream"] == monitor.total_items
        tops = " ".join(f"{key}:{c:,.0f}" for key, c in res.items)
        print(f"{step:>4} {res.info['stream']:>10,} {str(refreshed):>10}  {tops}")

    print(f"\nqueries answered: {monitor.refreshes + monitor.cache_hits} "
          f"({monitor.refreshes} recomputed, {monitor.cache_hits} from cache)")
    final = monitor.top_k(force=True)
    rank = [key for key, _ in final.items]
    print(f"flash-crowd key {FLASH_KEY} final rank: "
          f"{rank.index(FLASH_KEY) + 1 if FLASH_KEY in rank else 'not in top-5'}")
    rep = machine.report()
    print(f"total communication: {rep.total_traffic:,.0f} words for "
          f"{monitor.total_items:,} streamed items "
          f"({rep.total_traffic / monitor.total_items:.4f} words/item)")


if __name__ == "__main__":
    main()
