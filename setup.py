"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy ``pip install -e . --no-use-pep517`` editable installs on systems
where PEP 517 build isolation is unavailable (e.g. offline machines).
On machines without ``wheel`` at all, no install is needed for testing:
``pyproject.toml`` configures pytest's ``pythonpath`` so ``python -m
pytest`` works from a plain checkout.
"""

from setuptools import setup

setup()
