"""Bulk priority queue: ours vs random allocation (Table 1 row 3).

insert* + deleteMin* cycles: the Section 5 queue never communicates on
insertion (local trees), the Karp-Zhang/[31] baseline routes every
element to a random PE.  The measured volume gap is the paper's
``alpha log kp`` vs ``log(n/k) + alpha (k/p + log p)`` contrast made
concrete.
"""

import pytest

from repro.bench import experiments as E
from repro.machine import Machine
from repro.pqueue import BulkParallelPQ, RandomAllocPQ

from conftest import persist

P_LIST = (2, 4, 8, 16, 32)
BATCH = 256


def test_pq_sweep(benchmark, results_dir):
    def sweep():
        return E.priority_queue_comparison(
            p_list=P_LIST, batch=BATCH, iterations=4
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "priority_queue",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    )
    for p in P_LIST:
        at = {r.algorithm: r for r in rows if r.p == p}
        assert (
            at["BulkPQ(ours)"].volume_words < at["RandomAlloc(KZ)"].volume_words
        )


@pytest.mark.parametrize("impl", ["bulk", "kz"])
def test_insert_delete_cycle_representative(benchmark, impl):
    machine = Machine(p=8, seed=3)

    def run_bulk():
        q = BulkParallelPQ(machine)
        q.insert([machine.rngs[i].random(BATCH) for i in range(8)])
        q.delete_min_flexible(BATCH // 2, BATCH)

    def run_kz():
        q = RandomAllocPQ(machine)
        q.insert([machine.rngs[i].random(BATCH) for i in range(8)])
        q.delete_min(BATCH // 2)

    benchmark(run_bulk if impl == "bulk" else run_kz)
