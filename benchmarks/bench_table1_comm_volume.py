"""Table 1: old-vs-new bottleneck communication volume per problem.

The paper's Table 1 contrasts asymptotic costs; here we *measure* the
bottleneck volume and startups of the pre-paper approach (random data
redistribution, element-moving priority queues, master-worker gathers)
against this package's algorithms on identical inputs, reproducing the
old/new columns empirically.
"""

import pytest

from repro.bench import experiments as E

from conftest import persist

P = 16
N_PER_PE = 1 << 13
K = 256


def test_table1_measurements(benchmark, results_dir):
    def sweep():
        return E.table1_comm_volume(p=P, n_per_pe=N_PER_PE, k=K)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "table1",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    )
    by = {r.algorithm: r for r in rows}
    # the headline claims, row by row
    pairs = [
        ("unsorted-selection", 4.0),
        ("priority-queue", 2.0),
        ("topk-frequent", 2.0),
        ("sum-aggregation", 2.0),
    ]
    for problem, factor in pairs:
        old = by[f"{problem}/old"].volume_words
        new = by[f"{problem}/new"].volume_words
        assert new * factor <= old, (problem, old, new)
    # sorted selection: the flexible variant needs fewer startups
    assert (
        by["sorted-selection/new"].startups <= by["sorted-selection/old"].startups
    )
