"""Data redistribution (Section 9): adaptive vs blind repartition.

The adaptive scheme's moved volume equals the total surplus -- zero for
already-balanced layouts -- while a naive contiguous repartition moves
data regardless.  Latency of the planning step is O(alpha log p)
(prefix sums + Batcher merge).
"""

import pytest

from repro.bench import experiments as E
from repro.bench.workloads import skewed_sizes_workload
from repro.machine import Machine
from repro.redistribution import redistribute

from conftest import persist

P = 32
N_TOTAL = 1 << 15


def test_redistribution_sweep(benchmark, results_dir):
    def sweep():
        return E.redistribution_comparison(p=P, n_total=N_TOTAL)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "redistribution",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "moved"),
    )
    by = {r.algorithm: r for r in rows}
    assert by["adaptive/balanced"].extra["moved"] == 0
    for kind in ("point", "ramp", "random"):
        assert by[f"adaptive/{kind}"].extra["moved"] <= by[f"naive/{kind}"].extra["moved"]


@pytest.mark.parametrize("kind", ["point", "random"])
def test_redistribute_representative(benchmark, kind):
    def run():
        machine = Machine(p=P, seed=9)
        data = skewed_sizes_workload(machine, N_TOTAL, kind)
        machine.reset()
        return redistribute(machine, data)

    benchmark(run)
