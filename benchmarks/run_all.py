#!/usr/bin/env python
"""Print every paper table/figure series at once.

Usage::

    python benchmarks/run_all.py            # all experiments
    python benchmarks/run_all.py fig6 fig8  # a subset

Each experiment is also persisted to ``benchmarks/results/<name>.csv``
(plus a pretty ``.txt``), the files EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.bench import experiments as E
from repro.bench import format_table, write_csv

RESULTS = pathlib.Path(__file__).parent / "results"

EXPERIMENTS = {
    "fig6": (
        "Figure 6: weak scaling, unsorted selection (Zipf high tail)",
        lambda: E.fig6_unsorted_selection(),
        ("algorithm", "p", "time_s", "volume_words", "startups", "imbalance"),
    ),
    "fig7a": (
        "Figure 7a: top-k frequent objects, n/p=2^13 (scaled from 2^26)",
        lambda: E.fig7_topk_frequent(n_per_pe=1 << 13, eps=3e-2),
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    ),
    "fig7b": (
        "Figure 7b: top-k frequent objects, n/p=2^15 (scaled from 2^28)",
        lambda: E.fig7_topk_frequent(n_per_pe=1 << 15, eps=3e-2),
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    ),
    "fig8": (
        "Figure 8: strict accuracy (only EC can sample)",
        lambda: E.fig8_strict_accuracy(n_per_pe=1 << 15),
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    ),
    "table1": (
        "Table 1: measured old-vs-new bottleneck volume per problem",
        lambda: E.table1_comm_volume(),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "selection_latency": (
        "Sorted selection latency: exact vs flexible vs batched",
        lambda: E.selection_latency(),
        ("algorithm", "p", "time_s", "startups", "rounds"),
    ),
    "priority_queue": (
        "Bulk PQ vs random allocation (insert* + deleteMin* cycles)",
        lambda: E.priority_queue_comparison(),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "multicriteria": (
        "Multicriteria top-k: DTA / RDTA / sequential TA",
        lambda: E.multicriteria_comparison(),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "sum_aggregation": (
        "Top-k sum aggregation: PAC-sum vs EC-sum",
        lambda: E.sum_aggregation_comparison(),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "redistribution": (
        "Data redistribution: adaptive vs naive, per imbalance shape",
        lambda: E.redistribution_comparison(),
        ("algorithm", "p", "time_s", "volume_words", "moved"),
    ),
    "ablation_ams_trials": (
        "Ablation: amsSelect concurrent trials d (Theorem 4)",
        lambda: E.ablation_ams_trials(),
        ("algorithm", "p", "avg_rounds", "startups"),
    ),
    "ablation_ec_kstar": (
        "Ablation: EC candidate count k* (Theorem 11)",
        lambda: E.ablation_ec_kstar(),
        ("algorithm", "p", "time_s", "volume_words", "rho"),
    ),
    "ablation_selection_sampling": (
        "Ablation: unsorted-selection sampling factor (Theorem 1)",
        lambda: E.ablation_selection_sampling(),
        ("algorithm", "p", "time_s", "volume_words", "rounds", "sampled"),
    ),
}


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    RESULTS.mkdir(exist_ok=True)
    for name in names:
        title, runner, columns = EXPERIMENTS[name]
        t0 = time.perf_counter()
        rows = runner()
        dt = time.perf_counter() - t0
        table = format_table(rows, columns)
        write_csv(rows, RESULTS / f"{name}.csv")
        (RESULTS / f"{name}.txt").write_text(table)
        print(f"\n=== {title} [{dt:.1f}s] ===")
        print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
