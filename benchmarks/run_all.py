#!/usr/bin/env python
"""Print every paper table/figure series at once.

Usage::

    python benchmarks/run_all.py                        # all experiments
    python benchmarks/run_all.py fig6 fig8              # a subset
    python benchmarks/run_all.py --quick                # CI smoke: small p/n
    python benchmarks/run_all.py --quick --backend mp   # real worker processes

Each experiment is also persisted to ``benchmarks/results/<name>.csv``
(plus a pretty ``.txt``), the files EXPERIMENTS.md quotes.  ``--quick``
shrinks the PE sweep and the per-PE input so the full registry runs in
a few seconds (the mode CI uses to catch collection/registry rot).
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.bench import experiments as E
from repro.bench import format_table, write_csv

RESULTS = pathlib.Path(__file__).parent / "results"

_QUICK_P = (1, 2, 4)

# name -> (title, runner(quick, backend), display columns)
EXPERIMENTS = {
    "fig6": (
        "Figure 6: weak scaling, unsorted selection (Zipf high tail)",
        lambda q, b: E.fig6_unsorted_selection(
            **(dict(p_list=_QUICK_P, n_per_pe=1 << 10, ks=(16, 64)) if q else {}),
            backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups", "imbalance"),
    ),
    "fig7a": (
        "Figure 7a: top-k frequent objects, n/p=2^13 (scaled from 2^26)",
        lambda q, b: E.fig7_topk_frequent(
            n_per_pe=1 << 10 if q else 1 << 13, eps=3e-2,
            **(dict(p_list=_QUICK_P) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    ),
    "fig7b": (
        "Figure 7b: top-k frequent objects, n/p=2^15 (scaled from 2^28)",
        lambda q, b: E.fig7_topk_frequent(
            n_per_pe=1 << 11 if q else 1 << 15, eps=3e-2,
            **(dict(p_list=_QUICK_P) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    ),
    "fig8": (
        "Figure 8: strict accuracy (only EC can sample)",
        lambda q, b: E.fig8_strict_accuracy(
            n_per_pe=1 << 11 if q else 1 << 15,
            **(dict(p_list=_QUICK_P) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    ),
    "table1": (
        "Table 1: measured old-vs-new bottleneck volume per problem",
        lambda q, b: E.table1_comm_volume(
            **(dict(p=4, n_per_pe=1 << 10, k=64) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "selection_latency": (
        "Sorted selection latency: exact vs flexible vs batched",
        lambda q, b: E.selection_latency(
            **(dict(p_list=_QUICK_P, n_per_pe=1 << 10, k=64) if q else {}),
            backend=b,
        ),
        ("algorithm", "p", "time_s", "startups", "rounds"),
    ),
    "priority_queue": (
        "Bulk PQ vs random allocation (insert* + deleteMin* cycles)",
        lambda q, b: E.priority_queue_comparison(
            **(dict(p_list=_QUICK_P, iterations=2) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "multicriteria": (
        "Multicriteria top-k: DTA / RDTA / sequential TA",
        lambda q, b: E.multicriteria_comparison(
            **(dict(p_list=(2, 4), n_per_pe=1 << 8) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "sum_aggregation": (
        "Top-k sum aggregation: PAC-sum vs EC-sum",
        lambda q, b: E.sum_aggregation_comparison(
            **(dict(p_list=_QUICK_P, n_per_pe=1 << 10) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    ),
    "redistribution": (
        "Data redistribution: adaptive vs naive, per imbalance shape",
        lambda q, b: E.redistribution_comparison(
            **(dict(p=4, n_total=1 << 12) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "moved"),
    ),
    "ablation_ams_trials": (
        "Ablation: amsSelect concurrent trials d (Theorem 4)",
        lambda q, b: E.ablation_ams_trials(
            **(dict(p=4, n_per_pe=1 << 10, k=256, ds=(1, 4), trials=3,
                    width_divisors=(1, 16)) if q else {}),
            backend=b,
        ),
        ("algorithm", "p", "avg_rounds", "startups"),
    ),
    "ablation_ec_kstar": (
        "Ablation: EC candidate count k* (Theorem 11)",
        lambda q, b: E.ablation_ec_kstar(
            **(dict(p=4, n_per_pe=1 << 10, factors=(1, 16)) if q else {}),
            backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "rho"),
    ),
    "ablation_selection_sampling": (
        "Ablation: unsorted-selection sampling factor (Theorem 1)",
        lambda q, b: E.ablation_selection_sampling(
            **(dict(p=4, n_per_pe=1 << 10, k=64, factors=(1.0, 4.0)) if q else {}),
            backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "rounds", "sampled"),
    ),
    "collectives": (
        "Collective micro-benchmarks (driver/data-plane overhead)",
        lambda q, b: E.collectives_microbench(
            **(dict(p_list=(2, 4), repeats=5) if q else {}), backend=b,
        ),
        ("algorithm", "p", "time_s", "volume_words", "wall_s", "backend"),
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="experiments to run (default: all)")
    parser.add_argument(
        "--quick", action="store_true",
        help="small PE sweep + small inputs (CI smoke mode)",
    )
    from repro.machine import available_backends

    parser.add_argument(
        "--backend", choices=available_backends(), default="sim",
        help="execution backend for every machine",
    )
    args = parser.parse_args(argv)
    if args.backend != "sim" and not args.quick:
        parser.error(
            f"--backend {args.backend} requires --quick: the full sweeps go "
            "to p=64, far beyond a one-process-per-PE backend's design point"
        )
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    RESULTS.mkdir(exist_ok=True)
    for name in names:
        title, runner, columns = EXPERIMENTS[name]
        t0 = time.perf_counter()
        rows = runner(args.quick, args.backend)
        dt = time.perf_counter() - t0
        table = format_table(rows, columns)
        write_csv(rows, RESULTS / f"{name}.csv")
        (RESULTS / f"{name}.txt").write_text(table)
        print(f"\n=== {title} [{dt:.1f}s] ===")
        print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
