"""Sorted-selection latency: msSelect vs amsSelect vs batched trials.

Reproduces Table 1 rows 2-3: exact multisequence selection needs
``O(alpha log^2 kp)`` startups, the flexible variant ``O(alpha log kp)``
and the ``d``-trial batched variant stays flat even for narrow
flexibility windows (Theorems 3-4).
"""

import numpy as np
import pytest

from repro.bench import experiments as E
from repro.machine import Machine
from repro.selection import ams_select, ms_select

from conftest import persist

P_LIST = (2, 4, 8, 16, 32, 64)
N_PER_PE = 1 << 13
K = 1 << 10


def test_latency_sweep(benchmark, results_dir):
    def sweep():
        return E.selection_latency(p_list=P_LIST, n_per_pe=N_PER_PE, k=K)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "selection_latency",
        rows,
        ("algorithm", "p", "time_s", "startups", "rounds"),
    )
    at = {r.algorithm: r for r in rows if r.p == max(P_LIST)}
    assert at["amsSelect(flex)"].startups <= at["msSelect(exact)"].startups


@pytest.mark.parametrize("algo", ["exact", "flex"])
def test_representative(benchmark, algo):
    machine = Machine(p=16, seed=2)
    seqs = [np.sort(machine.rngs[i].random(N_PER_PE)) for i in range(16)]

    def run_exact():
        machine.reset()
        return ms_select(machine, seqs, K)

    def run_flex():
        machine.reset()
        return ams_select(machine, seqs, K, 2 * K)

    benchmark(run_exact if algo == "exact" else run_flex)
