"""Figure 6: weak scaling of unsorted selection (Section 10.1).

Paper setup: n/p = 2^28 Zipf-high-tail integers with per-PE randomized
universe and exponent; k in {2^10, 2^20, 2^26}; p = 1..2048.  Expected
shape: modeled time roughly flat (local partitioning dominates),
*decreasing* with p for the largest k.

Scaled here to n/p = 2^14 and k in {2^6, 2^10, 2^14}; the CSV written to
``results/fig6.csv`` carries the series (modeled time, bottleneck
volume, startups) per (k, p).
"""

import pytest

from repro.bench import experiments as E
from repro.machine import DistArray, Machine
from repro.bench.workloads import selection_workload
from repro.selection import select_kth

from conftest import persist

P_LIST = (1, 2, 4, 8, 16, 32, 64)
N_PER_PE = 1 << 14


def test_fig6_full_sweep(benchmark, results_dir):
    """The complete Figure 6 series (one simulation pass)."""

    def sweep():
        return E.fig6_unsorted_selection(p_list=P_LIST, n_per_pe=N_PER_PE)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "fig6",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups", "imbalance"),
    )
    # shape check: weak scaling must stay within a small factor of p=1
    for k_label in {r.algorithm for r in rows}:
        series = sorted(
            (r for r in rows if r.algorithm == k_label), key=lambda r: r.p
        )
        assert series[-1].time_s < 60 * max(series[0].time_s, 1e-9)


@pytest.mark.parametrize("p", [4, 16, 64])
def test_select_kth_representative(benchmark, p):
    """Wall-clock of one simulated selection at n/p = 2^14."""
    machine = Machine(p=p, seed=1)
    data = selection_workload(machine, N_PER_PE)
    neg = DistArray(machine, [-c for c in data.chunks])
    k = data.global_size // 2

    def run():
        machine.reset()
        return select_kth(machine, neg, k)

    benchmark(run)
