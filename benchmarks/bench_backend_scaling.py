#!/usr/bin/env python
"""Backend scaling: sim-modeled vs mp wall-clock across p.

Runs the Figure-6 unsorted-selection sweep and the collectives
micro-benchmark on both execution backends and records, per ``p``:

* ``time_s`` -- the modeled alpha-beta makespan (backend-independent,
  asserted equal across backends),
* ``wall_s`` -- real seconds of the whole run (driver + data plane),
* ``backend_wall_s`` -- real seconds inside the backend data plane
  (IPC + in-worker execution for ``mp``),
* ``worker_msgs`` -- total worker-exchange messages (the O(p log p)
  quantity the resident-chunk refactor bounds).

Results are appended-as-written to ``results/BENCH_backend_scaling.json``
so the perf trajectory accumulates across PRs; each invocation stores
its rows under a fresh ``runs[]`` entry with the parameters used.

Usage::

    python benchmarks/bench_backend_scaling.py                 # p = 1 2 4 8
    python benchmarks/bench_backend_scaling.py --p 1 2 4 8 16
    python benchmarks/bench_backend_scaling.py --quick         # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.bench import experiments as E
from repro.machine import Machine

RESULTS = pathlib.Path(__file__).parent / "results"
OUT = RESULTS / "BENCH_backend_scaling.json"


def _selection_rows(p_list, n_per_pe, ks, backend):
    rows = E.fig6_unsorted_selection(
        p_list=p_list, n_per_pe=n_per_pe, ks=ks, backend=backend
    )
    return [
        {
            "experiment": "fig6_unsorted_selection",
            "algorithm": r.algorithm,
            "backend": r.backend,
            "p": r.p,
            "n_per_pe": r.n_per_pe,
            "time_s": r.time_s,
            "wall_s": r.wall_s,
            "backend_wall_s": r.backend_wall_s,
        }
        for r in rows
    ]


def _collective_msgs(p_list):
    """Worker message counts per collective (the O(p log p) evidence)."""
    out = []
    for p in p_list:
        if p < 2:
            continue
        with Machine(p=p, seed=31, backend="mp") as m:
            vals = list(range(p))
            m.allreduce(vals)  # start the pool
            for name, fn in [
                ("allreduce", lambda: m.allreduce(vals)),
                ("allgather", lambda: m.allgather(vals)),
                ("alltoall", lambda: m.alltoall(
                    [[(i, j) if i != j else None for j in range(p)] for i in range(p)]
                )),
            ]:
                before = sum(m.backend.worker_message_counts())
                t0 = time.perf_counter()
                fn()
                wall = time.perf_counter() - t0
                msgs = sum(m.backend.worker_message_counts()) - before
                out.append(
                    {
                        "experiment": "collectives",
                        "algorithm": name,
                        "backend": "mp",
                        "p": p,
                        "worker_msgs": msgs,
                        "direct_msgs": p * (p - 1),
                        "wall_s": wall,
                    }
                )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--p", nargs="+", type=int, default=[1, 2, 4, 8])
    parser.add_argument("--n-per-pe", type=int, default=1 << 14)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny inputs, p <= 4"
    )
    parser.add_argument("--out", type=pathlib.Path, default=OUT)
    args = parser.parse_args(argv)

    p_list = [p for p in args.p if p <= 4] if args.quick else args.p
    n_per_pe = 1 << 10 if args.quick else args.n_per_pe
    ks = (64, 1024) if args.quick else (1 << 6, 1 << 10, 1 << 14)

    rows = []
    for backend in ("sim", "mp"):
        rows += _selection_rows(tuple(p_list), n_per_pe, ks, backend)
    rows += _collective_msgs(p_list)

    # modeled time must be backend-independent, wall-clock is the story
    by_key = {}
    for r in rows:
        if r["experiment"] != "fig6_unsorted_selection":
            continue
        key = (r["algorithm"], r["p"])
        by_key.setdefault(key, {})[r["backend"]] = r
    for key, pair in by_key.items():
        if {"sim", "mp"} <= set(pair):
            assert pair["sim"]["time_s"] == pair["mp"]["time_s"], key

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "params": {"p_list": p_list, "n_per_pe": n_per_pe, "ks": list(ks),
                   "quick": args.quick},
        "rows": rows,
    }
    args.out.parent.mkdir(exist_ok=True)
    history = {"runs": []}
    if args.out.exists():
        try:
            history = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            pass
    history.setdefault("runs", []).append(run)
    args.out.write_text(json.dumps(history, indent=2) + "\n")

    print(f"{'experiment':26s} {'algorithm':16s} {'backend':7s} {'p':>3s} "
          f"{'time_s':>10s} {'wall_s':>8s} {'msgs':>6s}")
    for r in rows:
        print(f"{r['experiment']:26s} {r['algorithm']:16s} {r['backend']:7s} "
              f"{r['p']:3d} {r.get('time_s', float('nan')):10.3e} "
              f"{r.get('wall_s', 0.0):8.4f} {r.get('worker_msgs', ''):>6}")
    print(f"\nwrote {args.out} ({len(history['runs'])} accumulated runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
