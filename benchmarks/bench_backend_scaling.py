#!/usr/bin/env python
"""Backend scaling: sim-modeled vs mp wall-clock across p.

Runs the Figure-6 unsorted-selection sweep, the resident-subsystem
workloads (multiselection, redistribution, bulk priority queue) and the
collectives micro-benchmark on both execution backends and records,
per ``p``:

* ``time_s`` -- the modeled alpha-beta makespan (backend-independent,
  asserted equal across backends),
* ``wall_s`` -- real seconds of the whole run (driver + data plane),
* ``backend_wall_s`` -- real seconds inside the backend data plane
  (IPC + in-worker execution for ``mp``),
* ``worker_msgs`` -- total worker-exchange messages (the O(p log p)
  quantity the resident-chunk refactor bounds),
* ``driver_sends`` -- driver command-channel writes per collective (the
  O(1) the broadcast command channel bounds; p direct sends before it),
* ``wire_bytes`` / ``shm_bytes`` -- measured driver transport bytes:
  what physically crossed the command/result pipes vs what rode
  shared-memory blocks (the zero-copy data plane; see the ``transport``
  experiment, which runs the same large-payload workloads with the
  shared-memory lane on and off and asserts the wire bytes collapse).

The ``pipeline_overlap`` experiment times ``multi_select`` at
``pipeline_depth`` 1 vs 8 on the mp pool: counter-addressed draws
(:mod:`repro.machine.ctrrng`) removed rng consumption from the settle
path, so the split sample/count level kernels genuinely overlap
(``max_inflight > 1``) and coalesced command frames cut driver sends --
asserted, along with cross-depth bit-identity of the selected values.
Walls are medians over interleaved measurement blocks and full runs also
gate on the median paired per-block difference being a depth-8 win, a
statistic that holds up against load drift on a shared box.

The ``kernel_throughput`` experiment times every registered kernel's
python reference against its native twin (elements/sec at 1M elements
when numba is importable, tiny interpreted-shim inputs otherwise) and
the end-to-end ``multi_select`` + bulk-pqueue cycle on the mp pool
under ``kernels="python"`` vs ``kernels="native"``.  With numba the run
gates on the partition twin clearing 3x the numpy reference and on the
end-to-end native win; without numba the rows record interpreted-shim
numbers and nothing is asserted (the shim exists for bit-identity, not
speed).

Results are appended-as-written to ``results/BENCH_backend_scaling.json``
so the perf trajectory accumulates across PRs; each invocation stores
its rows under a fresh ``runs[]`` entry with the parameters used.

Usage::

    python benchmarks/bench_backend_scaling.py                 # p = 1 2 4 8
    python benchmarks/bench_backend_scaling.py --p 1 2 4 8 16
    python benchmarks/bench_backend_scaling.py --quick         # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import threading
import time

import numpy as np

from repro.bench import experiments as E
from repro.machine import DistArray, Machine
from repro.pqueue import BulkParallelPQ
from repro.redistribution import redistribute
from repro.selection import multi_select

RESULTS = pathlib.Path(__file__).parent / "results"
OUT = RESULTS / "BENCH_backend_scaling.json"

#: experiments whose modeled time must be identical across backends
_PARITY_EXPERIMENTS = (
    "fig6_unsorted_selection",
    "multi_select",
    "redistribution",
    "pqueue",
)


def _selection_rows(p_list, n_per_pe, ks, backend):
    rows = E.fig6_unsorted_selection(
        p_list=p_list, n_per_pe=n_per_pe, ks=ks, backend=backend
    )
    return [
        {
            "experiment": "fig6_unsorted_selection",
            "algorithm": r.algorithm,
            "backend": r.backend,
            "p": r.p,
            "n_per_pe": r.n_per_pe,
            "time_s": r.time_s,
            "wall_s": r.wall_s,
            "backend_wall_s": r.backend_wall_s,
        }
        for r in rows
    ]


def _resident_rows(p_list, n_per_pe, backend):
    """The PR-3 resident subsystems: one row per (workload, p)."""
    rows = []
    for p in p_list:
        # -- multiselection: shared recursion, one worker command/level
        with Machine(p=p, seed=61, backend=backend) as m:
            data = DistArray.generate(
                m, lambda r, g: g.integers(0, 1 << 20, n_per_pe)
            )
            m.reset()
            n = data.global_size
            ks = sorted({1, n // 16, n // 4, n // 2, 3 * n // 4, n})
            t0 = time.perf_counter()
            multi_select(m, data, ks)
            wall = time.perf_counter() - t0
            rep = m.report()
        rows.append(_row("multi_select", f"{len(ks)} ranks", rep, p, n_per_pe, wall))

        # -- redistribution: skewed layout, worker-to-worker transfers
        with Machine(p=p, seed=62, backend=backend) as m:
            rng = np.random.default_rng(62)
            sizes = [6 * n_per_pe] + [n_per_pe // 4] * (p - 1)
            data = DistArray(
                m,
                [rng.integers(0, 10**6, s).astype(np.int64) for s in sizes],
                resident=m.backend.is_real,
            )
            m.reset()
            t0 = time.perf_counter()
            redistribute(m, data)
            wall = time.perf_counter() - t0
            rep = m.report()
        rows.append(_row("redistribution", "adaptive", rep, p, n_per_pe, wall))

        # -- bulk priority queue: insert/deleteMin cycles on resident trees
        with Machine(p=p, seed=63, backend=backend) as m:
            pq = BulkParallelPQ(m)
            rng = np.random.default_rng(63)
            per_pe = max(200, n_per_pe // 32)
            m.reset()
            t0 = time.perf_counter()
            for _ in range(3):
                pq.insert([list(rng.random(per_pe)) for _ in range(p)])
                pq.delete_min(max(1, per_pe * p // 2))
            wall = time.perf_counter() - t0
            rep = m.report()
        rows.append(_row("pqueue", "insert+deleteMin x3", rep, p, per_pe, wall))
    return rows


def _row(experiment, algorithm, rep, p, n_per_pe, wall):
    return {
        "experiment": experiment,
        "algorithm": algorithm,
        "backend": rep.backend,
        "p": p,
        "n_per_pe": n_per_pe,
        "time_s": rep.makespan,
        "wall_s": wall,
        "backend_wall_s": rep.backend_wall_s,
        "wire_bytes": rep.wire_bytes,
        "shm_bytes": rep.shm_bytes,
    }


def _transport_rows(p, n_per_pe, repeats=3):
    """Transport lanes compared on the same large-payload workloads:
    the mp backend with the shared-memory lane enabled vs disabled
    (in-band pipe framing), and the tcp socket backend (no shm lane by
    construction -- every payload rides the socket inline).

    Covers the two bulk flows: chunk upload/download (driver <-> worker)
    and skewed redistribution (worker <-> worker sendrecv rows).
    """
    from repro.machine.backends import MultiprocessingBackend, TcpBackend
    from repro.machine.backends.shm import DEFAULT_THRESHOLD

    lanes = (
        ("shm", lambda: MultiprocessingBackend(p, shm_threshold=DEFAULT_THRESHOLD)),
        ("inband", lambda: MultiprocessingBackend(p, shm_threshold=None)),
        ("tcp", lambda: TcpBackend(p)),
    )
    rows = []
    for lane, make in lanes:
        # -- chunk roundtrip: pin p chunks, transform, fetch the result
        with Machine(p=p, seed=71, backend=make()) as m:
            rng = np.random.default_rng(71)
            chunks = [rng.random(n_per_pe) for _ in range(p)]
            m.allreduce([0] * p)  # start the pool outside the timer
            m.reset()
            wall = float("inf")  # min over repeats: stable on busy boxes
            for _ in range(repeats):
                t0 = time.perf_counter()
                d = DistArray(m, chunks, resident=True)
                out = d.negate()          # worker-side result: fetch is real
                out.chunks               # download through the transport
                wall = min(wall, time.perf_counter() - t0)
            rep = m.report()
        rows.append(_row("transport", f"chunk_roundtrip[{lane}]",
                         rep, p, n_per_pe, wall))

        # -- redistribution: skewed layout, worker-to-worker transfers.
        # The bulk payload here moves between the workers, invisible to
        # the driver-side report counters -- record the per-worker
        # transport totals so the lane split shows up in the row.
        with Machine(p=p, seed=72, backend=make()) as m:
            rng = np.random.default_rng(72)
            sizes = [(p - 1) * n_per_pe] + [n_per_pe // 4] * (p - 1)
            wall = float("inf")
            w0 = None
            for i in range(repeats):
                data = DistArray(
                    m,
                    [rng.integers(0, 10**6, s).astype(np.int64) for s in sizes],
                    resident=True,
                )
                if i == repeats - 1:
                    # snapshot right before the last timed section so the
                    # byte delta covers exactly ONE redistribution (no
                    # staging/pinning traffic, no repeat accumulation)
                    w0 = m.backend.worker_transport_counts()
                m.reset()  # time (and model) only the redistribution
                t0 = time.perf_counter()
                redistribute(m, data)
                wall = min(wall, time.perf_counter() - t0)
            w1 = m.backend.worker_transport_counts()
            rep = m.report()
        row = _row("transport", f"redistribute[{lane}]", rep, p, n_per_pe, wall)
        row["worker_wire_bytes"] = sum(
            b["wire_tx"] - a["wire_tx"] for a, b in zip(w0, w1)
        )
        row["worker_shm_bytes"] = sum(
            b["shm_tx"] - a["shm_tx"] for a, b in zip(w0, w1)
        )
        rows.append(row)
    return rows


def _mixed_query(tid: int, i: int, n: int) -> dict:
    """Deterministic per-(client, step) query from the serving mix."""
    j = (tid * 7 + i) % 4
    if j == 0:
        return {"op": "select", "k": 1 + (tid * 9973 + i * 131) % n}
    if j == 1:
        return {"op": "quantile", "q": ((tid * 3 + i) % 10) / 10.0}
    if j == 2:
        return {"op": "topk", "k": 1 + (tid + i) % 8}
    return {"op": "frequent", "k": 4 + tid % 3, "dataset": "keys"}


def _concurrent_query_rows(p, n, clients, per_client, window=0.01):
    """The ``repro serve`` story: N closed-loop clients against one
    resident mp pool, serial (batch_window=0, pipeline_depth=1 -- every
    query runs alone, strictly submit-then-wait) vs batched (admission
    window fuses concurrent rank queries into one multi_select, and the
    pipelined engine overlaps command issue).  Records throughput,
    latency percentiles and the realized pipeline depth."""
    from repro.serve import QueryEngine, default_datasets

    rows = []
    for algorithm, bw, depth in (("serial", 0.0, 1), ("batched", window, None)):
        machine = Machine(p=p, seed=81, backend="mp", pipeline_depth=depth)
        engine = QueryEngine(
            machine, default_datasets(machine, n), batch_window=bw
        )
        try:
            engine.query(op="select", k=1)  # start the pool off the clock
            stats0 = dict(engine.stats)
            latencies: list[float] = []
            lock = threading.Lock()

            def client(tid):
                lats = []
                for i in range(per_client):
                    q = _mixed_query(tid, i, n)
                    t0 = time.perf_counter()
                    engine.submit(q).result()
                    lats.append(time.perf_counter() - t0)
                with lock:
                    latencies.extend(lats)

            threads = [
                threading.Thread(target=client, args=(tid,))
                for tid in range(clients)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            stats = {
                k: engine.stats[k] - stats0[k]
                for k in ("queries", "batches", "fused_commands")
            }
            max_inflight = machine.backend.max_inflight
        finally:
            engine.close()

        lat_ms = sorted(x * 1e3 for x in latencies)

        def pct(q):
            return lat_ms[min(len(lat_ms) - 1, int(q * len(lat_ms)))]

        rows.append({
            "experiment": "concurrent_queries",
            "algorithm": algorithm,
            "backend": "mp",
            "p": p,
            "n_per_pe": n // p,
            "clients": clients,
            "queries": stats["queries"],
            "batches": stats["batches"],
            "fused_commands": stats["fused_commands"],
            "wall_s": wall,
            "qps": stats["queries"] / wall,
            "p50_ms": pct(0.50),
            "p95_ms": pct(0.95),
            "p99_ms": pct(0.99),
            "max_inflight": max_inflight,
        })
    return rows


def _pipeline_overlap_rows(p, n_per_pe, reps):
    """The stateless-RNG payoff: with draws counter-addressed (nothing
    gates settling on rng consumption) and multi_select's level kernels
    split into separately issued sample/count halves, depth 8 keeps
    several commands in flight across recursion levels where depth 1
    strictly serializes.  Coalesced command frames make the overlapped
    issue cheaper in driver sends (and total CPU), so the win shows
    even on a single-CPU box where wall == CPU."""
    depths = (1, 8)
    machines, datasets, ks = {}, {}, None
    for depth in depths:
        m = Machine(p=p, seed=91, backend="mp", pipeline_depth=depth)
        machines[depth] = m
        datasets[depth] = DistArray.generate(
            m, lambda r, g: g.integers(0, 1 << 20, n_per_pe)
        )
        n = datasets[depth].global_size
        ks = sorted({1, n // 3, n // 2})
    try:
        values_by_depth, sends0 = {}, {}
        for depth in depths:
            # warm the pool off the clock
            values_by_depth[depth] = multi_select(
                machines[depth], datasets[depth], ks
            )
            sends0[depth] = machines[depth].backend.driver_sends
            machines[depth].reset()
        # both pools stay live and the measurement blocks interleave,
        # so load drift of a busy box hits both depths alike; per-depth
        # walls are the MEDIAN over blocks and the gating statistic is
        # the median of the PAIRED per-block differences -- both shrug
        # off the scheduling spikes that make per-call minima and plain
        # totals unreliable on a shared machine
        per_block = 4
        blocks = max(2, reps // per_block)
        block_walls = {d: [] for d in depths}
        for block in range(blocks):
            order = depths if block % 2 == 0 else depths[::-1]
            for depth in order:
                m, d = machines[depth], datasets[depth]
                t0 = time.perf_counter()
                for _ in range(per_block):
                    assert multi_select(m, d, ks) == values_by_depth[depth]
                block_walls[depth].append(time.perf_counter() - t0)
        paired_win = float(np.median(
            [a - b for a, b in zip(block_walls[1], block_walls[8])]
        )) / per_block
        rows = []
        done = blocks * per_block
        for depth in depths:
            m = machines[depth]
            rows.append({
                "experiment": "pipeline_overlap",
                "algorithm": f"depth{depth}",
                "backend": "mp",
                "p": p,
                "n_per_pe": n_per_pe,
                "reps": done,
                "wall_s": float(np.median(block_walls[depth])) / per_block,
                "paired_median_win_s": paired_win,
                "driver_sends": (m.backend.driver_sends - sends0[depth])
                // done,
                "max_inflight": m.backend.max_inflight,
            })
        # draw stability across depths rides along: the overlapped run
        # must return the exact bits of the serial one
        assert values_by_depth[1] == values_by_depth[8]
        return rows
    finally:
        for m in machines.values():
            m.close()


def _kernel_throughput_rows(p, n_per_pe, reps):
    """Per-kernel python-vs-native throughput plus the end-to-end payoff.

    The micro half times each kernel's reference against its twin on
    identical inputs (fresh counter-addressed generators per call for
    the RNG consumers, so both modes draw the same stream).  The
    end-to-end half runs ``multi_select`` and a bulk-pqueue cycle on two
    live mp pools -- one per kernels mode -- with interleaved reps, and
    asserts cross-mode bit-identity of the results along the way.
    """
    from repro.kernels import (
        numba_available,
        partition3,
        set_mode,
        skip_sample_indices,
        spacesaving_offer,
        splitmix64_array,
        topk_cut,
        treap_merge,
        use_mode,
        weighted_counts,
    )
    from repro.machine.ctrrng import philox_generator

    rows = []
    have_numba = numba_available()
    # the acceptance bar sits at 1M elements; without numba the twins
    # run as interpreted python loops, so measure tiny inputs instead
    # (the numbers then document the shim, not a speedup)
    n = 1 << 20 if have_numba else 1 << 12
    rng = np.random.default_rng(101)
    arr = rng.integers(0, 1 << 20, n)
    u64 = arr.astype(np.uint64)
    lo, hi = (int(x) for x in np.percentile(arr, [25, 75]))
    vals = rng.random(n) * 12.0
    half = np.sort(rng.random(n // 2))
    ids = np.arange(n // 2, dtype=np.int64)
    ss_keys = rng.integers(0, 4096, n).astype(np.int64)
    ss_counts = np.ones(n, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)

    def fresh_rng():
        return philox_generator(0xBEEF, 0, 0, 5)

    micro = [
        ("partition3", partition3, lambda: (arr, lo, hi)),
        ("topk_cut", topk_cut, lambda: (arr, hi, 50)),
        ("splitmix64_array", splitmix64_array, lambda: (u64,)),
        ("treap_merge", treap_merge,
         lambda: (half, ids, ids, half, ids, ids)),
        ("spacesaving_offer", spacesaving_offer,
         lambda: (empty, empty, 64, 0, ss_keys, ss_counts)),
        ("weighted_counts", weighted_counts,
         lambda: (fresh_rng(), vals, 3.0)),
        ("skip_sample_indices", skip_sample_indices,
         lambda: (fresh_rng(), n * 64, 1.0 / 64)),
    ]

    def best_wall(fn, args_fn):
        fn(*args_fn())  # warm-up: jit compilation on the native path
        best = float("inf")
        for _ in range(reps):
            a = args_fn()
            t0 = time.perf_counter()
            fn(*a)
            best = min(best, time.perf_counter() - t0)
        return best

    for name, k, args_fn in micro:
        py_s = best_wall(k.py, args_fn)
        nat_s = best_wall(k.native_fn, args_fn)
        rows.append({
            "experiment": "kernel_throughput",
            "algorithm": name,
            "backend": "native" if have_numba else "interpreted",
            "p": 1,
            "elems": n,
            "python_s": py_s,
            "native_s": nat_s,
            "python_eps": n / py_s,
            "native_eps": n / nat_s,
            "speedup": py_s / nat_s,
            "numba": have_numba,
        })

    # -- end to end: the same selection + pqueue workloads, one mp pool
    # per kernels mode, reps interleaved so load drift hits both alike
    modes = ("python", "native")
    machines, datasets, values = {}, {}, {}
    ks = None
    for mode in modes:
        m = Machine(p=p, seed=103, backend="mp", kernels=mode)
        machines[mode] = m
        datasets[mode] = DistArray.generate(
            m, lambda r, g: g.integers(0, 1 << 20, n_per_pe)
        )
        n_glob = datasets[mode].global_size
        ks = sorted({1, n_glob // 3, n_glob // 2, n_glob})
    set_mode(None)  # Machine(kernels=...) set the driver-global mode
    try:
        sel_walls = {mode: float("inf") for mode in modes}
        pq_walls = {mode: float("inf") for mode in modes}
        queues = {}
        for mode in modes:
            with use_mode(mode):
                values[mode] = multi_select(machines[mode], datasets[mode], ks)
                queues[mode] = BulkParallelPQ(machines[mode])
        assert values["python"] == values["native"], "kernel modes diverged"
        for i in range(reps):
            order = modes if i % 2 == 0 else modes[::-1]
            for mode in order:
                m = machines[mode]
                with use_mode(mode):
                    t0 = time.perf_counter()
                    got = multi_select(m, datasets[mode], ks)
                    sel_walls[mode] = min(
                        sel_walls[mode], time.perf_counter() - t0
                    )
                assert got == values[mode]
        per_pe = max(64, n_per_pe // 16)
        for i in range(reps):
            order = modes if i % 2 == 0 else modes[::-1]
            for mode in order:
                q, r = queues[mode], np.random.default_rng(7 + i)
                batches = [list(r.random(per_pe)) for _ in range(p)]
                with use_mode(mode):
                    t0 = time.perf_counter()
                    q.insert(batches)
                    q.delete_min(per_pe * p)
                    pq_walls[mode] = min(
                        pq_walls[mode], time.perf_counter() - t0
                    )
        for mode in modes:
            rows.append({
                "experiment": "kernel_throughput",
                "algorithm": f"multi_select[{mode}]",
                "backend": "mp",
                "p": p,
                "n_per_pe": n_per_pe,
                "wall_s": sel_walls[mode],
                "numba": have_numba,
            })
            rows.append({
                "experiment": "kernel_throughput",
                "algorithm": f"pqueue_cycle[{mode}]",
                "backend": "mp",
                "p": p,
                "n_per_pe": per_pe,
                "wall_s": pq_walls[mode],
                "numba": have_numba,
            })
    finally:
        for m in machines.values():
            m.close()
        set_mode(None)
    return rows


def _collective_msgs(p_list):
    """Worker message counts per collective (the O(p log p) evidence)
    plus the driver command fan-out (the O(1) evidence)."""
    out = []
    for p in p_list:
        if p < 2:
            continue
        with Machine(p=p, seed=31, backend="mp") as m:
            vals = list(range(p))
            m.allreduce(vals)  # start the pool
            for name, fn in [
                ("allreduce", lambda: m.allreduce(vals)),
                ("allgather", lambda: m.allgather(vals)),
                ("alltoall", lambda: m.alltoall(
                    [[(i, j) if i != j else None for j in range(p)] for i in range(p)]
                )),
            ]:
                before = sum(m.backend.worker_message_counts())
                sends0 = m.backend.driver_sends
                t0 = time.perf_counter()
                fn()
                wall = time.perf_counter() - t0
                driver_sends = m.backend.driver_sends - sends0
                msgs = sum(m.backend.worker_message_counts()) - before
                out.append(
                    {
                        "experiment": "collectives",
                        "algorithm": name,
                        "backend": "mp",
                        "p": p,
                        "worker_msgs": msgs,
                        "direct_msgs": p * (p - 1),
                        "driver_sends": driver_sends,
                        "wall_s": wall,
                    }
                )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--p", nargs="+", type=int, default=[1, 2, 4, 8])
    parser.add_argument("--n-per-pe", type=int, default=1 << 14)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny inputs, p <= 4"
    )
    parser.add_argument(
        "--transport-n", type=int, default=None,
        help="per-PE elements of the transport (shm vs in-band) workloads"
        " (default: 1<<17 elements = 1 MiB per chunk; 1<<14 with --quick)",
    )
    parser.add_argument("--out", type=pathlib.Path, default=OUT)
    args = parser.parse_args(argv)

    p_list = [p for p in args.p if p <= 4] if args.quick else args.p
    n_per_pe = 1 << 10 if args.quick else args.n_per_pe
    ks = (64, 1024) if args.quick else (1 << 6, 1 << 10, 1 << 14)
    if args.transport_n is None:
        args.transport_n = 1 << 14 if args.quick else 1 << 17

    rows = []
    for backend in ("sim", "mp"):
        rows += _selection_rows(tuple(p_list), n_per_pe, ks, backend)
        rows += _resident_rows(p_list, n_per_pe, backend)
    rows += _collective_msgs(p_list)
    rows += _transport_rows(max(p_list), args.transport_n)
    rows += _pipeline_overlap_rows(
        max(p_list),
        # the overlap win peaks where per-level compute is small relative
        # to command latency; cap the input so full runs measure the
        # pipelining effect rather than local partitioning cost
        min(n_per_pe, 1 << 13),
        reps=8 if args.quick else 96,
    )
    rows += _kernel_throughput_rows(
        p=8,
        n_per_pe=1 << 12 if args.quick else 1 << 16,
        reps=3 if args.quick else 7,
    )
    serve_p = max(p_list)
    rows += _concurrent_query_rows(
        serve_p,
        n=serve_p * n_per_pe,
        clients=4 if args.quick else 8,
        per_client=3 if args.quick else 6,
    )

    # modeled time must be backend-independent, wall-clock is the story
    by_key = {}
    for r in rows:
        if r["experiment"] not in _PARITY_EXPERIMENTS:
            continue
        key = (r["experiment"], r["algorithm"], r["p"])
        by_key.setdefault(key, {})[r["backend"]] = r
    for key, pair in by_key.items():
        if {"sim", "mp"} <= set(pair):
            assert pair["sim"]["time_s"] == pair["mp"]["time_s"], key
    # the broadcast command channel: O(1) driver sends per collective
    for r in rows:
        if r["experiment"] == "collectives":
            assert r["driver_sends"] == 1, r
    # the zero-copy data plane: with the shm lane on, per-collective
    # wire bytes of the large-chunk workload collapse to descriptors
    tr = {r["algorithm"]: r for r in rows if r["experiment"] == "transport"}
    shm_r, inband_r = tr["chunk_roundtrip[shm]"], tr["chunk_roundtrip[inband]"]
    assert shm_r["shm_bytes"] > 0, shm_r
    assert shm_r["wire_bytes"] < inband_r["wire_bytes"] / 10, (shm_r, inband_r)
    # the serving front-end: admission batching + the pipelined engine
    # must beat the serial (window=0, depth=1) baseline, with real
    # overlapped issue on the pool
    cq = {r["algorithm"]: r for r in rows
          if r["experiment"] == "concurrent_queries"}
    assert cq["batched"]["qps"] > cq["serial"]["qps"], cq
    assert cq["batched"]["fused_commands"] < cq["batched"]["queries"], cq
    assert cq["batched"]["max_inflight"] > 1, cq
    assert cq["serial"]["max_inflight"] == 1, cq
    # pipelined multi_select: counter-addressed draws let consecutive
    # recursion levels overlap (true in-flight depth > 1) and coalesced
    # frames cut the per-call command-channel writes; the wall-clock win
    # is asserted on full runs only (quick CI inputs are noise-bound)
    po = {r["algorithm"]: r for r in rows
          if r["experiment"] == "pipeline_overlap"}
    assert po["depth1"]["max_inflight"] == 1, po
    if max(p_list) > 1:
        assert po["depth8"]["max_inflight"] > 1, po
        assert po["depth8"]["driver_sends"] < po["depth1"]["driver_sends"], po
    if not args.quick:
        assert po["depth8"]["paired_median_win_s"] > 0, po
        assert po["depth8"]["wall_s"] < po["depth1"]["wall_s"], po
    # native kernels: with numba the compiled partition twin must clear
    # 3x the numpy reference at 1M elements and the end-to-end selection
    # must win at p=8; without numba the rows are informational only
    kt = {r["algorithm"]: r for r in rows
          if r["experiment"] == "kernel_throughput"}
    if kt["partition3"]["numba"]:
        assert kt["partition3"]["native_eps"] >= kt["partition3"]["python_eps"], kt["partition3"]
        assert kt["partition3"]["speedup"] >= 3.0, kt["partition3"]
        assert (kt["multi_select[native]"]["wall_s"]
                < kt["multi_select[python]"]["wall_s"]), kt

    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "params": {"p_list": p_list, "n_per_pe": n_per_pe, "ks": list(ks),
                   "quick": args.quick},
        "rows": rows,
    }
    args.out.parent.mkdir(exist_ok=True)
    history = {"runs": []}
    if args.out.exists():
        try:
            history = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            pass
    history.setdefault("runs", []).append(run)
    args.out.write_text(json.dumps(history, indent=2) + "\n")

    print(f"{'experiment':26s} {'algorithm':24s} {'backend':7s} {'p':>3s} "
          f"{'time_s':>10s} {'wall_s':>8s} {'msgs':>6s} {'sends':>5s} "
          f"{'wire_B':>10s} {'shm_B':>10s}")
    for r in rows:
        if r["experiment"] in ("concurrent_queries", "kernel_throughput"):
            continue  # own summaries below (dedicated columns)
        print(f"{r['experiment']:26s} {r['algorithm']:24s} {r['backend']:7s} "
              f"{r['p']:3d} {r.get('time_s', float('nan')):10.3e} "
              f"{r.get('wall_s', 0.0):8.4f} {r.get('worker_msgs', ''):>6} "
              f"{r.get('driver_sends', ''):>5} {r.get('wire_bytes', ''):>10} "
              f"{r.get('shm_bytes', ''):>10}")
    for r in rows:
        if r["experiment"] != "kernel_throughput":
            continue
        if "speedup" in r:
            print(f"kernel_throughput[{r['algorithm']:20s}] "
                  f"{r['elems']} elems: python {r['python_eps']:10.3e} e/s, "
                  f"native {r['native_eps']:10.3e} e/s "
                  f"({r['speedup']:5.2f}x, "
                  f"{'compiled' if r['numba'] else 'interpreted'})")
        else:
            print(f"kernel_throughput[{r['algorithm']:20s}] p={r['p']} "
                  f"wall {r['wall_s']:8.4f} s "
                  f"({'compiled' if r['numba'] else 'interpreted'})")
    for r in rows:
        if r["experiment"] == "concurrent_queries":
            print(f"concurrent_queries[{r['algorithm']:7s}] p={r['p']} "
                  f"{r['clients']} clients, {r['queries']} queries -> "
                  f"{r['qps']:7.1f} qps, p50 {r['p50_ms']:6.1f} ms, "
                  f"p95 {r['p95_ms']:6.1f} ms, p99 {r['p99_ms']:6.1f} ms, "
                  f"{r['fused_commands']} fused cmds, "
                  f"max_inflight {r['max_inflight']}")
    print(f"\nwrote {args.out} ({len(history['runs'])} accumulated runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
