"""Top-k sum aggregation (Section 8, Table 1 row 5).

PAC-sum (one-pass, estimates) vs EC-sum (exact sums via aggregation-
table lookups).  The paper's centralized strawman appears in
bench_table1; here the sweep shows both scale flat over p with
volume ``O((1/eps) sqrt(1/p) log(n/delta))`` per PE.
"""

import pytest

from repro.bench import experiments as E
from repro.aggregation import top_k_sums_ec, top_k_sums_pac
from repro.bench.workloads import sum_workload
from repro.machine import Machine

from conftest import persist

P_LIST = (1, 2, 4, 8, 16, 32)
N_PER_PE = 1 << 13


def test_sum_aggregation_sweep(benchmark, results_dir):
    def sweep():
        return E.sum_aggregation_comparison(p_list=P_LIST, n_per_pe=N_PER_PE)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "sum_aggregation",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    )
    # per-PE volume shrinks (or at worst stays flat) as p grows
    for algo in ("SumPAC", "SumEC"):
        series = sorted((r for r in rows if r.algorithm == algo), key=lambda r: r.p)
        assert series[-1].volume_words < 20 * max(series[1].volume_words, 1)


@pytest.mark.parametrize("variant", ["pac", "ec"])
def test_representative(benchmark, variant):
    machine = Machine(p=8, seed=5)
    kv = sum_workload(machine, N_PER_PE)
    fn = top_k_sums_pac if variant == "pac" else top_k_sums_ec

    def run():
        machine.reset()
        return fn(machine, kv, 32, 2e-2, 1e-4)

    benchmark(run)
