"""Refinement features (Sections 6/7.4/11): measured benefit checks.

* dSBF fingerprint counting vs key-based DHT insertion (volume),
* adaptive two-pass sampling: probe-only on gapped inputs vs escalation
  on flat inputs (communication),
* DTA multi-probe exponential search (round count),
* streaming monitor: per-item amortized communication.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchRow, run_algorithm
from repro.bench.workloads import (
    gapped_workload,
    multicriteria_workload,
    zipf_keys_workload,
)
from repro.common import zipf_sample
from repro.frequent import (
    StreamingTopKMonitor,
    top_k_frequent_adaptive,
    top_k_frequent_ec,
    top_k_frequent_ec_dsbf,
)
from repro.machine import Machine
from repro.topk import SumScore, dta_prefixes

from conftest import persist

P = 16
N_PER_PE = 1 << 13


def test_dsbf_vs_keys(benchmark, results_dir):
    def sweep():
        rows = []
        kwargs = dict(eps=5e-3, delta=1e-3, k_star=128, rho=0.1)
        make = lambda m: zipf_keys_workload(m, N_PER_PE, universe=1 << 14, s=1.0)
        rows.append(run_algorithm(
            "refinements", "EC/keys", P, N_PER_PE, make,
            lambda m, d: {"dht": m.metrics.by_kind.get("dht_exchange", 0)}
            if top_k_frequent_ec(m, d, 32, **kwargs) else None, seed=41,
        ))
        rows.append(run_algorithm(
            "refinements", "EC/dsbf", P, N_PER_PE, make,
            lambda m, d: {"dht": m.metrics.by_kind.get("dht_exchange", 0)}
            if top_k_frequent_ec_dsbf(m, d, 32, **kwargs) else None, seed=41,
        ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(results_dir, "refinement_dsbf", rows,
            ("algorithm", "p", "time_s", "volume_words", "dht"))
    by = {r.algorithm: r for r in rows}
    assert by["EC/dsbf"].extra["dht"] <= by["EC/keys"].extra["dht"]


def test_adaptive_two_pass(benchmark, results_dir):
    def sweep():
        rows = []
        for kind, make in (
            ("gapped", lambda m: gapped_workload(m, N_PER_PE, universe=1 << 10, k=16, gap=8.0)),
            ("zipf", lambda m: zipf_keys_workload(m, N_PER_PE, universe=1 << 14, s=1.0)),
        ):
            rows.append(run_algorithm(
                "refinements", f"adaptive/{kind}", P, N_PER_PE, make,
                lambda m, d: {
                    "escalated": top_k_frequent_adaptive(
                        m, d, 16, eps=5e-3, delta=1e-3
                    ).info["escalated"]
                },
                seed=42,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(results_dir, "refinement_adaptive", rows,
            ("algorithm", "p", "time_s", "volume_words", "escalated"))
    by = {r.algorithm: r for r in rows}
    # the gapped case stops after the probe and is cheaper
    assert not by["adaptive/gapped"].extra["escalated"]
    assert by["adaptive/gapped"].time_s <= by["adaptive/zipf"].time_s


def test_dta_probe_ladder(benchmark, results_dir):
    def sweep():
        rows = []
        for probes in (1, 2, 4):
            def run(m, idx, probes=probes):
                pre = dta_prefixes(m, idx, SumScore(3), 32, probes=probes)
                return {"probes": probes, "rounds": pre.rounds, "K": pre.scanned}

            rows.append(run_algorithm(
                "refinements", f"DTA/probes={probes}", P, 1 << 10,
                lambda m: multicriteria_workload(m, 1 << 10, 3), run, seed=43,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(results_dir, "refinement_dta_probes", rows,
            ("algorithm", "p", "time_s", "rounds", "K"))
    by = {r.extra["probes"]: r for r in rows}
    assert by[4].extra["rounds"] <= by[1].extra["rounds"]


def test_monitor_amortization(benchmark, results_dir):
    def sweep():
        rows = []
        for steps in (2, 8):
            def run(m, _, steps=steps):
                mon = StreamingTopKMonitor(m, k=16, eps=2e-2, delta=1e-3)
                for _ in range(steps):
                    mon.ingest(
                        [zipf_sample(g, 4000, universe=1 << 10, s=1.1) for g in m.rngs]
                    )
                    mon.top_k()
                return {
                    "steps": steps,
                    "per_item_words": m.metrics.total_traffic
                    / max(mon.total_items, 1),
                }

            rows.append(run_algorithm(
                "refinements", f"monitor/steps={steps}", P, 4000,
                lambda m: None, run, seed=44,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(results_dir, "refinement_monitor", rows,
            ("algorithm", "p", "time_s", "volume_words", "per_item_words"))
    by = {r.extra["steps"]: r for r in rows}
    # amortized per-item cost falls as the stream grows (caching +
    # length-independent queries)
    assert by[8].extra["per_item_words"] <= by[2].extra["per_item_words"] * 1.5
