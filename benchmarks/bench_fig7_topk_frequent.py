"""Figure 7: weak scaling of top-k most frequent objects (Section 10.2).

Paper setup: n/p = 2^26 (7a) and 2^28 (7b), eps = 3e-4, delta = 1e-4,
k = 32, Zipf keys over a 2^20 universe; PAC vs EC vs Naive vs
Naive-Tree.  Expected shape: Naive degrades linearly in p; Naive-Tree
flat but above PAC; PAC scales best; EC pays a constant exact-counting
overhead (its regime is Figure 8).

Scaled: n/p = 2^13 / 2^15 for the (a)/(b) panels, eps = 3e-2 so the
sampling regime (rho < 1 at scale) matches the paper's.
"""

import pytest

from repro.bench import experiments as E
from repro.bench.workloads import zipf_keys_workload
from repro.frequent import top_k_frequent_pac
from repro.machine import Machine

from conftest import persist

P_LIST = (1, 2, 4, 8, 16, 32, 64)
EPS = 3e-2
DELTA = 1e-4


def test_fig7a_sweep(benchmark, results_dir):
    def sweep():
        return E.fig7_topk_frequent(
            p_list=P_LIST, n_per_pe=1 << 13, eps=EPS, delta=DELTA, universe=1 << 14
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "fig7a",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    )
    _check_ordering(rows)


def test_fig7b_sweep(benchmark, results_dir):
    def sweep():
        return E.fig7_topk_frequent(
            p_list=P_LIST, n_per_pe=1 << 15, eps=EPS, delta=DELTA, universe=1 << 14
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "fig7b",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    )
    _check_ordering(rows)


def _check_ordering(rows):
    """Paper shape at the largest p: Naive slowest; PAC at least as fast
    as Naive-Tree; Naive's coordinator volume dominates everyone."""
    p_max = max(r.p for r in rows)
    at = {r.algorithm: r for r in rows if r.p == p_max}
    assert at["Naive"].time_s > at["PAC"].time_s
    assert at["Naive"].volume_words >= at["NaiveTree"].volume_words >= at["PAC"].volume_words
    assert at["NaiveTree"].time_s >= at["PAC"].time_s


@pytest.mark.parametrize("p", [8, 32])
def test_pac_representative(benchmark, p):
    machine = Machine(p=p, seed=7)
    data = zipf_keys_workload(machine, 1 << 13, universe=1 << 14, s=1.0)

    def run():
        machine.reset()
        return top_k_frequent_pac(machine, data, 32, EPS, DELTA)

    benchmark(run)
