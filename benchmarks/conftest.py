"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` module pairs two things:

* **pytest-benchmark timings** of a representative configuration (the
  wall-clock cost of simulating the algorithm -- tracked for
  performance regressions of this package itself), and
* **paper-series sweeps**: the full weak-scaling table of the
  corresponding paper figure, printed and persisted to
  ``benchmarks/results/<name>.csv`` for EXPERIMENTS.md.

Run everything with ``pytest benchmarks/ --benchmark-only`` or print all
paper tables at once with ``python benchmarks/run_all.py``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import format_table, write_csv

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def persist(results_dir: pathlib.Path, name: str, rows, columns=None) -> str:
    """Write the sweep as CSV + pretty table; return the table text."""
    write_csv(rows, results_dir / f"{name}.csv")
    txt = format_table(rows, columns) if columns else format_table(rows)
    (results_dir / f"{name}.txt").write_text(txt)
    print(f"\n== {name} ==\n{txt}")
    return txt
