"""Multicriteria top-k: DTA / RDTA coordination cost (Section 6).

No directly comparable distributed baseline exists (the paper notes
TPUT/KLEE limit p <= m and centralize all traffic); we report DTA and
RDTA cost over p with the sequential TA scan depth as the work
reference, plus DTA's sublinearity in n/p.
"""

import pytest

from repro.bench import experiments as E
from repro.bench.workloads import multicriteria_workload
from repro.machine import Machine
from repro.topk import SumScore, dta_topk

from conftest import persist

P_LIST = (2, 4, 8, 16, 32)
M_CRIT = 4


def test_multicriteria_sweep(benchmark, results_dir):
    def sweep():
        return E.multicriteria_comparison(
            p_list=P_LIST, n_per_pe=1 << 10, m_criteria=M_CRIT, k=32
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "multicriteria",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups"),
    )
    # DTA's coordination volume must stay sublinear in the input
    for r in rows:
        if r.algorithm == "DTA":
            assert r.volume_words < r.n_per_pe * 2


@pytest.mark.parametrize("p", [4, 16])
def test_dta_representative(benchmark, p):
    machine = Machine(p=p, seed=4)
    idx = multicriteria_workload(machine, 1 << 10, M_CRIT)
    scorer = SumScore(M_CRIT)

    def run():
        machine.reset()
        return dta_topk(machine, idx, scorer, 32)

    benchmark(run)
