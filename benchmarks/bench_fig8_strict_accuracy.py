"""Figure 8: top-k frequent objects under strict accuracy (Section 10.2).

Paper setup: eps = 1e-6, delta = 1e-8 -- so strict that PAC, Naive and
Naive-Tree must effectively aggregate the *whole* input (sample rate 1),
while EC's sample stays orders of magnitude smaller; EC is the
consistent winner (4.1 s vs 6.2+ s in the paper).

Scaled: eps = 1e-3, delta = 1e-8 with n/p = 2^15 reproduces the same
regime: rho_PAC = 1 while rho_EC << 1.
"""

import pytest

from repro.bench import experiments as E
from repro.bench.workloads import zipf_keys_workload
from repro.frequent import top_k_frequent_ec
from repro.machine import Machine

from conftest import persist

P_LIST = (1, 2, 4, 8, 16, 32, 64)
EPS = 1e-3
DELTA = 1e-8
N_PER_PE = 1 << 15


def test_fig8_sweep(benchmark, results_dir):
    def sweep():
        return E.fig8_strict_accuracy(
            p_list=P_LIST, n_per_pe=N_PER_PE, eps=EPS, delta=DELTA, universe=1 << 14
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "fig8",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "startups", "rho"),
    )
    # the paper's claim: only EC can still sample, and it is the
    # consistently fastest algorithm at scale (Figure 8's ordering:
    # EC < PAC < NaiveTree < Naive).  (Volume-wise PAC is capped by the
    # scaled-down distinct-key universe here, so the time ordering is
    # the faithful comparison.)
    for p in (16, 32, 64):
        at = {r.algorithm: r for r in rows if r.p == p}
        assert at["EC"].extra["rho"] < 1.0
        assert at["PAC"].extra["rho"] == 1.0
        assert at["EC"].time_s < at["PAC"].time_s
        assert at["PAC"].time_s < at["NaiveTree"].time_s
        assert at["NaiveTree"].time_s < at["Naive"].time_s
        assert at["EC"].volume_words < at["Naive"].volume_words


@pytest.mark.parametrize("p", [8, 32])
def test_ec_representative(benchmark, p):
    machine = Machine(p=p, seed=8)
    data = zipf_keys_workload(machine, N_PER_PE, universe=1 << 14, s=1.0)

    def run():
        machine.reset()
        return top_k_frequent_ec(machine, data, 32, EPS, DELTA)

    benchmark(run)
