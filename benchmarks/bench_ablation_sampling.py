"""Ablations for the design choices called out in DESIGN.md §5.

1. amsSelect concurrent trials d vs flexibility-window width (Thm 4);
2. EC's candidate count k* (sample volume vs broadcast volume, Thm 11);
3. unsorted selection's Bernoulli rate multiplier (Thm 1).
"""

import pytest

from repro.bench import experiments as E

from conftest import persist


def test_ablation_ams_trials(benchmark, results_dir):
    def sweep():
        return E.ablation_ams_trials(p=16, n_per_pe=1 << 12, k=1 << 10, trials=10)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "ablation_ams_trials",
        rows,
        ("algorithm", "p", "avg_rounds", "startups"),
    )
    # for the narrowest window, d=16 must beat d=1 on expected rounds
    narrow = {
        r.extra["d"]: r.extra["avg_rounds"]
        for r in rows
        if r.extra["width_div"] == 64
    }
    assert narrow[16] <= narrow[1]


def test_ablation_ec_kstar(benchmark, results_dir):
    def sweep():
        return E.ablation_ec_kstar(p=16, n_per_pe=1 << 13)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "ablation_ec_kstar",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "rho"),
    )
    # sample rate falls as k* grows (Lemma 10)
    rhos = [r.extra["rho"] for r in rows]
    assert rhos == sorted(rhos, reverse=True)


def test_ablation_selection_sampling(benchmark, results_dir):
    def sweep():
        return E.ablation_selection_sampling(p=16, n_per_pe=1 << 12)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    persist(
        results_dir,
        "ablation_selection_sampling",
        rows,
        ("algorithm", "p", "time_s", "volume_words", "rounds", "sampled"),
    )
    # larger sampling factors buy fewer recursion rounds at more volume
    first, last = rows[0], rows[-1]
    assert last.extra["sampled"] > first.extra["sampled"]
