"""Query engine: admission batching + query fusion over one machine.

Queries are submitted from any thread (:meth:`QueryEngine.submit`
returns a :class:`concurrent.futures.Future`) and executed on one
dedicated engine thread that owns the machine.  The engine admits a
*batch* at a time: it blocks for the first pending query, then keeps
admitting for ``batch_window`` seconds (up to ``max_batch`` queries)
before executing, so concurrent clients' queries land in the same
batch.

Fusion generalizes :func:`~repro.selection.multi_select`'s segment
fusion from one query's ranks to *many queries'* ranks: every rank
query (``select``, ``quantile``, ``topk``) of a batch that targets the
same dataset contributes its target ranks to one ``multi_select`` call,
which resolves them all with a single shared recursion -- one fused
sample allgather and one fused count reduction per level instead of one
per query.  ``frequent`` queries on the same dataset deduplicate to a
single exact counting pass per distinct ``k``.

Supported query dicts (``dataset`` defaults to ``"default"``)::

    {"op": "select",   "k": 1234}            # k-th smallest value
    {"op": "quantile", "q": 0.5}             # nearest-rank quantile
    {"op": "topk",     "k": 10}              # k largest, descending
    {"op": "frequent", "k": 8}               # top-k most frequent keys
"""

from __future__ import annotations

import math
import queue
import threading
import time
from concurrent.futures import Future

import numpy as np

from ..machine import DistArray, Machine, WorkerFailure

__all__ = ["OverloadedError", "QueryEngine", "QueryError", "default_datasets"]

#: ops fused into one multi_select per dataset
_RANK_OPS = ("select", "quantile", "topk")


class QueryError(ValueError):
    """A malformed or unsatisfiable query (reported to the one client)."""


class OverloadedError(QueryError):
    """The admission queue is full: the server sheds this query instead
    of growing an unbounded backlog (clients should back off and retry)."""


def default_datasets(machine: Machine, n: int, *, universe: int = 1 << 12,
                     s: float = 1.1) -> dict[str, DistArray]:
    """The server's stock datasets, deterministic in ``(p, seed, n)``.

    ``default``: ``n`` uniform floats in ``[0, 1)`` split evenly over
    the PEs; ``keys``: ``n`` Zipf-distributed integer keys (the
    frequent-objects workload).  Smoke tests rebuild the same arrays on
    a sim machine with the same seed to get a driver-side oracle.
    """
    from ..common import zipf_sample

    per_pe = [n // machine.p + (1 if i < n % machine.p else 0)
              for i in range(machine.p)]
    values = DistArray.generate(
        machine, lambda r, g: g.random(per_pe[r])
    )
    keys = DistArray.generate(
        machine, lambda r, g: zipf_sample(g, per_pe[r], universe=universe, s=s)
    )
    return {"default": values, "keys": keys}


class _Pending:
    __slots__ = ("query", "future", "t0")

    def __init__(self, query: dict, future: Future):
        self.query = query
        self.future = future
        #: admission timestamp (monotonic) for the per-query deadline
        self.t0 = time.monotonic()


class QueryEngine:
    """Batched, fusing front-end over one machine (thread-safe submit).

    Parameters
    ----------
    machine:
        The machine to serve on; the engine takes ownership (closes it
        with :meth:`close`) and touches it only from its own thread.
    datasets:
        Name -> :class:`DistArray` map the queries refer to.
    batch_window:
        Seconds to keep admitting after the first query of a batch
        (``0`` disables batching: every query runs alone, the serial
        baseline the benchmark compares against).
    max_batch:
        Hard cap on queries per batch.
    max_queue:
        Admission bound: queries submitted while this many are already
        queued fail immediately with :class:`OverloadedError` instead
        of growing an unbounded backlog.
    query_deadline:
        Seconds a query may spend queued + batched before the engine
        expires it with a ``QueryError`` (``None`` disables; a query
        dict's own ``"deadline"`` key overrides per query).
    rebuild:
        Optional zero-arg factory returning ``(machine, datasets)``,
        used to rebuild the engine when a broken pool cannot be
        recovered in place (e.g. lost worker-computed datasets with the
        journal off).
    """

    def __init__(
        self,
        machine: Machine,
        datasets: dict[str, DistArray],
        *,
        batch_window: float = 0.005,
        max_batch: int = 64,
        max_queue: int = 1024,
        query_deadline: float | None = None,
        rebuild=None,
    ):
        self.machine = machine
        self.datasets = dict(datasets)
        self.batch_window = float(batch_window)
        self.max_batch = max(1, int(max_batch))
        self.max_queue = max(1, int(max_queue))
        self.query_deadline = (
            float(query_deadline) if query_deadline else None
        )
        self._rebuild = rebuild
        self.stats = {"queries": 0, "batches": 0, "fused_commands": 0,
                      "max_batch_size": 0, "worker_failures": 0,
                      "rebuilds": 0, "overloads": 0, "expired": 0}
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        #: submitted-but-not-admitted count backing the admission bound
        #: (SimpleQueue.qsize is unreliable on some platforms)
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._closed = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-engine", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Client side (any thread)
    # ------------------------------------------------------------------
    def submit(self, query: dict) -> Future:
        """Enqueue one query; the future resolves to its result.

        Fails fast with :class:`OverloadedError` when ``max_queue``
        queries are already waiting for admission."""
        future: Future = Future()
        if self._closed.is_set():
            future.set_exception(QueryError("engine is closed"))
            return future
        with self._depth_lock:
            if self._depth >= self.max_queue:
                self.stats["overloads"] += 1
                future.set_exception(OverloadedError(
                    f"admission queue is full ({self.max_queue} queries "
                    f"pending); retry with backoff"
                ))
                return future
            self._depth += 1
        self._queue.put(_Pending(dict(query), future))
        return future

    def query(self, **query):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(query).result()

    def close(self) -> None:
        """Drain, stop the engine thread, close the machine."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(None)  # wake the admission loop
        self._thread.join(timeout=30.0)
        self.machine.close()

    # ------------------------------------------------------------------
    # Engine thread
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            batch = self._admit()
            if batch is None:
                break
            self.stats["queries"] += len(batch)
            self.stats["batches"] += 1
            self.stats["max_batch_size"] = max(
                self.stats["max_batch_size"], len(batch)
            )
            self._execute(batch)
        # engine shutting down: fail whatever is still queued
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                item.future.set_exception(QueryError("engine is closed"))

    def _take(self, timeout: float):
        """Dequeue one item, keeping the admission-depth counter in sync
        (the sentinel ``None`` is not counted)."""
        item = self._queue.get(timeout=timeout)
        if item is not None:
            with self._depth_lock:
                self._depth -= 1
        return item

    def _admit(self) -> list[_Pending] | None:
        """One admission round: block for the first query, then keep
        admitting until the window closes or the batch is full.
        Returns ``None`` on shutdown."""
        while True:
            # bounded slices rather than one indefinite get: the engine
            # thread stays responsive to close() even if the wake
            # sentinel is lost
            try:
                first = self._take(timeout=1.0)
                break
            except queue.Empty:
                if self._closed.is_set():
                    return None
        if first is None:
            return None
        batch = [first]
        deadline = time.monotonic() + self.batch_window
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._take(timeout=remaining)
            except queue.Empty:
                break
            if item is None:
                # shutdown sentinel: finish this batch, exit next round
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _expired(self, item: _Pending) -> bool:
        """Expire a query past its deadline (the dict's ``"deadline"``
        key overrides the engine default) before paying to run it."""
        limit = item.query.get("deadline", self.query_deadline)
        if limit is None:
            return False
        if time.monotonic() - item.t0 <= float(limit):
            return False
        self.stats["expired"] += 1
        item.future.set_exception(QueryError(
            f"query expired: waited longer than its deadline "
            f"({float(limit):.3f}s)"
        ))
        return True

    def _execute(self, batch: list[_Pending]) -> None:
        """Group a batch by (dataset, fusion class) and run each group
        as one fused call; per-query failures stay on their future."""
        rank_groups: dict[str, list[_Pending]] = {}
        freq_groups: dict[tuple[str, int], list[_Pending]] = {}
        for item in batch:
            if self._expired(item):
                continue
            try:
                q = item.query
                op = q.get("op")
                name = q.get("dataset", "default")
                if name not in self.datasets:
                    raise QueryError(
                        f"unknown dataset {name!r}; have {sorted(self.datasets)}"
                    )
                if op in _RANK_OPS:
                    # validate eagerly so one bad query cannot poison
                    # the fused call it would have joined
                    self._ranks_of(q, self.datasets[name].global_size)
                    rank_groups.setdefault(name, []).append(item)
                elif op == "frequent":
                    k = int(q.get("k", 0))
                    if k < 1:
                        raise QueryError(f"frequent needs k >= 1, got {k}")
                    freq_groups.setdefault((name, k), []).append(item)
                else:
                    raise QueryError(f"unknown op {op!r}")
            except Exception as exc:
                item.future.set_exception(exc)
        for name, items in rank_groups.items():
            self._run_rank_group(name, items)
        for (name, k), items in freq_groups.items():
            self._run_frequent_group(name, k, items)

    def _ranks_of(self, q: dict, n: int) -> list[int]:
        """Target ranks (1-based, ascending) of one rank query."""
        op = q["op"]
        if n == 0:
            raise QueryError(f"dataset {q.get('dataset', 'default')!r} is empty")
        if op == "select":
            k = int(q.get("k", 0))
            if not 1 <= k <= n:
                raise QueryError(f"select needs 1 <= k <= {n}, got {k}")
            return [k]
        if op == "quantile":
            quant = float(q.get("q", -1.0))
            if not 0.0 <= quant <= 1.0:
                raise QueryError(f"quantile needs 0 <= q <= 1, got {quant}")
            return [max(1, int(math.ceil(quant * n)))]
        # topk: the k largest, i.e. ranks n-k+1 .. n
        k = int(q.get("k", 0))
        if not 1 <= k <= n:
            raise QueryError(f"topk needs 1 <= k <= {n}, got {k}")
        return list(range(n - k + 1, n + 1))

    def _after_backend_failure(self, exc: Exception) -> None:
        """Failure isolation: a worker failure fails only the batch it
        hit, costs one engine rebuild, and subsequent queries succeed on
        the recovered pool."""
        if not (isinstance(exc, WorkerFailure)
                or getattr(self.machine.backend, "broken", False)):
            return
        self.stats["worker_failures"] += 1
        try:
            self.machine.recover()
            self.stats["rebuilds"] += 1
            return
        except Exception:
            pass
        if self._rebuild is None:
            return
        try:
            machine, datasets = self._rebuild()
        except Exception:  # pragma: no cover - rebuild factory broken
            return
        old, self.machine = self.machine, machine
        self.datasets = dict(datasets)
        try:
            old.close()
        except Exception:  # pragma: no cover - dead-pool cleanup
            pass
        self.stats["rebuilds"] += 1

    def _run_rank_group(self, name: str, items: list[_Pending]) -> None:
        """ONE multi_select over the union of the group's target ranks."""
        from ..selection import multi_select

        data = self.datasets[name]
        n = data.global_size
        wanted: dict[int, list[int]] = {}
        for i, item in enumerate(items):
            wanted[i] = self._ranks_of(item.query, n)
        union = sorted({k for ranks in wanted.values() for k in ranks})
        try:
            values = multi_select(self.machine, data, union)
        except Exception as exc:
            for item in items:
                item.future.set_exception(exc)
            self._after_backend_failure(exc)
            return
        self.stats["fused_commands"] += 1
        by_rank = dict(zip(union, values))
        for i, item in enumerate(items):
            op = item.query["op"]
            got = [by_rank[k] for k in wanted[i]]
            if op == "topk":
                item.future.set_result(got[::-1])  # descending
            else:
                item.future.set_result(got[0])

    def _run_frequent_group(self, name: str, k: int, items: list[_Pending]) -> None:
        """ONE exact counting pass shared by every duplicate query."""
        from ..frequent import top_k_frequent_exact

        data = self.datasets[name]
        try:
            res = top_k_frequent_exact(self.machine, data, k)
        except Exception as exc:
            for item in items:
                item.future.set_exception(exc)
            self._after_backend_failure(exc)
            return
        self.stats["fused_commands"] += 1
        payload = [[int(key), float(c)] for key, c in res.items]
        for item in items:
            item.future.set_result(payload)
