"""Blocking JSON-lines client for ``repro serve``.

One :class:`ServeClient` wraps one TCP connection.  :meth:`query`
is a synchronous round trip; :meth:`query_many` writes a burst of
requests before reading any response, so a single client can exercise
the server's admission batching on its own.  Instances are not
thread-safe -- give each thread its own client (each gets its own
connection, which is also what exercises the multiplexing path).
"""

from __future__ import annotations

import json
import socket

__all__ = ["ServeClient"]


class ServeClient:
    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, query: dict) -> int:
        self._next_id += 1
        req = {"id": self._next_id, **query}
        self._file.write((json.dumps(req) + "\n").encode())
        return self._next_id

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    @staticmethod
    def _unwrap(resp: dict):
        if not resp.get("ok"):
            raise RuntimeError(f"server error: {resp.get('error')}")
        return resp["result"]

    # ------------------------------------------------------------------
    def query(self, op: str, **fields):
        """One synchronous request/response round trip."""
        self._send({"op": op, **fields})
        self._file.flush()
        return self._unwrap(self._recv())

    def query_many(self, queries: list[dict]) -> list:
        """Write every request, then collect every response.

        Responses may return out of request order (the server resolves
        each query as its own task); they are matched back by id, so the
        returned list aligns with ``queries``.
        """
        ids = [self._send(q) for q in queries]
        self._file.flush()
        by_id = {}
        for _ in ids:
            resp = self._recv()
            by_id[resp.get("id")] = resp
        return [self._unwrap(by_id[i]) for i in ids]
