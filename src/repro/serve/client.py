"""Blocking JSON-lines client for ``repro serve``.

One :class:`ServeClient` wraps one TCP connection.  :meth:`query`
is a synchronous round trip; :meth:`query_many` writes a burst of
requests before reading any response, so a single client can exercise
the server's admission batching on its own.  Instances are not
thread-safe -- give each thread its own client (each gets its own
connection, which is also what exercises the multiplexing path).

The receive path honors the constructor's ``timeout`` as an *overall*
per-response deadline: a server dribbling a partial JSON line (or
stalling mid-response) raises :exc:`TimeoutError` naming the pending
query ids, instead of resetting the socket timeout on every ``recv``
and blocking forever.
"""

from __future__ import annotations

import json
import socket
import time

__all__ = ["ServeClient"]


class ServeClient:
    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.timeout = float(timeout)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buf = bytearray()
        self._next_id = 0
        #: ids sent but not yet answered (named in timeout errors)
        self._pending: list[int] = []

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, query: dict) -> int:
        self._next_id += 1
        req = {"id": self._next_id, **query}
        self._sock.sendall((json.dumps(req) + "\n").encode())
        self._pending.append(self._next_id)
        return self._next_id

    def _recv(self) -> dict:
        """Next complete response line, within the overall deadline.

        A per-``recv`` socket timeout alone is not enough: each byte of
        a slow response would reset it, so a server emitting a partial
        line one byte at a time could hold the client forever.  The
        deadline here spans the whole response.
        """
        deadline = time.monotonic() + self.timeout
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._buf[:nl])
                del self._buf[:nl + 1]
                resp = json.loads(line)
                try:
                    self._pending.remove(resp.get("id"))
                except ValueError:
                    pass
                return resp
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"no complete response within {self.timeout:.1f}s; "
                    f"pending query ids: {self._pending}"
                    + (" (partial line buffered)" if self._buf else "")
                )
            self._sock.settimeout(remaining)
            try:
                piece = self._sock.recv(65536)
            except (socket.timeout, TimeoutError):
                continue  # the deadline check above raises
            if not piece:
                raise ConnectionError("server closed the connection")
            self._buf += piece

    @staticmethod
    def _unwrap(resp: dict):
        if not resp.get("ok"):
            raise RuntimeError(f"server error: {resp.get('error')}")
        return resp["result"]

    # ------------------------------------------------------------------
    def query(self, op: str, **fields):
        """One synchronous request/response round trip."""
        self._send({"op": op, **fields})
        return self._unwrap(self._recv())

    def query_many(self, queries: list[dict]) -> list:
        """Write every request, then collect every response.

        Responses may return out of request order (the server resolves
        each query as its own task); they are matched back by id, so the
        returned list aligns with ``queries``.
        """
        ids = [self._send(q) for q in queries]
        by_id = {}
        for _ in ids:
            resp = self._recv()
            by_id[resp.get("id")] = resp
        return [self._unwrap(by_id[i]) for i in ids]
