"""End-to-end smoke test for ``repro serve`` (used by CI).

Spawns a real server subprocess (``repro serve --port 0``), discovers
the ephemeral port from its ``ready port=`` line, then drives it with
several concurrent clients issuing mixed queries.  Every result is
checked against a driver-side oracle rebuilt from the same ``(p,
seed, size)`` -- the stock datasets are deterministic -- and the
server's stats must show fusion actually happened
(``fused_commands < queries``).

Run as ``python -m repro.serve.smoke [--backend mp] [-p 4]``.
"""

from __future__ import annotations

import argparse
import math
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _spawn_server(args) -> tuple[subprocess.Popen, int]:
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "-p", str(args.p), "--backend", args.backend, "--port", "0",
         "--seed", str(args.seed), "--dataset-size", str(args.size),
         "--batch-window", str(args.window)],
        stdout=subprocess.PIPE, stderr=None, text=True, env=env,
    )
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before becoming ready (rc={proc.poll()})"
            )
        if line.startswith("ready port="):
            return proc, int(line.split("=", 1)[1])
    proc.kill()
    raise RuntimeError("server did not become ready in time")


def _oracle(args) -> tuple[np.ndarray, list[list]]:
    """Driver-side ground truth from the same deterministic datasets."""
    from ..machine import Machine
    from .engine import default_datasets

    with Machine(p=args.p, seed=args.seed, backend="sim") as m:
        ds = default_datasets(m, args.size)
        values = np.sort(ds["default"].concat())
        keys = ds["keys"].concat()
    uniq, counts = np.unique(keys, return_counts=True)
    ranked = sorted(zip(uniq, counts), key=lambda t: (-t[1], t[0]))
    frequent = [[int(key), float(c)] for key, c in ranked[:8]]
    return values, frequent


def _client_worker(host, port, tid, values, frequent, errors):
    from .client import ServeClient

    n = values.size
    k = (tid * 9973) % n + 1
    quant = tid / 7.0 % 1.0
    queries = [
        {"op": "select", "k": k},
        {"op": "quantile", "q": quant},
        {"op": "topk", "k": 5},
        {"op": "frequent", "k": 8, "dataset": "keys"},
    ]
    try:
        with ServeClient(host, port) as client:
            got = client.query_many(queries)
        expect = [
            values[k - 1],
            values[max(1, math.ceil(quant * n)) - 1],
            values[-5:][::-1].tolist(),
            frequent,
        ]
        for q, g, e in zip(queries, got, expect):
            if isinstance(e, np.floating):
                ok = g == float(e)
            else:
                ok = g == e
            if not ok:
                errors.append(f"client {tid} {q}: got {g!r}, want {e!r}")
    except Exception as exc:
        errors.append(f"client {tid}: {type(exc).__name__}: {exc}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--backend", default="mp")
    ap.add_argument("-p", type=int, default=4)
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--seed", type=int, default=2016)
    ap.add_argument("--size", type=int, default=20_000)
    ap.add_argument("--window", type=float, default=0.05,
                    help="server admission window (s)")
    args = ap.parse_args(argv)

    values, frequent = _oracle(args)
    proc, port = _spawn_server(args)
    host = "127.0.0.1"
    try:
        errors: list[str] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(host, port, t, values, frequent, errors),
            )
            for t in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)

        from .client import ServeClient

        with ServeClient(host, port) as control:
            stats = control.query("stats")
            control.query("shutdown")
        rc = proc.wait(timeout=60.0)

        total = args.clients * 4
        print(f"smoke: {total} queries over {args.clients} clients -> "
              f"{stats['fused_commands']} fused commands "
              f"in {stats['batches']} batches "
              f"(max batch {stats['max_batch_size']})")
        if errors:
            for e in errors:
                print("FAIL:", e)
            return 1
        if stats["queries"] != total:
            print(f"FAIL: server saw {stats['queries']} queries, sent {total}")
            return 1
        if stats["fused_commands"] >= stats["queries"]:
            print("FAIL: no fusion happened "
                  f"({stats['fused_commands']} commands for "
                  f"{stats['queries']} queries)")
            return 1
        if rc != 0:
            print(f"FAIL: server exited rc={rc}")
            return 1
        print("smoke: PASS")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
