"""Asyncio JSON-lines front-end over a :class:`QueryEngine`.

Protocol: one JSON object per line in each direction.  Requests carry a
client-chosen ``id`` echoed in the response::

    -> {"id": 1, "op": "select", "k": 1234}
    <- {"id": 1, "ok": true, "result": 0.123}
    -> {"id": 2, "op": "stats"}
    <- {"id": 2, "ok": true, "result": {"queries": ..., ...}}

Control ops handled here (not queued to the engine): ``ping``,
``stats``, ``datasets``, ``shutdown``.  Every data query is submitted
to the engine *immediately* and awaited as its own task, so many
requests from one connection -- or from many connections -- land in the
same admission window and fuse.

On startup the server prints ``ready port=<port>`` on stdout (flushed),
so a parent process using an ephemeral port (``port=0``) can discover
where to connect.
"""

from __future__ import annotations

import asyncio
import json

from .engine import QueryEngine

__all__ = ["serve_forever"]


async def _serve(engine: QueryEngine, host: str, port: int,
                 ready_cb=None) -> None:
    stop = asyncio.Event()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()  # one response line at a time

        async def reply(payload: dict) -> None:
            line = (json.dumps(payload) + "\n").encode()
            async with lock:
                writer.write(line)
                await writer.drain()

        async def run_query(req_id, query: dict) -> None:
            try:
                result = await asyncio.wrap_future(engine.submit(query))
                await reply({"id": req_id, "ok": True, "result": result})
            except (ConnectionError, asyncio.CancelledError):
                pass  # client went away mid-query
            except Exception as exc:
                await reply({"id": req_id, "ok": False, "error": str(exc)})

        tasks: set[asyncio.Task] = set()
        try:
            while not stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await reply({"id": None, "ok": False, "error": str(exc)})
                    continue
                req_id = req.pop("id", None)
                op = req.get("op")
                if op == "ping":
                    await reply({"id": req_id, "ok": True, "result": "pong"})
                elif op == "stats":
                    await reply({"id": req_id, "ok": True,
                                 "result": dict(engine.stats)})
                elif op == "datasets":
                    await reply({
                        "id": req_id, "ok": True,
                        "result": {
                            name: data.global_size
                            for name, data in engine.datasets.items()
                        },
                    })
                elif op == "shutdown":
                    await reply({"id": req_id, "ok": True, "result": "bye"})
                    stop.set()
                else:
                    # data query: its own task, so the connection keeps
                    # reading and later requests can join the batch
                    task = asyncio.create_task(run_query(req_id, req))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    server = await asyncio.start_server(handle, host, port)
    bound = server.sockets[0].getsockname()[1]
    print(f"ready port={bound}", flush=True)
    if ready_cb is not None:
        ready_cb(bound)
    async with server:
        await stop.wait()


def serve_forever(engine: QueryEngine, host: str = "127.0.0.1",
                  port: int = 0, ready_cb=None) -> None:
    """Run the server until a client sends ``shutdown`` (blocking).
    Closes the engine (and its machine) on the way out."""
    try:
        asyncio.run(_serve(engine, host, port, ready_cb))
    finally:
        engine.close()
