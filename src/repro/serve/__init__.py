"""Concurrent query serving over one resident worker pool.

``repro serve`` turns a :class:`~repro.machine.Machine` (with its
DistArray chunks pinned resident in a real backend's workers) into a
long-lived query server:

* :class:`~repro.serve.engine.QueryEngine` owns the machine on a
  dedicated engine thread and **fuses** compatible queries that arrive
  within a short admission window into a single SPMD command sequence
  -- rank queries (``select`` / ``quantile`` / ``topk``) on the same
  dataset become ONE :func:`~repro.selection.multi_select` call, the
  query-level generalization of its segment-level fusion;
* :mod:`~repro.serve.server` wraps the engine in an asyncio JSON-lines
  TCP front-end, so any number of clients multiplex onto the one
  worker pool;
* :mod:`~repro.serve.client` is the matching blocking client;
* ``python -m repro.serve.smoke`` drives a full concurrent round trip
  (used by CI).

The engine thread is the only place the machine is touched, so the
backend's pipelined command engine sees a single well-ordered issue
stream even under concurrent clients.
"""

from .client import ServeClient
from .engine import OverloadedError, QueryEngine, QueryError, default_datasets

__all__ = ["OverloadedError", "QueryEngine", "QueryError", "ServeClient",
           "default_datasets"]
