"""Serve failure-isolation smoke: one injected worker death (CI).

Spawns a real server subprocess with a deterministic fault plan that
kills one worker rank partway into the query stream, then drives the
server through the death:

* the queries whose batch absorbed the failure get an error response
  (never a hang -- bounded by the pool's ``command_timeout``),
* the engine performs exactly one pool rebuild
  (``stats["worker_failures"] >= 1``, ``stats["rebuilds"] >= 1``),
* every query issued after the rebuild answers correctly, checked
  against the deterministic sim oracle (the stock datasets are
  driver-held, so recovery restores them without a journal).

Run as ``python -m repro.serve.chaos [--backend mp] [-p 4]``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main"]


def _spawn_server(args, faults: str) -> tuple[subprocess.Popen, int]:
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "-p", str(args.p), "--backend", args.backend, "--port", "0",
         "--seed", str(args.seed), "--dataset-size", str(args.size),
         "--batch-window", "0.02", "--command-timeout", "15",
         "--faults", faults],
        stdout=subprocess.PIPE, stderr=None, text=True, env=env,
    )
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before becoming ready (rc={proc.poll()})"
            )
        if line.startswith("ready port="):
            return proc, int(line.split("=", 1)[1])
    proc.kill()
    raise RuntimeError("server did not become ready in time")


def _oracle(args) -> np.ndarray:
    from ..machine import Machine
    from .engine import default_datasets

    with Machine(p=args.p, seed=args.seed, backend="sim") as m:
        ds = default_datasets(m, args.size)
        return np.sort(ds["default"].concat())


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--backend", default="mp")
    ap.add_argument("-p", type=int, default=4)
    ap.add_argument("--seed", type=int, default=2016)
    ap.add_argument("--size", type=int, default=20_000)
    ap.add_argument("--kill-rank", type=int, default=None,
                    help="rank to kill (default: p - 1)")
    ap.add_argument("--kill-seq", type=int, default=None,
                    help="command seq to kill at (default: past dataset "
                    "staging so the death lands mid-query)")
    args = ap.parse_args(argv)

    rank = args.kill_rank if args.kill_rank is not None else args.p - 1
    # dataset staging costs a few puts; default to a seq that lands in
    # the query stream proper
    seq = args.kill_seq if args.kill_seq is not None else 6
    faults = f"kill@r{rank}:s{seq}"

    values = _oracle(args)
    n = values.size
    proc, port = _spawn_server(args, faults)
    host = "127.0.0.1"
    try:
        from .client import ServeClient

        failed = 0
        answered = 0
        wrong: list[str] = []
        with ServeClient(host, port, timeout=60.0) as client:
            # enough serial queries to walk the seq counter over the
            # kill point; each query is >= 1 backend command
            for i in range(24):
                k = (i * 9973) % n + 1
                t0 = time.monotonic()
                try:
                    got = client.query("select", k=k)
                except RuntimeError as exc:
                    # the failing batch's queries error; the error must
                    # arrive promptly, not after a transport hang
                    took = time.monotonic() - t0
                    if took > 30.0:
                        wrong.append(
                            f"query {i}: failure took {took:.1f}s "
                            f"(not bounded): {exc}"
                        )
                    failed += 1
                    continue
                answered += 1
                if got != float(values[k - 1]):
                    wrong.append(
                        f"query {i}: got {got!r}, want {values[k - 1]!r}"
                    )
            stats = client.query("stats")
            client.query("shutdown")
        rc = proc.wait(timeout=60.0)

        print(f"chaos: plan {faults}: {answered} answered, {failed} failed "
              f"during the death; worker_failures="
              f"{stats.get('worker_failures')} rebuilds="
              f"{stats.get('rebuilds')}")
        if wrong:
            for w in wrong:
                print("FAIL:", w)
            return 1
        if stats.get("worker_failures", 0) < 1:
            print("FAIL: the injected death never surfaced as a "
                  "worker failure")
            return 1
        if stats.get("rebuilds", 0) < 1:
            print("FAIL: the engine never rebuilt the pool")
            return 1
        if failed == 0:
            print("FAIL: no query observed the failing batch (kill seq "
                  "landed outside the query stream?)")
            return 1
        if answered < 10:
            print(f"FAIL: only {answered} queries answered after the "
                  f"rebuild")
            return 1
        if rc != 0:
            print(f"FAIL: server exited rc={rc}")
            return 1
        print("chaos: PASS")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
