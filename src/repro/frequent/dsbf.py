"""Distributed single-shot Bloom filter counting (Section 7.4).

The EC algorithm ships ``(key, count)`` pairs into the distributed hash
table.  The paper's refinement replaces keys by *hash fingerprints*
[34]: PEs transmit ``(h(key), count)`` with a fingerprint much smaller
than the key, cutting the insertion volume roughly in half for one-word
keys and more for fat keys.  The price is collisions:

1. count fingerprints in the DHT (merge-on-the-way, as usual);
2. select the fingerprints of rank ``<= k* + kappa`` (a safety margin
   ``kappa`` absorbs collided fingerprints);
3. resolve the selected fingerprints back to keys: every PE looks up
   which of its *local* keys map to a selected fingerprint and the
   (key, local count) lists are re-counted exactly -- splitting merged
   counts where two keys collided;
4. if fewer than ``k*`` distinct keys survive resolution (too many
   collisions ate the margin), double ``kappa`` and retry.

The paper observes that if frequent fingerprints are *dominated* by
collisions, the distribution is flat and extra counting would not help
-- mirrored here by the bounded retry with a flat-distribution flag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.hashing import make_owner_fn, splitmix64
from ..kernels import fingerprint32
from ..machine import DistArray, Machine
from .dht import local_key_counts, take_topk_entries
from .result import FrequentResult

__all__ = ["dsbf_top_candidates", "top_k_frequent_ec_dsbf", "DsbfStats"]

_FP_BITS = 32  # fingerprint width; keys are 1 word, fingerprints half


def _fingerprint(key: int, salt: int) -> int:
    """Truncated splitmix64: deliberately small so collisions occur.

    Scalar reference of the :data:`repro.kernels.fingerprint32` kernel
    (which computes exactly this over int64 key arrays)."""
    return splitmix64(int(key) ^ salt) & ((1 << _FP_BITS) - 1)


@dataclass(frozen=True)
class DsbfStats:
    """Diagnostics of the fingerprint-resolution loop."""

    kappa: int
    rounds: int
    collisions: int
    flat_suspected: bool


def dsbf_top_candidates(
    machine: Machine,
    samples_per_pe: list[np.ndarray],
    k_star: int,
    *,
    kappa0: int | None = None,
    salt: int = 0xD5BF,
    max_rounds: int = 4,
    piggyback=None,
):
    """The ``k_star`` most frequently sampled keys, via fingerprints.

    Returns ``(candidates, stats)`` where candidates are (key, sample
    count) pairs replicated on all PEs, at most ``k_star`` of them.
    With ``piggyback`` (per-PE sample sizes), the sum is fused into the
    first head extraction and a third return entry carries the total.
    """
    if k_star < 1:
        raise ValueError(f"k_star must be >= 1, got {k_star}")
    p = machine.p
    # local aggregation once: key -> local sample count
    local = [
        local_key_counts(machine, i, np.asarray(s)) for i, s in enumerate(samples_per_pe)
    ]
    # fingerprinted view: fp -> summed local count (collisions merge
    # here); fingerprints are computed in one batched kernel pass per PE
    fp_local = []
    fp_of_key: dict[int, int] = {}
    for i in range(p):
        d: dict[int, int] = {}
        items = sorted(local[i].items())
        if items:
            keys = np.fromiter(
                (k for k, _ in items), dtype=np.int64, count=len(items)
            )
            fps = fingerprint32(keys, salt)
            for (key, c), fp in zip(items, fps):
                fp = int(fp)
                fp_of_key[key] = fp
                d[fp] = d.get(fp, 0) + c
        fp_local.append(d)
        machine.charge_ops_one(i, max(1, len(local[i])))

    owner = make_owner_fn(p, salt=salt + 1)
    # fingerprints are half a word: 1.5 words per (fp, count) entry on
    # the wire instead of the 2.0 of (key, count) pairs
    routed = machine.aggregate_exchange(fp_local, owner, words_per_entry=1.5)

    kappa = kappa0 if kappa0 is not None else max(8, k_star // 4)
    rounds = 0
    pb_total = None
    while True:
        rounds += 1
        if piggyback is not None and pb_total is None:
            head, pb_total = take_topk_entries(
                machine, routed, k_star + kappa, piggyback=piggyback
            )
        else:
            head = take_topk_entries(machine, routed, k_star + kappa)
        # fewer fingerprints exist than requested: resolution will
        # reveal every sampled key, no retry can add more
        exhausted = len(head) < k_star + kappa
        selected_fps = np.array([fp for fp, _ in head], dtype=np.int64)
        # resolve: each PE reports (key, local count) for its local keys
        # whose fingerprint was selected; identities are all-gathered
        # (this is the "request the keys" step of Section 7.4)
        fp_set = set(int(f) for f in selected_fps)
        reveals = []
        for i in range(p):
            mine = {
                key: c for key, c in local[i].items() if fp_of_key[key] in fp_set
            }
            machine.charge_ops_one(i, max(1, len(local[i])))
            reveals.append(mine)
        gathered = machine.allgather(reveals)[0]
        exact: dict[int, int] = {}
        for piece in gathered:
            for key, c in sorted(piece.items()):
                exact[key] = exact.get(key, 0) + c
        collisions = max(0, len(exact) - len(head))
        if len(exact) >= k_star or exhausted or rounds >= max_rounds:
            items = sorted(exact.items(), key=lambda t: (-t[1], t[0]))[:k_star]
            flat = (not exhausted) and len(exact) < k_star and rounds >= max_rounds
            stats = DsbfStats(kappa, rounds, collisions, flat)
            if piggyback is None:
                return items, stats
            return items, stats, pb_total
        kappa *= 2


def top_k_frequent_ec_dsbf(
    machine: Machine,
    data: DistArray,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    k_star: int | None = None,
    rho: float | None = None,
) -> FrequentResult:
    """Algorithm EC with dSBF candidate nomination (Section 7.4).

    Identical guarantees to :func:`~repro.frequent.ec.top_k_frequent_ec`
    (the exact-counting pass is unchanged); only the sample-counting
    volume shrinks, since fingerprints+counts travel instead of
    keys+counts.
    """
    from ..common.sampling import ec_sample_rate
    from .ec import exact_count_keys, optimal_k_star
    from .pac import sample_distributed

    p = machine.p
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), True, 1.0, 0, k, {})
    if k_star is None:
        k_star = optimal_k_star(n, k, p, eps, delta)
    if rho is None:
        rho = ec_sample_rate(n, k_star, eps, delta)

    samples = sample_distributed(machine, data, rho)
    candidates, stats, sample_size = dsbf_top_candidates(
        machine, samples, k_star, piggyback=[int(s.size) for s in samples]
    )
    if not candidates:
        return FrequentResult((), True, rho, sample_size, k_star, {})
    cand_keys = np.array([key for key, _ in candidates], dtype=np.int64)
    exact = exact_count_keys(machine, data, cand_keys)
    order = np.lexsort((cand_keys, -exact))
    top = order[: min(k, len(cand_keys))]
    items = tuple((int(cand_keys[t]), float(exact[t])) for t in top)
    return FrequentResult(
        items=items,
        exact_counts=True,
        rho=rho,
        sample_size=sample_size,
        k_star=int(k_star),
        info={
            "dsbf_kappa": stats.kappa,
            "dsbf_rounds": stats.rounds,
            "dsbf_collisions": stats.collisions,
            "flat_suspected": stats.flat_suspected,
        },
    )
