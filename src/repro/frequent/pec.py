"""Algorithm PEC: probably *exactly* correct top-k (Section 7.3).

If the frequency distribution has a gap (Figure 5), exact answers are
possible without counting everything: a first small sample estimates
how deep into the sample ranking the true top-k can hide; exact
counting of that many candidates then recovers the top-k with
probability ``>= 1 - delta``.

Stage 1 (gap probing): sample at the PAC rate for a coarse ``eps_0``;
let ``s_k`` be the k-th largest sample count.  Lemma 12: it suffices to
pick ``k*`` so that
``s_{k*} <= E[s_k] - sqrt(2 E[s_k] ln(k/delta))``; the unknown
``E[s_k]`` is replaced by its high-probability lower bound
``s_k - sqrt(2 s_k ln(1/delta))`` (Theorem 13).

Stage 2: run EC with that ``k*`` (its communication-optimal ``eps``
follows from Theorem 11 by inversion).

For Zipf inputs with exponent ``s``, Theorem 14 gives closed forms --
``rho n = 4 k^s H_{N,s} ln(k/delta)`` and ``E[k*] ~= (2 + sqrt 2)^{1/s} k``
-- implemented by :func:`top_k_frequent_pec_zipf` (no probing sample
needed).
"""

from __future__ import annotations

import numpy as np

from ..common.distributions import harmonic_number
from ..common.sampling import pac_sample_rate
from ..machine import DistArray, Machine
from .dht import count_into_dht, take_topk_entries
from .ec import exact_count_keys, top_k_frequent_ec
from .pac import sample_distributed
from .result import FrequentResult

__all__ = ["top_k_frequent_pec", "top_k_frequent_pec_zipf", "estimate_k_star"]


def _local_max_step(rank: int, chunk: np.ndarray) -> int:
    """Resident worker callback: local universe probe."""
    return int(chunk.max()) if chunk.size else 1


def estimate_k_star(
    machine: Machine,
    sample_counts: list[dict[int, int]],
    k: int,
    delta: float,
    *,
    cap_factor: int = 16,
    piggyback=None,
):
    """Gap-based candidate count from stage-1 sample counts (Lemma 12).

    Returns ``(k_star, gap_found)``.  The head of the sample ranking
    (top ``cap_factor * k`` counts) is small, so it is extracted with
    the usual selection + all-gather machinery; if even the last head
    entry is above the Lemma-12 threshold the distribution is too flat
    and ``gap_found`` is False (callers should fall back to plain EC
    semantics with the capped ``k*``).

    ``piggyback`` (per-PE sample sizes) is fused into the head
    extraction's winner exchange; the return value then grows a third
    entry with the summed total.
    """
    cap = max(cap_factor * k, k + 1)
    if piggyback is None:
        head = take_topk_entries(machine, sample_counts, cap)
        pb_total = None
    else:
        head, pb_total = take_topk_entries(
            machine, sample_counts, cap, piggyback=piggyback
        )

    def _out(k_star: int, gap: bool):
        return (k_star, gap) if piggyback is None else (k_star, gap, pb_total)

    if len(head) <= k:
        return _out(max(k, len(head)), True)  # fewer candidates than the cap: exact
    s_k = head[k - 1][1]
    # high-probability lower bound on E[s_k] (Theorem 13)
    e_sk = max(0.0, s_k - np.sqrt(2.0 * s_k * np.log(1.0 / delta)))
    threshold = e_sk - np.sqrt(2.0 * max(e_sk, 1e-12) * np.log(k / delta))
    for rank in range(k, len(head)):
        if head[rank][1] <= threshold:
            return _out(rank + 1, True)
    return _out(len(head), False)


def top_k_frequent_pec(
    machine: Machine,
    data: DistArray,
    k: int,
    delta: float = 1e-4,
    *,
    eps0: float = 1e-2,
    cap_factor: int = 16,
) -> FrequentResult:
    """Probably exactly correct top-k for gapped distributions.

    ``eps0`` controls the stage-1 probing sample (coarser = cheaper but
    more conservative ``k*``).  The result's ``info['gap_found']``
    reports whether Lemma 12's criterion fired; without a gap the
    answer degrades gracefully to an EC-style approximation with the
    capped candidate set.
    """
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), True, 1.0, 0, k, {"gap_found": True})

    # ---- stage 1: probing sample -------------------------------------
    rho0 = pac_sample_rate(n, k, eps0, delta)
    samples = sample_distributed(machine, data, rho0)
    sample_counts = count_into_dht(machine, samples)
    k_star, gap_found, stage1_size = estimate_k_star(
        machine, sample_counts, k, delta, cap_factor=cap_factor,
        piggyback=[int(s.size) for s in samples],
    )

    # ---- stage 2: exact counting of the k* candidates ----------------
    candidates = take_topk_entries(machine, sample_counts, k_star)
    cand_keys = np.array([key for key, _ in candidates], dtype=np.int64)
    exact = exact_count_keys(machine, data, cand_keys)
    order = np.lexsort((cand_keys, -exact))
    top = order[: min(k, len(cand_keys))]
    items = tuple((int(cand_keys[t]), float(exact[t])) for t in top)
    return FrequentResult(
        items=items,
        exact_counts=True,
        rho=rho0,
        sample_size=stage1_size,
        k_star=int(k_star),
        info={"gap_found": gap_found, "stage1_rho": rho0},
    )


def top_k_frequent_pec_zipf(
    machine: Machine,
    data: DistArray,
    k: int,
    delta: float = 1e-4,
    *,
    s: float = 1.0,
    universe: int | None = None,
) -> FrequentResult:
    """PEC specialization for Zipf(s) inputs (Theorem 14).

    Knowing the distribution family, the probing stage is skipped:
    ``rho = 4 k^s H_{N,s} ln(k/delta) / n`` and
    ``k* = ceil((2 + sqrt 2)^{1/s} k)`` are computed in closed form, and
    the exact result is returned with probability ``>= 1 - delta``.
    """
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), True, 1.0, 0, k, {})
    if universe is None:
        local_max = data.map_values(_local_max_step)
        universe = int(machine.allreduce(local_max, op="max")[0])
    h = harmonic_number(universe, s)
    rho = min(1.0, 4.0 * k**s * h * np.log(k / delta) / n)
    k_star = int(np.ceil((2.0 + np.sqrt(2.0)) ** (1.0 / s) * k))

    samples = sample_distributed(machine, data, rho)
    sample_counts = count_into_dht(machine, samples)
    candidates, sample_size = take_topk_entries(
        machine, sample_counts, k_star, piggyback=[int(x.size) for x in samples]
    )
    if not candidates:
        return FrequentResult((), True, rho, sample_size, k_star, {})
    cand_keys = np.array([key for key, _ in candidates], dtype=np.int64)
    exact = exact_count_keys(machine, data, cand_keys)
    order = np.lexsort((cand_keys, -exact))
    top = order[: min(k, len(cand_keys))]
    items = tuple((int(cand_keys[t]), float(exact[t])) for t in top)
    return FrequentResult(
        items=items,
        exact_counts=True,
        rho=rho,
        sample_size=sample_size,
        k_star=k_star,
        info={"universe": universe, "harmonic": h},
    )
