"""Centralized baselines from the paper's evaluation (Section 10.2).

The paper could not find distributed competitors, so it compares
against two self-built centralized schemes using the *same sampling
rate* as PAC -- any running-time difference is therefore pure
communication structure:

* **Naive** -- every PE sends its aggregated local sample straight to a
  coordinator, which merges and quickselects.  The coordinator receives
  ``p - 1`` serialized messages: time grows linearly in ``p``
  ("Algorithm Naive does not scale beyond a single node at all").
* **Naive Tree** -- same data, but routed up a binomial tree with
  counts merged at every step.  Latency is logarithmic, yet the
  coordinator-adjacent links still carry (aggregated) volume that
  grows with the distinct-key count, which is why PAC's hash-
  partitioned counting beats it at every ``p`` in Figure 7.
"""

from __future__ import annotations

import numpy as np

from ..common.sampling import pac_sample_rate
from ..machine import DistArray, Machine
from ..selection.sequential import kth_smallest
from .dht import local_key_counts
from .pac import sample_distributed
from .result import FrequentResult

__all__ = ["top_k_frequent_naive", "top_k_frequent_naive_tree"]


def _merge_counts(a: dict, b: dict) -> dict:
    if len(b) > len(a):
        a, b = b, a
    out = dict(a)
    for key, c in b.items():
        out[key] = out.get(key, 0) + c
    return out


def _coordinator_topk(machine: Machine, merged: dict, k: int, rho: float):
    """Quickselect the top-k at the coordinator and broadcast."""
    if not merged:
        return tuple()
    # repro-lint: disable=RL002 -- kth_smallest over the count multiset is order-insensitive; winners are re-derived key-sorted below
    counts = np.fromiter(merged.values(), dtype=np.int64, count=len(merged))
    k_eff = min(k, counts.size)
    thr = -kth_smallest(-counts, k_eff)
    machine.charge_ops_one(0, counts.size)
    items = sorted(
        ((key, c) for key, c in merged.items() if c >= thr),
        key=lambda t: (-t[1], t[0]),
    )[:k_eff]
    machine.broadcast([(key, c) for key, c in items], root=0)
    return tuple((key, c / rho) for key, c in items)


def top_k_frequent_naive(
    machine: Machine,
    data: DistArray,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    rho: float | None = None,
) -> FrequentResult:
    """Master-worker baseline: direct gather of all local samples."""
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), False, 1.0, 0, k, {})
    if rho is None:
        rho = pac_sample_rate(n, k, eps, delta)
    samples = sample_distributed(machine, data, rho)
    sample_size = int(machine.allreduce([s.size for s in samples], op="sum")[0])
    local = [local_key_counts(machine, i, s) for i, s in enumerate(samples)]
    # p-1 direct messages into the coordinator (the scaling killer)
    gathered = machine.gather(local, root=0, mode="direct")[0]
    merged: dict = {}
    for d in gathered:
        merged = _merge_counts(merged, d)
    machine.charge_ops_one(0, sum(len(d) for d in gathered))
    items = _coordinator_topk(machine, merged, k, rho)
    return FrequentResult(
        items=items,
        exact_counts=rho >= 1.0,
        rho=rho,
        sample_size=sample_size,
        k_star=k,
        info={"coordinator_keys": len(merged)},
    )


def top_k_frequent_naive_tree(
    machine: Machine,
    data: DistArray,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    rho: float | None = None,
) -> FrequentResult:
    """Tree-reduction baseline: counts merged on the way up."""
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), False, 1.0, 0, k, {})
    if rho is None:
        rho = pac_sample_rate(n, k, eps, delta)
    samples = sample_distributed(machine, data, rho)
    sample_size = int(machine.allreduce([s.size for s in samples], op="sum")[0])
    local = [local_key_counts(machine, i, s) for i, s in enumerate(samples)]
    merged = machine.reduce_tree(local, _merge_counts, root=0, kind="naive_tree")[0]
    items = _coordinator_topk(machine, merged, k, rho)
    return FrequentResult(
        items=items,
        exact_counts=rho >= 1.0,
        rho=rho,
        sample_size=sample_size,
        k_star=k,
        info={"coordinator_keys": len(merged)},
    )
