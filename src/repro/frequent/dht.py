"""Distributed hash table for sample counting (Section 7's substrate).

Sampled keys are aggregated twice:

1. **locally** -- each PE counts its own sample occurrences in a hash
   table while sampling (``np.unique`` here), so at most one
   (key, count) pair per distinct key leaves a PE;
2. **in the network** -- pairs are routed to the key's home PE
   ``h(key) mod p`` with the machine's aggregating hypercube exchange,
   which merges counts at every hop ("the incoming sample counts are
   merged with a hash table in each step of the reduction", Section 7.1),
   keeping latency logarithmic and volume bounded by the distinct-key
   count.

On top of the table, :func:`take_topk_entries` extracts the globally
most frequent ``k`` entries with the unsorted selection algorithm of
Section 4.1 (count ties resolved by PE-ordered quota so the output size
is exact).
"""

from __future__ import annotations

import numpy as np

from ..common.hashing import make_owner_fn
from ..machine import DistArray, Machine
from ..selection.unsorted import select_kth

__all__ = [
    "count_into_dht",
    "count_into_dht_resident",
    "take_topk_entries",
    "local_key_counts",
]


def local_key_counts(machine: Machine, rank: int, keys: np.ndarray) -> dict[int, int]:
    """Aggregate one PE's keys into a ``{key: count}`` dict.

    Charged as one pass plus the sort behind ``np.unique``
    (a hash table in the C++ original; same asymptotics up to the log
    factor, which we charge honestly).
    """
    if keys.size == 0:
        return {}
    uniq, counts = np.unique(keys, return_counts=True)
    machine.charge_ops_one(rank, keys.size * np.log2(max(keys.size, 2)))
    return {int(key): int(c) for key, c in zip(uniq, counts)}


def count_into_dht(
    machine: Machine, samples_per_pe: list[np.ndarray], salt: int = 0
) -> list[dict[int, int]]:
    """Count sampled keys into the distributed hash table.

    Returns one dict per PE holding exactly the (key, total sample
    count) pairs owned by that PE.
    """
    local = [
        local_key_counts(machine, i, np.asarray(s)) for i, s in enumerate(samples_per_pe)
    ]
    owner = make_owner_fn(machine.p, salt=salt)
    return machine.aggregate_exchange(local, owner)


def _unique_counts_step(rank: int, chunk: np.ndarray) -> dict[int, int]:
    """Resident worker callback: local key -> count aggregation."""
    if chunk.size == 0:
        return {}
    uniq, counts = np.unique(chunk, return_counts=True)
    return {int(key): int(c) for key, c in zip(uniq, counts)}


def count_into_dht_resident(
    machine: Machine, data: DistArray, salt: int = 0
) -> list[dict[int, int]]:
    """:func:`count_into_dht` over a full distributed array.

    The local aggregation (step 1) runs where the chunks live -- only
    the (key, count) dicts return to the driver for the merging
    hypercube exchange; the raw chunks never move.
    """
    local = data.map_values(_unique_counts_step)
    sizes = data.sizes().astype(np.float64)
    machine.charge_ops(
        np.where(sizes > 0, sizes * np.log2(np.maximum(sizes, 2.0)), 0.0)
    )
    owner = make_owner_fn(machine.p, salt=salt)
    return machine.aggregate_exchange(local, owner)


def take_topk_entries(
    machine: Machine, dicts: list[dict[int, int]], k: int, piggyback=None
):
    """The ``k`` entries with the largest counts, replicated on all PEs.

    Runs distributed unsorted selection (Algorithm 1) over the count
    multiset for the threshold, then grants threshold ties globally by
    ascending key so the output is deterministic and exactly ``k``
    entries win.  Both tie-granting and the winner exchange use the
    fused reduce+allgather collective: the above-threshold total rides
    the nomination all-gather (each PE nominates its ``k`` smallest tie
    keys -- a superset of the eventual quota, which never exceeds ``k``,
    so the granted set is unchanged), saving one ``alpha log p``
    schedule per call.  If fewer than ``k`` entries exist, all are
    returned.  Output is sorted by (count desc, key asc).

    ``piggyback`` optionally supplies per-PE integers (the pipelines'
    local sample sizes) whose global sum is fused into the final winner
    all-gather; the return value is then ``(items, piggyback_total)``
    instead of bare ``items``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    p = machine.p
    count_chunks = [
        # repro-lint: disable=RL002 -- counts feed only order-insensitive reductions (sizes, kth-of-multiset threshold, > comparisons)
        np.fromiter(d.values(), dtype=np.int64, count=len(d)) for d in dicts
    ]
    total = int(machine.allreduce([c.size for c in count_chunks], op="sum")[0])
    if total == 0:
        if piggyback is None:
            return []
        return [], int(machine.allreduce(list(piggyback), op="sum")[0])
    if total <= k:
        winners_per_pe = [sorted(d.items()) for d in dicts]
    else:
        neg = DistArray(machine, [-c for c in count_chunks])
        thr = -int(select_kth(machine, neg, k))  # k-th largest count
        n_gt = [int((c > thr).sum()) for c in count_chunks]
        machine.charge_ops([max(1, c.size) for c in count_chunks])
        # each PE nominates its k smallest tie keys (the quota is at most
        # k, so this is always enough); the above-threshold total rides
        # the same fused schedule as the nominations
        nominations = [
            sorted(key for key, c in d.items() if c == thr)[:k] for d in dicts
        ]
        totals, noms = machine.reduce_allgather(n_gt, nominations, op="sum")
        quota = k - int(totals[0])
        all_ties = sorted(key for piece in noms[0] for key in piece)
        granted = set(all_ties[: max(quota, 0)])
        winners_per_pe = []
        for i, d in enumerate(dicts):
            gt_items = sorted(
                ((key, c) for key, c in d.items() if c > thr), key=lambda t: t[0]
            )
            eq_items = sorted(
                ((key, c) for key, c in d.items() if c == thr and key in granted),
                key=lambda t: t[0],
            )
            winners_per_pe.append(gt_items + eq_items)
    if piggyback is None:
        gathered = machine.allgather(winners_per_pe)[0]
        pb_total = None
    else:
        pb_totals, gathered_all = machine.reduce_allgather(
            list(piggyback), winners_per_pe, op="sum"
        )
        gathered = gathered_all[0]
        pb_total = int(pb_totals[0])
    items = [it for piece in gathered for it in piece]
    items.sort(key=lambda t: (-t[1], t[0]))
    items = items[:k] if total > k else items
    return items if piggyback is None else (items, pb_total)
