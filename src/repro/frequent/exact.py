"""Exact distributed top-k most frequent objects (ground truth).

Counts *all* keys through the distributed hash table (no sampling) and
selects the top-k -- communication ``Theta(distinct keys)``, which is
what the sampling algorithms of Section 7 avoid.  Used as the oracle in
tests/benchmarks and as the "count everything" degenerate case that PAC
collapses to when ``eps`` is very small (Figure 8's discussion).
"""

from __future__ import annotations

import numpy as np

from ..machine import DistArray, Machine
from .dht import count_into_dht_resident, take_topk_entries
from .result import FrequentResult

__all__ = ["top_k_frequent_exact", "exact_counts_oracle"]


def top_k_frequent_exact(machine: Machine, data: DistArray, k: int) -> FrequentResult:
    """Exact top-k by full counting (rho = 1).

    The local aggregation runs where the chunks live; only the per-PE
    (key, count) dicts enter the merging hypercube exchange.
    """
    counts = count_into_dht_resident(machine, data)
    items = take_topk_entries(machine, counts, k)
    n = data.global_size
    return FrequentResult(
        items=tuple((key, float(c)) for key, c in items),
        exact_counts=True,
        rho=1.0,
        sample_size=n,
        k_star=k,
        info={"distinct_keys": sum(len(d) for d in counts)},
    )


def exact_counts_oracle(data: DistArray) -> dict[int, int]:
    """Driver-side exact key counts (no communication; test oracle)."""
    alldata = data.concat()
    if alldata.size == 0:
        return {}
    uniq, counts = np.unique(alldata, return_counts=True)
    return {int(key): int(c) for key, c in zip(uniq, counts)}
