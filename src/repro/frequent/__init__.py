"""Top-k most frequent objects (Section 7, incl. the 7.4 refinements)."""

from .adaptive import top_k_frequent_adaptive
from .dht import count_into_dht, local_key_counts, take_topk_entries
from .dsbf import DsbfStats, dsbf_top_candidates, top_k_frequent_ec_dsbf
from .ec import exact_count_keys, optimal_k_star, top_k_frequent_ec
from .exact import exact_counts_oracle, top_k_frequent_exact
from .monitor import StreamingTopKMonitor
from .naive import top_k_frequent_naive, top_k_frequent_naive_tree
from .pac import pac_error, sample_distributed, top_k_frequent_pac
from .pec import estimate_k_star, top_k_frequent_pec, top_k_frequent_pec_zipf
from .result import FrequentResult
from .spacesaving import SpaceSaving, heavy_hitters

__all__ = [
    "DsbfStats",
    "FrequentResult",
    "SpaceSaving",
    "StreamingTopKMonitor",
    "count_into_dht",
    "dsbf_top_candidates",
    "estimate_k_star",
    "exact_count_keys",
    "exact_counts_oracle",
    "heavy_hitters",
    "local_key_counts",
    "optimal_k_star",
    "pac_error",
    "sample_distributed",
    "take_topk_entries",
    "top_k_frequent_adaptive",
    "top_k_frequent_ec",
    "top_k_frequent_ec_dsbf",
    "top_k_frequent_exact",
    "top_k_frequent_naive",
    "top_k_frequent_naive_tree",
    "top_k_frequent_pac",
    "top_k_frequent_pec",
    "top_k_frequent_pec_zipf",
]
