"""Streaming top-k monitoring (the Conclusions' outlook, Section 11).

The paper closes: "we expect to be able to conduct fully distributed
monitoring queries without a substantial increase in communication
volume over our one-shot algorithm."  This module provides that
one-shot-amortized monitor:

* every PE folds its arriving stream batches into a **local count
  table** (pure local work, zero communication -- the owner-computes
  rule);
* a query samples the *aggregated local counts* with the Section 8
  value-weighted sampler (a key with local count v yields ~v/v_avg
  sample units), so query cost matches the one-shot PAC/sum algorithm
  regardless of how many raw items have streamed by;
* queries are cached: a re-query is only triggered once the stream has
  grown by ``refresh_fraction`` since the last answer (in between, the
  cached top-k is still an (eps', delta)-approximation with
  ``eps' = eps + refresh_fraction``, since at most that fraction of
  mass arrived unobserved).
"""

from __future__ import annotations

import numpy as np

from ..common.hashing import make_owner_fn
from ..common.sampling import weighted_sample_counts
from ..machine import Machine
from .dht import take_topk_entries
from .result import FrequentResult

__all__ = ["StreamingTopKMonitor"]


class StreamingTopKMonitor:
    """Continuous distributed top-k over item streams.

    Parameters
    ----------
    machine:
        The machine whose PEs receive the streams.
    k, eps, delta:
        Query quality, as in Section 7 (error relative to the total
        stream length).
    refresh_fraction:
        Re-query threshold: fraction of new items (since the last
        query) that invalidates the cache.
    """

    def __init__(
        self,
        machine: Machine,
        k: int,
        eps: float = 1e-2,
        delta: float = 1e-4,
        *,
        refresh_fraction: float = 0.1,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 < refresh_fraction <= 1.0:
            raise ValueError(
                f"refresh_fraction must be in (0, 1], got {refresh_fraction}"
            )
        self.machine = machine
        self.k = k
        self.eps = eps
        self.delta = delta
        self.refresh_fraction = refresh_fraction
        #: per-PE key -> count tables (the only persistent stream state)
        self.tables: list[dict[int, int]] = [dict() for _ in range(machine.p)]
        self._local_total = [0] * machine.p
        self._n_at_last_query = 0
        self._cached: FrequentResult | None = None
        #: number of queries that were served from cache
        self.cache_hits = 0
        #: number of queries that recomputed
        self.refreshes = 0

    # ------------------------------------------------------------------
    def ingest(self, per_pe_batches) -> None:
        """Fold one batch of stream items into the local tables.

        ``per_pe_batches[i]`` is the array of keys that arrived at PE
        ``i``.  Communication-free.
        """
        if len(per_pe_batches) != self.machine.p:
            raise ValueError(
                f"need one batch per PE (p={self.machine.p}, got {len(per_pe_batches)})"
            )
        for i, batch in enumerate(per_pe_batches):
            batch = np.asarray(batch)
            if batch.size == 0:
                continue
            uniq, counts = np.unique(batch, return_counts=True)
            table = self.tables[i]
            for key, c in zip(uniq, counts):
                key = int(key)
                table[key] = table.get(key, 0) + int(c)
            self._local_total[i] += int(batch.size)
            self.machine.charge_ops_one(
                i, batch.size * np.log2(max(batch.size, 2))
            )

    # ------------------------------------------------------------------
    @property
    def total_items(self) -> int:
        """Global stream length so far (one all-reduction)."""
        return int(self.machine.allreduce(self._local_total, op="sum")[0])

    def top_k(self, *, force: bool = False) -> FrequentResult:
        """Current top-k (cached unless the stream grew enough)."""
        n = self.total_items
        if n == 0:
            return FrequentResult((), True, 1.0, 0, self.k, {"stream": 0})
        grown = n - self._n_at_last_query
        if (
            self._cached is not None
            and not force
            and grown < self.refresh_fraction * max(self._n_at_last_query, 1)
        ):
            self.cache_hits += 1
            return self._cached

        # sample the aggregated counts (Section 8.1 sampler with unit
        # values = the counts themselves)
        target = max(64.0, 8.0 / self.eps**2 * np.log(2 * self.k / self.delta) / 8)
        target = min(target, float(n))
        v_avg = n / target
        sample_dicts = []
        addr = self.machine.draw_addr()  # counter-addressed refresh draws
        for i in range(self.machine.p):
            table = self.tables[i]
            if not table:
                sample_dicts.append({})
                continue
            keys = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
            vals = np.fromiter(table.values(), dtype=np.float64, count=len(table))
            units = weighted_sample_counts(addr.local(i), vals, v_avg)
            nz = units > 0
            sample_dicts.append(
                {int(key): int(u) for key, u in zip(keys[nz], units[nz])}
            )
            self.machine.charge_ops_one(i, len(table))
        routed = self.machine.aggregate_exchange(
            sample_dicts, make_owner_fn(self.machine.p)
        )
        items = take_topk_entries(self.machine, routed, self.k)
        result = FrequentResult(
            items=tuple((key, c * v_avg) for key, c in items),
            exact_counts=v_avg <= 1.0,
            rho=1.0 / v_avg,
            sample_size=int(sum(sum(d.values()) for d in sample_dicts)),
            k_star=self.k,
            info={"stream": n, "refreshed": True},
        )
        self._cached = result
        self._n_at_last_query = n
        self.refreshes += 1
        return result
