"""Algorithm PAC: sampling-based top-k most frequent objects (§7.1).

The basic probably-approximately-correct algorithm:

1. every PE Bernoulli-samples its local input with probability ``rho``
   (Equation 3 fixes ``rho`` so the result is an
   (eps, delta)-approximation);
2. sample occurrences are counted in the distributed hash table
   (local aggregation, then the merging hypercube exchange);
3. the ``k`` most frequently *sampled* objects are selected with the
   unsorted selection algorithm of Section 4.1 and broadcast;
4. reported counts are the sample counts scaled by ``1/rho``.

Expected time ``O(beta log(p)/(p eps^2) log(k/delta) + alpha log n)``
(Theorem 7).  The error measure is the paper's ε̃: the count of the most
frequent object missed minus the count of the least frequent object
returned, relative to ``n`` (see :func:`pac_error`).
"""

from __future__ import annotations

import numpy as np

from ..common.sampling import pac_sample_rate
from ..machine import DistArray, Machine
from .dht import count_into_dht, take_topk_entries
from .result import FrequentResult

__all__ = ["top_k_frequent_pac", "pac_error", "sample_distributed"]


def sample_distributed(
    machine: Machine, data: DistArray, rho: float
) -> list[np.ndarray]:
    """Per-PE Bernoulli(rho) samples, with the sampling work charged at
    the skip-value rate ``O(rho n/p)`` (Section 2).

    The index draws happen where the chunks live, from counter-addressed
    per-PE streams (:mod:`repro.machine.ctrrng` -- identical on every
    backend, nothing but the draw address on the wire); only the small
    sample arrays return.
    """
    return data.bernoulli_sample_local(rho)


def top_k_frequent_pac(
    machine: Machine,
    data: DistArray,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    rho: float | None = None,
) -> FrequentResult:
    """(eps, delta)-approximate top-k most frequent objects.

    ``rho`` overrides the Equation-3 sampling probability (ablations).
    """
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), False, 1.0, 0, k, {})
    if rho is None:
        rho = pac_sample_rate(n, k, eps, delta)
    samples = sample_distributed(machine, data, rho)
    counts = count_into_dht(machine, samples)
    # the global sample size rides the winner exchange (fused
    # reduce+allgather) instead of paying its own allreduce
    items, sample_size = take_topk_entries(
        machine, counts, k, piggyback=[int(s.size) for s in samples]
    )
    return FrequentResult(
        items=tuple((key, c / rho) for key, c in items),
        exact_counts=rho >= 1.0,
        rho=rho,
        sample_size=sample_size,
        k_star=k,
        info={"distinct_sampled": sum(len(d) for d in counts)},
    )


def pac_error(result_keys, true_counts: dict[int, int], k: int) -> int:
    """The paper's absolute error ε̃·n of a top-k answer.

    "the count of the most frequent object that was not output minus
    that of the least frequent object that was output, or 0 if the
    result was exact" (Section 7).
    """
    ranked = sorted(true_counts.values(), reverse=True)
    if not ranked:
        return 0
    result_keys = list(result_keys)[:k]
    chosen = set(result_keys)
    missed = [c for key, c in true_counts.items() if key not in chosen]
    if not missed or len(result_keys) == 0:
        return 0
    best_missed = max(missed)
    worst_chosen = min(true_counts.get(key, 0) for key in result_keys)
    return max(0, best_missed - worst_chosen)
