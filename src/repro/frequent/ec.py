"""Algorithm EC: exact counting of sampled candidates (Section 7.2).

PAC's ``1/eps^2`` sample sizes explode as ``eps`` shrinks.  EC iterates
over the input a second time: a *much smaller* sample (Lemma 10:
``rho n = 2/(eps^2 k*) ln(n/delta)``) merely nominates the ``k* >= k``
most frequently sampled objects, whose occurrences are then counted
**exactly**:

1. sample + DHT counting as in PAC, at the reduced rate;
2. select the top ``k*`` sampled keys and broadcast their identities to
   all PEs (all-gather, ``O(beta k* + alpha log p)``);
3. every PE counts those keys in its full local input (``O(n/p)``);
4. one vector-valued sum-reduction yields exact global counts, from
   which the top-k is read off locally.

The communication-optimal candidate count is
``k* = max(k, (1/eps) sqrt(2 log(p)/p * ln(n/delta)))`` (Theorem 11),
bringing the volume down from ``1/eps^2`` to ``1/eps`` -- the regime
where EC beats every other algorithm in Figure 8.
"""

from __future__ import annotations

import numpy as np

from ..common.sampling import ec_sample_rate
from ..machine import DistArray, Machine
from .dht import count_into_dht, take_topk_entries
from .pac import sample_distributed
from .result import FrequentResult

__all__ = ["top_k_frequent_ec", "optimal_k_star", "exact_count_keys"]


def optimal_k_star(n: int, k: int, p: int, eps: float, delta: float) -> int:
    """Communication-minimizing candidate count (Theorem 11)."""
    if n < 1:
        return k
    comm_opt = (1.0 / eps) * np.sqrt(2.0 * np.log2(p + 1) / p * np.log(n / delta))
    return int(max(k, np.ceil(comm_opt)))


def _count_keys_step(
    rank: int, chunk: np.ndarray, sorted_keys: np.ndarray, order: np.ndarray
) -> np.ndarray:
    """Resident worker callback: count ``sorted_keys`` occurrences in the
    local chunk, reported in the candidates' original order."""
    pos = np.searchsorted(sorted_keys, chunk)
    pos = np.clip(pos, 0, len(sorted_keys) - 1)
    hit = sorted_keys[pos] == chunk
    counts_sorted = np.bincount(pos[hit], minlength=len(sorted_keys))
    counts = np.empty(len(sorted_keys), dtype=np.int64)
    counts[order] = counts_sorted
    return counts


def exact_count_keys(
    machine: Machine, data: DistArray, keys: np.ndarray
) -> np.ndarray:
    """Exact global counts of ``keys`` (replicated on all PEs).

    Every PE scans its full local input once (``O(n/p)``) -- inside the
    workers, where the chunks live; only the small candidate-key array
    travels out and the count vectors travel back, summed by one
    vector-valued reduction.
    """
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    per_pe = data.map_values(
        _count_keys_step, args=[(sorted_keys, order)] * machine.p
    )
    sizes = data.sizes()
    machine.charge_ops(
        [max(1.0, int(s) * np.log2(max(len(keys), 2))) for s in sizes]
    )
    return np.asarray(machine.allreduce(per_pe, op="sum")[0])


def top_k_frequent_ec(
    machine: Machine,
    data: DistArray,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    k_star: int | None = None,
    rho: float | None = None,
) -> FrequentResult:
    """(eps, delta)-approximation with exact counts for the winners.

    With the default ``k_star`` the result is an
    (eps, delta)-approximation whose reported counts are *exact*
    (Lemma 10); only membership of the borderline objects can err.
    """
    p = machine.p
    n = int(machine.allreduce([int(s) for s in data.sizes()], op="sum")[0])
    if n == 0:
        return FrequentResult((), True, 1.0, 0, k, {})
    if k_star is None:
        k_star = optimal_k_star(n, k, p, eps, delta)
    if rho is None:
        rho = ec_sample_rate(n, k_star, eps, delta)

    samples = sample_distributed(machine, data, rho)
    sample_counts = count_into_dht(machine, samples)
    candidates, sample_size = take_topk_entries(
        machine, sample_counts, k_star, piggyback=[int(s.size) for s in samples]
    )
    if not candidates:
        return FrequentResult((), True, rho, sample_size, k_star, {})
    cand_keys = np.array([key for key, _ in candidates], dtype=np.int64)

    exact = exact_count_keys(machine, data, cand_keys)
    order = np.lexsort((cand_keys, -exact))
    top = order[: min(k, len(cand_keys))]
    items = tuple((int(cand_keys[t]), float(exact[t])) for t in top)
    return FrequentResult(
        items=items,
        exact_counts=True,
        rho=rho,
        sample_size=sample_size,
        k_star=int(k_star),
        info={"candidates": len(candidates)},
    )
