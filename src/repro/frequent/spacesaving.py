"""Space-saving (Misra-Gries) heavy-hitter summaries.

The related-work heavy-hitter formulation (Section 3: "the
significantly easier problem of identifying the heavy hitters") solved
with the classic deterministic summary: a budget of ``capacity``
counters guarantees every key's count estimate errs by at most
``n / capacity``, so keys with frequency above ``phi * n`` are found
whenever ``capacity > 1/phi``.

Summaries merge associatively (count-wise, then shrink back to
capacity), so a distributed query is one tree reduction --
:func:`heavy_hitters` -- giving a monitoring-style baseline to contrast
with the sampling algorithms of Section 7 (marked dagger in Table 1).
"""

from __future__ import annotations

import numpy as np

from ..kernels import spacesaving_offer
from ..machine import DistArray, Machine

__all__ = ["SpaceSaving", "heavy_hitters"]


class SpaceSaving:
    """Deterministic frequent-elements summary with bounded error.

    ``offer(key, w)`` processes ``w`` occurrences of ``key``;
    ``estimate(key)`` over-approximates the true count by at most
    :attr:`error_bound`.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counters: dict[int, int] = {}
        #: total weight processed
        self.n = 0
        #: largest count ever evicted (error witness)
        self.max_evicted = 0

    def offer(self, key: int, weight: int = 1) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.n += weight
        key = int(key)
        if key in self.counters:
            self.counters[key] += weight
            return
        if len(self.counters) < self.capacity:
            self.counters[key] = weight
            return
        # replace the minimum counter (space-saving rule): the new key
        # inherits the evicted count as over-estimate
        victim = min(self.counters, key=self.counters.__getitem__)
        floor = self.counters.pop(victim)
        self.max_evicted = max(self.max_evicted, floor)
        self.counters[key] = floor + weight

    def offer_array(self, keys: np.ndarray) -> None:
        uniq, counts = np.unique(np.asarray(keys), return_counts=True)
        if uniq.size == 0:
            return
        if not np.issubdtype(uniq.dtype, np.integer):
            for key, c in zip(uniq, counts):
                self.offer(int(key), int(c))
            return
        # batch path: the summary state round-trips through the
        # insertion-ordered parallel arrays the offer kernel works on
        cur_keys = np.fromiter(
            self.counters.keys(), dtype=np.int64, count=len(self.counters)
        )
        cur_counts = np.fromiter(
            self.counters.values(), dtype=np.int64, count=len(self.counters)
        )
        out_keys, out_counts, self.max_evicted = spacesaving_offer(
            cur_keys, cur_counts, self.capacity, self.max_evicted,
            uniq.astype(np.int64), counts.astype(np.int64),
        )
        self.counters = {int(k): int(c) for k, c in zip(out_keys, out_counts)}
        self.n += int(counts.sum())

    def estimate(self, key: int) -> int:
        return self.counters.get(int(key), self.max_evicted)

    @property
    def error_bound(self) -> float:
        """Worst-case overestimate: ``n / capacity``."""
        return self.n / self.capacity

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Associative merge, shrunk back to this summary's capacity."""
        out = SpaceSaving(self.capacity)
        combined: dict[int, int] = dict(self.counters)
        for key, c in other.counters.items():
            combined[key] = combined.get(key, 0) + c
        out.n = self.n + other.n
        out.max_evicted = max(self.max_evicted, other.max_evicted)
        if len(combined) > self.capacity:
            keep = sorted(combined.items(), key=lambda t: (-t[1], t[0]))
            for key, c in keep[self.capacity:]:
                out.max_evicted = max(out.max_evicted, c)
            combined = dict(keep[: self.capacity])
        out.counters = combined
        return out

    def comm_words(self) -> int:
        """Wire size: two words per counter (for the tree reduction)."""
        return 2 * len(self.counters) + 2

    def top(self, k: int) -> list[tuple[int, int]]:
        return sorted(self.counters.items(), key=lambda t: (-t[1], t[0]))[:k]


def heavy_hitters(
    machine: Machine, data: DistArray, phi: float, *, slack: int = 4
) -> list[tuple[int, int]]:
    """Keys with frequency > ``phi * n``, via merged space-saving
    summaries (capacity ``slack/phi``) and one tree reduction.

    Guaranteed to contain every true phi-heavy hitter; counts are
    overestimates within ``n * phi / slack``.
    """
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    capacity = int(np.ceil(slack / phi))
    summaries = []
    for i, chunk in enumerate(data.chunks):
        s = SpaceSaving(capacity)
        s.offer_array(chunk)
        machine.charge_ops_one(i, max(1.0, chunk.size * np.log2(max(capacity, 2))))
        summaries.append(s)
    merged = machine.reduce_tree(summaries, SpaceSaving.merge, root=0, kind="spacesaving")[0]
    n = merged.n
    items = [(key, c) for key, c in merged.top(capacity) if c > phi * n]
    machine.broadcast(items, root=0)
    return items
