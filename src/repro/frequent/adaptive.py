"""Adaptive two-pass sampling (Section 7.4, "Adaptive Two-Pass
Sampling").

Unify PAC and EC: a small *probing* sample (rate ``rho_0``) reveals the
nature of the input distribution, and the algorithm then decides

* **stop** -- the probe already separates the top-k with confidence
  (the k-th and (k+1)-st sample counts differ by more than the
  two-sided fluctuation bound), so return the PAC-style answer from the
  probe: no second pass, no extra communication;
* **escalate** -- otherwise take the EC route: nominate ``k*``
  candidates from the probe and count them exactly in one input pass.

The confidence test uses the same Chernoff fluctuations as Lemma 12:
sample counts concentrate within ``sqrt(2 s ln(1/delta))`` of their
expectations, so a gap of twice that between ranks k and k+1 certifies
the split.
"""

from __future__ import annotations

import numpy as np

from ..common.sampling import pac_sample_rate
from ..machine import DistArray, Machine
from .dht import count_into_dht, take_topk_entries
from .ec import exact_count_keys
from .pac import sample_distributed
from .result import FrequentResult

__all__ = ["top_k_frequent_adaptive"]


def _confident_split(head: list[tuple[int, int]], k: int, delta: float) -> bool:
    """Is the probe's rank-k/rank-(k+1) gap beyond both fluctuations?"""
    if len(head) <= k:
        return True  # fewer distinct keys than k: nothing can displace
    s_k = head[k - 1][1]
    s_next = head[k][1]
    fluct = np.sqrt(2.0 * max(s_k, 1.0) * np.log(1.0 / delta)) + np.sqrt(
        2.0 * max(s_next, 1.0) * np.log(1.0 / delta)
    )
    return (s_k - s_next) > fluct


def top_k_frequent_adaptive(
    machine: Machine,
    data: DistArray,
    k: int,
    eps: float = 1e-3,
    delta: float = 1e-4,
    *,
    probe_eps: float = 1e-2,
    k_star_factor: int = 4,
) -> FrequentResult:
    """Top-k most frequent with distribution-adaptive effort.

    Parameters
    ----------
    probe_eps:
        Accuracy of the stage-1 probe (coarser than ``eps``: the probe
        is cheap).
    k_star_factor:
        Candidate multiplier if stage 2 (exact counting) is needed.

    Returns a :class:`FrequentResult`; ``info['escalated']`` records
    whether the exact-counting pass ran, ``info['confident']`` whether
    the probe alone certified the answer.
    """
    n = int(machine.allreduce([c.size for c in data.chunks], op="sum")[0])
    if n == 0:
        return FrequentResult((), True, 1.0, 0, k, {"escalated": False})

    # ---- stage 1: probe ------------------------------------------------
    rho0 = pac_sample_rate(n, k, probe_eps, delta)
    samples = sample_distributed(machine, data, rho0)
    probe_size = int(machine.allreduce([s.size for s in samples], op="sum")[0])
    counts = count_into_dht(machine, samples)
    head = take_topk_entries(machine, counts, k + 1)

    if _confident_split(head, k, delta) and rho0 >= pac_sample_rate(
        n, k, eps, delta
    ):
        # the probe is both confident and already fine enough for eps
        items = tuple((key, c / rho0) for key, c in head[:k])
        return FrequentResult(
            items=items,
            exact_counts=rho0 >= 1.0,
            rho=rho0,
            sample_size=probe_size,
            k_star=k,
            info={"escalated": False, "confident": True},
        )

    # ---- stage 2: exact counting of probe candidates ------------------
    k_star = max(k, k_star_factor * k)
    candidates = take_topk_entries(machine, counts, k_star)
    cand_keys = np.array([key for key, _ in candidates], dtype=np.int64)
    exact = exact_count_keys(machine, data, cand_keys)
    order = np.lexsort((cand_keys, -exact))
    top = order[: min(k, len(cand_keys))]
    items = tuple((int(cand_keys[t]), float(exact[t])) for t in top)
    return FrequentResult(
        items=items,
        exact_counts=True,
        rho=rho0,
        sample_size=probe_size,
        k_star=int(k_star),
        info={"escalated": True, "confident": _confident_split(head, k, delta)},
    )
