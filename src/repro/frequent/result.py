"""Result container shared by the top-k frequent-objects algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FrequentResult"]


@dataclass(frozen=True)
class FrequentResult:
    """Top-k most frequent objects, with provenance.

    Attributes
    ----------
    items:
        ``(key, count)`` pairs, most frequent first (count ties broken by
        key).  Counts are exact if ``exact_counts``, otherwise estimates
        scaled from the sample (``sample_count / rho``).
    exact_counts:
        Whether the reported counts were measured over the whole input.
    rho:
        Sampling probability used.
    sample_size:
        Realized global sample size.
    k_star:
        Candidate-set size for the exact-counting algorithms (EC, PEC);
        equals ``k`` for PAC/Naive.
    info:
        Free-form per-algorithm diagnostics.
    """

    items: tuple[tuple[int, float], ...]
    exact_counts: bool
    rho: float
    sample_size: int
    k_star: int
    info: dict = field(default_factory=dict)

    @property
    def keys(self) -> tuple[int, ...]:
        return tuple(key for key, _ in self.items)

    def count_of(self, key) -> float | None:
        for key2, c in self.items:
            if key2 == key:
                return c
        return None
