"""Selection partition kernels: the per-PE hot loops of Section 3/4.

``partition3`` is the multi-pivot split every selection round performs
(below / between / above the pivot pair, order-preserving);
``topk_count`` and ``topk_cut`` are the collapsed count + tie-grant
extraction of the one-step top-k cut.  The python references are the
exact numpy mask pipelines the algorithms used inline; the native twins
do the same work in one or two typed passes.
"""

from __future__ import annotations

import numpy as np

from .registry import jit, kernel

__all__ = ["partition3", "topk_count", "topk_cut"]


@kernel("partition3")
def partition3(arr, lo, hi):
    """Split ``arr`` into ``(below, mid, above)``: elements ``< lo``,
    ``in [lo, hi]``, ``> hi`` -- each part order-preserving."""
    below = arr < lo
    mid = (arr >= lo) & (arr <= hi)
    return arr[below], arr[mid], arr[~below & ~mid]


@jit
def _count3_core(arr, lo, hi):
    n_lo = 0
    n_mid = 0
    for i in range(arr.size):
        x = arr[i]
        if x < lo:
            n_lo += 1
        elif x <= hi:
            n_mid += 1
    return n_lo, n_mid


@jit
def _fill3_core(arr, lo, hi, out_lo, out_mid, out_hi):
    i = 0
    j = 0
    k = 0
    for t in range(arr.size):
        x = arr[t]
        if x < lo:
            out_lo[i] = x
            i += 1
        elif x <= hi:
            out_mid[j] = x
            j += 1
        else:
            out_hi[k] = x
            k += 1


@partition3.native
def _partition3_native(arr, lo, hi):
    n_lo, n_mid = _count3_core(arr, lo, hi)
    out_lo = np.empty(n_lo, dtype=arr.dtype)
    out_mid = np.empty(n_mid, dtype=arr.dtype)
    out_hi = np.empty(arr.size - n_lo - n_mid, dtype=arr.dtype)
    _fill3_core(arr, lo, hi, out_lo, out_mid, out_hi)
    return out_lo, out_mid, out_hi


@kernel("topk_count")
def topk_count(arr, threshold):
    """``(count below, count equal)`` against the top-k threshold."""
    return int((arr < threshold).sum()), int((arr == threshold).sum())


@jit
def _topk_count_core(arr, threshold):
    n_below = 0
    n_eq = 0
    for i in range(arr.size):
        x = arr[i]
        if x < threshold:
            n_below += 1
        elif x == threshold:
            n_eq += 1
    return n_below, n_eq


@topk_count.native
def _topk_count_native(arr, threshold):
    n_below, n_eq = _topk_count_core(arr, threshold)
    return int(n_below), int(n_eq)


@kernel("topk_cut")
def topk_cut(arr, threshold, keep_eq):
    """Elements ``< threshold`` plus the first ``keep_eq`` ties, in the
    order the reference concatenation produces (all strict, then ties)."""
    below = arr < threshold
    return np.concatenate([arr[below], arr[arr == threshold][:keep_eq]])


@jit
def _topk_cut_core(arr, threshold, keep_eq, out, n_below):
    i = 0
    j = 0
    for t in range(arr.size):
        x = arr[t]
        if x < threshold:
            out[i] = x
            i += 1
        elif x == threshold and j < keep_eq:
            out[n_below + j] = x
            j += 1


@topk_cut.native
def _topk_cut_native(arr, threshold, keep_eq, n_below=None, n_eq=None):
    if n_below is None or n_eq is None:
        n_below, n_eq = _topk_count_core(arr, threshold)
    take = min(int(keep_eq), int(n_eq))
    out = np.empty(int(n_below) + take, dtype=arr.dtype)
    _topk_cut_core(arr, threshold, take, out, int(n_below))
    return out
