"""Native-speed worker kernels behind a dispatch registry.

Importing this package registers every kernel (python reference +
native twin) and exposes the mode controls.  See
:mod:`repro.kernels.registry` for the dispatch contract and
:mod:`repro.kernels.philox` for how native RNG-consuming twins stay
bit-identical to numpy's Philox stream.
"""

from .registry import (
    MODES,
    Kernel,
    effective_mode,
    get_mode,
    jit,
    kernel,
    numba_available,
    registered,
    set_mode,
    use_mode,
)
from .counters import spacesaving_offer
from .hashing import fingerprint32, splitmix64_array
from .partition import partition3, topk_count, topk_cut
from .philox import native_uniforms
from .sampling import skip_sample_indices, weighted_counts
from .treap import ArrayTreap, treap_merge

__all__ = [
    "MODES",
    "ArrayTreap",
    "Kernel",
    "effective_mode",
    "fingerprint32",
    "get_mode",
    "jit",
    "kernel",
    "native_uniforms",
    "numba_available",
    "partition3",
    "registered",
    "set_mode",
    "skip_sample_indices",
    "spacesaving_offer",
    "splitmix64_array",
    "topk_count",
    "topk_cut",
    "treap_merge",
    "use_mode",
    "weighted_counts",
]
