"""Hashing kernels: splitmix64 over arrays (key routing, sketch
fingerprints).

The python reference is the vectorized numpy pipeline
``common/hashing.py`` always used; the native twin is a single typed
pass.  Both rely on uint64 wrap-around and are bit-identical.
"""

from __future__ import annotations

import numpy as np

from .registry import jit, kernel

__all__ = ["splitmix64_array", "fingerprint32"]

_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


@kernel("splitmix64_array")
def splitmix64_array(x):
    """splitmix64 finalizer over a uint64 array."""
    z = x + np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


@jit
def _splitmix64_core(x, out):
    golden = np.uint64(_GOLDEN)
    mix1 = np.uint64(_MIX1)
    mix2 = np.uint64(_MIX2)
    s30 = np.uint64(30)
    s27 = np.uint64(27)
    s31 = np.uint64(31)
    for i in range(x.size):
        z = x[i] + golden
        z = (z ^ (z >> s30)) * mix1
        z = (z ^ (z >> s27)) * mix2
        out[i] = z ^ (z >> s31)


@splitmix64_array.native
def _splitmix64_array_native(x):
    out = np.empty(x.size, dtype=np.uint64)
    _splitmix64_core(x, out)
    return out


@kernel("fingerprint32")
def fingerprint32(keys, salt):
    """32-bit sketch fingerprints: ``splitmix64(key ^ salt) & 0xFFFFFFFF``
    over an int64 key array (the dsbf per-level hot loop)."""
    z = keys.astype(np.uint64) ^ np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
    return (splitmix64_array.py(z) & np.uint64(0xFFFFFFFF)).astype(np.int64)


@jit
def _fingerprint32_core(ukeys, salt, out):
    golden = np.uint64(_GOLDEN)
    mix1 = np.uint64(_MIX1)
    mix2 = np.uint64(_MIX2)
    s30 = np.uint64(30)
    s27 = np.uint64(27)
    s31 = np.uint64(31)
    lo32 = np.uint64(0xFFFFFFFF)
    for i in range(ukeys.size):
        z = ukeys[i] ^ salt
        z = z + golden
        z = (z ^ (z >> s30)) * mix1
        z = (z ^ (z >> s27)) * mix2
        z = z ^ (z >> s31)
        out[i] = np.int64(z & lo32)


@fingerprint32.native
def _fingerprint32_native(keys, salt):
    out = np.empty(keys.size, dtype=np.int64)
    _fingerprint32_core(keys.astype(np.uint64),
                        np.uint64(salt & 0xFFFFFFFFFFFFFFFF), out)
    return out
