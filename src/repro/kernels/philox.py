"""Philox4x64-10 counter RNG in nopython-compatible form.

The machine layer addresses every random draw by ``(seed, stream,
rank, seq, draw)`` (:mod:`repro.machine.ctrrng`) on a numpy
``Philox`` bit generator.  These cores reproduce numpy's uniform-double
stream *bit for bit* from the raw state words, so a jitted kernel can
consume randomness inline -- no generator object, no state to ship --
and stay identical to the python reference drawing from
``addr.local(rank)`` / ``addr.shared()``.

The exact semantics (verified against ``np.random.Generator(Philox)``):

* Philox4x64 multipliers ``0xD2E7470EE14C6C93`` / ``0xCA5A826395121157``
  with Weyl constants ``0x9E3779B97F4A7C15`` / ``0xBB67AE8584CAA73B``,
  ten rounds;
* numpy **pre-increments** the 256-bit counter (word 0 first, little-
  endian carry) before generating each block, so the first block after
  seeding ``counter=[0, 0, draw, seq]`` is computed at
  ``[1, 0, draw, seq]``;
* a uniform double is ``(word >> 11) * 2**-53``, words consumed in
  block order ``0..3``; partially consumed blocks live in the
  generator's ``buffer`` with ``buffer_pos`` = words already consumed.

Native twins *snapshot* a generator's state words
(:func:`state_words`), draw inside the jitted core, and *write the
advanced state back* (:func:`put_state`) so the generator object stays
interchangeable with one the python reference consumed.

No generator is ever constructed here -- the state always arrives from
a ``DrawAddress``-derived generator (repro-lint RL010).
"""

from __future__ import annotations

import numpy as np

from .registry import jit

__all__ = [
    "PHILOX_M0",
    "PHILOX_M1",
    "PHILOX_W0",
    "PHILOX_W1",
    "is_philox",
    "native_uniforms",
    "put_state",
    "state_words",
]

PHILOX_M0 = 0xD2E7470EE14C6C93
PHILOX_M1 = 0xCA5A826395121157
PHILOX_W0 = 0x9E3779B97F4A7C15
PHILOX_W1 = 0xBB67AE8584CAA73B

#: 2**-53: maps the top 53 bits of a word onto [0, 1)
U53_INV = 1.0 / 9007199254740992.0


@jit
def _philox_next_block(k0, k1, c0, c1, c2, c3, out, base):
    """Pre-increment the counter, run ten rounds, write the four raw
    words to ``out[base:base+4]``; returns the incremented counter."""
    one = np.uint64(1)
    zero = np.uint64(0)
    m0 = np.uint64(PHILOX_M0)
    m1 = np.uint64(PHILOX_M1)
    w0 = np.uint64(PHILOX_W0)
    w1 = np.uint64(PHILOX_W1)
    lo32 = np.uint64(0xFFFFFFFF)
    s32 = np.uint64(32)
    # pre-increment, word 0 first, little-endian carry
    c0 = c0 + one
    if c0 == zero:
        c1 = c1 + one
        if c1 == zero:
            c2 = c2 + one
            if c2 == zero:
                c3 = c3 + one
    x0, x1, x2, x3 = c0, c1, c2, c3
    key0, key1 = k0, k1
    for _ in range(10):
        # mulhilo(m0, x0)
        lo0 = m0 * x0
        a_lo = m0 & lo32
        a_hi = m0 >> s32
        b_lo = x0 & lo32
        b_hi = x0 >> s32
        t = (a_lo * b_lo) >> s32
        t1 = a_hi * b_lo + t
        t2 = a_lo * b_hi + (t1 & lo32)
        hi0 = a_hi * b_hi + (t1 >> s32) + (t2 >> s32)
        # mulhilo(m1, x2)
        lo1 = m1 * x2
        a_lo = m1 & lo32
        a_hi = m1 >> s32
        b_lo = x2 & lo32
        b_hi = x2 >> s32
        t = (a_lo * b_lo) >> s32
        t1 = a_hi * b_lo + t
        t2 = a_lo * b_hi + (t1 & lo32)
        hi1 = a_hi * b_hi + (t1 >> s32) + (t2 >> s32)
        x0, x1, x2, x3 = hi1 ^ x1 ^ key0, lo1, hi0 ^ x3 ^ key1, lo0
        key0 = key0 + w0
        key1 = key1 + w1
    out[base] = x0
    out[base + 1] = x1
    out[base + 2] = x2
    out[base + 3] = x3
    return c0, c1, c2, c3


@jit
def _uniform_fill(k0, k1, c0, c1, c2, c3, buf, pos, out):
    """Fill ``out`` with uniform doubles continuing from ``(counter,
    buffer, pos)``; mutates ``buf`` and returns the advanced
    ``(c0, c1, c2, c3, pos)``."""
    s11 = np.uint64(11)
    for i in range(out.size):
        if pos >= 4:
            c0, c1, c2, c3 = _philox_next_block(k0, k1, c0, c1, c2, c3,
                                                buf, 0)
            pos = 0
        out[i] = np.float64(buf[pos] >> s11) * U53_INV
        pos += 1
    return c0, c1, c2, c3, pos


def is_philox(rng) -> bool:
    """Whether ``rng`` runs on a Philox bit generator (the machine
    layer's counter-addressed streams always do; anything else makes
    the RNG-consuming native twins fall back to their python
    references)."""
    return type(rng.bit_generator).__name__ == "Philox"


def state_words(rng) -> tuple:
    """Snapshot a Philox generator's raw words:
    ``(k0, k1, c0, c1, c2, c3, buffer[uint64 x4], pos)``."""
    st = rng.bit_generator.state
    key = st["state"]["key"]
    ctr = st["state"]["counter"]
    buf = np.array(st["buffer"], dtype=np.uint64)
    pos = int(st["buffer_pos"])
    return (
        np.uint64(key[0]), np.uint64(key[1]),
        np.uint64(ctr[0]), np.uint64(ctr[1]),
        np.uint64(ctr[2]), np.uint64(ctr[3]),
        buf, pos,
    )


def put_state(rng, c0, c1, c2, c3, buf, pos) -> None:
    """Write an advanced ``(counter, buffer, pos)`` back into ``rng`` so
    later draws continue exactly where the native core stopped (the key
    never advances across blocks -- the Weyl schedule restarts per
    block from the stored key)."""
    st = rng.bit_generator.state
    st["state"]["counter"] = np.array(
        [int(c0), int(c1), int(c2), int(c3)], dtype=np.uint64
    )
    st["buffer"] = np.asarray(buf, dtype=np.uint64)
    st["buffer_pos"] = int(pos)
    rng.bit_generator.state = st


def native_uniforms(rng, n: int) -> np.ndarray:
    """``n`` uniform doubles, bit-identical to ``rng.random(n)``,
    drawn by the native core; advances ``rng``'s state identically."""
    k0, k1, c0, c1, c2, c3, buf, pos = state_words(rng)
    out = np.empty(int(n), dtype=np.float64)
    c0, c1, c2, c3, pos = _uniform_fill(k0, k1, c0, c1, c2, c3, buf, pos, out)
    put_state(rng, c0, c1, c2, c3, buf, pos)
    return out
