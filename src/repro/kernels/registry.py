"""Kernel dispatch registry: python reference twins + native twins.

Every hot in-worker loop is registered here as a *kernel*: a named
callable with a pure-python/numpy reference implementation and,
optionally, a *native twin* -- the same computation written in
nopython-compatible style so :func:`jit` can hand it to numba.  The
twins are contractually bit-identical: swapping the mode may change
wall-clock time, never a result or a modeled cost.

Selection::

    REPRO_KERNELS=auto|python|native       # process-wide default
    Machine(..., kernels="native")         # per-machine (plumbed to workers)

``auto`` (the default) uses native twins when numba is importable and
falls back to the python references otherwise.  ``native`` is honored
even without numba: the twins then run *interpreted* (numpy scalar
arithmetic wraps exactly like the jitted uint64 code), which keeps the
native path testable for bit-identity on machines without a compiler
toolchain -- only the speedup needs numba.

Registering a kernel::

    @kernel("partition3")
    def partition3(arr, lo, hi):            # the python reference
        ...

    @partition3.native                       # optional native twin
    def _partition3_native(arr, lo, hi):
        ...  # python wrapper calling @jit cores

Native RNG-consuming twins must derive their Philox stream from the
incoming ``DrawAddress``-built generator's state words (see
:mod:`repro.kernels.philox`) -- never construct generators (repro-lint
RL010 enforces both halves of the convention).
"""

from __future__ import annotations

import contextlib
import functools
import os

import numpy as np

__all__ = [
    "MODES",
    "Kernel",
    "effective_mode",
    "get_mode",
    "jit",
    "kernel",
    "numba_available",
    "registered",
    "set_mode",
    "use_mode",
]

MODES = ("auto", "python", "native")

#: explicit process-wide override (None -> fall back to REPRO_KERNELS)
_mode: str | None = None


@functools.lru_cache(maxsize=1)
def numba_available() -> bool:
    """True when numba imports cleanly (cached once per process)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _env_mode() -> str:
    raw = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    return raw if raw in MODES else "auto"


def get_mode() -> str:
    """The requested mode: explicit :func:`set_mode` > env > ``auto``."""
    return _mode if _mode is not None else _env_mode()


def set_mode(mode: str | None) -> None:
    """Set the process-wide kernel mode (``None`` reverts to the
    ``REPRO_KERNELS`` environment default)."""
    global _mode
    if mode is not None and mode not in MODES:
        raise ValueError(f"kernels mode must be one of {MODES}, got {mode!r}")
    _mode = mode


def effective_mode() -> str:
    """Resolve ``auto``: ``native`` iff numba is importable."""
    mode = get_mode()
    if mode == "auto":
        return "native" if numba_available() else "python"
    return mode


@contextlib.contextmanager
def use_mode(mode: str | None):
    """Scoped :func:`set_mode` (tests compare twins under both modes)."""
    prev = _mode
    set_mode(mode)
    try:
        yield
    finally:
        set_mode(prev)


def jit(fn=None, **options):
    """``numba.njit`` when available, else an interpreted shim.

    The shim runs the identical function body under
    ``np.errstate(over="ignore")``: the uint64 cores *rely* on wrap-
    around arithmetic (Philox, splitmix64), which numpy scalars perform
    exactly but warn about.  Compiled or interpreted, the results are
    bit-identical -- the decorated cores are written against the
    nopython subset (typed loops, no python objects).
    """
    def wrap(f):
        if numba_available():
            import numba

            return numba.njit(cache=True, **options)(f)

        @functools.wraps(f)
        def shim(*args, **kwargs):
            with np.errstate(over="ignore"):
                return f(*args, **kwargs)

        shim.py_func = f
        return shim

    return wrap(fn) if fn is not None else wrap


class Kernel:
    """One registered kernel: python reference + optional native twin."""

    __slots__ = ("name", "py", "native_fn", "__name__")

    def __init__(self, name: str, py_fn):
        self.name = name
        self.py = py_fn
        self.native_fn = None
        self.__name__ = getattr(py_fn, "__name__", name)

    def native(self, fn):
        """Decorator attaching the native twin (returns ``fn`` so the
        module-level name keeps pointing at the raw function)."""
        self.native_fn = fn
        return fn

    @property
    def has_native(self) -> bool:
        return self.native_fn is not None

    def __call__(self, *args, **kwargs):
        if self.native_fn is not None and effective_mode() == "native":
            return self.native_fn(*args, **kwargs)
        return self.py(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        twin = "python+native" if self.has_native else "python"
        return f"Kernel({self.name!r}, {twin})"


_REGISTRY: dict[str, Kernel] = {}


def kernel(name: str):
    """Class-of-decorators registering ``fn`` as the python reference of
    kernel ``name`` and replacing it with the dispatching
    :class:`Kernel`."""
    def deco(fn):
        if name in _REGISTRY:
            raise ValueError(f"duplicate kernel {name!r}")
        k = Kernel(name, fn)
        _REGISTRY[name] = k
        return k

    return deco


def registered() -> dict[str, Kernel]:
    """The kernel table (name -> :class:`Kernel`), import-complete once
    :mod:`repro.kernels` is loaded."""
    return dict(_REGISTRY)
