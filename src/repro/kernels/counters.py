"""Counter-update kernels: the Space-Saving ``offer`` batch loop.

The python reference replicates CPython dict semantics exactly: the
eviction victim is the *first key in insertion order* with minimal
count, removal shifts everything after it left, and a new key appends.
The native twin runs the identical policy on parallel int64 arrays held
in insertion order, so both produce the same summary for the same
offered batch -- bit for bit, including ``max_evicted``.
"""

from __future__ import annotations

import numpy as np

from .registry import jit, kernel

__all__ = ["spacesaving_offer"]


@kernel("spacesaving_offer")
def spacesaving_offer(keys, counts, capacity, max_evicted, new_keys,
                      new_counts):
    """Apply ``(new_keys[i], new_counts[i])`` offers to a Space-Saving
    summary given as insertion-ordered parallel arrays; returns the
    updated ``(keys, counts, max_evicted)``."""
    table = {int(k): int(c) for k, c in zip(keys, counts)}
    max_evicted = int(max_evicted)
    for k, c in zip(new_keys, new_counts):
        k, c = int(k), int(c)
        if k in table:
            table[k] += c
        elif len(table) < capacity:
            table[k] = c
        else:
            victim = min(table, key=table.__getitem__)
            floor = table.pop(victim)
            max_evicted = max(max_evicted, floor)
            table[k] = floor + c
    out_keys = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
    out_counts = np.fromiter(table.values(), dtype=np.int64, count=len(table))
    return out_keys, out_counts, max_evicted


@jit
def _ss_offer_core(keys, counts, m, capacity, max_evicted, new_keys,
                   new_counts):
    for t in range(new_keys.size):
        k = new_keys[t]
        c = new_counts[t]
        found = -1
        for i in range(m):
            if keys[i] == k:
                found = i
                break
        if found >= 0:
            counts[found] += c
        elif m < capacity:
            keys[m] = k
            counts[m] = c
            m += 1
        else:
            # first key in insertion order with the minimal count --
            # exactly what min() over a dict picks
            victim = 0
            for i in range(1, m):
                if counts[i] < counts[victim]:
                    victim = i
            floor = counts[victim]
            if floor > max_evicted:
                max_evicted = floor
            for i in range(victim, m - 1):
                keys[i] = keys[i + 1]
                counts[i] = counts[i + 1]
            keys[m - 1] = k
            counts[m - 1] = floor + c
    return m, max_evicted


@spacesaving_offer.native
def _spacesaving_offer_native(keys, counts, capacity, max_evicted, new_keys,
                              new_counts):
    cap = int(capacity)
    work_keys = np.empty(cap, dtype=np.int64)
    work_counts = np.empty(cap, dtype=np.int64)
    m = int(len(keys))
    work_keys[:m] = keys
    work_counts[:m] = counts
    m, max_evicted = _ss_offer_core(
        work_keys, work_counts, m, cap, int(max_evicted),
        np.ascontiguousarray(new_keys, dtype=np.int64),
        np.ascontiguousarray(new_counts, dtype=np.int64),
    )
    return work_keys[:m].copy(), work_counts[:m].copy(), int(max_evicted)
