"""Sampling kernels: weighted rounding counts and Bernoulli skip
sampling.

Both consume *uniform doubles only*, so the native twins can derive the
exact Philox stream from the incoming generator's state words
(:mod:`repro.kernels.philox`) and stay bit-identical to the python
references drawing ``rng.random(...)``.  Draws that go through numpy's
non-portable samplers (``binomial``, ``choice``, ``geometric``'s
ziggurat) are *not* kernelized -- those stay numpy in every mode.
"""

from __future__ import annotations

import math

import numpy as np

from .philox import U53_INV, _philox_next_block, is_philox, put_state, \
    state_words
from .registry import jit, kernel

__all__ = ["weighted_counts", "skip_sample_indices"]


@kernel("weighted_counts")
def weighted_counts(rng, values, v_avg):
    """Randomized-rounding duplicate counts: ``floor(v / v_avg)`` plus a
    Bernoulli extra on the fractional part (one uniform per value)."""
    scaled = values / v_avg
    base = np.floor(scaled)
    frac = scaled - base
    extra = rng.random(len(values)) < frac
    return (base + extra).astype(np.int64)


@jit
def _weighted_counts_core(values, v_avg, k0, k1, c0, c1, c2, c3, buf, pos,
                          out):
    s11 = np.uint64(11)
    for i in range(values.size):
        if pos >= 4:
            c0, c1, c2, c3 = _philox_next_block(k0, k1, c0, c1, c2, c3,
                                                buf, 0)
            pos = 0
        u = np.float64(buf[pos] >> s11) * U53_INV
        pos += 1
        scaled = values[i] / v_avg
        base = math.floor(scaled)
        out[i] = base + (1 if u < scaled - base else 0)
    return c0, c1, c2, c3, pos


@weighted_counts.native
def _weighted_counts_native(rng, values, v_avg):
    if not is_philox(rng):
        return weighted_counts.py(rng, values, v_avg)
    values = np.ascontiguousarray(values, dtype=np.float64)
    out = np.empty(values.size, dtype=np.int64)
    k0, k1, c0, c1, c2, c3, buf, pos = state_words(rng)
    c0, c1, c2, c3, pos = _weighted_counts_core(
        values, float(v_avg), k0, k1, c0, c1, c2, c3, buf, pos, out
    )
    put_state(rng, c0, c1, c2, c3, buf, pos)
    return out


@kernel("skip_sample_indices")
def skip_sample_indices(rng, n, rho):
    """Bernoulli(rho) sample positions in ``[0, n)`` via geometric gap
    skipping (inversion on one uniform per gap, including the final
    overshooting gap)."""
    log1m = math.log1p(-rho)
    out = []
    pos = -1
    while True:
        gap = math.floor(math.log1p(-rng.random()) / log1m) + 1
        pos += gap
        if pos >= n:
            break
        out.append(pos)
    return np.array(out, dtype=np.int64)


@jit
def _skip_sample_core(n, log1m, k0, k1, c0, c1, c2, c3, buf, pos, out):
    s11 = np.uint64(11)
    count = 0
    at = -1
    while True:
        if pos >= 4:
            c0, c1, c2, c3 = _philox_next_block(k0, k1, c0, c1, c2, c3,
                                                buf, 0)
            pos = 0
        u = np.float64(buf[pos] >> s11) * U53_INV
        pos += 1
        at += int(math.floor(math.log1p(-u) / log1m)) + 1
        if at >= n:
            break
        out[count] = at
        count += 1
    return count, c0, c1, c2, c3, pos


@skip_sample_indices.native
def _skip_sample_indices_native(rng, n, rho):
    if not is_philox(rng):
        return skip_sample_indices.py(rng, n, rho)
    n = int(n)
    out = np.empty(n, dtype=np.int64)
    k0, k1, c0, c1, c2, c3, buf, pos = state_words(rng)
    count, c0, c1, c2, c3, pos = _skip_sample_core(
        n, math.log1p(-rho), k0, k1, c0, c1, c2, c3, buf, pos, out
    )
    put_state(rng, c0, c1, c2, c3, buf, pos)
    return out[:count].copy()
