"""Native treap twin: a sorted structure-of-arrays multiset.

Every output the bulk priority queue observes from its per-PE tree --
iteration order, ``select``, ``count_le``, ``min``, length, the
``log2``-formula access cost, ``split_at_rank`` contents -- is
*structure-independent*: it depends only on the key multiset, never on
the treap's rotation shape.  So the native twin drops the pointer
structure entirely and keeps the keys ``(score, (ra, rb))`` as three
lex-sorted parallel arrays; bulk insertion is one jitted sorted merge
(:data:`treap_merge`), ``split_at_rank`` is a slice, rank queries are
binary search.

Determinism contract: :class:`ArrayTreap` still consumes **one priority
draw per inserted key** from its ``_rng`` -- exactly what
:meth:`repro.trees.Treap.insert` draws -- so the counter-addressed
stream advances identically in both modes even though the array twin
discards the values (tree shape is unobservable).
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from .registry import jit, kernel

__all__ = ["ArrayTreap", "treap_merge"]


@kernel("treap_merge")
def treap_merge(s_a, a_a, b_a, s_b, a_b, b_b):
    """Merge two lex-sorted ``(score, ra, rb)`` key sequences into one
    (stable: on equal keys the first sequence's entries come first)."""
    s = np.concatenate([s_a, s_b])
    a = np.concatenate([a_a, a_b])
    b = np.concatenate([b_a, b_b])
    order = np.lexsort((b, a, s))
    return s[order], a[order], b[order]


@jit
def _merge_core(s_a, a_a, b_a, s_b, a_b, b_b, s_o, a_o, b_o):
    n = s_a.size
    m = s_b.size
    i = 0
    j = 0
    k = 0
    while i < n and j < m:
        # (s, a, b) lexicographic; take from the first run on ties
        take_a = True
        if s_a[i] > s_b[j]:
            take_a = False
        elif s_a[i] == s_b[j]:
            if a_a[i] > a_b[j]:
                take_a = False
            elif a_a[i] == a_b[j] and b_a[i] > b_b[j]:
                take_a = False
        if take_a:
            s_o[k] = s_a[i]
            a_o[k] = a_a[i]
            b_o[k] = b_a[i]
            i += 1
        else:
            s_o[k] = s_b[j]
            a_o[k] = a_b[j]
            b_o[k] = b_b[j]
            j += 1
        k += 1
    while i < n:
        s_o[k] = s_a[i]
        a_o[k] = a_a[i]
        b_o[k] = b_a[i]
        i += 1
        k += 1
    while j < m:
        s_o[k] = s_b[j]
        a_o[k] = a_b[j]
        b_o[k] = b_b[j]
        j += 1
        k += 1


@treap_merge.native
def _treap_merge_native(s_a, a_a, b_a, s_b, a_b, b_b):
    total = s_a.size + s_b.size
    s_o = np.empty(total, dtype=np.float64)
    a_o = np.empty(total, dtype=np.int64)
    b_o = np.empty(total, dtype=np.int64)
    _merge_core(s_a, a_a, b_a, s_b, a_b, b_b, s_o, a_o, b_o)
    return s_o, a_o, b_o


_EMPTY_F8 = np.empty(0, dtype=np.float64)
_EMPTY_I8 = np.empty(0, dtype=np.int64)


class ArrayTreap:
    """Sorted-array multiset with the :class:`repro.trees.Treap` query
    surface the priority queue uses.

    Keys are ``(score, (ra, rb))`` tuples with ``score`` a float and
    ``ra``/``rb`` integers (the queue's ``(score, uid)`` convention);
    key uniqueness makes every ordering question unambiguous.
    """

    def __init__(self, rng: np.random.Generator | None = None):
        self._s = _EMPTY_F8
        self._ra = _EMPTY_I8
        self._rb = _EMPTY_I8
        # mirrors Treap's default seed; the pqueue swaps in the
        # command's DrawAddress stream before drawing, so this generator
        # only exists for standalone use
        # repro-lint: disable=RL010 -- standalone default, mirrors Treap
        self._rng = rng if rng is not None else np.random.default_rng(0x7EA9)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._s.size)

    def __bool__(self) -> bool:
        return self._s.size > 0

    def __iter__(self) -> Iterator:
        for i in range(self._s.size):
            yield self._key(i)

    def to_list(self) -> list:
        return list(self)

    def _key(self, i: int):
        return (float(self._s[i]), (int(self._ra[i]), int(self._rb[i])))

    def min(self):
        """Smallest key; raises on empty tree."""
        if self._s.size == 0:
            raise IndexError("operation on empty Treap")
        return self._key(0)

    def max(self):
        """Largest key; raises on empty tree."""
        if self._s.size == 0:
            raise IndexError("operation on empty Treap")
        return self._key(self._s.size - 1)

    def __contains__(self, key) -> bool:
        i = self.rank(key)
        return i < self._s.size and not (key < self._key(i))

    # ------------------------------------------------------------------
    # Order statistics (binary search with the same comparison
    # orientation as Treap.rank/count_le, so sentinel keys like
    # ordering.TOP behave identically)
    # ------------------------------------------------------------------
    def select(self, i: int):
        n = self._s.size
        if not 0 <= i < n:
            raise IndexError(f"select index {i} out of range for size {n}")
        return self._key(i)

    def rank(self, key) -> int:
        """Number of keys strictly smaller than ``key``."""
        lo, hi = 0, self._s.size
        while lo < hi:
            mid = (lo + hi) // 2
            if key <= self._key(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo

    def count_le(self, key) -> int:
        """Number of keys ``<= key``."""
        lo, hi = 0, self._s.size
        while lo < hi:
            mid = (lo + hi) // 2
            if key < self._key(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key) -> None:
        """Insert one ``(score, (ra, rb))`` key (one priority draw)."""
        s, (ra, rb) = key
        self._rng.random()  # rotation priority (shape unobservable)
        self._merge_in(
            np.array([s], dtype=np.float64),
            np.array([ra], dtype=np.int64),
            np.array([rb], dtype=np.int64),
        )

    def insert_many(self, keys) -> None:
        keys = list(keys)
        if not keys:
            return
        self._rng.random(len(keys))
        s = np.array([k[0] for k in keys], dtype=np.float64)
        ra = np.array([k[1][0] for k in keys], dtype=np.int64)
        rb = np.array([k[1][1] for k in keys], dtype=np.int64)
        order = np.lexsort((rb, ra, s))
        self._merge_in(s[order], ra[order], rb[order])

    def insert_batch(self, scores, rank: int, first_uid: int) -> None:
        """Bulk-insert contiguously-numbered ``(score, (rank, uid))``
        keys -- the flush path.  Draws one priority per key."""
        s = np.ascontiguousarray(scores, dtype=np.float64)
        n = s.size
        if n == 0:
            return
        self._rng.random(n)
        ra = np.full(n, int(rank), dtype=np.int64)
        rb = np.arange(first_uid, first_uid + n, dtype=np.int64)
        # uids ascend with position, so a stable score sort is lex order
        order = np.argsort(s, kind="stable")
        self._merge_in(s[order], ra[order], rb[order])

    def _merge_in(self, s, ra, rb) -> None:
        if self._s.size == 0:
            self._s, self._ra, self._rb = s, ra, rb
            return
        self._s, self._ra, self._rb = treap_merge(
            self._s, self._ra, self._rb, s, ra, rb
        )

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def split_at_rank(self, i: int) -> "ArrayTreap":
        """Destructively remove and return the ``i`` smallest keys."""
        if i < 0:
            raise ValueError(f"split size must be >= 0, got {i}")
        i = min(i, self._s.size)
        out = ArrayTreap(self._rng)
        out._s, out._ra, out._rb = (
            self._s[:i].copy(), self._ra[:i].copy(), self._rb[:i].copy()
        )
        self._s = self._s[i:].copy()
        self._ra = self._ra[i:].copy()
        self._rb = self._rb[i:].copy()
        return out

    def split_at_key(self, key) -> "ArrayTreap":
        """Destructively remove and return all keys ``<= key``."""
        return self.split_at_rank(self.count_le(key))

    # ------------------------------------------------------------------
    # Cost accounting hook (identical formula to Treap.access_cost)
    # ------------------------------------------------------------------
    def access_cost(self, k: int | None = None) -> float:
        n = max(len(self), 2)
        if k is not None:
            n = max(2, min(n, int(k)))
        return math.log2(n)

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert strict lexicographic order (keys are unique)."""
        for i in range(1, self._s.size):
            assert self._key(i - 1) < self._key(i), "lex order violated"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayTreap(n={len(self)})"
