"""repro: communication-efficient distributed top-k selection algorithms.

A from-scratch reproduction of

    Hübschle-Schneider, Sanders & Müller,
    "Communication Efficient Algorithms for Top-k Selection Problems",
    IPDPS 2016.

The package implements the paper's contributions -- unsorted/sorted/
flexible selection, bulk-parallel priority queues, multicriteria top-k,
top-k most frequent objects, top-k sum aggregation and adaptive data
redistribution -- on a simulated ``p``-PE distributed-memory machine with
an explicit alpha-beta communication cost model, so that the paper's
communication-volume and scaling claims can be measured rather than
assumed.

Quickstart
----------
>>> import numpy as np
>>> from repro import Machine, DistArray
>>> from repro.selection import select_kth
>>> m = Machine(p=8, seed=42)
>>> data = DistArray.generate(m, lambda rank, rng: rng.random(1000))
>>> kth = select_kth(m, data, k=500)
>>> kth == np.sort(data.concat())[499]
True
"""

from .machine import CostParams, DistArray, Machine, MachineReport

__version__ = "1.0.0"

__all__ = [
    "CostParams",
    "DistArray",
    "Machine",
    "MachineReport",
    "__version__",
]
