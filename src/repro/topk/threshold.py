"""Fagin's threshold algorithm, sequential (Section 6 baseline).

The original TA [15]: in each of ``K`` iterations of the main loop, scan
one object from each of the ``m`` sorted lists, determine its exact
relevance with random accesses, and maintain the best ``k`` seen.  With
``x_i`` the smallest scanned score of list ``i``, the value
``t(x_1, .., x_m)`` bounds every unscanned object (monotonicity), so the
scan stops once the current k-th best reaches it.

The distributed algorithms of this package are measured against (a) the
result set and (b) the scan depth ``K`` of this reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pqueue.heap import BinaryHeap
from .index import LocalIndex
from .scoring import ScoringFunction

__all__ = ["ta_topk", "TAResult"]


@dataclass(frozen=True)
class TAResult:
    """Output of the sequential threshold algorithm.

    Attributes
    ----------
    items:
        The top-k as ``(object id, relevance)``, best first.
    scan_depth:
        ``K`` -- rows scanned per list before the threshold test fired.
    random_accesses:
        Number of full-score lookups performed.
    threshold:
        Final threshold value ``t(x_1, ..., x_m)``.
    """

    items: tuple[tuple[int, float], ...]
    scan_depth: int
    random_accesses: int
    threshold: float


def ta_topk(index: LocalIndex, scorer: ScoringFunction, k: int) -> TAResult:
    """Sequential TA over one index holding *all* objects.

    ``k`` is clamped to the number of objects.  Ties in relevance are
    broken by object id (ascending) for determinism.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n, m = index.n, index.m
    k = min(k, n)
    if n == 0:
        return TAResult((), 0, 0, float("-inf"))

    seen: set[int] = set()
    # min-heap of (relevance, -id) keeps the current top-k
    heap = BinaryHeap()
    random_accesses = 0
    threshold = float("inf")
    depth = 0

    for r in range(n):
        depth = r + 1
        frontier = np.empty(m)
        for c in range(m):
            if r < n:
                oid, s = index.entry(c, r)
                frontier[c] = s
                if oid not in seen:
                    seen.add(oid)
                    row = index.row_of(oid)
                    random_accesses += m - 1
                    rel = scorer(row)
                    entry = (rel, -oid)
                    if len(heap) < k:
                        heap.push(entry)
                    elif entry > heap.peek():
                        heap.pushpop(entry)
        threshold = scorer(frontier)
        if len(heap) >= k and heap.peek()[0] >= threshold:
            break

    items = sorted((rel, -nid) for rel, nid in heap.items())
    items = [(int(oid), float(rel)) for rel, oid in items]
    items.sort(key=lambda t: (-t[1], t[0]))
    return TAResult(tuple(items), depth, random_accesses, threshold)
