"""Multicriteria top-k (Section 6): threshold algorithms."""

from .dta import DTAPrefixes, DTAResult, dta_prefixes, dta_topk
from .index import LocalIndex, build_distributed_index, global_topk_oracle
from .rdta import RDTAResult, rdta_topk
from .scoring import MinScore, ScoringFunction, SumScore, WeightedSum
from .threshold import TAResult, ta_topk

__all__ = [
    "DTAPrefixes",
    "DTAResult",
    "LocalIndex",
    "MinScore",
    "RDTAResult",
    "ScoringFunction",
    "SumScore",
    "TAResult",
    "WeightedSum",
    "build_distributed_index",
    "dta_prefixes",
    "dta_topk",
    "global_topk_oracle",
    "rdta_topk",
    "ta_topk",
]
