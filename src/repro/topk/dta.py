"""DTA: distributed threshold algorithm for *arbitrary* data
distribution (Section 6, Algorithm 3).

DTA guesses the sequential TA's scan depth ``K`` by exponential search.
Per round:

1. For every criterion ``c``, the flexible selection algorithm
   (``amsSelect``, Section 4.3) finds the globally ``~K``-th largest
   list score ``x_c`` and thereby the global list prefix
   ``L'_c = {o : score_c(o) >= x_c}`` (its local part on every PE).
2. The threshold ``tmin = t(x_1, .., x_m)`` bounds every object outside
   all prefixes (monotonicity).
3. The number of *hits* (prefix objects with relevance >= tmin) is
   estimated by sampling ``y = O(log K)`` prefix entries per list and
   PE.  An object sampled from list ``c`` that also appears in an
   earlier list's prefix is *rejected* (counted in ``R``) to kill
   duplicate bias; ``l_c = |L'_c| (1 - R/y) (H/y)`` is then a truthful
   per-(PE, list) hit estimate, and one reduction sums them.
4. If the estimate reaches ``2k``, at least ``k`` hits exist whp and the
   search stops; otherwise ``K`` doubles.

Expected time ``O(m^2 log^2 K + beta m log K + alpha log p log K)``
(Theorem 6).  :func:`dta_topk` materializes the hits and runs exact
distributed selection on their relevances, verifying (and if needed
growing ``K``) until the output provably contains the true top-k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import DistArray, Machine
from ..selection.accessors import ArraySeq
from ..selection.flexible import ams_select
from ..selection.unsorted import select_topk_largest
from .index import LocalIndex
from .scoring import ScoringFunction

__all__ = ["dta_prefixes", "dta_topk", "DTAPrefixes", "DTAResult"]


@dataclass(frozen=True)
class DTAPrefixes:
    """Round-1 output of DTA (Algorithm 3's return value).

    Attributes
    ----------
    tmin:
        The threshold ``t(x_1, ..., x_m)``.
    xs:
        Per-criterion minimum selected score.
    prefix_sizes:
        ``prefix_sizes[i][c]`` -- local length of ``L'_c`` on PE ``i``.
    scanned:
        Final guess ``K`` (approximates TA's scan depth).
    rounds:
        Exponential-search rounds executed.
    hit_estimate:
        The sampling-based estimate of the number of hits.
    """

    tmin: float
    xs: tuple[float, ...]
    prefix_sizes: tuple[tuple[int, ...], ...]
    scanned: int
    rounds: int
    hit_estimate: float


@dataclass(frozen=True)
class DTAResult:
    """Final output of :func:`dta_topk`."""

    items: tuple[tuple[int, float], ...]
    prefixes: DTAPrefixes
    exact: bool


def dta_prefixes(
    machine: Machine,
    indexes: list[LocalIndex],
    scorer: ScoringFunction,
    k: int,
    *,
    k_start: int | None = None,
    y_samples: int | None = None,
    hit_target_factor: float = 2.0,
    max_rounds: int = 40,
    probes: int = 1,
) -> DTAPrefixes:
    """Run Algorithm 3's exponential search and return the prefixes.

    ``probes > 1`` enables the Section 6 refinement ("we can further
    reduce the latency of DTA by trying several values of K in each
    iteration"): each round evaluates the geometric ladder
    ``K, 2K, ..., 2^(probes-1) K`` and keeps the smallest sufficient
    one, dividing the expected round count by ``probes`` at the price of
    proportionally more (cheap, prefix-only) work per round.
    """
    p = machine.p
    if len(indexes) != p:
        raise ValueError(f"need one index per PE (p={p}, got {len(indexes)})")
    if probes < 1:
        raise ValueError(f"probes must be >= 1, got {probes}")
    m = indexes[0].m
    if any(ix.m != m for ix in indexes):
        raise ValueError("all PEs must index the same criteria")
    n_total = int(machine.allreduce([ix.n for ix in indexes], op="sum")[0])
    if not 1 <= k <= n_total:
        raise ValueError(f"k must satisfy 1 <= k <= {n_total}, got {k}")

    K = k_start if k_start is not None else max(1, int(np.ceil(k / (m * p))))
    rounds = 0
    while True:
        rounds += 1
        best = None
        for j in range(probes):
            K_probe = min(K * (2**j), n_total) if K * (2**j) <= n_total else n_total
            xs, cuts = _select_prefixes(machine, indexes, K_probe, n_total)
            tmin = scorer(np.asarray(xs))
            y = (
                y_samples
                if y_samples is not None
                else max(16, int(8 * np.log2(K_probe + 2)))
            )
            estimate = _estimate_hits(machine, indexes, scorer, xs, cuts, tmin, y)
            best = (K_probe, xs, cuts, tmin, estimate)
            if estimate >= hit_target_factor * k or K_probe >= n_total:
                break
        K_used, xs, cuts, tmin, estimate = best
        if (
            estimate >= hit_target_factor * k
            or K_used >= n_total
            or rounds >= max_rounds
        ):
            return DTAPrefixes(
                tmin=float(tmin),
                xs=tuple(xs),
                prefix_sizes=tuple(tuple(row) for row in cuts),
                scanned=K_used,
                rounds=rounds,
                hit_estimate=float(estimate),
            )
        K = K_used * 2


def _select_prefixes(machine, indexes, K, n_total):
    """amsSelect per criterion: threshold ``x_c`` and per-PE prefix cuts."""
    p = machine.p
    m = indexes[0].m
    xs = []
    cuts = [[0] * m for _ in range(p)]
    k_lo = min(K, n_total)
    k_hi = min(2 * K, n_total)
    for c in range(m):
        # descending list scores, negated to match amsSelect's ascending
        # "k smallest" convention
        seqs = [ArraySeq(-indexes[i].scores_desc(c)) for i in range(p)]
        res = ams_select(machine, seqs, k_lo, k_hi)
        xs.append(-float(res.value))
        for i in range(p):
            cuts[i][c] = int(res.cuts[i])
    return xs, cuts


def _estimate_hits(machine, indexes, scorer, xs, cuts, tmin, y):
    """Sampling-based truthful estimator of the global hit count."""
    p = machine.p
    m = indexes[0].m
    per_pe_estimate = []
    addr = machine.draw_addr()  # counter-addressed estimator draws
    gens = [addr.local(i) for i in range(p)]
    for i in range(p):
        ix = indexes[i]
        prefix_rows = [set(map(int, ix.prefix_rows(c, cuts[i][c]))) for c in range(m)]
        total = 0.0
        ops = 0.0
        for c in range(m):
            size = cuts[i][c]
            if size == 0:
                continue
            rows = ix.prefix_rows(c, size)
            picks = gens[i].integers(0, size, size=y)
            rejected = 0
            hits = 0
            for t in picks:
                row = int(rows[t])
                if any(row in prefix_rows[j] for j in range(c)):
                    rejected += 1  # counted by an earlier list
                elif scorer(ix.scores[row]) >= tmin:
                    hits += 1
            ops += y * (c + scorer.ops_per_eval)
            total += size * (1.0 - rejected / y) * (hits / y)
        machine.charge_ops_one(i, max(1.0, ops))
        per_pe_estimate.append(total)
    return float(machine.allreduce(per_pe_estimate, op="sum")[0])


def dta_topk(
    machine: Machine,
    indexes: list[LocalIndex],
    scorer: ScoringFunction,
    k: int,
    *,
    max_growth: int = 20,
    **prefix_kwargs,
) -> DTAResult:
    """Exact global top-k under arbitrary data distribution.

    Runs :func:`dta_prefixes`, materializes the hits (prefix objects
    with relevance above the threshold -- local work only, the phase the
    paper notes may be imbalanced), and selects the top-k among them
    with the unsorted selection algorithm.  If the materialized hits
    cannot yet certify the top-k (fewer than ``k`` strict hits), the
    scan depth is doubled and the prefixes recomputed -- the same
    exponential search, now driven by exact counts.
    """
    pre = dta_prefixes(machine, indexes, scorer, k, **prefix_kwargs)
    n_total = int(machine.allreduce([ix.n for ix in indexes], op="sum")[0])
    growth = 0
    while True:
        hits_per_pe = _materialize_hits(machine, indexes, scorer, pre)
        n_hits = int(machine.allreduce([len(h) for h in hits_per_pe], op="sum")[0])
        if n_hits >= k or pre.scanned >= n_total or growth >= max_growth:
            break
        growth += 1
        pre = dta_prefixes(
            machine, indexes, scorer, k,
            k_start=pre.scanned * 2, **prefix_kwargs,
        )

    exact = n_hits >= k
    k_eff = min(k, n_hits)
    rel_chunks = DistArray(
        machine,
        [np.array([rel for (_, rel) in h], dtype=np.float64) for h in hits_per_pe],
    )
    if k_eff == 0:
        return DTAResult((), pre, False)
    sel, thr = select_topk_largest(machine, rel_chunks, k_eff)
    items = _collect_winners(machine, hits_per_pe, thr, k_eff)
    return DTAResult(tuple(items), pre, exact)


def _materialize_hits(machine, indexes, scorer, pre: DTAPrefixes):
    """Per-PE scan of the prefix union: objects with ``t(o) >= tmin``.

    This is the single local-computation phase whose imbalance the paper
    accepts (worst case: all hits on one PE); its cost is charged to the
    owning PEs and therefore shows up in the modeled makespan.
    """
    p = machine.p
    m = indexes[0].m
    out = []
    for i in range(p):
        ix = indexes[i]
        rows: set[int] = set()
        for c in range(m):
            rows.update(map(int, ix.prefix_rows(c, pre.prefix_sizes[i][c])))
        hits = []
        for row in rows:
            rel = scorer(ix.scores[row])
            if rel >= pre.tmin:
                hits.append((int(ix.ids[row]), float(rel)))
        machine.charge_ops_one(i, max(1.0, len(rows) * scorer.ops_per_eval))
        out.append(hits)
    return out


def _collect_winners(machine, hits_per_pe, thr, k):
    """Exact-k extraction with PE-ordered tie granting, then allgather."""
    strict = [[(o, r) for (o, r) in h if r > thr] for h in hits_per_pe]
    ties = [[(o, r) for (o, r) in h if r == thr] for h in hits_per_pe]
    # fused: strict-winner total and tie prefix share one schedule
    quota, tie_before = machine.tie_grant_prefix(
        [len(s) for s in strict], [len(t) for t in ties], k
    )
    winners_per_pe = []
    for i in range(machine.p):
        grant = int(np.clip(quota - tie_before[i], 0, len(ties[i])))
        winners_per_pe.append(strict[i] + ties[i][:grant])
    gathered = machine.allgather(winners_per_pe)[0]
    items = [item for piece in gathered for item in piece]
    items.sort(key=lambda t: (-t[1], t[0]))
    return items[:k]
