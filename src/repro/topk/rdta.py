"""RDTA: distributed threshold algorithm for *randomly* distributed
objects (Section 6, "Random Data Distribution").

Because placement is independent of relevance, each PE holds at most
``k_hat = O(k/p + log p)`` of the global top-k with high probability
(balls-into-bins [30]).  Each PE therefore runs sequential TA locally to
produce ``k_hat`` candidates and a local threshold; the global threshold
is the max of the local ones, and if at least ``k`` candidates score
above it, the top-k among the candidates is found with the unsorted
selection algorithm.  Otherwise ``k_hat`` doubles and the scan resumes
-- PEs whose local threshold is already below the current k-th best
relevance may sit out the extra scanning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import DistArray, Machine
from ..selection.unsorted import select_topk_largest
from .index import LocalIndex
from .scoring import ScoringFunction
from .threshold import ta_topk

__all__ = ["rdta_topk", "RDTAResult"]


@dataclass(frozen=True)
class RDTAResult:
    """Output of RDTA.

    ``items`` is the exact global top-k (id, relevance), best first;
    ``rounds`` counts threshold-verification rounds (each one local-TA
    pass + O(1) collectives); ``k_hat_final`` is the per-PE candidate
    budget that sufficed.
    """

    items: tuple[tuple[int, float], ...]
    rounds: int
    k_hat_final: int


def rdta_topk(
    machine: Machine,
    indexes: list[LocalIndex],
    scorer: ScoringFunction,
    k: int,
    *,
    slack: float = 2.0,
    max_rounds: int = 30,
) -> RDTAResult:
    """Global top-k for randomly distributed objects.

    Parameters
    ----------
    indexes:
        One :class:`LocalIndex` per PE (objects placed independently of
        relevance -- RDTA's correctness requirement; for adversarial
        placement use :func:`repro.topk.dta.dta_topk`).
    slack:
        Multiplier on the balls-into-bins bound ``k/p + log p`` for the
        initial per-PE candidate budget.
    """
    p = machine.p
    if len(indexes) != p:
        raise ValueError(f"need one index per PE (p={p}, got {len(indexes)})")
    n_total = int(machine.allreduce([ix.n for ix in indexes], op="sum")[0])
    if not 1 <= k <= n_total:
        raise ValueError(f"k must satisfy 1 <= k <= {n_total}, got {k}")

    k_hat = max(1, int(np.ceil(slack * (k / p + np.log2(p + 1)))))
    rounds = 0
    while True:
        rounds += 1
        # local TA pass on every PE: k_hat candidates + local threshold
        local_results = []
        for i in range(p):
            res = ta_topk(indexes[i], scorer, min(k_hat, max(indexes[i].n, 1)))
            # scanning cost: K rows in m lists plus random accesses
            machine.charge_ops_one(
                i,
                max(1.0, res.scan_depth * indexes[i].m * scorer.ops_per_eval),
            )
            local_results.append(res)

        # global threshold: max over local TA thresholds; a PE that ran
        # out of objects cannot hide better ones (its threshold is -inf)
        local_thr = [
            r.threshold if ix.n > len(r.items) else float("-inf")
            for r, ix in zip(local_results, indexes)
        ]
        global_thr = float(machine.allreduce(local_thr, op="max")[0])

        above = [
            sum(1 for (_, rel) in r.items if rel >= global_thr) for r in local_results
        ]
        n_above = int(machine.allreduce(above, op="sum")[0])
        if n_above >= k or k_hat >= n_total:
            # verify: the k best candidates all dominate the threshold,
            # so no unscanned object can displace them
            cand_scores = DistArray(
                machine,
                [
                    np.array([rel for (_, rel) in r.items], dtype=np.float64)
                    for r in local_results
                ],
            )
            sel, thr = select_topk_largest(machine, cand_scores, k)
            items = _materialize(machine, local_results, sel, thr, k)
            return RDTAResult(tuple(items), rounds, k_hat)
        if rounds >= max_rounds:
            raise RuntimeError(
                "RDTA failed to verify a threshold; data placement is "
                "likely adversarial -- use dta_topk instead"
            )
        k_hat *= 2


def _materialize(machine, local_results, sel, thr, k):
    """Collect the winning (id, relevance) pairs on all PEs."""
    del sel  # the threshold suffices; the selected array stays distributed
    per_pe = []
    for r in local_results:
        mine = [(oid, rel) for (oid, rel) in r.items if rel > thr]
        ties = [(oid, rel) for (oid, rel) in r.items if rel == thr]
        per_pe.append((mine, ties))
    # grant threshold ties in PE order to hit exactly k
    # fused: strict-winner total and tie prefix share one schedule
    quota, tie_before = machine.tie_grant_prefix(
        [len(m_) for m_, _ in per_pe], [len(t) for _, t in per_pe], k
    )
    out_per_pe = []
    for i, (mine, ties) in enumerate(per_pe):
        grant = int(np.clip(quota - tie_before[i], 0, len(ties)))
        out_per_pe.append(mine + ties[:grant])
    gathered = machine.allgather(out_per_pe)[0]
    items = [item for piece in gathered for item in piece]
    items.sort(key=lambda t: (-t[1], t[0]))
    return items[:k]
