"""Per-PE score index for multicriteria top-k (Section 6).

The distributed setting of the paper: "each PE has a subset of the
objects and m sorted lists ranking its locally present objects".  All of
an object's list entries are therefore co-located with the object, which
is what makes DTA's duplicate rejection and random accesses purely
local.

:class:`LocalIndex` stores the local objects' ids and their m-column
score matrix, plus one descending sort order per criterion; it answers

* ``entry(c, r)``        -- the (id, score) at rank ``r`` of list ``c``,
* ``scores_desc(c)``     -- the sorted score column (for ``amsSelect``),
* ``row_of(id)``         -- random access to an object's full score row,
* ``prefix_members(c, x)`` -- which local objects have list-``c`` score
  ``>= x`` (the local portion of the global prefix ``L'_c``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Machine

__all__ = ["LocalIndex", "build_distributed_index", "global_topk_oracle"]


class LocalIndex:
    """One PE's objects, score matrix and per-criterion sorted lists."""

    def __init__(self, ids: np.ndarray, scores: np.ndarray):
        ids = np.asarray(ids, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2 or ids.ndim != 1 or scores.shape[0] != ids.shape[0]:
            raise ValueError(
                f"need ids (n,) and scores (n, m); got {ids.shape} and {scores.shape}"
            )
        if len(np.unique(ids)) != len(ids):
            raise ValueError("object ids must be locally unique")
        self.ids = ids
        self.scores = scores
        # descending order per criterion, stable for reproducibility
        self.orders = [
            np.argsort(-scores[:, c], kind="stable") for c in range(scores.shape[1])
        ]
        self._row_of = {int(i): r for r, i in enumerate(ids)}

    @property
    def n(self) -> int:
        return int(self.ids.size)

    @property
    def m(self) -> int:
        return int(self.scores.shape[1])

    # ------------------------------------------------------------------
    def entry(self, c: int, r: int) -> tuple[int, float]:
        """(object id, score) at rank ``r`` (0-based) of list ``c``."""
        row = self.orders[c][r]
        return int(self.ids[row]), float(self.scores[row, c])

    def scores_desc(self, c: int) -> np.ndarray:
        """Scores of list ``c`` in descending order."""
        return self.scores[self.orders[c], c]

    def row_of(self, obj_id: int) -> np.ndarray | None:
        """Full score row of a locally present object (random access)."""
        r = self._row_of.get(int(obj_id))
        return None if r is None else self.scores[r]

    def prefix_size(self, c: int, x: float) -> int:
        """Local size of the global prefix ``L'_c = {o : score_c(o) >= x}``."""
        col = self.scores_desc(c)
        # entries >= x of the descending column: search the negated
        # (ascending) column for -x with right bias
        return int(np.searchsorted(-col, -x, side="right"))

    def prefix_rows(self, c: int, size: int) -> np.ndarray:
        """Row indices of the first ``size`` entries of list ``c``."""
        return self.orders[c][:size]


def build_distributed_index(
    machine: Machine, ids_per_pe, scores_per_pe
) -> list[LocalIndex]:
    """Build one :class:`LocalIndex` per PE, charging the sort cost."""
    if len(ids_per_pe) != machine.p or len(scores_per_pe) != machine.p:
        raise ValueError("need ids and scores for every PE")
    out = []
    for i in range(machine.p):
        idx = LocalIndex(ids_per_pe[i], scores_per_pe[i])
        machine.charge_ops_one(
            i, idx.m * idx.n * np.log2(max(idx.n, 2))
        )
        out.append(idx)
    return out


def global_topk_oracle(indexes: list[LocalIndex], scorer, k: int) -> list[tuple[int, float]]:
    """Driver-side exact top-k by full scoring (test oracle).

    Ties in the relevance are broken by object id so the answer is
    deterministic.
    """
    ids = np.concatenate([ix.ids for ix in indexes])
    rows = np.vstack([ix.scores for ix in indexes])
    rel = scorer.apply_rows(rows)
    order = np.lexsort((ids, -rel))
    take = order[:k]
    return [(int(ids[t]), float(rel[t])) for t in take]
