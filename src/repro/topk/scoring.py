"""Monotone scoring functions for multicriteria top-k (Section 6).

Overall relevance is ``t(x_1, ..., x_m)``, monotone in every individual
score -- the property Fagin's threshold algorithm needs so that
``t`` evaluated at the current scan positions upper-bounds every
unscanned object.  We provide the standard aggregation families (sum,
weighted sum, min) with both scalar and vectorized (row-matrix)
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ScoringFunction", "SumScore", "WeightedSum", "MinScore"]


class ScoringFunction:
    """Base class: a monotone map from m per-criterion scores to one
    relevance value."""

    def __call__(self, x: np.ndarray) -> float:
        """Score of one object (``x``: vector of length m).

        Delegates to :meth:`apply_rows` so scalar and vectorized
        evaluation are bit-identical (the algorithms compare relevances
        computed through both paths).
        """
        return float(self.apply_rows(np.asarray(x, dtype=np.float64)[None, :])[0])

    def apply_rows(self, rows: np.ndarray) -> np.ndarray:
        """Scores of many objects (``rows``: matrix n x m), vectorized."""
        raise NotImplementedError

    @property
    def ops_per_eval(self) -> int:
        """Elementary operations for one evaluation (cost accounting)."""
        return 1


@dataclass(frozen=True)
class SumScore(ScoringFunction):
    """``t(x) = sum_i x_i`` -- the disjunctive-query aggregation."""

    m: int

    def apply_rows(self, rows: np.ndarray) -> np.ndarray:
        return rows.sum(axis=1)

    @property
    def ops_per_eval(self) -> int:
        return self.m


@dataclass(frozen=True)
class WeightedSum(ScoringFunction):
    """``t(x) = sum_i w_i x_i`` with non-negative weights (monotone)."""

    weights: tuple[float, ...]

    def __post_init__(self):
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative for monotonicity")

    def apply_rows(self, rows: np.ndarray) -> np.ndarray:
        # accumulate column by column (not BLAS matmul) so the result is
        # bit-identical regardless of how many rows are evaluated at once
        out = np.zeros(rows.shape[0], dtype=np.float64)
        for i, w in enumerate(self.weights):
            out += w * rows[:, i]
        return out

    @property
    def ops_per_eval(self) -> int:
        return len(self.weights)


@dataclass(frozen=True)
class MinScore(ScoringFunction):
    """``t(x) = min_i x_i`` -- conjunctive semantics."""

    m: int

    def apply_rows(self, rows: np.ndarray) -> np.ndarray:
        return rows.min(axis=1)

    @property
    def ops_per_eval(self) -> int:
        return self.m
