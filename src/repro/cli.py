"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Show the machine presets and package inventory.
``demo``
    A one-minute guided tour (selection, frequent objects, PQ).
``selftest``
    Fast end-to-end correctness pass against driver-side oracles.
``experiment <name> [...]``
    Run one of the paper-figure experiment drivers and print its table
    (same registry as ``benchmarks/run_all.py``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-efficient top-k selection (IPDPS 2016) "
        "on a simulated alpha-beta machine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .machine import available_backends

    backend_help = {
        "sim": "'sim' = modeled in-process (default)",
        "mp": "'mp' = one worker process per PE (real parallelism)",
        "tcp": "'tcp' = socket workers, multi-host via REPRO_TCP_HOSTS",
    }

    def add_backend_arg(p):
        names = available_backends()
        p.add_argument(
            "--backend",
            choices=names,
            default="sim",
            help="execution backend: " + ", ".join(
                backend_help.get(n, f"{n!r} (registered)") for n in names
            ),
        )

    sub.add_parser("info", help="machine presets and package inventory")

    demo = sub.add_parser("demo", help="guided tour of the core algorithms")
    demo.add_argument("-p", type=int, default=8, help="number of PEs")
    demo.add_argument("--seed", type=int, default=2016)
    add_backend_arg(demo)

    selftest = sub.add_parser("selftest", help="fast oracle-checked pass")
    selftest.add_argument("-p", type=int, default=8)
    add_backend_arg(selftest)

    exp = sub.add_parser("experiment", help="run a paper-figure experiment")
    exp.add_argument("name", help="experiment name (see `repro info`)")
    add_backend_arg(exp)

    serve = sub.add_parser(
        "serve",
        help="serve concurrent top-k/select/frequent queries over one "
        "resident worker pool (JSON lines over TCP)",
    )
    serve.add_argument("-p", type=int, default=4, help="number of PEs")
    add_backend_arg(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; the bound port is "
                       "printed as 'ready port=<n>')")
    serve.add_argument("--seed", type=int, default=2016)
    serve.add_argument("--dataset-size", type=int, default=100_000,
                       help="elements per stock dataset")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       help="admission window in seconds (0 disables "
                       "query fusion)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="max queries fused per batch")
    serve.add_argument("--pipeline-depth", type=int, default=None,
                       help="max SPMD commands in flight (1 = serial issue)")
    serve.add_argument("--command-timeout", type=float, default=None,
                       help="per-command deadline in seconds before a "
                       "non-answering pool raises WorkerFailure")
    serve.add_argument("--journal", action="store_true",
                       help="record chunk provenance so a broken pool is "
                       "rebuilt automatically (bit-identical restore)")
    serve.add_argument("--faults", default=None,
                       help="deterministic fault plan, e.g. 'kill@r1:s3' "
                       "(testing; also read from REPRO_FAULTS)")
    serve.add_argument("--query-deadline", type=float, default=None,
                       help="seconds a query may wait before it expires "
                       "(per-query 'deadline' field overrides)")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admission bound; beyond it submits fail fast "
                       "with an overloaded error")

    return parser


def _cmd_info() -> int:
    from .machine.calibrate import _PRESETS

    print("machine presets (alpha startup, beta per word, per-op):")
    for name, c in sorted(_PRESETS.items()):
        print(f"  {name:<20s} alpha={c.alpha:.2e}s beta={c.beta:.2e}s/word "
              f"op={c.time_per_op:.2e}s")
    from .machine import available_backends

    print("\nexecution backends (select with --backend):")
    print(f"  {', '.join(available_backends())}")
    print("\nexperiments (run with: repro experiment <name>):")
    from .bench import experiments as E

    for name in E.__all__:
        if name.startswith(("fig", "table", "selection", "priority",
                            "multicriteria", "sum", "redistribution",
                            "ablation", "collectives")):
            print(f"  {name}")
    return 0


def _cmd_demo(p: int, seed: int, backend: str = "sim") -> int:
    from .machine import DistArray, Machine
    from .frequent import top_k_frequent_pac
    from .pqueue import BulkParallelPQ
    from .selection import select_kth

    machine = Machine(p=p, seed=seed, backend=backend)
    print(f"[1/3] selection on {p} PEs ({backend} backend)")
    data = DistArray.generate(machine, lambda r, g: g.random(50_000))
    k = len(data) // 2
    median = select_kth(machine, data, k)
    print(f"      median of {len(data):,} values = {median:.6f} "
          f"(volume {machine.metrics.bottleneck_words:.0f} words/PE)")

    print(f"[2/3] top-8 frequent objects")
    from .common import zipf_sample

    machine.reset()
    keys = DistArray.generate(
        machine, lambda r, g: zipf_sample(g, 20_000, universe=1 << 12, s=1.1)
    )
    res = top_k_frequent_pac(machine, keys, 8, eps=2e-2, delta=1e-3)
    print(f"      {[(int(key), round(c)) for key, c in res.items[:4]]} ... "
          f"(rho={res.rho:.3f})")

    print(f"[3/3] bulk priority queue")
    machine.reset()
    pq = BulkParallelPQ(machine)
    pq.insert([machine.rngs[i].random(500) for i in range(p)])
    batch = pq.delete_min_flexible(32, 64)
    print(f"      deleteMin* -> k={batch.k} in {batch.rounds} round(s); "
          f"insertion traffic was {machine.metrics.by_kind.get('p2p', 0):.0f} words "
          f"(communication-free)")
    if machine.backend.is_real:
        print(f"      backend wall-clock: {machine.backend.wall_time:.3f}s")
    machine.close()
    return 0


def _cmd_selftest(p: int, backend: str = "sim") -> int:
    from .machine import DistArray, Machine
    from .frequent import exact_counts_oracle, top_k_frequent_exact
    from .selection import ms_select, select_kth

    failures = 0
    machine = Machine(p=p, seed=7, backend=backend)
    data = DistArray.generate(machine, lambda r, g: g.integers(0, 10**6, 2000))
    oracle = np.sort(data.concat())
    for k in (1, len(oracle) // 2, len(oracle)):
        got = select_kth(machine, data, k)
        ok = got == oracle[k - 1]
        failures += not ok
        print(f"  select_kth k={k:<8d} {'OK' if ok else 'FAIL'}")
    seqs = [np.sort(c) for c in data.chunks]
    got = ms_select(machine, seqs, 1234)
    ok = got == oracle[1233]
    failures += not ok
    print(f"  ms_select k=1234    {'OK' if ok else 'FAIL'}")
    keys = DistArray.generate(machine, lambda r, g: g.integers(0, 64, 5000))
    res = top_k_frequent_exact(machine, keys, 5)
    true = sorted(exact_counts_oracle(keys).items(), key=lambda t: (-t[1], t[0]))[:5]
    ok = [(key, int(c)) for key, c in res.items] == true
    failures += not ok
    print(f"  frequent exact      {'OK' if ok else 'FAIL'}")
    print("selftest:", "PASS" if failures == 0 else f"{failures} FAILURES")
    machine.close()
    return 1 if failures else 0


def _cmd_experiment(name: str, backend: str = "sim") -> int:
    from .bench import experiments as E
    from .bench import format_table

    if not hasattr(E, name):
        print(f"unknown experiment {name!r}; try `repro info`")
        return 2
    rows = getattr(E, name)(backend=backend)
    print(format_table(rows))
    return 0


def _cmd_serve(args) -> int:
    from .machine import Machine
    from .serve import QueryEngine, default_datasets
    from .serve.server import serve_forever

    machine = Machine(
        p=args.p, seed=args.seed, backend=args.backend,
        pipeline_depth=args.pipeline_depth,
        command_timeout=args.command_timeout,
        faults=args.faults, journal=args.journal,
    )
    datasets = default_datasets(machine, args.dataset_size)
    engine = QueryEngine(
        machine, datasets,
        batch_window=args.batch_window, max_batch=args.max_batch,
        max_queue=args.max_queue, query_deadline=args.query_deadline,
    )
    print(f"serving p={args.p} backend={args.backend} "
          f"datasets={sorted(datasets)} window={args.batch_window}s",
          flush=True)
    serve_forever(engine, host=args.host, port=args.port)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "demo":
        return _cmd_demo(args.p, args.seed, args.backend)
    if args.command == "selftest":
        return _cmd_selftest(args.p, args.backend)
    if args.command == "experiment":
        return _cmd_experiment(args.name, args.backend)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
