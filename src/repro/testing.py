"""Reusable test/driver helpers.

These used to live only in ``tests/conftest.py``, which test modules
cannot import reliably (pytest does not make the conftest importable as
a package module without ``__init__.py`` files).  Keeping them in the
package proper lets every test module -- and downstream users writing
their own oracles -- import them with a plain absolute import::

    from repro.testing import make_dist, sorted_oracle
"""

from __future__ import annotations

import numpy as np

from .machine import DistArray, Machine

__all__ = ["make_dist", "sorted_oracle"]


def sorted_oracle(data: DistArray) -> np.ndarray:
    """Global ascending sort of a distributed array (driver-side)."""
    return np.sort(data.concat())


def make_dist(
    machine: Machine,
    rng: np.random.Generator,
    n_per_pe: int,
    lo: int = 0,
    hi: int = 1_000_000,
) -> DistArray:
    """Uniform random integer workload: ``n_per_pe`` values per PE."""
    return DistArray(
        machine,
        [rng.integers(lo, hi, size=n_per_pe).astype(np.int64) for _ in range(machine.p)],
    )
