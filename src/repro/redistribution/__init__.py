"""Adaptive data redistribution (Section 9)."""

from .balance import (
    RedistributionStats,
    Transfer,
    balance_plan,
    naive_rebalance,
    redistribute,
)
from .batcher import (
    apply_network,
    levelize,
    merge_round_count,
    odd_even_merge_network,
    odd_even_mergesort_network,
)

__all__ = [
    "RedistributionStats",
    "Transfer",
    "apply_network",
    "balance_plan",
    "levelize",
    "merge_round_count",
    "naive_rebalance",
    "odd_even_merge_network",
    "odd_even_mergesort_network",
    "redistribute",
]
