"""Batcher's odd-even merge network [7] (Section 9's merging step).

Merging the two prefix-sum sequences (deficit slots and surplus
elements) is done with Batcher's parallel merge: a data-oblivious
network of compare-exchange operations of ``O(log n)`` parallel depth.
We expose

* :func:`odd_even_merge_network` / :func:`odd_even_mergesort_network` --
  the comparator lists (canonical Batcher recursion; power-of-two wire
  counts, as in the original construction),
* :func:`merge_sorted_pair` -- arbitrary-length merge via +inf padding,
* :func:`levelize` -- greedy grouping of a comparator list into rounds
  of disjoint pairs (the parallel schedule; its length is the
  ``alpha``-round count charged by the redistribution planner), and
* :func:`apply_network` -- an executor used by tests to verify the
  networks really merge/sort.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "odd_even_merge_network",
    "odd_even_mergesort_network",
    "merge_sorted_pair",
    "levelize",
    "apply_network",
    "merge_round_count",
]


def next_pow2(n: int) -> int:
    q = 1
    while q < n:
        q *= 2
    return q


def _check_pow2(n: int) -> None:
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError(f"Batcher networks need a power-of-two size, got {n}")


def odd_even_merge_network(n: int) -> list[tuple[int, int]]:
    """Comparators merging two sorted halves of ``0..n-1`` (Batcher).

    Precondition: positions ``[0, n/2)`` and ``[n/2, n)`` each hold a
    sorted run; afterwards the whole range is sorted.  ``n`` must be a
    power of two (pad with +inf otherwise, cf.
    :func:`merge_sorted_pair`).
    """
    _check_pow2(n)
    if n <= 1:
        return []
    pairs: list[tuple[int, int]] = []

    def merge(lo: int, span: int, r: int) -> None:
        step = r * 2
        if step < span:
            merge(lo, span, step)       # even subsequence
            merge(lo + r, span, step)   # odd subsequence
            i = lo + r
            while i + r < lo + span:
                pairs.append((i, i + r))
                i += step
        else:
            pairs.append((lo, lo + r))

    merge(0, n, 1)
    return pairs


def odd_even_mergesort_network(n: int) -> list[tuple[int, int]]:
    """Full Batcher odd-even merge-sort network on ``0..n-1`` wires
    (power of two)."""
    _check_pow2(n)
    if n <= 1:
        return []
    pairs: list[tuple[int, int]] = []

    def sort(lo: int, span: int) -> None:
        if span > 1:
            m = span // 2
            sort(lo, m)
            sort(lo + m, m)
            merge(lo, span, 1)

    def merge(lo: int, span: int, r: int) -> None:
        step = r * 2
        if step < span:
            merge(lo, span, step)
            merge(lo + r, span, step)
            i = lo + r
            while i + r < lo + span:
                pairs.append((i, i + r))
                i += step
        else:
            pairs.append((lo, lo + r))

    sort(0, n)
    return pairs


def merge_sorted_pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays with the odd-even network (any lengths).

    Pads each run with +inf up to the next power of two, runs the
    network, strips the padding.  Used by tests; the redistribution
    planner only needs the *round count* of this operation.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    half = next_pow2(max(len(a), len(b), 1))
    buf = np.full(2 * half, np.inf)
    buf[: len(a)] = a
    buf[half : half + len(b)] = b
    out = apply_network(buf, odd_even_merge_network(2 * half))
    return out[: len(a) + len(b)]


def levelize(pairs: list[tuple[int, int]]) -> list[list[tuple[int, int]]]:
    """Group a comparator sequence into rounds of disjoint pairs.

    Greedy ASAP scheduling: a comparator runs one round after the last
    earlier comparator sharing one of its wires.  For Batcher's merge
    this yields the textbook ``O(log n)`` depth.
    """
    last_round: dict[int, int] = {}
    rounds: list[list[tuple[int, int]]] = []
    for i, j in pairs:
        r = max(last_round.get(i, -1), last_round.get(j, -1)) + 1
        if r == len(rounds):
            rounds.append([])
        rounds[r].append((i, j))
        last_round[i] = r
        last_round[j] = r
    return rounds


def merge_round_count(n: int) -> int:
    """Parallel depth of the odd-even merge on ``n`` wires (padded up)."""
    return len(levelize(odd_even_merge_network(next_pow2(max(n, 2)))))


def apply_network(values: np.ndarray, pairs) -> np.ndarray:
    """Run a comparator list (or round list) over a copy of ``values``."""
    out = np.array(values, copy=True)
    flat = []
    for entry in pairs:
        if isinstance(entry, list):
            flat.extend(entry)
        else:
            flat.append(entry)
    for i, j in flat:
        if out[i] > out[j]:
            out[i], out[j] = out[j], out[i]
    return out
