"""Adaptive data redistribution (Section 9).

After a top-k selection the output may sit unevenly on the PEs.  The
paper's redistribution scheme moves the *minimum* amount of data so that
every PE ends with at most ``n_bar = ceil(n/p)`` elements, and PEs with
more than ``n_bar`` only *send* while PEs with less only *receive*:

1. compute per-PE surplus ``s_i = max(0, n_i - n_bar)`` and deficit
   ``d_i = max(0, n_bar - n_i)``;
2. prefix-sum both sequences -- ``s`` enumerates the elements to move,
   ``d`` enumerates the empty slots;
3. *merge* the two sequences (Batcher's parallel merge,
   ``O(alpha log p)``): a sender's surplus interval overlaps exactly the
   receivers whose deficit intervals it spans, turning the matching into
   segmented gather/scatter transfers.

Total time ``O(beta max_i n_i + alpha log p)``; crucially the moved
volume is ``sum_i s_i`` -- adaptive in the actual imbalance, unlike a
blind repartition (the :func:`naive_rebalance` comparator, which moves
data even when the layout is already acceptable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import DistArray, Machine
from .batcher import merge_round_count

__all__ = ["balance_plan", "redistribute", "naive_rebalance", "Transfer", "RedistributionStats"]


@dataclass(frozen=True)
class Transfer:
    """One planned message: ``count`` elements from ``src`` to ``dst``."""

    src: int
    dst: int
    count: int


@dataclass(frozen=True)
class RedistributionStats:
    """Diagnostics of one redistribution run."""

    moved: int
    transfers: int
    max_sent: int
    max_received: int
    merge_rounds: int


def balance_plan(sizes: np.ndarray, n_bar: int | None = None) -> list[Transfer]:
    """Match surpluses to deficits via the two prefix sums.

    Pure planning (no machine): returns the transfer list in
    (sender, receiver) order.  ``n_bar`` defaults to ``ceil(n/p)``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    p = sizes.size
    n = int(sizes.sum())
    if n_bar is None:
        n_bar = -(-n // p)  # ceil
    surplus = np.maximum(sizes - n_bar, 0)
    deficit = np.maximum(n_bar - sizes, 0)
    s_pref = np.concatenate([[0], np.cumsum(surplus)])
    d_pref = np.concatenate([[0], np.cumsum(deficit)])
    total_move = int(s_pref[-1])
    transfers: list[Transfer] = []
    if total_move == 0:
        return transfers
    # walk senders; for each, cover its surplus interval with receiver slots
    for j in range(p):
        lo, hi = int(s_pref[j]), int(s_pref[j + 1])
        if lo == hi:
            continue
        # receivers whose deficit interval intersects (lo, hi]
        first = int(np.searchsorted(d_pref, lo, side="right")) - 1
        i = max(first, 0)
        while lo < hi and i < p:
            r_lo, r_hi = int(d_pref[i]), int(d_pref[i + 1])
            take = min(hi, r_hi) - max(lo, r_lo)
            if take > 0:
                transfers.append(Transfer(j, i, take))
                lo += take
            i += 1
    return transfers


def redistribute(
    machine: Machine, data: DistArray, *, n_bar: int | None = None
) -> tuple[DistArray, RedistributionStats]:
    """Balance ``data`` so every PE holds at most ``ceil(n/p)`` elements.

    Senders part with their *tail* elements (the chunk order of kept
    elements is preserved); receivers append.  Returns the balanced
    array and movement statistics.  The prefix sums are real ``scan``
    collectives; the Batcher merge is charged as its round count times
    one constant-size exchange per PE.
    """
    p = machine.p
    sizes = data.sizes()
    n = int(machine.allreduce(list(sizes), op="sum")[0])
    if n_bar is None:
        n_bar = -(-n // p)

    # prefix sums over surpluses and deficits (two scans, or one
    # two-vector scan; we use one scan of a 2-vector for honesty)
    surplus = np.maximum(sizes - n_bar, 0)
    deficit = np.maximum(n_bar - sizes, 0)
    machine.scan(
        [np.array([surplus[i], deficit[i]], dtype=np.int64) for i in range(p)],
        op="sum",
    )
    # Batcher merge of the two enumerations: log p rounds of
    # constant-size compare-exchanges
    rounds = merge_round_count(2 * p)
    for _ in range(rounds):
        machine.clock.sync_collective(machine.cost.alpha + machine.cost.beta * 2.0)
    machine.metrics.by_kind["batcher_merge"] = (
        machine.metrics.by_kind.get("batcher_merge", 0.0) + 2.0 * rounds * p
    )
    machine.metrics.calls["batcher_merge"] = (
        machine.metrics.calls.get("batcher_merge", 0) + 1
    )

    plan = balance_plan(sizes, n_bar)

    # execute: senders ship tail slices, receivers append
    chunks = [np.asarray(c) for c in data.chunks]
    keep = list(chunks)
    outgoing: dict[int, list[np.ndarray]] = {}
    sent_ptr = {}
    for t in plan:
        if t.src not in sent_ptr:
            sent_ptr[t.src] = int(sizes[t.src])
        hi = sent_ptr[t.src]
        lo = hi - t.count
        payload = chunks[t.src][lo:hi]
        sent_ptr[t.src] = lo
        machine.send(t.src, t.dst, payload, kind="redistribute")
        outgoing.setdefault(t.dst, []).append(payload)
    new_chunks = []
    sent_per_pe = np.zeros(p, dtype=np.int64)
    recv_per_pe = np.zeros(p, dtype=np.int64)
    for t in plan:
        sent_per_pe[t.src] += t.count
        recv_per_pe[t.dst] += t.count
    for i in range(p):
        base = chunks[i][: int(sizes[i] - sent_per_pe[i])]
        extra = outgoing.get(i, [])
        new_chunks.append(np.concatenate([base] + extra) if extra else base)
    stats = RedistributionStats(
        moved=int(sent_per_pe.sum()),
        transfers=len(plan),
        max_sent=int(sent_per_pe.max(initial=0)),
        max_received=int(recv_per_pe.max(initial=0)),
        merge_rounds=rounds,
    )
    return DistArray(machine, new_chunks), stats


def naive_rebalance(machine: Machine, data: DistArray) -> tuple[DistArray, int]:
    """Blind repartition comparator: re-split the global order evenly.

    Every element whose contiguous-layout position falls on another PE
    moves; volume can approach ``n`` even for mild imbalance.  Used by
    ``benchmarks/bench_redistribution.py`` as the contrast to the
    adaptive scheme.
    """
    p = machine.p
    sizes = data.sizes()
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    target = np.array_split(np.arange(n), p)
    bounds = [(int(t[0]), int(t[-1]) + 1) if len(t) else (0, 0) for t in target]
    matrix: list[list] = [[None] * p for _ in range(p)]
    moved = 0
    for i in range(p):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        for j in range(p):
            t_lo, t_hi = bounds[j]
            a, b = max(lo, t_lo), min(hi, t_hi)
            if a < b:
                piece = data.chunks[i][a - lo : b - lo]
                if i != j:
                    moved += b - a
                matrix[i][j] = piece
    received = machine.alltoall(matrix, mode="direct")
    new_chunks = []
    for j in range(p):
        pieces = [x for x in received[j] if x is not None and len(x)]
        new_chunks.append(
            np.concatenate(pieces) if pieces else data.chunks[j][:0]
        )
    return DistArray(machine, new_chunks), moved
