"""Adaptive data redistribution (Section 9).

After a top-k selection the output may sit unevenly on the PEs.  The
paper's redistribution scheme moves the *minimum* amount of data so that
every PE ends with at most ``n_bar = ceil(n/p)`` elements, and PEs with
more than ``n_bar`` only *send* while PEs with less only *receive*:

1. compute per-PE surplus ``s_i = max(0, n_i - n_bar)`` and deficit
   ``d_i = max(0, n_bar - n_i)``;
2. prefix-sum both sequences -- ``s`` enumerates the elements to move,
   ``d`` enumerates the empty slots;
3. *merge* the two sequences (Batcher's parallel merge,
   ``O(alpha log p)``): a sender's surplus interval overlaps exactly the
   receivers whose deficit intervals it spans, turning the matching into
   segmented gather/scatter transfers.

Total time ``O(beta max_i n_i + alpha log p)``; crucially the moved
volume is ``sum_i s_i`` -- adaptive in the actual imbalance, unlike a
blind repartition (the :func:`naive_rebalance` comparator, which moves
data even when the layout is already acceptable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import DistArray, Machine
from .batcher import merge_round_count

__all__ = ["balance_plan", "redistribute", "naive_rebalance", "Transfer", "RedistributionStats"]


@dataclass(frozen=True)
class Transfer:
    """One planned message: ``count`` elements from ``src`` to ``dst``."""

    src: int
    dst: int
    count: int


@dataclass(frozen=True)
class RedistributionStats:
    """Diagnostics of one redistribution run."""

    moved: int
    transfers: int
    max_sent: int
    max_received: int
    merge_rounds: int


def balance_plan(sizes: np.ndarray, n_bar: int | None = None) -> list[Transfer]:
    """Match surpluses to deficits via the two prefix sums.

    Pure planning (no machine): returns the transfer list in
    (sender, receiver) order.  ``n_bar`` defaults to ``ceil(n/p)``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    p = sizes.size
    n = int(sizes.sum())
    if n_bar is None:
        n_bar = -(-n // p)  # ceil
    surplus = np.maximum(sizes - n_bar, 0)
    deficit = np.maximum(n_bar - sizes, 0)
    s_pref = np.concatenate([[0], np.cumsum(surplus)])
    d_pref = np.concatenate([[0], np.cumsum(deficit)])
    total_move = int(s_pref[-1])
    transfers: list[Transfer] = []
    if total_move == 0:
        return transfers
    # walk senders; for each, cover its surplus interval with receiver slots
    for j in range(p):
        lo, hi = int(s_pref[j]), int(s_pref[j + 1])
        if lo == hi:
            continue
        # receivers whose deficit interval intersects (lo, hi]
        first = int(np.searchsorted(d_pref, lo, side="right")) - 1
        i = max(first, 0)
        while lo < hi and i < p:
            r_lo, r_hi = int(d_pref[i]), int(d_pref[i + 1])
            take = min(hi, r_hi) - max(lo, r_lo)
            if take > 0:
                transfers.append(Transfer(j, i, take))
                lo += take
            i += 1
    return transfers


# ----------------------------------------------------------------------
# Resident worker kernels (module-level so real backends can ship them)
# ----------------------------------------------------------------------

def _redistribute_kernel(rank: int, chunk: np.ndarray, sends, srcs, p: int):
    """Execute this PE's side of the balance plan where the chunk lives.

    ``sends`` lists ``(dst, count)`` transfers in plan order (tail
    slices walk downward so kept elements keep their local order);
    ``srcs`` lists the senders this PE receives from.  The transfers
    ride one in-worker sparse direct exchange -- exactly the plan's p2p
    messages, each payload travelling a single hop, receivers appending
    in sender-rank order.  The chunk never visits the driver.
    """
    hi = chunk.size
    row: list = [None] * p
    for dst, count in sends:
        lo = hi - int(count)
        row[dst] = chunk[lo:hi]
        hi = lo
    received = yield ("sendrecv", row, srcs)
    base = chunk[:hi]
    pieces = [r for r in received if r is not None and r.size]
    new = np.concatenate([base] + pieces) if pieces else base
    return new, new.size


def _naive_rebalance_kernel(
    rank: int, chunk: np.ndarray, bounds, offset: int, srcs, p: int
):
    """Blind repartition, resident: slice by global target bounds and
    exchange worker-to-worker (direct delivery, like the driver-side
    ``alltoall(mode="direct")`` it replaces)."""
    row: list = [None] * p
    hi_off = offset + chunk.size
    for j, (t_lo, t_hi) in enumerate(bounds):
        a, b = max(offset, t_lo), min(hi_off, t_hi)
        if a < b:
            row[j] = chunk[a - offset : b - offset]
    received = yield ("sendrecv", row, srcs)
    pieces = [x for x in received if x is not None and len(x)]
    new = np.concatenate(pieces) if pieces else chunk[:0]
    return new, new.size


def redistribute(
    machine: Machine, data: DistArray, *, n_bar: int | None = None
) -> tuple[DistArray, RedistributionStats]:
    """Balance ``data`` so every PE holds at most ``ceil(n/p)`` elements.

    Senders part with their *tail* elements (the chunk order of kept
    elements is preserved); receivers append.  Returns the balanced
    array and movement statistics.

    The plan is computed from the driver-tracked resident sizes (a
    local quantity on every PE); the prefix sums and the Batcher merge
    are charged per the paper's schedule; the transfers themselves are
    charged as the plan's p2p messages and *execute worker-to-worker*
    as one resident SPMD exchange -- the moved elements never visit the
    driver, and the result is a new resident :class:`DistArray`.
    """
    p = machine.p
    sizes = data.sizes()
    # the global size falls out of the driver-tracked per-PE sizes; the
    # one-word all-reduction the algorithm semantically needs is still
    # charged so the model matches the paper's schedule
    machine._meter_allreduce(words=1)
    n = int(sizes.sum())
    if n_bar is None:
        n_bar = -(-n // p)

    # prefix sums over surpluses and deficits (two scans, or one
    # two-vector scan; we charge one scan of a 2-vector for honesty --
    # the plan itself falls out of the driver-tracked sizes)
    machine._meter_scan(2)
    # Batcher merge of the two enumerations: log p rounds of
    # constant-size compare-exchanges
    rounds = merge_round_count(2 * p)
    for _ in range(rounds):
        machine.clock.sync_collective(machine.cost.alpha + machine.cost.beta * 2.0)
    machine.metrics.charge("batcher_merge", 2.0 * rounds * p)

    plan = balance_plan(sizes, n_bar)
    sent_per_pe = np.zeros(p, dtype=np.int64)
    recv_per_pe = np.zeros(p, dtype=np.int64)
    for t in plan:
        # charge the planned message exactly as a driver-side send would
        machine.metrics.record_p2p(t.src, t.dst, t.count, kind="redistribute")
        machine.clock.charge_p2p(t.src, t.dst, machine.cost.p2p(t.count))
        sent_per_pe[t.src] += t.count
        recv_per_pe[t.dst] += t.count

    stats = RedistributionStats(
        moved=int(sent_per_pe.sum()),
        transfers=len(plan),
        max_sent=int(sent_per_pe.max(initial=0)),
        max_received=int(recv_per_pe.max(initial=0)),
        merge_rounds=rounds,
    )
    if not plan:  # already acceptable: nothing moves, nothing executes
        return (
            DistArray(machine, ref=data._ensure_ref(), sizes=sizes, dtype=data.dtype),
            stats,
        )

    sends: list[list] = [[] for _ in range(p)]
    srcs: list[list] = [[] for _ in range(p)]
    for t in plan:
        sends[t.src].append((t.dst, t.count))
        srcs[t.dst].append(t.src)
    refs, _ = machine.backend.run_spmd(
        _redistribute_kernel,
        [data._ensure_ref()],
        n_out=1,
        args=[(sends[i], srcs[i], p) for i in range(p)],
    )
    new_sizes = sizes - sent_per_pe + recv_per_pe
    return DistArray(machine, ref=refs[0], sizes=new_sizes, dtype=data.dtype), stats


def naive_rebalance(machine: Machine, data: DistArray) -> tuple[DistArray, int]:
    """Blind repartition comparator: re-split the global order evenly.

    Every element whose contiguous-layout position falls on another PE
    moves; volume can approach ``n`` even for mild imbalance.  Used by
    ``benchmarks/bench_redistribution.py`` as the contrast to the
    adaptive scheme.  Like :func:`redistribute`, the exchange executes
    worker-to-worker over resident chunks; the driver only derives the
    slice bounds from the tracked sizes and charges the alltoall model.
    """
    p = machine.p
    sizes = data.sizes()
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    target = np.array_split(np.arange(n), p)
    bounds = [(int(t[0]), int(t[-1]) + 1) if len(t) else (0, 0) for t in target]
    words = np.zeros((p, p), dtype=np.float64)
    moved = 0
    for i in range(p):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        for j in range(p):
            t_lo, t_hi = bounds[j]
            a, b = max(lo, t_lo), min(hi, t_hi)
            if a < b:
                words[i][j] = b - a
                if i != j:
                    moved += b - a
    srcs = [
        [i for i in range(p) if i != j and words[i][j] > 0] for j in range(p)
    ]
    refs, _ = machine.backend.run_spmd(
        _naive_rebalance_kernel,
        [data._ensure_ref()],
        n_out=1,
        args=[(bounds, int(offsets[i]), srcs[i], p) for i in range(p)],
    )
    machine._meter_alltoall(words, mode="direct")
    new_sizes = [hi - lo for lo, hi in bounds]
    return (
        DistArray(machine, ref=refs[0], sizes=new_sizes, dtype=data.dtype),
        moved,
    )
