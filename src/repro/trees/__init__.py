"""Search-tree data structures (Section 2 / Section 5 substrate)."""

from .treap import Treap

__all__ = ["Treap"]
