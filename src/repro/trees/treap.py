"""Size-augmented search tree (treap) -- the Section 5 substrate.

The bulk-parallel priority queue replaces each PE's binary heap by a
search tree supporting, in logarithmic time:

* ``insert`` / ``delete`` of a key,
* ``select(i)`` -- the i-th smallest key (0-based),
* ``rank(x)`` -- number of keys strictly smaller than ``x``
  (``count_le`` gives the <=-variant used for pivot counting),
* ``split`` / ``join`` -- used to peel off the ``deleteMin*`` prefix,

exactly the operation set listed in Section 2 ("Search trees").  The
paper additionally augments the tree with the root-to-min/max paths so
operations touching only the smallest ``k`` keys cost ``O(log k)``
instead of ``O(log n)``; we keep cached min/max keys (enough for the
simulation's correctness) and expose :meth:`Treap.access_cost` so
callers can charge the ``O(log min(k, n))`` bound of the paper.

Keys may be any totally ordered Python values; the priority queue uses
``(score, uid)`` tuples so that ordering is unique (Section 2 assumes
ties are broken by object identity).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional

import numpy as np

__all__ = ["Treap"]


class _Node:
    __slots__ = ("key", "prio", "size", "left", "right")

    def __init__(self, key, prio: float):
        self.key = key
        self.prio = prio
        self.size = 1
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    def update(self) -> "_Node":
        self.size = 1 + _size(self.left) + _size(self.right)
        return self


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _merge(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    """Join two treaps; every key in ``a`` must precede every key in ``b``."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio > b.prio:
        a.right = _merge(a.right, b)
        return a.update()
    b.left = _merge(a, b.left)
    return b.update()


def _split_lt(node: Optional[_Node], key) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split into (keys < key, keys >= key)."""
    if node is None:
        return None, None
    if node.key < key:
        left, right = _split_lt(node.right, key)
        node.right = left
        return node.update(), right
    left, right = _split_lt(node.left, key)
    node.left = right
    return left, node.update()


def _split_le(node: Optional[_Node], key) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split into (keys <= key, keys > key)."""
    if node is None:
        return None, None
    if key < node.key:
        left, right = _split_le(node.left, key)
        node.left = right
        return left, node.update()
    left, right = _split_le(node.right, key)
    node.right = left
    return node.update(), right


def _split_rank(node: Optional[_Node], i: int) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split into (first i keys, the rest)."""
    if node is None:
        return None, None
    ls = _size(node.left)
    if i <= ls:
        left, right = _split_rank(node.left, i)
        node.left = right
        return left, node.update()
    left, right = _split_rank(node.right, i - ls - 1)
    node.right = left
    return node.update(), right


class Treap:
    """Ordered multiset with order statistics, split and join.

    Duplicate keys are allowed; ``rank``/``count_le`` treat them with
    strict/non-strict comparisons respectively.  All mutating bulk
    operations (:meth:`split_at_rank`, :meth:`split_at_key`,
    :meth:`concat`) are destructive, matching the paper's usage where a
    ``deleteMin*`` splits the local tree and the algorithm reassembles
    state explicitly.
    """

    def __init__(self, rng: np.random.Generator | None = None):
        self._root: Optional[_Node] = None
        self._rng = rng if rng is not None else np.random.default_rng(0x7EA9)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted(cls, keys: Iterable, rng: np.random.Generator | None = None) -> "Treap":
        """Build from already-sorted keys in O(n).

        A perfectly balanced BST is built by midpoint recursion; heap
        priorities are assigned level-wise from a sorted draw so the
        treap invariant (parent priority > child priority) holds.
        """
        t = cls(rng)
        keys = list(keys)
        for a, b in zip(keys, keys[1:]):
            if b < a:
                raise ValueError("from_sorted requires non-decreasing keys")
        n = len(keys)
        if n == 0:
            return t
        prios = np.sort(t._rng.random(n))[::-1]  # descending
        # assign priorities in BFS order so every parent outranks its children
        t._root = t._build_bfs(keys, prios)
        return t

    def _build_bfs(self, keys: list, prios: np.ndarray) -> Optional[_Node]:
        """Balanced build with BFS-ordered priorities (largest at root)."""
        n = len(keys)
        if n == 0:
            return None
        # collect (depth, lo, hi) ranges breadth-first; assign priorities
        # in that order so every parent precedes its children
        import collections

        nodes: dict[tuple[int, int], _Node] = {}
        order: list[tuple[int, int]] = []
        q = collections.deque([(0, n)])
        while q:
            lo, hi = q.popleft()
            if lo >= hi:
                continue
            order.append((lo, hi))
            mid = (lo + hi) // 2
            q.append((lo, mid))
            q.append((mid + 1, hi))
        for rank_, (lo, hi) in enumerate(order):
            mid = (lo + hi) // 2
            nodes[(lo, hi)] = _Node(keys[mid], float(prios[rank_]))

        def link(lo: int, hi: int) -> Optional[_Node]:
            if lo >= hi:
                return None
            node = nodes[(lo, hi)]
            mid = (lo + hi) // 2
            node.left = link(lo, mid)
            node.right = link(mid + 1, hi)
            return node.update()

        return link(0, n)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __iter__(self) -> Iterator:
        """In-order (ascending) iteration, non-recursive."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    def to_list(self) -> list:
        return list(self)

    def min(self):
        """Smallest key; raises on empty tree."""
        node = self._require_root()
        while node.left is not None:
            node = node.left
        return node.key

    def max(self):
        """Largest key; raises on empty tree."""
        node = self._require_root()
        while node.right is not None:
            node = node.right
        return node.key

    def _require_root(self) -> _Node:
        if self._root is None:
            raise IndexError("operation on empty Treap")
        return self._root

    def __contains__(self, key) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    # ------------------------------------------------------------------
    # Order statistics
    # ------------------------------------------------------------------
    def select(self, i: int):
        """The ``i``-th smallest key, 0-based (the paper's ``T[i]``)."""
        n = len(self)
        if not 0 <= i < n:
            raise IndexError(f"select index {i} out of range for size {n}")
        node = self._root
        while True:
            ls = _size(node.left)
            if i < ls:
                node = node.left
            elif i == ls:
                return node.key
            else:
                i -= ls + 1
                node = node.right

    def rank(self, key) -> int:
        """Number of keys strictly smaller than ``key``."""
        node = self._root
        r = 0
        while node is not None:
            if key <= node.key:
                node = node.left
            else:
                r += _size(node.left) + 1
                node = node.right
        return r

    def count_le(self, key) -> int:
        """Number of keys ``<= key`` (the paper's ``T.rank(x)``)."""
        node = self._root
        r = 0
        while node is not None:
            if key < node.key:
                node = node.left
            else:
                r += _size(node.left) + 1
                node = node.right
        return r

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key) -> None:
        """Insert ``key`` (duplicates allowed)."""
        left, right = _split_le(self._root, key)
        node = _Node(key, float(self._rng.random()))
        self._root = _merge(_merge(left, node), right)

    def insert_many(self, keys: Iterable) -> None:
        for key in keys:
            self.insert(key)

    def insert_batch(self, scores, rank: int, first_uid: int) -> None:
        """Bulk-insert contiguously-numbered ``(score, (rank, uid))``
        keys (the priority queue's flush path; one priority draw per
        key, same as :meth:`insert`)."""
        uid = int(first_uid)
        for s in scores:
            self.insert((float(s), (int(rank), uid)))
            uid += 1

    def delete(self, key) -> bool:
        """Delete one occurrence of ``key``; returns whether it existed."""
        left, rest = _split_lt(self._root, key)
        mid, right = _split_le(rest, key)
        if mid is None:
            self._root = _merge(left, right)
            return False
        # drop one element (the root-path minimum of mid works, but any
        # single occurrence is equivalent since all keys in mid == key)
        drop_one, remainder = _split_rank(mid, 1)
        self._root = _merge(_merge(left, remainder), right)
        return True

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def split_at_rank(self, i: int) -> "Treap":
        """Destructively remove and return the ``i`` smallest keys."""
        if i < 0:
            raise ValueError(f"split size must be >= 0, got {i}")
        i = min(i, len(self))
        left, right = _split_rank(self._root, i)
        self._root = right
        out = Treap(self._rng)
        out._root = left
        return out

    def split_at_key(self, key) -> "Treap":
        """Destructively remove and return all keys ``<= key``."""
        left, right = _split_le(self._root, key)
        self._root = right
        out = Treap(self._rng)
        out._root = left
        return out

    def concat(self, other: "Treap") -> None:
        """Append ``other`` (all keys must be >= our max); destructive."""
        if self._root is not None and other._root is not None:
            if other.min() < self.max():
                raise ValueError("concat requires disjoint, ordered key ranges")
        self._root = _merge(self._root, other._root)
        other._root = None

    # ------------------------------------------------------------------
    # Cost accounting hook
    # ------------------------------------------------------------------
    def access_cost(self, k: int | None = None) -> float:
        """Modeled operation cost in elementary ops: ``O(log min(k, n))``.

        With the paper's min/max-path augmentation, operations that only
        touch the smallest ``k`` elements cost ``O(log k)``; callers pass
        the relevant ``k`` to charge that bound.
        """
        n = max(len(self), 2)
        if k is not None:
            n = max(2, min(n, int(k)))
        return math.log2(n)

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert BST order, heap priorities and size augmentation."""

        def rec(node: Optional[_Node]) -> tuple[int, object, object]:
            if node is None:
                return 0, None, None
            lsz, lmin, lmax = rec(node.left)
            rsz, rmin, rmax = rec(node.right)
            if node.left is not None:
                assert not (node.key < lmax), "BST order violated (left)"
                assert node.prio >= node.left.prio, "heap order violated (left)"
            if node.right is not None:
                assert not (rmin < node.key), "BST order violated (right)"
                assert node.prio >= node.right.prio, "heap order violated (right)"
            assert node.size == lsz + rsz + 1, "size augmentation stale"
            return (
                node.size,
                lmin if node.left is not None else node.key,
                rmax if node.right is not None else node.key,
            )

        rec(self._root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Treap(n={len(self)})"
