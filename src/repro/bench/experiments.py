"""Experiment drivers: one function per paper table/figure.

Each driver returns :class:`~repro.bench.harness.BenchRow` lists that
regenerate the corresponding series of the paper's evaluation
(Section 10) on the simulated machine.  ``benchmarks/bench_*.py`` wraps
these for pytest-benchmark; ``benchmarks/run_all.py`` prints every table
at once; EXPERIMENTS.md records paper-vs-measured.

Scaling defaults are chosen so a full sweep runs in seconds while the
communication regime matches the paper's (sampling rates < 1, see the
per-driver notes).
"""

from __future__ import annotations

import numpy as np

from ..aggregation import exact_sums_oracle, top_k_sums_ec, top_k_sums_pac
from ..frequent import (
    top_k_frequent_ec,
    top_k_frequent_naive,
    top_k_frequent_naive_tree,
    top_k_frequent_pac,
)
from ..machine import DistArray, Machine
from ..pqueue import BulkParallelPQ, RandomAllocPQ
from ..redistribution import naive_rebalance, redistribute
from ..selection import (
    ams_select,
    ams_select_batched,
    ms_select,
    select_kth,
)
from ..topk import SumScore, dta_topk, rdta_topk, ta_topk
from ..topk.index import LocalIndex
from .harness import BenchRow, run_algorithm, weak_scaling
from .workloads import (
    multicriteria_workload,
    selection_workload,
    skewed_sizes_workload,
    sum_workload,
    zipf_keys_workload,
)

__all__ = [
    "fig6_unsorted_selection",
    "fig7_topk_frequent",
    "fig8_strict_accuracy",
    "table1_comm_volume",
    "selection_latency",
    "priority_queue_comparison",
    "multicriteria_comparison",
    "sum_aggregation_comparison",
    "redistribution_comparison",
    "ablation_ams_trials",
    "ablation_ec_kstar",
    "ablation_selection_sampling",
    "collectives_microbench",
    "DEFAULT_P_LIST",
]

DEFAULT_P_LIST = (1, 2, 4, 8, 16, 32, 64)


# ----------------------------------------------------------------------
# Figure 6: weak scaling of unsorted selection
# ----------------------------------------------------------------------

def fig6_unsorted_selection(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = 1 << 14,
    ks=(1 << 6, 1 << 10, 1 << 14),
    seed: int = 6,
    backend: str = "sim",
) -> list[BenchRow]:
    """Select the k-th *largest* element of the Section 10.1 workload.

    Paper: n/p = 2^28, k in {2^10, 2^20, 2^26}; scaled here by 2^-14
    with the same Zipf-high-tail inputs (randomized per-PE universe and
    exponent).  Expected shape: near-flat modeled time dominated by the
    local partitioning work, slightly *decreasing* for large k.
    """
    rows: list[BenchRow] = []
    for k in ks:
        def run(machine: Machine, data: DistArray, k=k):
            k_eff = min(k, data.global_size)
            value = select_kth(machine, data.negate(), k_eff)
            return {"k": k_eff, "value": -value}

        rows += weak_scaling(
            "fig6",
            {f"select k={k}": run},
            p_list,
            n_per_pe,
            lambda m: selection_workload(m, n_per_pe),
            seed=seed, backend=backend,
        )
    return rows


# ----------------------------------------------------------------------
# Figures 7 & 8: top-k most frequent objects, weak scaling
# ----------------------------------------------------------------------

def _frequent_algorithms(k: int, eps: float, delta: float):
    return {
        "PAC": lambda m, d: _freq_extra(top_k_frequent_pac(m, d, k, eps, delta)),
        "EC": lambda m, d: _freq_extra(top_k_frequent_ec(m, d, k, eps, delta)),
        "Naive": lambda m, d: _freq_extra(top_k_frequent_naive(m, d, k, eps, delta)),
        "NaiveTree": lambda m, d: _freq_extra(
            top_k_frequent_naive_tree(m, d, k, eps, delta)
        ),
    }


def _freq_extra(res):
    return {"rho": res.rho, "sample_size": res.sample_size, "k_star": res.k_star}


def fig7_topk_frequent(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = 1 << 16,
    k: int = 32,
    eps: float = 2e-2,
    delta: float = 1e-4,
    universe: int = 1 << 14,
    seed: int = 7,
    backend: str = "sim",
) -> list[BenchRow]:
    """Figure 7: PAC / EC / Naive / Naive-Tree on Zipfian keys.

    Paper: n/p = 2^26 and 2^28, eps = 3e-4, universe 2^20.  Scaled so
    the PAC sampling rate sits below 1 (the paper's regime): expected
    shape -- Naive time grows ~linearly in p, Naive-Tree flat-ish but
    above PAC, PAC scales best, EC pays a constant exact-counting
    overhead (wins only under Figure 8's strict accuracy).
    """
    return weak_scaling(
        "fig7",
        _frequent_algorithms(k, eps, delta),
        p_list,
        n_per_pe,
        lambda m: zipf_keys_workload(m, n_per_pe, universe=universe, s=1.0),
        seed=seed, backend=backend,
    )


def fig8_strict_accuracy(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = 1 << 16,
    k: int = 32,
    eps: float = 1e-3,
    delta: float = 1e-8,
    universe: int = 1 << 14,
    seed: int = 8,
    backend: str = "sim",
) -> list[BenchRow]:
    """Figure 8: strict accuracy (paper: eps=1e-6, delta=1e-8).

    At this accuracy PAC/Naive/Naive-Tree must effectively consider the
    whole input (sampling rate hits 1), while EC's linear-in-1/eps
    sample stays small: EC should be the consistent winner.
    """
    return weak_scaling(
        "fig8",
        _frequent_algorithms(k, eps, delta),
        p_list,
        n_per_pe,
        lambda m: zipf_keys_workload(m, n_per_pe, universe=universe, s=1.0),
        seed=seed, backend=backend,
    )


# ----------------------------------------------------------------------
# Table 1: communication volume, old vs new, per problem
# ----------------------------------------------------------------------

def table1_comm_volume(
    p: int = 16,
    n_per_pe: int = 1 << 14,
    k: int = 256,
    seed: int = 1,
    backend: str = "sim",
) -> list[BenchRow]:
    """Measured bottleneck volume/startups for each Table 1 row.

    "old" rows implement the pre-paper approach (random redistribution,
    element-moving queues, master-worker gathers); "new" rows are this
    package's algorithms.  The measured gap reproduces the old/new
    columns of Table 1.
    """
    rows: list[BenchRow] = []

    # --- unsorted selection: old = randomly redistribute, then select
    def old_selection(machine: Machine, data: DistArray):
        p_ = machine.p
        matrix = [
            [None] * p_ for _ in range(p_)
        ]
        for i, c in enumerate(data.chunks):
            dest = machine.rngs[i].integers(0, p_, size=c.size)
            for j in range(p_):
                piece = c[dest == j]
                matrix[i][j] = piece if piece.size else None
        received = machine.alltoall(matrix, mode="direct")
        chunks = [
            np.concatenate([x for x in received[j] if x is not None])
            if any(x is not None for x in received[j])
            else data.chunks[j][:0]
            for j in range(p_)
        ]
        shuffled = DistArray(machine, chunks)
        select_kth(machine, shuffled, k)
        return {}

    def new_selection(machine: Machine, data: DistArray):
        select_kth(machine, data, k)
        return {}

    make_sel = lambda m: selection_workload(m, n_per_pe)
    rows.append(run_algorithm("table1", "unsorted-selection/old", p, n_per_pe, make_sel, old_selection, seed=seed, backend=backend))
    rows.append(run_algorithm("table1", "unsorted-selection/new", p, n_per_pe, make_sel, new_selection, seed=seed, backend=backend))

    # --- sorted selection: exact msSelect (old: alpha log^2 kp) vs
    #     flexible amsSelect (new: alpha log kp)
    def make_sorted(m: Machine):
        return [np.sort(m.rngs[i].random(n_per_pe)) for i in range(m.p)]

    rows.append(run_algorithm(
        "table1", "sorted-selection/old", p, n_per_pe, make_sorted,
        lambda m, seqs: {"rounds": ms_select(m, seqs, k, return_stats=True).rounds},
        seed=seed, backend=backend,
    ))
    rows.append(run_algorithm(
        "table1", "sorted-selection/new", p, n_per_pe, make_sorted,
        lambda m, seqs: {"rounds": ams_select(m, seqs, k, 2 * k).rounds},
        seed=seed, backend=backend,
    ))

    # --- bulk priority queue: insert* + deleteMin* cycles
    def pq_cycles(queue_cls):
        def run(machine: Machine, _):
            q = queue_cls(machine)
            for it in range(4):
                q.insert([machine.rngs[i].random(k) for i in range(machine.p)])
                if isinstance(q, BulkParallelPQ):
                    q.delete_min_flexible(k // 2, k)
                else:
                    q.delete_min(k // 2)
            return {}

        return run

    rows.append(run_algorithm("table1", "priority-queue/old", p, n_per_pe, lambda m: None, pq_cycles(RandomAllocPQ), seed=seed, backend=backend))
    rows.append(run_algorithm("table1", "priority-queue/new", p, n_per_pe, lambda m: None, pq_cycles(BulkParallelPQ), seed=seed, backend=backend))

    # --- top-k most frequent: master-worker (old [3]-style) vs PAC
    make_freq = lambda m: zipf_keys_workload(m, n_per_pe, universe=1 << 12, s=1.0)
    rows.append(run_algorithm(
        "table1", "topk-frequent/old", p, n_per_pe, make_freq,
        lambda m, d: _freq_extra(top_k_frequent_naive(m, d, 32, 2e-2, 1e-4)), seed=seed, backend=backend,
    ))
    rows.append(run_algorithm(
        "table1", "topk-frequent/new", p, n_per_pe, make_freq,
        lambda m, d: _freq_extra(top_k_frequent_pac(m, d, 32, 2e-2, 1e-4)), seed=seed, backend=backend,
    ))

    # --- top-k sum aggregation: centralized gather (old) vs sampled (new)
    make_sum = lambda m: sum_workload(m, n_per_pe, universe=1 << 12)

    def old_sum(machine: Machine, kv):
        local = []
        for i in range(machine.p):
            uniq, sums = kv.local_aggregate(i)
            local.append({int(key): float(s) for key, s in zip(uniq, sums)})
        gathered = machine.gather(local, root=0, mode="direct")[0]
        merged: dict = {}
        for d in gathered:
            # repro-lint: disable=RL002 -- re-keyed merge over per-PE dicts; gathered is in PE order and the result is key-sorted before broadcast
            for key, v in d.items():
                merged[key] = merged.get(key, 0.0) + v
        machine.charge_ops_one(0, sum(len(d) for d in gathered))
        top = sorted(merged.items(), key=lambda t: (-t[1], t[0]))[:32]
        machine.broadcast(top, root=0)
        return {}

    rows.append(run_algorithm("table1", "sum-aggregation/old", p, n_per_pe, make_sum, old_sum, seed=seed, backend=backend))
    rows.append(run_algorithm(
        "table1", "sum-aggregation/new", p, n_per_pe, make_sum,
        lambda m, kv: {"k_star": top_k_sums_ec(m, kv, 32, 2e-2, 1e-4).k_star}, seed=seed, backend=backend,
    ))

    # --- multicriteria: DTA (no directly comparable "old" in our model;
    #     the paper's competitors limit p <= m).  We report DTA's cost.
    make_mc = lambda m: multicriteria_workload(m, max(256, n_per_pe // 16), 4)
    rows.append(run_algorithm(
        "table1", "multicriteria/new", p, n_per_pe, make_mc,
        lambda m, idx: {"K": dta_topk(m, idx, SumScore(4), 32).prefixes.scanned},
        seed=seed, backend=backend,
    ))
    return rows


# ----------------------------------------------------------------------
# Selection latency: exact vs flexible vs batched (Table 1 rows 2-3)
# ----------------------------------------------------------------------

def selection_latency(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = 1 << 14,
    k: int = 1 << 10,
    seed: int = 2,
    backend: str = "sim",
) -> list[BenchRow]:
    """Startup (alpha) counts: msSelect O(log^2 kp) vs amsSelect
    O(log kp) vs the d-trial batched variant."""

    def make(m: Machine):
        return [np.sort(m.rngs[i].random(n_per_pe)) for i in range(m.p)]

    algos = {
        "msSelect(exact)": lambda m, s: {
            "rounds": ms_select(m, s, k, return_stats=True).rounds
        },
        "amsSelect(flex)": lambda m, s: {"rounds": ams_select(m, s, k, 2 * k).rounds},
        "amsSelect(d=8)": lambda m, s: {
            "rounds": ams_select_batched(m, s, k, 2 * k, d=8).rounds
        },
    }
    return weak_scaling("selection-latency", algos, p_list, n_per_pe, make, seed=seed, backend=backend)


# ----------------------------------------------------------------------
# Bulk priority queue vs random allocation
# ----------------------------------------------------------------------

def priority_queue_comparison(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = 1 << 10,
    batch: int = 256,
    iterations: int = 6,
    seed: int = 3,
    backend: str = "sim",
) -> list[BenchRow]:
    """insert* + deleteMin* cycles: communication-free insertions vs
    random-allocation element movement."""

    def run_bulk(machine: Machine, _):
        q = BulkParallelPQ(machine)
        for _ in range(iterations):
            q.insert([machine.rngs[i].random(batch) for i in range(machine.p)])
            q.delete_min_flexible(max(1, batch // 2), batch)
        return {}

    def run_kz(machine: Machine, _):
        q = RandomAllocPQ(machine)
        for _ in range(iterations):
            q.insert([machine.rngs[i].random(batch) for i in range(machine.p)])
            q.delete_min(max(1, batch // 2))
        return {}

    algos = {"BulkPQ(ours)": run_bulk, "RandomAlloc(KZ)": run_kz}
    return weak_scaling("priority-queue", algos, p_list, n_per_pe, lambda m: None, seed=seed, backend=backend)


# ----------------------------------------------------------------------
# Multicriteria top-k
# ----------------------------------------------------------------------

def multicriteria_comparison(
    p_list=(2, 4, 8, 16, 32),
    n_per_pe: int = 1 << 10,
    m_criteria: int = 4,
    k: int = 32,
    seed: int = 4,
    backend: str = "sim",
) -> list[BenchRow]:
    """DTA vs RDTA (random placement) plus the sequential TA scan depth
    as the work reference."""

    scorer = SumScore(m_criteria)

    def run_dta(machine: Machine, idx):
        res = dta_topk(machine, idx, scorer, k)
        return {"K": res.prefixes.scanned, "search_rounds": res.prefixes.rounds}

    def run_rdta(machine: Machine, idx):
        res = rdta_topk(machine, idx, scorer, k)
        return {"rounds": res.rounds, "k_hat": res.k_hat_final}

    def run_seq(machine: Machine, idx):
        # sequential reference: one PE scans a merged index
        merged = LocalIndex(
            np.concatenate([ix.ids for ix in idx]),
            np.vstack([ix.scores for ix in idx]),
        )
        res = ta_topk(merged, scorer, k)
        machine.charge_ops_one(
            0, res.scan_depth * m_criteria * scorer.ops_per_eval
        )
        return {"K": res.scan_depth}

    algos = {"DTA": run_dta, "RDTA": run_rdta, "TA(sequential)": run_seq}
    return weak_scaling(
        "multicriteria",
        algos,
        p_list,
        n_per_pe,
        lambda m: multicriteria_workload(m, n_per_pe, m_criteria),
        seed=seed, backend=backend,
    )


# ----------------------------------------------------------------------
# Sum aggregation
# ----------------------------------------------------------------------

def sum_aggregation_comparison(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = 1 << 14,
    k: int = 32,
    eps: float = 2e-2,
    delta: float = 1e-4,
    seed: int = 5,
    backend: str = "sim",
) -> list[BenchRow]:
    """PAC-sum vs EC-sum (Theorem 15 vs the exact-sum refinement)."""

    algos = {
        "SumPAC": lambda m, kv: {
            "sample": top_k_sums_pac(m, kv, k, eps, delta).sample_size
        },
        "SumEC": lambda m, kv: {
            "k_star": top_k_sums_ec(m, kv, k, eps, delta).k_star
        },
    }
    return weak_scaling(
        "sum-aggregation",
        algos,
        p_list,
        n_per_pe,
        lambda m: sum_workload(m, n_per_pe),
        seed=seed, backend=backend,
    )


# ----------------------------------------------------------------------
# Data redistribution
# ----------------------------------------------------------------------

def redistribution_comparison(
    p: int = 32,
    n_total: int = 1 << 16,
    kinds=("point", "ramp", "random", "balanced"),
    seed: int = 9,
    backend: str = "sim",
) -> list[BenchRow]:
    """Adaptive (Section 9) vs blind repartition, across imbalance
    shapes.  The adaptive scheme's volume tracks the actual surplus
    (zero for balanced input); the naive one's does not."""
    rows: list[BenchRow] = []
    for kind in kinds:
        def run_adaptive(machine: Machine, data: DistArray):
            out, stats = redistribute(machine, data)
            assert out.global_size == data.global_size
            return {"moved": stats.moved, "kind": kind}

        def run_naive(machine: Machine, data: DistArray):
            out, moved = naive_rebalance(machine, data)
            assert out.global_size == data.global_size
            return {"moved": moved, "kind": kind}

        make = lambda m, kind=kind: skewed_sizes_workload(m, n_total, kind)
        rows.append(run_algorithm("redistribution", f"adaptive/{kind}", p, n_total // p, make, run_adaptive, seed=seed, backend=backend))
        rows.append(run_algorithm("redistribution", f"naive/{kind}", p, n_total // p, make, run_naive, seed=seed, backend=backend))
    return rows


# ----------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# ----------------------------------------------------------------------

def ablation_ams_trials(
    p: int = 32,
    n_per_pe: int = 1 << 14,
    k: int = 1 << 12,
    width_divisors=(1, 4, 16, 64),
    ds=(1, 2, 4, 8, 16),
    trials: int = 20,
    seed: int = 10,
    backend: str = "sim",
) -> list[BenchRow]:
    """Theorem 4 knob: expected rounds vs number of concurrent trials d,
    for shrinking flexibility windows ``k_hi - k_lo = k / divisor``."""
    rows: list[BenchRow] = []
    for div in width_divisors:
        k_lo = k
        k_hi = k + max(1, k // div)
        for d in ds:
            def run(machine: Machine, seqs, d=d, k_lo=k_lo, k_hi=k_hi):
                total_rounds = 0
                for _ in range(trials):
                    if d == 1:
                        res = ams_select(machine, seqs, k_lo, k_hi)
                    else:
                        res = ams_select_batched(machine, seqs, k_lo, k_hi, d=d)
                    total_rounds += res.rounds
                return {"d": d, "width_div": div, "avg_rounds": total_rounds / trials}

            rows.append(run_algorithm(
                "ablation-ams", f"d={d}/width=k/{div}", p, n_per_pe,
                lambda m: [np.sort(m.rngs[i].random(n_per_pe)) for i in range(m.p)],
                run, seed=seed, backend=backend,
            ))
    return rows


def ablation_ec_kstar(
    p: int = 32,
    n_per_pe: int = 1 << 16,
    k: int = 32,
    eps: float = 5e-3,
    delta: float = 1e-4,
    factors=(1, 4, 16, 64, 256),
    seed: int = 11,
    backend: str = "sim",
) -> list[BenchRow]:
    """Theorem 11 knob: candidate count k* trades sample volume against
    candidate-broadcast volume; the optimum lies between the extremes."""
    rows: list[BenchRow] = []
    make = lambda m: zipf_keys_workload(m, n_per_pe, universe=1 << 14, s=1.0)
    for f in factors:
        def run(machine: Machine, data: DistArray, f=f):
            res = top_k_frequent_ec(machine, data, k, eps, delta, k_star=k * f)
            return {"k_star": res.k_star, "rho": res.rho, "sample": res.sample_size}

        rows.append(run_algorithm("ablation-ec", f"k*={k * f}", p, n_per_pe, make, run, seed=seed, backend=backend))
    return rows


def ablation_selection_sampling(
    p: int = 32,
    n_per_pe: int = 1 << 14,
    k: int = 1 << 10,
    factors=(0.25, 1.0, 4.0, 16.0),
    seed: int = 12,
    backend: str = "sim",
) -> list[BenchRow]:
    """Theorem 1 knob: Bernoulli rate multiplier vs recursion depth and
    per-level sample volume in unsorted selection."""
    rows: list[BenchRow] = []
    make = lambda m: selection_workload(m, n_per_pe)
    for f in factors:
        def run(machine: Machine, data: DistArray, f=f):
            stats = select_kth(machine, data, k, sample_factor=f, return_stats=True)
            return {"factor": f, "rounds": stats.rounds, "sampled": stats.sample_total}

        rows.append(run_algorithm("ablation-sampling", f"factor={f}", p, n_per_pe, make, run, seed=seed, backend=backend))
    return rows


# ----------------------------------------------------------------------
# Collective micro-benchmarks (backend data-plane overhead)
# ----------------------------------------------------------------------

def collectives_microbench(
    p_list=None,
    payload: int = 256,
    repeats: int = 50,
    seed: int = 13,
    backend: str = "sim",
) -> list[BenchRow]:
    """Driver overhead of each collective: ``repeats`` calls with a
    ``payload``-word NumPy vector per PE.

    On the ``sim`` backend ``wall_s`` is pure driver/data-plane Python
    overhead (the quantity the fused/vectorized paths optimize); on a
    real backend it measures actual IPC.  ``time_s`` stays the modeled
    alpha-beta cost either way.  The default sweep is clamped for real
    backends (one OS process per PE; the in-worker O(p log p) schedules
    make p=16 practical, but each p still spawns that many processes).
    """
    if p_list is None:
        p_list = (4, 16, 64) if backend == "sim" else (2, 4, 8, 16)

    def make(m: Machine):
        return [m.rngs[i].random(payload) for i in range(m.p)]

    def bench(fn):
        def run(machine: Machine, vecs):
            for _ in range(repeats):
                fn(machine, vecs)
            return {}
        return run

    algos = {
        "allreduce": bench(lambda m, v: m.allreduce(v, op="sum")),
        "allgather": bench(lambda m, v: m.allgather(v)),
        "scan": bench(lambda m, v: m.scan(v, op="sum")),
        "allreduce_exscan(fused)": bench(
            lambda m, v: m.allreduce_exscan(v, op="sum", initial=0.0)
        ),
        "reduce_allgather(fused)": bench(
            lambda m, v: m.reduce_allgather([float(x[0]) for x in v], v, op="sum")
        ),
        "broadcast": bench(lambda m, v: m.broadcast(v[0], root=0)),
        "alltoall(hypercube)": bench(
            lambda m, v: m.alltoall(
                [[v[i] for _ in range(m.p)] for i in range(m.p)], mode="hypercube"
            )
        ),
        "aggregate_exchange": bench(
            lambda m, v: m.aggregate_exchange(
                [{int(j): 1 for j in range(i, i + 32)} for i in range(m.p)],
                owner=lambda key: key % m.p,
            )
        ),
    }
    return weak_scaling(
        "collectives", algos, p_list, payload, make, seed=seed, backend=backend
    )
