"""Weak-scaling harness: run algorithms across ``p``, collect the rows
the paper's figures plot.

The paper reports wall-clock on a 2048-core InfiniBand cluster; we
report *modeled time* (per-PE clocks driven by the alpha-beta cost
model; see :mod:`repro.machine.clock`) plus the measured communication
quantities (bottleneck volume, startups).  ``BenchRow`` carries both, so
every figure can be regenerated as "series over p" exactly like the
paper's plots, and EXPERIMENTS.md can quote paper-vs-measured shapes.

Every entry point accepts ``backend=`` (``"sim"`` default, ``"mp"`` for
one worker process per PE).  On the simulated backend ``time_s`` (the
modeled makespan) is the headline metric and ``wall_s`` only measures
driver overhead; on a real backend ``wall_s`` is genuine parallel
wall-clock while the modeled columns remain available for comparison.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..machine import CostParams, Machine

__all__ = ["BenchRow", "run_algorithm", "weak_scaling", "format_table", "write_csv"]


@dataclass(frozen=True)
class BenchRow:
    """One (algorithm, machine size) measurement."""

    experiment: str
    algorithm: str
    p: int
    n_per_pe: int
    time_s: float
    work_s: float
    comm_s: float
    volume_words: float
    startups: int
    traffic_words: float
    imbalance: float
    wall_s: float
    backend: str = "sim"
    backend_wall_s: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        d = {
            "experiment": self.experiment,
            "algorithm": self.algorithm,
            "p": self.p,
            "n_per_pe": self.n_per_pe,
            "time_s": self.time_s,
            "work_s": self.work_s,
            "comm_s": self.comm_s,
            "volume_words": self.volume_words,
            "startups": self.startups,
            "traffic_words": self.traffic_words,
            "imbalance": self.imbalance,
            "wall_s": self.wall_s,
            "backend": self.backend,
            "backend_wall_s": self.backend_wall_s,
        }
        d.update(self.extra)
        return d


def run_algorithm(
    experiment: str,
    algorithm: str,
    p: int,
    n_per_pe: int,
    make_data: Callable[[Machine], object],
    run: Callable[[Machine, object], dict | None],
    *,
    cost: CostParams | None = None,
    seed: int = 0xBE7C,
    backend: str = "sim",
) -> BenchRow:
    """One measurement: build the workload, reset the meters, run.

    ``run(machine, data)`` may return a dict of extra columns.  Workload
    generation and index building are excluded from the measurement
    (the paper's timers also start after input generation).
    """
    with Machine(p=p, cost=cost, seed=seed, backend=backend) as machine:
        data = make_data(machine)
        machine.reset()  # exclude generation/build cost from the measurement
        t0 = time.perf_counter()
        extra = run(machine, data) or {}
        wall = time.perf_counter() - t0
        rep = machine.report()
    return BenchRow(
        experiment=experiment,
        algorithm=algorithm,
        p=p,
        n_per_pe=n_per_pe,
        time_s=rep.makespan,
        work_s=rep.work_time,
        comm_s=rep.comm_time,
        volume_words=rep.bottleneck_words,
        startups=rep.bottleneck_startups,
        traffic_words=rep.total_traffic,
        imbalance=rep.imbalance,
        wall_s=wall,
        backend=rep.backend,
        backend_wall_s=rep.backend_wall_s,
        extra=dict(extra),
    )


def weak_scaling(
    experiment: str,
    algorithms: dict[str, Callable[[Machine, object], dict | None]],
    p_list: Sequence[int],
    n_per_pe: int,
    make_data: Callable[[Machine], object],
    *,
    cost: CostParams | None = None,
    seed: int = 0xBE7C,
    backend: str = "sim",
) -> list[BenchRow]:
    """Fixed ``n/p``, sweep ``p``, run every algorithm on the same data."""
    rows: list[BenchRow] = []
    for p in p_list:
        for name, fn in algorithms.items():
            rows.append(
                run_algorithm(
                    experiment, name, p, n_per_pe, make_data, fn,
                    cost=cost, seed=seed, backend=backend,
                )
            )
    return rows


_DEFAULT_COLS = (
    "algorithm",
    "p",
    "time_s",
    "volume_words",
    "startups",
    "imbalance",
)


def format_table(rows: Iterable[BenchRow], columns: Sequence[str] = _DEFAULT_COLS) -> str:
    """Fixed-width table of the requested columns (paper-figure style)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    data = [r.as_dict() for r in rows]
    header = list(columns)
    body = []
    for d in data:
        line = []
        for c in header:
            v = d.get(c, "")
            if isinstance(v, float):
                line.append(f"{v:.4g}")
            else:
                line.append(str(v))
        body.append(line)
    widths = [
        max(len(header[i]), *(len(b[i]) for b in body)) for i in range(len(header))
    ]
    out = io.StringIO()
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for b in body:
        out.write("  ".join(x.ljust(w) for x, w in zip(b, widths)) + "\n")
    return out.getvalue()


def write_csv(rows: Iterable[BenchRow], path) -> None:
    """Persist rows (all columns, including extras) as CSV."""
    rows = list(rows)
    if not rows:
        return
    keys: list[str] = []
    for r in rows:
        for key in r.as_dict():
            if key not in keys:
                keys.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=keys)
        writer.writeheader()
        for r in rows:
            writer.writerow(r.as_dict())
