"""Input generators for every experiment (Section 10 "Input Generation").

All generators take the target :class:`~repro.machine.Machine` and draw
from the per-PE RNG streams, so workloads are deterministic per seed and
independent across PEs, exactly like the paper's MKL-based generators.

Scaling note: the paper uses 2^24..2^28 elements *per PE*.  Python
simulation budgets dictate smaller defaults (2^14..2^18); the
communication terms of all algorithms depend on ``p``, ``k``, ``eps``
and ``delta`` rather than ``n/p``, so weak-scaling *shapes* survive the
scale-down (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import numpy as np

from ..aggregation import DistKeyValue
from ..common.distributions import GappedSpec, ZipfDistribution
from ..machine import DistArray, Machine
from ..topk.index import LocalIndex, build_distributed_index

__all__ = [
    "selection_workload",
    "zipf_keys_workload",
    "negative_binomial_workload",
    "gapped_workload",
    "multicriteria_workload",
    "sum_workload",
    "skewed_sizes_workload",
]


def selection_workload(
    machine: Machine,
    n_per_pe: int,
    *,
    universe_hi: int = 1 << 20,
    universe_span: int = 1 << 16,
    s_range: tuple[float, float] = (1.0, 1.2),
) -> DistArray:
    """Section 10.1's unsorted-selection input.

    Per PE: integer elements from a Zipf distribution whose universe
    size is uniform in ``[universe_hi - universe_span, universe_hi]``
    and whose exponent is uniform in ``s_range`` -- non-uniform across
    PEs ("several PEs contribute to the result ... without the
    computation becoming a local operation at one PE").
    """

    def make(rank: int, rng: np.random.Generator) -> np.ndarray:
        universe = int(rng.integers(universe_hi - universe_span, universe_hi + 1))
        s = float(rng.uniform(*s_range))
        return ZipfDistribution(universe, s).sample(rng, n_per_pe)

    return DistArray.generate(machine, make)


def zipf_keys_workload(
    machine: Machine,
    n_per_pe: int,
    *,
    universe: int = 1 << 16,
    s: float = 1.0,
) -> DistArray:
    """Section 10.2's Zipfian keys (fixed universe, same law on all PEs:
    "each PE generates objects according to the same distribution")."""
    dist = ZipfDistribution(universe, s)
    return DistArray.generate(machine, lambda rank, rng: dist.sample(rng, n_per_pe))


def negative_binomial_workload(
    machine: Machine,
    n_per_pe: int,
    *,
    r: int = 1000,
    p_success: float = 0.05,
) -> DistArray:
    """Section 10.2's negative binomial keys (wide plateau around the
    mode -- near-equal frequencies, the hard case for ranking)."""
    return DistArray.generate(
        machine,
        lambda rank, rng: rng.negative_binomial(r, p_success, size=n_per_pe).astype(
            np.int64
        ),
    )


def gapped_workload(
    machine: Machine,
    n_per_pe: int,
    *,
    universe: int = 1 << 12,
    k: int = 32,
    gap: float = 4.0,
) -> DistArray:
    """Figure 5's gapped frequency distribution (PEC's home turf)."""
    spec = GappedSpec(universe, k, gap)
    return DistArray.generate(machine, lambda rank, rng: spec.sample(rng, n_per_pe))


def multicriteria_workload(
    machine: Machine,
    n_per_pe: int,
    m: int,
    *,
    skew: float = 2.0,
    adversarial: bool = False,
) -> list[LocalIndex]:
    """Objects with ``m`` per-criterion scores in [0, 1].

    ``skew`` powers the uniform draw so high scores are rare (realistic
    search-engine score lists).  With ``adversarial=True`` the globally
    best objects are concentrated on PE 0 (sorted placement), the case
    RDTA cannot handle but DTA can.
    """
    p = machine.p
    ids, scores = [], []
    for i in range(p):
        rng = machine.rngs[i]
        local_ids = np.arange(n_per_pe, dtype=np.int64) * p + i
        local_scores = rng.random((n_per_pe, m)) ** skew
        ids.append(local_ids)
        scores.append(local_scores)
    if adversarial:
        all_ids = np.concatenate(ids)
        all_scores = np.vstack(scores)
        order = np.argsort(-all_scores.sum(axis=1), kind="stable")
        parts = np.array_split(order, p)
        ids = [all_ids[part] for part in parts]
        scores = [all_scores[part] for part in parts]
    return build_distributed_index(machine, ids, scores)


def sum_workload(
    machine: Machine,
    n_per_pe: int,
    *,
    universe: int = 1 << 14,
    s: float = 1.1,
    value_scale: float = 10.0,
) -> DistKeyValue:
    """Keyed values: Zipf-popular keys, exponential value magnitudes."""
    dist = ZipfDistribution(universe, s)

    def make(rank: int, rng: np.random.Generator):
        keys = dist.sample(rng, n_per_pe)
        values = rng.exponential(value_scale, size=n_per_pe)
        return keys, values

    return DistKeyValue.generate(machine, make)


def skewed_sizes_workload(
    machine: Machine, n_total: int, kind: str = "point"
) -> DistArray:
    """Imbalanced layouts for the redistribution experiment.

    ``kind``: ``point`` (everything on PE 0), ``ramp`` (linear),
    ``random`` (Dirichlet), ``balanced`` (already even -- the adaptive
    scheme should move nothing).
    """
    p = machine.p
    if kind == "point":
        sizes = np.zeros(p, dtype=np.int64)
        sizes[0] = n_total
    elif kind == "ramp":
        w = np.arange(1, p + 1, dtype=np.float64)
        sizes = np.floor(w / w.sum() * n_total).astype(np.int64)
        sizes[-1] += n_total - sizes.sum()
    elif kind == "random":
        w = machine.shared_rng.dirichlet(np.full(p, 0.3))
        sizes = np.floor(w * n_total).astype(np.int64)
        sizes[0] += n_total - sizes.sum()
    elif kind == "balanced":
        base = n_total // p
        sizes = np.full(p, base, dtype=np.int64)
        sizes[: n_total - base * p] += 1
    else:
        raise ValueError(f"unknown skew kind {kind!r}")
    chunks = [
        machine.rngs[i].integers(0, 1 << 30, size=int(sz)).astype(np.int64)
        for i, sz in enumerate(sizes)
    ]
    return DistArray(machine, chunks)
