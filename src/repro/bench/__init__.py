"""Benchmark substrate: workloads, harness, experiment drivers."""

from .harness import BenchRow, format_table, run_algorithm, weak_scaling, write_csv
from .workloads import (
    gapped_workload,
    multicriteria_workload,
    negative_binomial_workload,
    selection_workload,
    skewed_sizes_workload,
    sum_workload,
    zipf_keys_workload,
)

__all__ = [
    "BenchRow",
    "format_table",
    "gapped_workload",
    "multicriteria_workload",
    "negative_binomial_workload",
    "run_algorithm",
    "selection_workload",
    "skewed_sizes_workload",
    "sum_workload",
    "weak_scaling",
    "write_csv",
    "zipf_keys_workload",
]
