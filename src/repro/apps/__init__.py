"""Example applications built on the core library."""

from .branch_and_bound import (
    BnBResult,
    KnapsackInstance,
    knapsack_dp,
    random_knapsack,
    solve_knapsack_parallel,
    solve_knapsack_sequential,
)

__all__ = [
    "BnBResult",
    "KnapsackInstance",
    "knapsack_dp",
    "random_knapsack",
    "solve_knapsack_parallel",
    "solve_knapsack_sequential",
]
