"""Parallel branch-and-bound on the bulk priority queue (Section 5).

The paper motivates flexible ``deleteMin*`` with parallel
branch-and-bound [20, 31]: every iteration deletes the ``k_i = O(p)``
best tree nodes, expands them in parallel, and inserts the children.
Because our queue inserts locally, the (typically much larger) set of
generated-but-never-expanded nodes is never communicated -- "a big
advantage over previous algorithms, which move all nodes".

We instantiate this with 0/1 knapsack:

* a node fixes the include/exclude decisions for items ``0..level-1``;
* its *bound* is the value of the fractional (greedy) completion -- an
  upper bound on any completion, monotone along tree edges;
* the queue is keyed on ``-bound`` (best-first = largest bound first);
* a node whose bound does not beat the incumbent is pruned.

The exact dynamic program (:func:`knapsack_dp`) provides the oracle for
tests, and :func:`solve_knapsack_sequential` is the ``m``-node-count
reference of Section 5's ``K = m + O(hp)`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine import Machine
from ..pqueue import BinaryHeap, BulkParallelPQ

__all__ = [
    "KnapsackInstance",
    "BnBResult",
    "knapsack_dp",
    "solve_knapsack_sequential",
    "solve_knapsack_parallel",
    "random_knapsack",
]


@dataclass(frozen=True)
class KnapsackInstance:
    """0/1 knapsack: maximize value under a weight capacity.

    Items are stored sorted by value density (value/weight, descending),
    the order in which both the greedy bound and the branching consume
    them.
    """

    values: np.ndarray
    weights: np.ndarray
    capacity: float

    @classmethod
    def create(cls, values, weights, capacity) -> "KnapsackInstance":
        values = np.asarray(values, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if values.shape != weights.shape or values.ndim != 1:
            raise ValueError("values and weights must be equal-length vectors")
        if np.any(weights <= 0) or np.any(values < 0):
            raise ValueError("weights must be positive, values non-negative")
        order = np.argsort(-values / weights, kind="stable")
        return cls(values[order], weights[order], float(capacity))

    @property
    def n_items(self) -> int:
        return int(self.values.size)

    def greedy_bound(self, level: int, value: float, weight: float) -> float:
        """Fractional-relaxation upper bound from partial state."""
        cap = self.capacity - weight
        bound = value
        i = level
        while i < self.n_items and self.weights[i] <= cap:
            cap -= self.weights[i]
            bound += self.values[i]
            i += 1
        if i < self.n_items and cap > 0:
            bound += self.values[i] * (cap / self.weights[i])
        return bound


def random_knapsack(
    rng: np.random.Generator, n_items: int = 40, tightness: float = 0.5
) -> KnapsackInstance:
    """Weakly correlated random instance (the classic hard-ish family)."""
    weights = rng.integers(1, 100, size=n_items).astype(np.float64)
    values = weights + rng.integers(-10, 30, size=n_items)
    values = np.maximum(values, 1.0)
    capacity = float(tightness * weights.sum())
    return KnapsackInstance.create(values, weights, capacity)


def knapsack_dp(inst: KnapsackInstance) -> float:
    """Exact optimum by dynamic programming over integer weights."""
    weights = inst.weights.astype(np.int64)
    if np.any(weights != inst.weights):
        raise ValueError("DP oracle requires integer weights")
    cap = int(inst.capacity)
    best = np.zeros(cap + 1, dtype=np.float64)
    for v, w in zip(inst.values, weights):
        w = int(w)
        if w <= cap:
            best[w:] = np.maximum(best[w:], best[:-w] + v)
    return float(best[-1])


# ----------------------------------------------------------------------
# Node encoding: (level, value, weight) with key = -bound
# ----------------------------------------------------------------------

def _children(inst: KnapsackInstance, level: int, value: float, weight: float):
    """Expand one node: the include / exclude branches at ``level``."""
    out = []
    if level >= inst.n_items:
        return out
    w = weight + inst.weights[level]
    if w <= inst.capacity:
        out.append((level + 1, value + inst.values[level], w))
    out.append((level + 1, value, weight))
    return out


@dataclass(frozen=True)
class BnBResult:
    """Outcome of a branch-and-bound run."""

    optimum: float
    nodes_expanded: int
    iterations: int


def solve_knapsack_sequential(inst: KnapsackInstance) -> BnBResult:
    """Best-first sequential B&B (the ``m`` node-count reference)."""
    heap = BinaryHeap()
    root_bound = inst.greedy_bound(0, 0.0, 0.0)
    heap.push((-root_bound, (0, 0.0, 0.0)))
    incumbent = 0.0
    expanded = 0
    while heap:
        neg_bound, (level, value, weight) = heap.pop()
        if -neg_bound <= incumbent + 1e-12:
            break  # best-first: all remaining bounds are no better
        expanded += 1
        for child in _children(inst, level, value, weight):
            c_level, c_value, c_weight = child
            incumbent = max(incumbent, c_value)
            bound = inst.greedy_bound(c_level, c_value, c_weight)
            if bound > incumbent + 1e-12:
                heap.push((-bound, child))
    return BnBResult(incumbent, expanded, expanded)


def solve_knapsack_parallel(
    machine: Machine,
    inst: KnapsackInstance,
    *,
    batch_per_pe: int = 2,
    max_iterations: int = 100_000,
) -> BnBResult:
    """Parallel best-first B&B on the bulk priority queue.

    Every iteration deletes a flexible batch of the globally best
    ``k̂ in [p, 2 * batch_per_pe * p]`` nodes (``deleteMin*``), expands
    them where they live, inserts children locally, and refreshes the
    incumbent with one max-reduction.
    """
    p = machine.p
    pq = BulkParallelPQ(machine)
    # encode nodes in per-PE side tables keyed by uid so queue elements
    # stay one machine word of priority plus the uid
    tables: list[dict] = [dict() for _ in range(p)]

    def push_batch(rank: int, nodes: list, bounds: list) -> None:
        """Flush one PE's surviving children as a single bulk insert
        (one ``insert_local`` call per PE per iteration instead of one
        per element; identical uids, charges and queue state)."""
        if not nodes:
            return
        uids = pq.insert_local(rank, [-b for b in bounds])
        for uid, node in zip(uids, nodes):
            tables[rank][uid[1]] = node

    incumbent = 0.0
    expanded = 0
    iterations = 0

    # ------------------------------------------------------------------
    # Seeding: the root lives on PE 0; a brief sequential ramp-up grows
    # the frontier to >= 4p nodes, which are then scattered round-robin
    # (one charged scatter -- the only time B&B nodes ever move).
    # ------------------------------------------------------------------
    frontier = BinaryHeap()
    root_bound = inst.greedy_bound(0, 0.0, 0.0)
    frontier.push((-root_bound, (0, 0.0, 0.0)))
    while frontier and len(frontier) < 4 * p:
        neg_bound, (level, value, weight) = frontier.pop()
        if -neg_bound <= incumbent + 1e-12:
            break
        expanded += 1
        machine.charge_ops_one(0, inst.n_items)
        exhausted = True
        for child in _children(inst, level, value, weight):
            c_level, c_value, c_weight = child
            incumbent = max(incumbent, c_value)
            bound = inst.greedy_bound(c_level, c_value, c_weight)
            if bound > incumbent + 1e-12:
                frontier.push((-bound, child))
                exhausted = False
        if exhausted and not frontier:
            break
    seed_nodes = []
    while frontier:
        seed_nodes.append(frontier.pop())
    pieces: list[list] = [[] for _ in range(p)]
    for idx, item in enumerate(seed_nodes):
        pieces[idx % p].append(item)
    machine.scatter(pieces, root=0)
    for rank, piece in enumerate(pieces):
        push_batch(rank, [node for _, node in piece],
                   [-neg_bound for neg_bound, _ in piece])
    incumbent = float(machine.allreduce([incumbent] * p, op="max")[0])

    while iterations < max_iterations:
        total = pq.total_size()
        if total == 0:
            break
        best_neg = pq.peek_min()
        if -best_neg <= incumbent + 1e-12:
            break  # nothing in the queue can improve the incumbent
        k_hi = min(total, max(p, 2 * batch_per_pe * p))
        k_lo = max(1, k_hi // 2)
        res = pq.delete_min_flexible(k_lo, k_hi)
        local_best = [0.0] * p
        for rank, batch in enumerate(res.batches):
            ops = 0.0
            # batch this iteration's surviving children and flush them
            # through one insert_local call per PE (the per-element
            # bound filtering below is unchanged)
            new_nodes: list = []
            new_bounds: list = []
            for neg_bound, uid in batch:
                node = tables[rank].pop(uid[1])
                if -neg_bound <= incumbent + 1e-12:
                    continue  # pruned after extraction
                expanded += 1
                level, value, weight = node
                for child in _children(inst, level, value, weight):
                    c_level, c_value, c_weight = child
                    local_best[rank] = max(local_best[rank], c_value)
                    bound = inst.greedy_bound(c_level, c_value, c_weight)
                    if bound > incumbent + 1e-12:
                        new_nodes.append(child)
                        new_bounds.append(bound)
                ops += inst.n_items
            push_batch(rank, new_nodes, new_bounds)
            if ops:
                machine.charge_ops_one(rank, ops)
        incumbent = max(
            incumbent, float(machine.allreduce(local_best, op="max")[0])
        )
        iterations += 1

    return BnBResult(incumbent, expanded, iterations)
