"""Cost-model calibration.

The simulated clocks convert counted quantities into seconds via the
:class:`~repro.machine.cost.CostParams` constants.  The defaults are a
2016 InfiniBand-cluster calibration (the paper's testbed class); this
module lets users

* build presets for other machine classes (:func:`preset`), and
* measure *this host's* effective per-element processing rate
  (:func:`measure_local_rate`) so that modeled local-work times track
  what a compiled implementation would achieve on comparable hardware
  (NumPy's vectorized throughput is the stand-in for "compiled").
"""

from __future__ import annotations

import time

import numpy as np

from .cost import CostParams

__all__ = ["preset", "measure_local_rate", "calibrated_params"]

_PRESETS: dict[str, CostParams] = {
    # the paper's class of machine: InfiniBand 4X QDR cluster
    "infiniband-cluster": CostParams(alpha=1.5e-6, beta=8.0 / 5.0e9, time_per_op=2.0e-9),
    # commodity 10 GbE data-center network
    "ethernet-cluster": CostParams(alpha=2.5e-5, beta=8.0 / 1.25e9, time_per_op=2.0e-9),
    # geo-distributed / WAN deployment (the TPUT/KLEE world)
    "wan": CostParams(alpha=2.0e-2, beta=8.0 / 1.25e8, time_per_op=2.0e-9),
    # shared-memory multicore treated as message passing
    "shared-memory": CostParams(alpha=2.0e-7, beta=8.0 / 2.0e10, time_per_op=2.0e-9),
}


def preset(name: str) -> CostParams:
    """A named machine-class calibration.

    Available: ``infiniband-cluster`` (default machine), ``ethernet-
    cluster``, ``wan``, ``shared-memory``.
    """
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def measure_local_rate(n: int = 1 << 20, repeats: int = 3) -> float:
    """Seconds per elementary operation on this host.

    Times a representative selection inner loop (three-way comparison
    partition over ``n`` elements) and divides by the op count.  Used to
    re-anchor :attr:`CostParams.time_per_op` when modeled times should
    reflect the executing host rather than the reference cluster.
    """
    if n < 1 << 10:
        raise ValueError(f"need at least 1024 elements to measure, got {n}")
    rng = np.random.default_rng(0xCA11B)
    data = rng.random(n)
    lo, hi = 0.3, 0.6
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        below = data < lo
        mid = (data >= lo) & (data <= hi)
        _ = data[below], data[mid], data[~below & ~mid]
        best = min(best, time.perf_counter() - t0)
    # the loop does ~5 elementary ops per element (2 cmp, 2 and, 1 move)
    return best / (5.0 * n)


def calibrated_params(base: str = "infiniband-cluster", *, host_ops: bool = False) -> CostParams:
    """A :class:`CostParams` from a preset, optionally with this host's
    measured per-op rate."""
    params = preset(base)
    if host_ops:
        rate = measure_local_rate()
        params = CostParams(
            alpha=params.alpha,
            beta=params.beta,
            time_per_op=rate,
            word_bytes=params.word_bytes,
        )
    return params
