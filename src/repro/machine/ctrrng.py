"""Stateless counter-based RNG: draws addressed by ``(key, counter)``.

Random123-style (Salmon et al., SC'11) counter-based randomness, the
``toast.rng`` idiom: instead of shipping generator *state* between the
driver and the workers (the retired :mod:`repro.machine.rngstate`
pass-through), every draw a kernel makes is *addressed* by

* ``key     = (machine_seed, stream_id, rank)`` -- who is drawing,
* ``counter = (seq, draw_index)``              -- which draw it is,

where ``seq`` is a small integer the driver allocates at command-build
time (:meth:`repro.machine.Machine.draw_addr`), in issue order, so the
address stream is identical on every backend and at every
``pipeline_depth``.  A Philox-4x64 bit generator keyed this way is
*stateless* end to end:

* nothing crosses the wire but the tiny ``(seed, seq)`` address -- the
  journal records addresses, not generator states;
* no stream is fast-forwarded in the driver after a command settles --
  rng consumption no longer gates settling, so pipelined commands and
  fused serve batches interleave freely;
* any command's draws are computable from its address alone,
  independent of completion order (kill/recover replays the same
  addresses and gets the same bits).

Layout: the Philox key packs ``seed`` in word 0 and
``(stream_id << 32) | rank`` in word 1; the 256-bit counter carries
``seq`` and ``draw_index`` in its two *high* words (numpy's Philox
increments the counter little-endian, word 0 first), so one handle can
emit 2**128 words before touching the neighbouring address.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = [
    "DrawAddress",
    "STREAM_LOCAL",
    "STREAM_SHARED",
    "philox_generator",
]

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

#: per-PE streams: ``rank`` is the PE index (replaces ``machine.rngs[i]``
#: consumption inside algorithms)
STREAM_LOCAL = 0
#: the machine-wide shared stream (replaces ``machine.shared_rng``
#: consumption); the rank slot is fixed at 0
STREAM_SHARED = 1


def philox_generator(
    seed: int, stream_id: int, rank: int, seq: int, draw: int = 0
) -> np.random.Generator:
    """A Generator positioned at address ``(seed, stream_id, rank, seq, draw)``.

    Pure function of its arguments: the same address yields the same
    bits on every process, in any order, with no state shipped or
    fast-forwarded.  ``draw`` subdivides one ``seq`` when a kernel needs
    several independent handles per rank.
    """
    key = np.array(
        [
            seed & _MASK64,
            ((stream_id & _MASK32) << 32) | (rank & _MASK32),
        ],
        dtype=np.uint64,
    )
    counter = np.array([0, 0, draw & _MASK64, seq & _MASK64], dtype=np.uint64)
    bg = np.random.Philox(key=key, counter=counter)  # repro-lint: disable=RL009 -- the one sanctioned Philox construction site
    return np.random.Generator(bg)


class DrawAddress(NamedTuple):
    """Picklable draw address -- what ships in command args instead of
    generator state.

    Allocated by :meth:`Machine.draw_addr` at command-build time; a
    kernel materialises generators from it where the data lives:
    ``addr.local(rank)`` for the per-PE stream, ``addr.shared()`` for
    the replicated shared stream (every rank derives the identical
    sequence, which is what makes shared draws safe inside SPMD
    kernels).
    """

    seed: int
    seq: int

    def local(self, rank: int, draw: int = 0) -> np.random.Generator:
        """This PE's stream for this address."""
        return philox_generator(self.seed, STREAM_LOCAL, rank, self.seq, draw)

    def shared(self, draw: int = 0) -> np.random.Generator:
        """The machine-wide shared stream for this address (identical on
        every rank)."""
        return philox_generator(self.seed, STREAM_SHARED, 0, self.seq, draw)
