"""Deterministic fault injection for the real backends.

A :class:`FaultPlan` is a list of *actions*, each pinned to one rank
and one command sequence number, so every failure mode the runtime has
to survive can be reproduced exactly in a test:

* ``kill`` -- the worker hard-exits (:data:`FAULT_EXIT`) either
  *before* executing command ``seq`` (no result is ever produced) or
  *after* executing it but before sending its result (side effects --
  resident-store writes, peer messages -- have happened);
* ``delay`` -- the worker sleeps before executing command ``seq``
  (drives the driver's *hung* detection without killing anything);
* ``truncate`` -- the worker writes only a prefix of its result frame
  for ``seq`` and then hard-exits (a death mid-write, the nastiest
  transport-level corruption);
* ``sever`` -- the worker cuts its connection to one peer before
  executing ``seq`` (tcp: socket shutdown; mp: the peer's inbox writer
  is closed), so the next exchange with that peer fails;
* ``shmcorrupt`` -- the worker's result for ``seq`` advertises a bogus
  shared-memory descriptor (mp only), so the driver's materialize
  fails.

Plans are installed with ``Machine(..., faults=...)`` (a plan, or a
spec string) or through the ``REPRO_FAULTS`` environment variable.  The
spec grammar is semicolon-separated actions::

    kill@r1:s3            # kill rank 1 before command seq 3
    kill@r1:s3:after      # ... after executing seq 3
    delay@r0:s2:0.5       # rank 0 sleeps 0.5s before seq 2
    truncate@r2:s4        # rank 2 dies mid-result-frame at seq 4
    sever@r1:s3:p0        # rank 1 cuts its link to peer 0 before seq 3
    shmcorrupt@r0:s2      # rank 0 corrupts its seq-2 shm descriptor

Plans are plain data: they pickle across the fork (mp) and ride the
config frame (tcp), and :meth:`FaultPlan.random_kill` derives a
reproducible kill from a seed.  A recovered pool is fault-free: the
driver drops the plan on the first recovery, so an injected death
cannot re-fire after the respawn and wedge the pool in a failure loop.
"""

from __future__ import annotations

import random
import time
from typing import Iterable

__all__ = [
    "FAULT_EXIT",
    "CorruptingPool",
    "FaultAction",
    "FaultPlan",
    "RankFaults",
    "truncated_frame_bytes",
]

#: exit status of a worker killed by an injected fault (distinguishes
#: injected deaths from real crashes in test diagnostics)
FAULT_EXIT = 70

_KINDS = ("kill", "delay", "truncate", "sever", "shmcorrupt")


class FaultAction:
    """One injected fault: ``kind`` at ``(rank, seq)`` with an optional
    phase (kill) or argument (delay seconds / sever peer)."""

    __slots__ = ("kind", "rank", "seq", "phase", "arg")

    def __init__(self, kind: str, rank: int, seq: int,
                 phase: str = "before", arg=None):
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; have {_KINDS}")
        if phase not in ("before", "after"):
            raise ValueError(f"fault phase must be before/after, got {phase!r}")
        self.kind = kind
        self.rank = int(rank)
        self.seq = int(seq)
        self.phase = phase
        self.arg = arg

    def __reduce__(self):
        return (FaultAction, (self.kind, self.rank, self.seq, self.phase,
                              self.arg))

    def spec(self) -> str:
        base = f"{self.kind}@r{self.rank}:s{self.seq}"
        if self.kind == "kill" and self.phase != "before":
            return f"{base}:{self.phase}"
        if self.kind == "delay":
            return f"{base}:{self.arg}"
        if self.kind == "sever":
            return f"{base}:p{self.arg}"
        return base

    def __repr__(self) -> str:
        return f"FaultAction({self.spec()!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultAction)
                and other.spec() == self.spec())


class FaultPlan:
    """An ordered set of :class:`FaultAction`\\ s (builder-style API)."""

    def __init__(self, actions: Iterable[FaultAction] = ()):
        self.actions: list[FaultAction] = list(actions)

    # -- builders (chainable) -------------------------------------------
    def kill(self, rank: int, seq: int, phase: str = "before") -> "FaultPlan":
        self.actions.append(FaultAction("kill", rank, seq, phase))
        return self

    def delay(self, rank: int, seq: int, seconds: float) -> "FaultPlan":
        self.actions.append(
            FaultAction("delay", rank, seq, arg=float(seconds)))
        return self

    def truncate(self, rank: int, seq: int) -> "FaultPlan":
        self.actions.append(FaultAction("truncate", rank, seq))
        return self

    def sever(self, rank: int, seq: int, peer: int) -> "FaultPlan":
        self.actions.append(FaultAction("sever", rank, seq, arg=int(peer)))
        return self

    def corrupt_shm(self, rank: int, seq: int) -> "FaultPlan":
        self.actions.append(FaultAction("shmcorrupt", rank, seq))
        return self

    # -- construction ---------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see the module docstring)."""
        plan = cls()
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, where = part.partition("@")
                fields = where.split(":")
                rank = int(fields[0].lstrip("r"))
                seq = int(fields[1].lstrip("s"))
                extra = fields[2] if len(fields) > 2 else None
                if kind == "kill":
                    plan.kill(rank, seq, extra or "before")
                elif kind == "delay":
                    plan.delay(rank, seq, float(extra))
                elif kind == "truncate":
                    plan.truncate(rank, seq)
                elif kind == "sever":
                    plan.sever(rank, seq, int(extra.lstrip("p")))
                elif kind == "shmcorrupt":
                    plan.corrupt_shm(rank, seq)
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except (IndexError, TypeError, ValueError, AttributeError) as exc:
                raise ValueError(
                    f"bad fault spec {part!r} (grammar: kind@rR:sS[:extra], "
                    f"e.g. 'kill@r1:s3:after'): {exc}"
                ) from None
        return plan

    @classmethod
    def random_kill(cls, p: int, *, seed: int, max_seq: int = 8) -> "FaultPlan":
        """A reproducible single-kill plan: rank, seq and phase are all
        drawn from ``seed`` (the chaos smoke's randomization knob)."""
        rng = random.Random(seed)
        return cls().kill(rng.randrange(p), rng.randrange(1, max_seq + 1),
                          rng.choice(("before", "after")))

    # -- views ----------------------------------------------------------
    def spec(self) -> str:
        return ";".join(a.spec() for a in self.actions)

    def for_rank(self, rank: int) -> "RankFaults | None":
        """The slice of this plan one worker consults (``None`` when no
        action targets it -- the common, zero-overhead case)."""
        mine = [a for a in self.actions if a.rank == rank]
        return RankFaults(rank, mine) if mine else None

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"

    def __bool__(self) -> bool:
        return bool(self.actions)


class RankFaults:
    """One rank's fault actions, consulted by :func:`worker_loop` at the
    three injection points: before execution, after execution, and at
    result send."""

    __slots__ = ("rank", "actions")

    def __init__(self, rank: int, actions: list[FaultAction]):
        self.rank = rank
        self.actions = actions

    def __reduce__(self):
        return (RankFaults, (self.rank, self.actions))

    def fire(self, phase: str, seq: int, links) -> None:
        """Apply every kill/delay/sever action pinned to ``(seq, phase)``
        (``links`` provides the transport-specific sever hook)."""
        import os

        for a in self.actions:
            if a.seq != seq:
                continue
            if a.kind == "kill" and a.phase == phase:
                os._exit(FAULT_EXIT)
            if phase == "before":
                if a.kind == "delay":
                    time.sleep(a.arg)
                elif a.kind == "sever":
                    links.sever(a.arg)

    def truncate_at(self, seq: int) -> bool:
        return any(a.kind == "truncate" and a.seq == seq
                   for a in self.actions)

    def corrupt_at(self, seq: int) -> bool:
        return any(a.kind == "shmcorrupt" and a.seq == seq
                   for a in self.actions)


class CorruptingPool:
    """Shm-pool proxy whose shared descriptors advertise a segment that
    does not exist: the receiver's materialize fails with
    ``FileNotFoundError``, which the driver converts into a structured
    :class:`~repro.machine.backends.runtime.WorkerFailure`."""

    def __init__(self, pool):
        self._pool = pool

    def share(self, view):
        desc = self._pool.share(view)
        if desc is None:
            return None
        return ("reproshm-corrupt-" + desc[0], *desc[1:])

    def __getattr__(self, name):
        return getattr(self._pool, name)


def truncated_frame_bytes(obj, fraction: float = 0.5) -> bytes:
    """The first ``fraction`` of ``obj``'s encoded wire frame -- what a
    worker dying mid-write leaves on the stream (used by the ``truncate``
    fault and the transport-layer corruption tests)."""
    from .backends.transport import encode_frame

    views, _, _ = encode_frame(obj)
    raw = b"".join(bytes(v) for v in views)
    return bytes(raw[:max(1, int(len(raw) * fraction))])
