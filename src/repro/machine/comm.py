"""The distributed-memory machine (simulated or real execution).

:class:`Machine` bundles ``p`` processing elements (PEs) with

* independent per-PE random generator streams (plus one *shared* stream
  whose draws are identical on every PE, used where the paper says
  "choose the same random number on all PEs"),
* per-PE simulated clocks (:class:`repro.machine.clock.SimClock`),
* per-PE communication metering (:class:`repro.machine.metrics.CommMetrics`),
* the alpha-beta cost model (:class:`repro.machine.cost.CostParams`),
* a pluggable execution backend
  (:class:`repro.machine.backends.Backend`) that carries out the data
  plane of every collective, and
* the collective operations every algorithm in this package is written
  against.

All collectives follow the SPMD-by-construction convention: the caller
passes a list of length ``p`` holding each PE's contribution and receives
a list of length ``p`` with each PE's result.  Returned objects may be
shared between ranks -- treat them as read-only.

Execution backends
------------------
Every collective is split into a *control plane* (always executed here:
schedule metering into :class:`CommMetrics` and analytic alpha-beta cost
charging into :class:`SimClock`) and a *data plane* (computing the
result values), which is delegated to the machine's backend:

``backend="sim"`` (default)
    In-process execution with deterministic combination orders.  The
    meaningful time metric is the **modeled** makespan
    (:attr:`MachineReport.makespan`); wall-clock only measures driver
    overhead.
``backend="mp"``
    One OS worker process per PE; payloads physically move between the
    workers, so the same SPMD call sites execute with genuine
    parallelism.  Results are bit-identical to ``"sim"`` (identical
    combination orders) for every value collective; the one exception
    is :meth:`Machine.aggregate_exchange` with float values, whose
    merge association differs between the routing paths (integer
    counts, the package-wide case, are exactly identical).  The
    meaningful extra metric is **wall-clock**
    (``machine.backend.wall_time`` and the bench harness's ``wall_s``
    column); modeled cost is still charged so both views stay
    comparable.
``backend="tcp"``
    The same worker runtime behind length-framed stream sockets
    (workers can live on other hosts; loopback by default, host list
    via ``REPRO_TCP_HOSTS``).  Identical guarantees to ``"mp"``: both
    launchers execute the shared runtime of
    :mod:`repro.machine.backends.runtime`, so results and modeled
    costs stay bit-identical.  Transport byte accounting
    (:meth:`Machine.sync_transport`, ``report().wire_bytes``) reports
    the wire lane only -- there is no shared-memory lane between
    hosts, so ``shm_bytes`` stays zero by construction.

Select a backend from the CLI (``repro demo --backend mp``), the bench
harness (``run_algorithm(..., backend="mp")``), or directly as shown
below.  Custom transports register via
:func:`repro.machine.backends.register_backend` and are picked up by
every ``--backend`` flag (the choices come from
:func:`repro.machine.backends.available_backends`).

Example
-------
>>> from repro.machine import Machine
>>> m = Machine(p=4, seed=1)
>>> m.allreduce([1, 2, 3, 4], op="sum")
[10, 10, 10, 10]
>>> m.metrics.bottleneck_words > 0
True
>>> with Machine(p=2, seed=1, backend="mp") as real:
...     real.allreduce([1, 2], op="sum")
[3, 3]
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .backends import Backend, make_backend
from .clock import SimClock
from .ctrrng import DrawAddress
from .collectives import binomial_edges, hypercube_rounds
from .cost import CollectiveCost, CostParams, log2_ceil
from .metrics import CommMetrics, payload_words

__all__ = ["Machine", "MachineReport", "PhaseStats"]


def _canonical_dict(d: dict) -> dict:
    """Rebuild ``d`` with keys in sorted order (fall back to the given
    order for unsortable key types), so merged dicts are identical no
    matter which routing path produced them."""
    try:
        return dict(sorted(d.items()))
    except TypeError:
        return d


class _WireDict(dict):
    """Wire-format (key, value) bucket; sized by ``words_per_entry``.

    Must live at module level so real backends can pickle it across the
    process boundary.
    """

    def __init__(self, words_per_entry: float = 2.0, items=()):
        super().__init__(items)
        self.words_per_entry = words_per_entry

    def comm_words(self) -> int:
        return int(np.ceil(self.words_per_entry * len(self)))

    def __reduce__(self):
        return (_WireDict, (self.words_per_entry, tuple(self.items())))


@dataclass(frozen=True)
class PhaseStats:
    """Metrics accumulated while a named :meth:`Machine.phase` was open."""

    name: str
    time: float
    bottleneck_words: float
    bottleneck_startups: int
    total_traffic: float


@dataclass(frozen=True)
class MachineReport:
    """Summary of one run, the unit reported by benchmarks.

    ``makespan``/``work_time``/``comm_time`` are *modeled* alpha-beta
    seconds on every backend; ``backend_wall_s`` is the real seconds the
    execution backend spent moving data (only meaningful for real
    backends such as ``"mp"``; ~0 for ``"sim"``).
    """

    p: int
    makespan: float
    work_time: float
    comm_time: float
    bottleneck_words: float
    bottleneck_startups: int
    total_traffic: float
    imbalance: float
    phases: tuple[PhaseStats, ...] = ()
    backend: str = "sim"
    backend_wall_s: float = 0.0
    #: measured data-plane bytes (real backends only; 0 for ``sim``):
    #: bytes that crossed the driver's pipes vs bytes that rode
    #: shared-memory blocks instead
    wire_bytes: int = 0
    shm_bytes: int = 0

    def row(self) -> dict:
        """Flat dict form for tabular output."""
        return {
            "p": self.p,
            "time_s": self.makespan,
            "work_s": self.work_time,
            "comm_s": self.comm_time,
            "volume_words": self.bottleneck_words,
            "startups": self.bottleneck_startups,
            "traffic_words": self.total_traffic,
            "imbalance": self.imbalance,
            "backend": self.backend,
            "wire_bytes": self.wire_bytes,
            "shm_bytes": self.shm_bytes,
        }


class Machine:
    """A ``p``-PE distributed-memory machine with an alpha-beta cost model.

    Parameters
    ----------
    p:
        Number of processing elements (>= 1).
    cost:
        Machine constants; defaults to an InfiniBand-cluster calibration.
    seed:
        Master seed.  Per-PE streams are spawned deterministically from
        it, so every run with the same seed is bit-reproducible.
    backend:
        Execution backend: a name (``"sim"``, ``"mp"``) or a
        :class:`~repro.machine.backends.Backend` instance built for the
        same ``p``.  See the module docstring for the trade-offs.
    verify:
        Assert SPMD lockstep: with a real backend, every ``run_spmd``
        command also ships each PE's collective trace back to the
        driver, which raises
        :class:`~repro.machine.backends.LockstepError` naming the
        command and the diverging rank if the sequences differ.  Off by
        default (it adds a small trace payload per result frame).  The
        ``sim`` backend verifies by construction -- its data plane sees
        every rank's yield -- so the flag is a no-op there.
    pipeline_depth:
        Maximum number of SPMD commands a real backend keeps in flight
        at once (``1`` forces serial issue; ``None`` keeps the
        backend's default, currently 8).  Results and modeled costs
        (charge replay) settle in issue order, so every pipelined run
        is bit-identical to the serial one; randomness is addressed by
        counters (:mod:`repro.machine.ctrrng`), not shipped state, so
        rng consumption never gates settling and commands interleave
        freely.  The ``sim`` backend executes synchronously and
        ignores the knob.
    command_timeout:
        Per-command deadline in seconds for real backends (default
        120).  A command whose results have not fully arrived by then
        raises a structured
        :class:`~repro.machine.backends.WorkerFailure` (phase
        ``"hung"``); dead worker processes are detected much sooner by
        the liveness probe (phase ``"dead"``).  Ignored by ``sim``.
    faults:
        Deterministic fault injection: a
        :class:`~repro.machine.faults.FaultPlan` or its spec string
        (e.g. ``"kill@r1:s3"``); the ``REPRO_FAULTS`` environment
        variable installs one globally.  Ignored by ``sim``.
    journal:
        Record chunk provenance (uploads and resident/SPMD commands) on
        the driver so a pool lost to a worker failure is rebuilt
        automatically on the next command -- restored chunks are
        bit-identical (command args carry counter-based draw addresses,
        so replay re-derives the exact same randomness; no generator
        states are recorded).  Off by default; without it a broken pool raises cleanly and
        :meth:`recover` can still restore driver-held chunks.  Ignored
        by ``sim``.
    kernels:
        Kernel dispatch mode for the hot in-worker loops
        (:mod:`repro.kernels`): ``"python"`` forces the pure
        python/numpy references, ``"native"`` the jitted twins,
        ``"auto"`` picks native exactly when numba is importable.
        ``None`` (default) defers to the ``REPRO_KERNELS`` environment
        variable (itself defaulting to ``auto``).  The mode is plumbed
        to real backends' worker processes; results and modeled costs
        are bit-identical across modes by contract.
    """

    def __init__(
        self,
        p: int,
        cost: CostParams | None = None,
        seed: int = 0xC0FFEE,
        backend: str | Backend = "sim",
        verify: bool = False,
        pipeline_depth: int | None = None,
        command_timeout: float | None = None,
        faults=None,
        journal: bool = False,
        kernels: str | None = None,
    ):
        if p < 1:
            raise ValueError(f"need at least one PE, got p={p}")
        self.p = int(p)
        if kernels is not None:
            from ..kernels import MODES, set_mode

            if kernels not in MODES:
                raise ValueError(
                    f"kernels must be one of {MODES}, got {kernels!r}"
                )
            # process-global: the driver-side kernels (and the sim
            # backend's in-process workers) follow the same mode the
            # real backends plumb to their worker processes
            set_mode(kernels)
        #: requested kernel dispatch mode (None = REPRO_KERNELS / auto)
        self.kernels = kernels
        self.backend: Backend = make_backend(
            backend, self.p, verify=verify, pipeline_depth=pipeline_depth,
            command_timeout=command_timeout, faults=faults, journal=journal,
            kernels=kernels,
        )
        self.cost = cost if cost is not None else CostParams()
        self.clock = SimClock(self.p)
        self.metrics = CommMetrics(self.p)
        #: master seed, retained as the key base for counter-addressed
        #: draws (:meth:`draw_addr`)
        self.seed = int(seed)
        #: next counter-addressed draw sequence number (allocated at
        #: command-build time, in issue order)
        self._rng_seq = 0
        seq = np.random.SeedSequence(seed)
        children = seq.spawn(self.p + 1)
        #: independent random stream per PE
        self.rngs: list[np.random.Generator] = [
            np.random.Generator(np.random.PCG64(c)) for c in children[: self.p]
        ]
        #: stream whose draws are replicated on every PE (synchronized
        #: seeds; no communication is charged for using it)
        self.shared_rng = np.random.Generator(np.random.PCG64(children[self.p]))
        self._phases: list[PhaseStats] = []
        #: backend transport counters already mirrored into the metrics
        #: (so resets / repeated syncs never double-count)
        self._transport_seen: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Counter-addressed randomness
    # ------------------------------------------------------------------
    def draw_addr(self) -> DrawAddress:
        """Allocate the next counter-addressed draw sequence.

        Called at command-build time, in issue order, so the allocated
        addresses are identical on every backend and at every
        ``pipeline_depth``.  The returned
        :class:`~repro.machine.ctrrng.DrawAddress` is a tiny picklable
        ``(seed, seq)`` pair: ship it in command args and materialise
        generators where the data lives (``addr.local(rank)`` /
        ``addr.shared()``).  No state ever returns -- consuming a draw
        does not gate command settling.
        """
        seq = self._rng_seq
        self._rng_seq += 1
        return DrawAddress(self.seed, seq)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def charge_ops(self, ops) -> None:
        """Charge per-PE local work, in elementary operations.

        ``ops`` is a scalar (same on every PE) or an array of length ``p``.
        """
        self.clock.charge_local(np.asarray(ops, dtype=np.float64) * self.cost.time_per_op)

    def charge_ops_one(self, rank: int, ops: float) -> None:
        self.clock.charge_local_one(rank, float(ops) * self.cost.time_per_op)

    # ------------------------------------------------------------------
    # Internal charging helpers
    # ------------------------------------------------------------------
    def _charge(self, c: CollectiveCost) -> None:
        self.clock.sync_collective(c.time)

    def _check_len(self, values: Sequence, what: str) -> None:
        if len(values) != self.p:
            raise ValueError(
                f"{what} expects one contribution per PE "
                f"(got {len(values)}, machine has p={self.p})"
            )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all PEs."""
        self._charge(self.cost.barrier(self.p))
        self.metrics.calls["barrier"] = self.metrics.calls.get("barrier", 0) + 1

    def broadcast(self, value, root: int = 0) -> list:
        """Send ``value`` from ``root`` to every PE.

        Returns a list of length ``p``; entries may alias ``value``.
        """
        self._meter_broadcast(payload_words(value), root)
        return self.backend.broadcast(value, root)

    def _meter_broadcast(self, words: float, root: int = 0) -> None:
        """Control plane of :meth:`broadcast` (schedule + charge only)."""
        m = float(words)
        self.metrics.record_schedule(
            ((s, d, m) for _, s, d in binomial_edges(self.p, root)), "broadcast"
        )
        self._charge(self.cost.broadcast(m, self.p))

    def reduce(self, values: Sequence, op="sum", root: int = 0) -> list:
        """Reduce per-PE contributions to ``root``; other PEs get ``None``."""
        self._check_len(values, "reduce")
        m = payload_words(values[root])
        edges = [(d, s, m) for _, s, d in binomial_edges(self.p, root)]
        self.metrics.record_schedule(edges, "reduce")
        self._charge(self.cost.reduce(m, self.p))
        return self.backend.reduce(values, op, root)

    def allreduce(self, values: Sequence, op="sum") -> list:
        """Reduce per-PE contributions; every PE receives the result."""
        self._check_len(values, "allreduce")
        self._meter_allreduce(values)
        return self.backend.allreduce(values, op)

    def _meter_allreduce(
        self, values: Sequence | None = None, *, words: float | None = None
    ) -> None:
        """Control plane of :meth:`allreduce` (schedule + charge only).

        ``words`` supplies the payload size directly when the values
        themselves stayed inside the workers (SPMD steps).
        """
        m = float(words) if words is not None else payload_words(values[0])
        # reduce followed by broadcast over the same tree
        edges = [(d, s, m) for _, s, d in binomial_edges(self.p, 0)]
        edges += [(s, d, m) for _, s, d in binomial_edges(self.p, 0)]
        self.metrics.record_schedule(edges, "allreduce")
        self._charge(self.cost.allreduce(m, self.p))

    def scan(self, values: Sequence, op="sum") -> list:
        """Inclusive prefix combine: PE ``j`` receives ``op(values[0..j])``."""
        self._check_len(values, "scan")
        self._meter_scan(payload_words(values[0]))
        return self.backend.scan(values, op)

    def _meter_scan(self, words: float) -> None:
        """Control plane of :meth:`scan` (schedule + charge only)."""
        m = float(words)
        pairs = [(s, d, m) for rnd in hypercube_rounds(self.p) for s, d in rnd]
        self.metrics.record_schedule(pairs, "scan")
        self._charge(self.cost.scan(m, self.p))

    def exscan(self, values: Sequence, op="sum", initial=0) -> list:
        """Exclusive prefix combine: PE ``j`` receives ``op(values[0..j-1])``
        and PE 0 receives ``initial``."""
        inc = self.scan(values, op)  # charges once
        return [initial] + inc[:-1]

    def allreduce_exscan(
        self, values: Sequence, op="sum", initial=0
    ) -> tuple[list, list]:
        """Fused total + exclusive prefix in one hypercube schedule.

        Equivalent to ``(allreduce(values, op), exscan(values, op,
        initial))`` but pays the ``alpha log p`` startups only once: the
        recursive-doubling prefix schedule carries a second accumulator
        holding the running total (a standard scan-and-reduce fusion),
        so each round ships a two-slot tuple instead of running two
        separate collectives.  The hot call sites are the
        "count-below + tie-prefix" pairs of the selection and top-k
        extraction kernels.
        """
        self._check_len(values, "allreduce_exscan")
        self._meter_allreduce_exscan(payload_words(values[0]))
        return self.backend.allreduce_exscan(values, op, initial)

    def _meter_allreduce_exscan(self, words: float) -> None:
        """Control plane of :meth:`allreduce_exscan` (schedule + charge)."""
        m = float(words)
        pairs = [
            (s, d, 2 * m) for rnd in hypercube_rounds(self.p) for s, d in rnd
        ]
        self.metrics.record_schedule(pairs, "allreduce_exscan")
        self._charge(self.cost.allreduce_exscan(m, self.p))

    def tie_grant_prefix(
        self, strict_counts: Sequence[int], tie_counts: Sequence[int], k: int
    ) -> tuple[int, list[int]]:
        """Exact-k tie granting in one fused schedule.

        The selection/top-k extraction kernels all end the same way:
        elements strictly inside the threshold are kept, and the
        remaining quota of threshold-equal elements is granted in PE
        order.  This wraps the required ``k - sum(strict_counts)`` total
        and the exclusive prefix of ``tie_counts`` into a single
        :meth:`allreduce_exscan` of (strict, tie) pairs.

        Returns ``(quota, tie_before)`` where PE ``i`` may keep
        ``clip(quota - tie_before[i], 0, tie_counts[i])`` tied elements.
        """
        pairs = [
            np.array([s, t], dtype=np.int64)
            for s, t in zip(strict_counts, tie_counts)
        ]
        totals, prefixes = self.allreduce_exscan(
            pairs, op="sum", initial=np.zeros(2, dtype=np.int64)
        )
        return k - int(totals[0][0]), [int(pre[1]) for pre in prefixes]

    def gather(self, values: Sequence, root: int = 0, mode: str = "tree") -> list:
        """Collect all contributions at ``root`` (a list in rank order).

        ``mode="tree"`` uses a binomial tree (``alpha log p`` startups);
        ``mode="direct"`` has every PE send straight to the root
        (``alpha (p-1)`` serialized startups at the root -- the
        master-worker pattern of the Naive baseline).
        """
        self._check_len(values, "gather")
        sizes = np.array([payload_words(v) for v in values], dtype=np.float64)
        total = float(sizes.sum() - sizes[root])
        if mode == "tree":
            self._meter_gather(sizes, root)
        elif mode == "direct":
            edges = [(i, root, sizes[i]) for i in range(self.p) if i != root]
            self.metrics.record_schedule(edges, "gather_direct")
            self._charge(self.cost.gather_direct(total, self.p))
        else:
            raise ValueError(f"unknown gather mode {mode!r}")
        return self.backend.gather(values, root)

    def _meter_gather(self, words: Sequence, root: int = 0) -> None:
        """Control plane of tree-mode :meth:`gather` (schedule + charge
        only).  ``words[i]`` is PE ``i``'s payload size; used directly
        by call sites whose payloads stayed inside the workers."""
        sizes = np.asarray(words, dtype=np.float64)
        total = float(sizes.sum() - sizes[root])
        # accumulate subtree payloads bottom-up along the binomial tree
        acc = sizes.copy()
        edges = []
        for _, s, d in reversed(binomial_edges(self.p, root)):
            edges.append((d, s, acc[d]))
            acc[s] += acc[d]
        self.metrics.record_schedule(edges, "gather")
        self._charge(self.cost.gather(total, self.p))

    def allgather(self, values: Sequence) -> list:
        """All-to-all broadcast (gossiping): every PE gets every piece."""
        self._check_len(values, "allgather")
        self._meter_allgather(values)
        return self.backend.allgather(values)

    def _meter_allgather(
        self,
        values: Sequence | None = None,
        extra_words: float = 0.0,
        kind: str = "allgather",
        *,
        words: Sequence | None = None,
    ) -> None:
        """Control plane of :meth:`allgather` (schedule + charge only).

        ``extra_words`` rides every edge -- the piggybacked reduction
        accumulator of the fused :meth:`reduce_allgather`.  ``words``
        supplies per-PE payload sizes directly when the values
        themselves stayed inside the workers (SPMD steps).
        """
        if words is not None:
            sizes = np.asarray(words, dtype=np.float64)
        else:
            sizes = np.array([payload_words(v) for v in values], dtype=np.float64)
        # recursive-doubling schedule: in round r partners exchange the
        # blocks accumulated so far
        acc = sizes.copy()
        edges = []
        for rnd in hypercube_rounds(self.p):
            nxt = acc.copy()
            for i, j in rnd:
                edges.append((i, j, acc[i] + extra_words))
                edges.append((j, i, acc[j] + extra_words))
                nxt[i] = nxt[j] = acc[i] + acc[j]
            acc = nxt
        self.metrics.record_schedule(edges, kind)
        if extra_words:
            self._charge(
                self.cost.reduce_allgather(extra_words, float(sizes.mean()), self.p)
            )
        else:
            self._charge(self.cost.allgather(float(sizes.mean()), self.p))

    def reduce_allgather(
        self, values: Sequence, payloads: Sequence, op="sum"
    ) -> tuple[list, list]:
        """Fused ``allreduce(values)`` + ``allgather(payloads)``.

        One dissemination schedule carries the gathered payload blocks
        with the reduction accumulator riding along, so the ``alpha log
        p`` startups of a separate allreduce are paid only once.  The
        hot call sites are the sample-size + sample-payload pairs of the
        ``frequent/*`` pipelines (ROADMAP's remaining fusion candidate).

        Returns ``(totals, gathered)``, both replicated on every PE:
        ``totals[i]`` is the binomial-tree-order reduction of ``values``
        and ``gathered[i]`` the rank-ordered list of ``payloads``.
        """
        self._check_len(values, "reduce_allgather")
        self._check_len(payloads, "reduce_allgather")
        self._meter_allgather(
            payloads, extra_words=payload_words(values[0]), kind="reduce_allgather"
        )
        return self.backend.reduce_allgather(values, payloads, op)

    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        """Distribute ``pieces[i]`` from ``root`` to PE ``i``."""
        self._check_len(pieces, "scatter")
        sizes = np.array([payload_words(v) for v in pieces], dtype=np.float64)
        total = float(sizes.sum() - sizes[root])
        # top-down binomial tree: a parent forwards the payload bundle
        # destined to each child's subtree
        acc = sizes.copy()
        fwd = []
        for _, s, d in reversed(binomial_edges(self.p, root)):
            fwd.append((s, d, acc[d]))
            acc[s] += acc[d]
        self.metrics.record_schedule(reversed(fwd), "scatter")
        self._charge(self.cost.scatter(total, self.p))
        return self.backend.scatter(pieces, root)

    # ------------------------------------------------------------------
    # Personalized exchanges
    # ------------------------------------------------------------------
    def alltoall(self, matrix: Sequence[Sequence], mode: str = "direct") -> list[list]:
        """All-to-all personalized exchange.

        ``matrix[i][j]`` is the payload PE ``i`` sends to PE ``j``
        (``None`` for no message).  Returns ``out`` with
        ``out[j][i] == matrix[i][j]``.

        ``mode="direct"``: ``O(beta m p + alpha p)``.
        ``mode="hypercube"``: indirect delivery in ``log p`` rounds,
        ``O(beta m p log p + alpha log p)`` (Leighton [21, Thm 3.24]).
        """
        self._check_len(matrix, "alltoall")
        for i, row in enumerate(matrix):
            if len(row) != self.p:
                raise ValueError(f"alltoall row {i} has length {len(row)} != p")
        out = self.backend.alltoall(matrix)
        sizes = np.array(
            [[payload_words(matrix[i][j]) if i != j else 0 for j in range(self.p)] for i in range(self.p)],
            dtype=np.float64,
        )
        self._meter_alltoall(sizes, mode)
        return out

    def _meter_alltoall(self, sizes: np.ndarray, mode: str = "direct") -> None:
        """Control plane of :meth:`alltoall` (schedule + charge only).

        ``sizes[i][j]`` is the word count PE ``i`` sends to PE ``j``
        (diagonal ignored).  Used directly by call sites whose payloads
        stay inside the workers (SPMD ``alltoall`` yields).
        """
        sizes = np.array(sizes, dtype=np.float64, copy=True)
        np.fill_diagonal(sizes, 0.0)  # self-delivery is a local handoff
        if mode == "direct":
            edges = [
                (i, j, sizes[i][j])
                for i in range(self.p)
                for j in range(self.p)
                if i != j and sizes[i][j] > 0
            ]
            self.metrics.record_schedule(edges, "alltoall")
            sent = sizes.sum(axis=1)
            recv = sizes.sum(axis=0)
            bottleneck = float(np.maximum(sent, recv).max(initial=0.0))
            msgs = max(self.p - 1, 0)
            self._charge(CollectiveCost(self.cost.alpha * msgs + self.cost.beta * bottleneck, msgs, bottleneck))
        elif mode == "hypercube":
            self._route_hypercube_sizes(sizes, kind="alltoall_hc")
        else:
            raise ValueError(f"unknown alltoall mode {mode!r}")

    def _route_hypercube_sizes(self, sizes: np.ndarray, kind: str) -> None:
        """Charge metrics/time for hypercube-routing the ``sizes`` matrix.

        ``sizes[i][j]`` words travel from ``i`` to ``j`` along dimension-
        ordered hypercube hops; intermediate PEs forward the payload.
        """
        p = self.p
        # buckets[i][j] = words currently parked at i, destined for j
        buckets = sizes.copy()
        dims = log2_ceil(p)
        ranks = np.arange(p)
        for r in range(dims):
            bit = 1 << r
            partners = ranks ^ bit
            active = partners < p  # PEs whose round-r partner exists
            # dest_mask[i, j]: destination j differs from i in bit r
            dest_mask = ((ranks[:, None] ^ ranks[None, :]) & bit) != 0
            forwarded = np.where(dest_mask & active[:, None], buckets, 0.0)
            moved = forwarded.sum(axis=1)
            senders = ranks[active & (moved > 0)]
            edges = [(int(i), int(partners[i]), float(moved[i])) for i in senders]
            buckets = buckets - forwarded
            np.add.at(buckets, partners[senders], forwarded[senders])
            if edges:
                self.metrics.record_schedule(edges, kind)
            self.clock.sync_collective(self.cost.alpha + self.cost.beta * float(moved.max(initial=0.0)))

    def aggregate_exchange(
        self,
        dicts: Sequence[dict],
        owner: Callable[[object], int],
        combine_values: Callable = lambda a, b: a + b,
        *,
        words_per_entry: float = 2.0,
    ) -> list[dict]:
        """Route key->value maps to their owner PEs, merging on the way.

        This is the distributed-hash-table insertion primitive of
        Section 7: counts are communicated along a hypercube in
        ``ceil(log2 p)`` rounds, and colliding keys are merged
        (``combine_values``) at every intermediate hop, so each PE
        receives at most one aggregated message per round.  For ``p``
        not a power of two the exchange falls back to direct delivery.

        Parameters
        ----------
        dicts:
            Per-PE mapping of key to value (e.g. sample counts).
        owner:
            Function mapping a key to its home PE in ``0..p-1``.
        combine_values:
            Merge function for values of equal keys (default: sum).
        words_per_entry:
            Wire size of one (key, value) entry; the default 2.0 charges
            one word each.  The dSBF refinement (Section 7.4) ships
            half-word fingerprints instead of keys and passes 1.5.

        Returns
        -------
        Per-PE dict holding exactly the keys owned by that PE, with all
        contributions merged.  Keys are in canonical (sorted) order, so
        the result is identical no matter which routing path or backend
        delivered it -- exactly identical for order-insensitive merges
        (integer counts, the package-wide case); float-valued merges can
        differ in the last ulp between routing paths because the
        hypercube path associates additions differently than direct
        delivery.
        """
        self._check_len(dicts, "aggregate_exchange")
        p = self.p
        if p == 1:
            merged: dict = {}
            # repro-lint: disable=RL002 -- re-keyed merge; _canonical_dict sorts the result (see docstring: float combines may differ in the last ulp)
            for k, v in dicts[0].items():
                merged[k] = combine_values(merged[k], v) if k in merged else v
            return [_canonical_dict(merged)]

        # Pre-split each PE's dict by destination
        owner_cache: dict = {}

        def _owner(k):
            try:
                return owner_cache[k]
            except KeyError:
                o = owner(k)
                if not (0 <= o < p):
                    raise ValueError(f"owner({k!r}) = {o} out of range 0..{p - 1}")
                owner_cache[k] = o
                return o

        if p & (p - 1) != 0:
            return self._aggregate_direct(dicts, _owner, combine_values, words_per_entry)

        # hypercube routing with merge-on-the-way
        held: list[dict[int, dict]] = []  # held[i][dest] -> dict for dest
        for i in range(p):
            byd: dict[int, dict] = {}
            # repro-lint: disable=RL002 -- destination split re-keys every entry; bucket order is canonicalized at delivery
            for k, v in dicts[i].items():
                d = _owner(k)
                bucket = byd.setdefault(d, {})
                bucket[k] = combine_values(bucket[k], v) if k in bucket else v
            held.append(byd)

        # A real backend additionally ships the pre-aggregated buckets to
        # their owners; snapshot them now (copies -- the walk below merges
        # into these dicts) so the physical delivery reuses the split
        # instead of re-splitting every entry.
        wire_matrix = None
        if self.backend.is_real:
            wire_matrix = [[None] * p for _ in range(p)]
            for i in range(p):
                # repro-lint: disable=RL002 -- snapshot indexed by destination, not order-dependent
                for d, bucket in held[i].items():
                    wire_matrix[i][d] = dict(bucket)

        dims = log2_ceil(p)
        for r in range(dims):
            bit = 1 << r
            edges = []
            max_words = 0.0
            outgoing: list[dict[int, dict]] = [dict() for _ in range(p)]
            for i in range(p):
                partner = i ^ bit
                send: dict[int, dict] = {}
                n_entries = 0
                for d in [d for d in held[i] if (d ^ i) & bit]:
                    bucket = held[i].pop(d)
                    send[d] = bucket
                    n_entries += len(bucket)
                if send:
                    words = words_per_entry * n_entries
                    edges.append((i, partner, words))
                    max_words = max(max_words, words)
                    # repro-lint: disable=RL002 -- hypercube forward merge re-keys per destination; final dicts are canonicalized (documented last-ulp caveat for float combines)
                    for d, bucket in send.items():
                        tgt = outgoing[partner].setdefault(d, {})
                        # repro-lint: disable=RL002 -- see above
                        for k, v in bucket.items():
                            tgt[k] = combine_values(tgt[k], v) if k in tgt else v
            # merge deliveries into recipients
            merge_ops = np.zeros(p, dtype=np.float64)
            for i in range(p):
                # repro-lint: disable=RL002 -- delivery merge re-keys per destination; final dicts are canonicalized
                for d, bucket in outgoing[i].items():
                    tgt = held[i].setdefault(d, {})
                    # repro-lint: disable=RL002 -- see above
                    for k, v in bucket.items():
                        tgt[k] = combine_values(tgt[k], v) if k in tgt else v
                    # merge work: one hash probe per entry
                    merge_ops[i] += len(bucket)
            self.charge_ops(merge_ops)
            if edges:
                self.metrics.record_schedule(edges, "dht_exchange")
            self.clock.sync_collective(self.cost.alpha + self.cost.beta * max_words)

        out = [held[i].get(i, {}) for i in range(p)]
        if wire_matrix is not None:
            # The hypercube walk above is the charging model; on a real
            # backend the (already aggregated) buckets additionally make
            # the physical trip to their owners through the workers.
            received = self.backend.alltoall(wire_matrix)
            out = [
                self._merge_received(received[j], combine_values)[0]
                for j in range(p)
            ]
        return [_canonical_dict(d) for d in out]

    def _split_by_owner(self, dicts, owner_fn, combine_values, make_bucket):
        """Per-PE destination matrix: ``matrix[i][d]`` holds PE ``i``'s
        locally pre-aggregated (key, value) bucket for owner ``d``."""
        p = self.p
        matrix: list[list] = [[None] * p for _ in range(p)]
        for i in range(p):
            for k, v in dicts[i].items():
                d = owner_fn(k)
                bucket = matrix[i][d]
                if bucket is None:
                    bucket = matrix[i][d] = make_bucket()
                bucket[k] = combine_values(bucket[k], v) if k in bucket else v
        return matrix

    @staticmethod
    def _merge_received(received_row, combine_values) -> tuple[dict, int]:
        """Merge one owner's received buckets in rank order; returns the
        merged dict plus the number of entries processed."""
        merged: dict = {}
        n_entries = 0
        for piece in received_row:
            if piece is None:
                continue
            for k, v in piece.items():
                merged[k] = combine_values(merged[k], v) if k in merged else v
            n_entries += len(piece)
        return merged, n_entries

    def _aggregate_direct(
        self, dicts, owner_fn, combine_values, words_per_entry: float = 2.0
    ) -> list[dict]:
        """Direct-delivery fallback of :meth:`aggregate_exchange`."""
        matrix = self._split_by_owner(
            dicts, owner_fn, combine_values, lambda: _WireDict(words_per_entry)
        )
        received = self.alltoall(matrix, mode="direct")
        out = []
        for j in range(self.p):
            merged, n_entries = self._merge_received(received[j], combine_values)
            self.charge_ops_one(j, n_entries)
            out.append(_canonical_dict(merged))
        return out

    def reduce_tree(
        self,
        values: Sequence,
        merge: Callable,
        root: int = 0,
        kind: str = "reduce_merge",
    ):
        """Tree reduction with a *content-dependent* merge (e.g. dict
        union): payloads are actually sent edge by edge along the
        binomial tree, so the charged volume reflects the merged sizes
        at every hop -- this is the Naive-Tree aggregation of
        Section 10.2 and the paper's "aggregate the counts in each step
        to keep communication volume low".

        Returns the merged value at ``root`` (list entry; others ``None``).
        """
        self._check_len(values, "reduce_tree")
        acc = list(values)
        for _, parent, child in reversed(binomial_edges(self.p, root)):
            payload = acc[child]
            w = payload_words(payload)
            if child != parent:
                self.metrics.record_p2p(child, parent, w, kind)
                self.clock.charge_p2p(child, parent, self.cost.p2p(w))
                payload = self.backend.p2p(child, parent, payload)
            merged = merge(acc[parent], payload)
            # merging cost: proportional to the incoming payload
            self.charge_ops_one(parent, max(1.0, w))
            acc[parent] = merged
            acc[child] = None
        out: list = [None] * self.p
        out[root] = acc[root]
        return out

    # ------------------------------------------------------------------
    # Deferred charging (resident SPMD steps)
    # ------------------------------------------------------------------
    def replay_charges(self, logs: Sequence[Sequence[tuple]]) -> None:
        """Re-play the cost model from per-PE charge logs.

        A resident SPMD kernel runs many rounds of local work and
        embedded collectives inside one backend command; the driver
        cannot charge step by step, so the kernel records what it did
        and the driver replays the model afterwards in the exact
        execution order (interleaving local charges with collective
        synchronizations, so straggler effects land where they would
        have).  ``logs[i]`` is rank ``i``'s entry list; all ranks must
        have appended the same entry sequence (SPMD discipline):

        * ``("ops", x)`` -- ``x`` elementary operations of local work on
          this rank (:meth:`charge_ops`),
        * ``("allgather", w)`` -- an embedded allgather whose local
          contribution was ``w`` words,
        * ``("allreduce", w)`` / ``("allreduce_exscan", w)`` /
          ``("scan", w)`` -- embedded reduction-type collectives of
          ``w`` payload words (replicated entries; rank 0's word count
          sizes the schedule, matching what the live collective would
          have metered),
        * ``("broadcast", w, root)`` -- a rooted broadcast of ``w``
          words (replicated entries),
        * ``("gather", w, root)`` -- a tree gather where ``w`` is *this
          rank's* contribution (per-rank word counts, shared ``root``).

        Modeled time and metered volume are identical on every backend
        because the log contains only small scalars.
        """
        self._check_len(logs, "replay_charges")
        length = len(logs[0])
        if any(len(entries) != length for entries in logs):
            raise ValueError("charge logs diverged across ranks")
        for t in range(length):
            kind = logs[0][t][0]
            if kind == "ops":
                self.charge_ops([float(logs[i][t][1]) for i in range(self.p)])
            elif kind == "allgather":
                self._meter_allgather(
                    words=[float(logs[i][t][1]) for i in range(self.p)]
                )
            elif kind == "allreduce":
                self._meter_allreduce(words=float(logs[0][t][1]))
            elif kind == "allreduce_exscan":
                self._meter_allreduce_exscan(float(logs[0][t][1]))
            elif kind == "scan":
                self._meter_scan(float(logs[0][t][1]))
            elif kind == "broadcast":
                self._meter_broadcast(float(logs[0][t][1]), int(logs[0][t][2]))
            elif kind == "gather":
                self._meter_gather(
                    [float(logs[i][t][1]) for i in range(self.p)],
                    int(logs[0][t][2]),
                )
            else:
                raise ValueError(f"unknown charge-log entry kind {kind!r}")

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload, kind: str = "p2p"):
        """Transfer ``payload`` from PE ``src`` to PE ``dst``."""
        if not (0 <= src < self.p and 0 <= dst < self.p):
            raise ValueError(f"ranks out of range: {src} -> {dst} with p={self.p}")
        w = payload_words(payload)
        if src != dst:
            self.metrics.record_p2p(src, dst, w, kind)
            self.clock.charge_p2p(src, dst, self.cost.p2p(w))
            payload = self.backend.p2p(src, dst, payload)
        return payload

    # ------------------------------------------------------------------
    # Phases & reporting
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def phase(self, name: str):
        """Attribute the metrics/time of a ``with`` block to ``name``."""
        snap0 = self.metrics.snapshot()
        t0 = self.clock.makespan
        yield
        diff = self.metrics.snapshot() - snap0
        self._phases.append(
            PhaseStats(
                name=name,
                time=self.clock.makespan - t0,
                bottleneck_words=diff.bottleneck_words,
                bottleneck_startups=diff.bottleneck_startups,
                total_traffic=diff.total_traffic,
            )
        )

    def sync_transport(self) -> None:
        """Mirror the backend's measured transport counters into the
        metrics (:attr:`CommMetrics.wire_bytes` / ``shm_bytes``), delta
        by delta so repeated syncs and :meth:`reset` never double-count.
        A no-op for in-process backends, which move no bytes.
        """
        for kind, tb in self.backend.transport_bytes().items():
            wire_seen, shm_seen = self._transport_seen.get(kind, (0, 0))
            self.metrics.record_transport(
                kind, tb["wire"] - wire_seen, tb["shm"] - shm_seen
            )
            self._transport_seen[kind] = (tb["wire"], tb["shm"])

    def report(self) -> MachineReport:
        """Snapshot of modeled time and communication for this run."""
        self.sync_transport()
        return MachineReport(
            p=self.p,
            makespan=self.clock.makespan,
            work_time=float(self.clock.work_time.max()),
            comm_time=float(self.clock.comm_time.max()),
            bottleneck_words=self.metrics.bottleneck_words,
            bottleneck_startups=self.metrics.bottleneck_startups,
            total_traffic=self.metrics.total_traffic,
            imbalance=self.clock.imbalance,
            phases=tuple(self._phases),
            backend=self.backend.name,
            backend_wall_s=self.backend.wall_time,
            wire_bytes=sum(self.metrics.wire_bytes.values()),
            shm_bytes=sum(self.metrics.shm_bytes.values()),
        )

    def reset(self) -> None:
        """Zero clocks, metrics and phase records (RNG streams keep going)."""
        self.clock.reset()
        self.metrics.reset()
        self._phases.clear()
        self.backend.wall_time = 0.0
        # re-baseline the transport mirror so pre-reset traffic (input
        # staging, pool warm-up) is excluded like the other counters
        for kind, tb in self.backend.transport_bytes().items():
            self._transport_seen[kind] = (tb["wire"], tb["shm"])

    def close(self) -> None:
        """Release backend resources (worker processes for ``"mp"``)."""
        self.backend.close()

    def recover(self) -> None:
        """Restart a worker pool broken by a
        :class:`~repro.machine.backends.WorkerFailure` and restore its
        resident chunks (driver-held chunks always; worker-computed
        chunks when ``journal=True``).  No-op on backends without a
        pool (``sim``)."""
        recover = getattr(self.backend, "recover", None)
        if recover is not None:
            recover()

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(p={self.p}, backend={self.backend.name!r}, "
            f"makespan={self.clock.makespan:.3e}s)"
        )
