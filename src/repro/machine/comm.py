"""The simulated distributed-memory machine.

:class:`Machine` bundles ``p`` processing elements (PEs) with

* independent per-PE random generator streams (plus one *shared* stream
  whose draws are identical on every PE, used where the paper says
  "choose the same random number on all PEs"),
* per-PE simulated clocks (:class:`repro.machine.clock.SimClock`),
* per-PE communication metering (:class:`repro.machine.metrics.CommMetrics`),
* the alpha-beta cost model (:class:`repro.machine.cost.CostParams`), and
* the collective operations every algorithm in this package is written
  against.

All collectives follow the SPMD-by-construction convention: the caller
passes a list of length ``p`` holding each PE's contribution and receives
a list of length ``p`` with each PE's result.  Returned objects may be
shared between ranks -- treat them as read-only.

Example
-------
>>> from repro.machine import Machine
>>> m = Machine(p=4, seed=1)
>>> m.allreduce([1, 2, 3, 4], op="sum")
[10, 10, 10, 10]
>>> m.metrics.bottleneck_words > 0
True
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .clock import SimClock
from .collectives import (
    binomial_edges,
    combine,
    hypercube_rounds,
    inclusive_scan,
    tree_reduce_order,
)
from .cost import CollectiveCost, CostParams, log2_ceil
from .metrics import CommMetrics, payload_words

__all__ = ["Machine", "MachineReport", "PhaseStats"]


@dataclass(frozen=True)
class PhaseStats:
    """Metrics accumulated while a named :meth:`Machine.phase` was open."""

    name: str
    time: float
    bottleneck_words: float
    bottleneck_startups: int
    total_traffic: float


@dataclass(frozen=True)
class MachineReport:
    """Summary of one simulated run, the unit reported by benchmarks."""

    p: int
    makespan: float
    work_time: float
    comm_time: float
    bottleneck_words: float
    bottleneck_startups: int
    total_traffic: float
    imbalance: float
    phases: tuple[PhaseStats, ...] = ()

    def row(self) -> dict:
        """Flat dict form for tabular output."""
        return {
            "p": self.p,
            "time_s": self.makespan,
            "work_s": self.work_time,
            "comm_s": self.comm_time,
            "volume_words": self.bottleneck_words,
            "startups": self.bottleneck_startups,
            "traffic_words": self.total_traffic,
            "imbalance": self.imbalance,
        }


class Machine:
    """A ``p``-PE distributed-memory machine with an alpha-beta cost model.

    Parameters
    ----------
    p:
        Number of processing elements (>= 1).
    cost:
        Machine constants; defaults to an InfiniBand-cluster calibration.
    seed:
        Master seed.  Per-PE streams are spawned deterministically from
        it, so every run with the same seed is bit-reproducible.
    """

    def __init__(self, p: int, cost: CostParams | None = None, seed: int = 0xC0FFEE):
        if p < 1:
            raise ValueError(f"need at least one PE, got p={p}")
        self.p = int(p)
        self.cost = cost if cost is not None else CostParams()
        self.clock = SimClock(self.p)
        self.metrics = CommMetrics(self.p)
        seq = np.random.SeedSequence(seed)
        children = seq.spawn(self.p + 1)
        #: independent random stream per PE
        self.rngs: list[np.random.Generator] = [
            np.random.Generator(np.random.PCG64(c)) for c in children[: self.p]
        ]
        #: stream whose draws are replicated on every PE (synchronized
        #: seeds; no communication is charged for using it)
        self.shared_rng = np.random.Generator(np.random.PCG64(children[self.p]))
        self._phases: list[PhaseStats] = []

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def charge_ops(self, ops) -> None:
        """Charge per-PE local work, in elementary operations.

        ``ops`` is a scalar (same on every PE) or an array of length ``p``.
        """
        self.clock.charge_local(np.asarray(ops, dtype=np.float64) * self.cost.time_per_op)

    def charge_ops_one(self, rank: int, ops: float) -> None:
        self.clock.charge_local_one(rank, float(ops) * self.cost.time_per_op)

    # ------------------------------------------------------------------
    # Internal charging helpers
    # ------------------------------------------------------------------
    def _charge(self, c: CollectiveCost) -> None:
        self.clock.sync_collective(c.time)

    def _check_len(self, values: Sequence, what: str) -> None:
        if len(values) != self.p:
            raise ValueError(
                f"{what} expects one contribution per PE "
                f"(got {len(values)}, machine has p={self.p})"
            )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all PEs."""
        self._charge(self.cost.barrier(self.p))
        self.metrics.calls["barrier"] = self.metrics.calls.get("barrier", 0) + 1

    def broadcast(self, value, root: int = 0) -> list:
        """Send ``value`` from ``root`` to every PE.

        Returns a list of length ``p``; entries may alias ``value``.
        """
        m = payload_words(value)
        self.metrics.record_schedule(
            ((s, d, m) for _, s, d in binomial_edges(self.p, root)), "broadcast"
        )
        self._charge(self.cost.broadcast(m, self.p))
        return [value] * self.p

    def reduce(self, values: Sequence, op="sum", root: int = 0) -> list:
        """Reduce per-PE contributions to ``root``; other PEs get ``None``."""
        self._check_len(values, "reduce")
        m = payload_words(values[root])
        edges = [(d, s, m) for _, s, d in binomial_edges(self.p, root)]
        self.metrics.record_schedule(edges, "reduce")
        self._charge(self.cost.reduce(m, self.p))
        result = tree_reduce_order(values, op)
        out: list = [None] * self.p
        out[root] = result
        return out

    def allreduce(self, values: Sequence, op="sum") -> list:
        """Reduce per-PE contributions; every PE receives the result."""
        self._check_len(values, "allreduce")
        m = payload_words(values[0])
        # reduce followed by broadcast over the same tree
        edges = [(d, s, m) for _, s, d in binomial_edges(self.p, 0)]
        edges += [(s, d, m) for _, s, d in binomial_edges(self.p, 0)]
        self.metrics.record_schedule(edges, "allreduce")
        self._charge(self.cost.allreduce(m, self.p))
        result = tree_reduce_order(values, op)
        return [result] * self.p

    def scan(self, values: Sequence, op="sum") -> list:
        """Inclusive prefix combine: PE ``j`` receives ``op(values[0..j])``."""
        self._check_len(values, "scan")
        m = payload_words(values[0])
        pairs = [(s, d, m) for rnd in hypercube_rounds(self.p) for s, d in rnd]
        self.metrics.record_schedule(pairs, "scan")
        self._charge(self.cost.scan(m, self.p))
        return inclusive_scan(values, op)

    def exscan(self, values: Sequence, op="sum", initial=0) -> list:
        """Exclusive prefix combine: PE ``j`` receives ``op(values[0..j-1])``
        and PE 0 receives ``initial``."""
        inc = self.scan(values, op)  # charges once
        return [initial] + inc[:-1]

    def gather(self, values: Sequence, root: int = 0, mode: str = "tree") -> list:
        """Collect all contributions at ``root`` (a list in rank order).

        ``mode="tree"`` uses a binomial tree (``alpha log p`` startups);
        ``mode="direct"`` has every PE send straight to the root
        (``alpha (p-1)`` serialized startups at the root -- the
        master-worker pattern of the Naive baseline).
        """
        self._check_len(values, "gather")
        sizes = np.array([payload_words(v) for v in values], dtype=np.float64)
        total = float(sizes.sum() - sizes[root])
        if mode == "tree":
            # accumulate subtree payloads bottom-up along the binomial tree
            acc = sizes.copy()
            edges = []
            for _, s, d in reversed(binomial_edges(self.p, root)):
                edges.append((d, s, acc[d]))
                acc[s] += acc[d]
            self.metrics.record_schedule(edges, "gather")
            self._charge(self.cost.gather(total, self.p))
        elif mode == "direct":
            edges = [(i, root, sizes[i]) for i in range(self.p) if i != root]
            self.metrics.record_schedule(edges, "gather_direct")
            self._charge(self.cost.gather_direct(total, self.p))
        else:
            raise ValueError(f"unknown gather mode {mode!r}")
        out: list = [None] * self.p
        out[root] = list(values)
        return out

    def allgather(self, values: Sequence) -> list:
        """All-to-all broadcast (gossiping): every PE gets every piece."""
        self._check_len(values, "allgather")
        sizes = np.array([payload_words(v) for v in values], dtype=np.float64)
        # recursive-doubling schedule: in round r partners exchange the
        # blocks accumulated so far
        acc = sizes.copy()
        edges = []
        for rnd in hypercube_rounds(self.p):
            nxt = acc.copy()
            for i, j in rnd:
                edges.append((i, j, acc[i]))
                edges.append((j, i, acc[j]))
                nxt[i] = nxt[j] = acc[i] + acc[j]
            acc = nxt
        self.metrics.record_schedule(edges, "allgather")
        self._charge(self.cost.allgather(float(sizes.mean()), self.p))
        result = list(values)
        return [result] * self.p

    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        """Distribute ``pieces[i]`` from ``root`` to PE ``i``."""
        self._check_len(pieces, "scatter")
        sizes = np.array([payload_words(v) for v in pieces], dtype=np.float64)
        total = float(sizes.sum() - sizes[root])
        # top-down binomial tree: a parent forwards the payload bundle
        # destined to each child's subtree
        acc = sizes.copy()
        fwd = []
        for _, s, d in reversed(binomial_edges(self.p, root)):
            fwd.append((s, d, acc[d]))
            acc[s] += acc[d]
        self.metrics.record_schedule(reversed(fwd), "scatter")
        self._charge(self.cost.scatter(total, self.p))
        return list(pieces)

    # ------------------------------------------------------------------
    # Personalized exchanges
    # ------------------------------------------------------------------
    def alltoall(self, matrix: Sequence[Sequence], mode: str = "direct") -> list[list]:
        """All-to-all personalized exchange.

        ``matrix[i][j]`` is the payload PE ``i`` sends to PE ``j``
        (``None`` for no message).  Returns ``out`` with
        ``out[j][i] == matrix[i][j]``.

        ``mode="direct"``: ``O(beta m p + alpha p)``.
        ``mode="hypercube"``: indirect delivery in ``log p`` rounds,
        ``O(beta m p log p + alpha log p)`` (Leighton [21, Thm 3.24]).
        """
        self._check_len(matrix, "alltoall")
        for i, row in enumerate(matrix):
            if len(row) != self.p:
                raise ValueError(f"alltoall row {i} has length {len(row)} != p")
        out: list[list] = [[matrix[i][j] for i in range(self.p)] for j in range(self.p)]
        sizes = np.array(
            [[payload_words(matrix[i][j]) if i != j else 0 for j in range(self.p)] for i in range(self.p)],
            dtype=np.float64,
        )
        if mode == "direct":
            edges = [
                (i, j, sizes[i][j])
                for i in range(self.p)
                for j in range(self.p)
                if i != j and sizes[i][j] > 0
            ]
            self.metrics.record_schedule(edges, "alltoall")
            sent = sizes.sum(axis=1)
            recv = sizes.sum(axis=0)
            bottleneck = float(np.maximum(sent, recv).max(initial=0.0))
            msgs = max(self.p - 1, 0)
            self._charge(CollectiveCost(self.cost.alpha * msgs + self.cost.beta * bottleneck, msgs, bottleneck))
        elif mode == "hypercube":
            self._route_hypercube_sizes(sizes, kind="alltoall_hc")
        else:
            raise ValueError(f"unknown alltoall mode {mode!r}")
        return out

    def _route_hypercube_sizes(self, sizes: np.ndarray, kind: str) -> None:
        """Charge metrics/time for hypercube-routing the ``sizes`` matrix.

        ``sizes[i][j]`` words travel from ``i`` to ``j`` along dimension-
        ordered hypercube hops; intermediate PEs forward the payload.
        """
        p = self.p
        # buckets[i][j] = words currently parked at i, destined for j
        buckets = sizes.copy()
        dims = log2_ceil(p)
        for r in range(dims):
            bit = 1 << r
            edges = []
            moved = np.zeros(p)
            newbuckets = buckets.copy()
            for i in range(p):
                partner = i ^ bit
                if partner >= p:
                    continue
                # forward everything whose destination differs in bit r
                dest_mask = np.array([(j ^ i) & bit != 0 for j in range(p)])
                w = float(buckets[i][dest_mask].sum())
                if w > 0:
                    edges.append((i, partner, w))
                    newbuckets[partner][dest_mask] += buckets[i][dest_mask]
                    newbuckets[i][dest_mask] = 0
                moved[i] = w
            buckets = newbuckets
            if edges:
                self.metrics.record_schedule(edges, kind)
            self.clock.sync_collective(self.cost.alpha + self.cost.beta * float(moved.max(initial=0.0)))

    def aggregate_exchange(
        self,
        dicts: Sequence[dict],
        owner: Callable[[object], int],
        combine_values: Callable = lambda a, b: a + b,
        *,
        words_per_entry: float = 2.0,
    ) -> list[dict]:
        """Route key->value maps to their owner PEs, merging on the way.

        This is the distributed-hash-table insertion primitive of
        Section 7: counts are communicated along a hypercube in
        ``ceil(log2 p)`` rounds, and colliding keys are merged
        (``combine_values``) at every intermediate hop, so each PE
        receives at most one aggregated message per round.  For ``p``
        not a power of two the exchange falls back to direct delivery.

        Parameters
        ----------
        dicts:
            Per-PE mapping of key to value (e.g. sample counts).
        owner:
            Function mapping a key to its home PE in ``0..p-1``.
        combine_values:
            Merge function for values of equal keys (default: sum).
        words_per_entry:
            Wire size of one (key, value) entry; the default 2.0 charges
            one word each.  The dSBF refinement (Section 7.4) ships
            half-word fingerprints instead of keys and passes 1.5.

        Returns
        -------
        Per-PE dict holding exactly the keys owned by that PE, with all
        contributions merged.
        """
        self._check_len(dicts, "aggregate_exchange")
        p = self.p
        if p == 1:
            merged: dict = {}
            for k, v in dicts[0].items():
                merged[k] = combine_values(merged[k], v) if k in merged else v
            return [merged]

        # Pre-split each PE's dict by destination
        owner_cache: dict = {}

        def _owner(k):
            try:
                return owner_cache[k]
            except KeyError:
                o = owner(k)
                if not (0 <= o < p):
                    raise ValueError(f"owner({k!r}) = {o} out of range 0..{p - 1}")
                owner_cache[k] = o
                return o

        if p & (p - 1) != 0:
            return self._aggregate_direct(dicts, _owner, combine_values, words_per_entry)

        # hypercube routing with merge-on-the-way
        held: list[dict[int, dict]] = []  # held[i][dest] -> dict for dest
        for i in range(p):
            byd: dict[int, dict] = {}
            for k, v in dicts[i].items():
                d = _owner(k)
                bucket = byd.setdefault(d, {})
                bucket[k] = combine_values(bucket[k], v) if k in bucket else v
            held.append(byd)

        dims = log2_ceil(p)
        for r in range(dims):
            bit = 1 << r
            edges = []
            max_words = 0.0
            outgoing: list[dict[int, dict]] = [dict() for _ in range(p)]
            for i in range(p):
                partner = i ^ bit
                send: dict[int, dict] = {}
                for d in list(held[i].keys()):
                    if (d ^ i) & bit:
                        send[d] = held[i].pop(d)
                if send:
                    words = words_per_entry * sum(len(b) for b in send.values())
                    edges.append((i, partner, words))
                    max_words = max(max_words, words)
                    for d, bucket in send.items():
                        tgt = outgoing[partner].setdefault(d, {})
                        for k, v in bucket.items():
                            tgt[k] = combine_values(tgt[k], v) if k in tgt else v
            # merge deliveries into recipients
            for i in range(p):
                for d, bucket in outgoing[i].items():
                    tgt = held[i].setdefault(d, {})
                    for k, v in bucket.items():
                        tgt[k] = combine_values(tgt[k], v) if k in tgt else v
                    # charge merge work: one hash probe per entry
                    self.charge_ops_one(i, len(bucket))
            if edges:
                self.metrics.record_schedule(edges, "dht_exchange")
            self.clock.sync_collective(self.cost.alpha + self.cost.beta * max_words)

        return [held[i].get(i, {}) for i in range(p)]

    def _aggregate_direct(
        self, dicts, owner_fn, combine_values, words_per_entry: float = 2.0
    ) -> list[dict]:
        """Direct-delivery fallback of :meth:`aggregate_exchange`."""
        p = self.p

        class _Wire(dict):
            def comm_words(self):
                return int(np.ceil(words_per_entry * len(self)))

        matrix: list[list] = [[None] * p for _ in range(p)]
        for i in range(p):
            byd: dict[int, dict] = {}
            for k, v in dicts[i].items():
                d = owner_fn(k)
                bucket = byd.setdefault(d, _Wire())
                bucket[k] = combine_values(bucket[k], v) if k in bucket else v
            for d, bucket in byd.items():
                matrix[i][d] = bucket
        received = self.alltoall(matrix, mode="direct")
        out = []
        for j in range(p):
            merged: dict = {}
            n_entries = 0
            for piece in received[j]:
                if piece is None:
                    continue
                for k, v in piece.items():
                    merged[k] = combine_values(merged[k], v) if k in merged else v
                n_entries += len(piece)
            self.charge_ops_one(j, n_entries)
            out.append(merged)
        return out

    def reduce_tree(
        self,
        values: Sequence,
        merge: Callable,
        root: int = 0,
        kind: str = "reduce_merge",
    ):
        """Tree reduction with a *content-dependent* merge (e.g. dict
        union): payloads are actually sent edge by edge along the
        binomial tree, so the charged volume reflects the merged sizes
        at every hop -- this is the Naive-Tree aggregation of
        Section 10.2 and the paper's "aggregate the counts in each step
        to keep communication volume low".

        Returns the merged value at ``root`` (list entry; others ``None``).
        """
        self._check_len(values, "reduce_tree")
        acc = list(values)
        for _, parent, child in reversed(binomial_edges(self.p, root)):
            payload = acc[child]
            w = payload_words(payload)
            if child != parent:
                self.metrics.record_p2p(child, parent, w, kind)
                self.clock.charge_p2p(child, parent, self.cost.p2p(w))
            merged = merge(acc[parent], payload)
            # merging cost: proportional to the incoming payload
            self.charge_ops_one(parent, max(1.0, w))
            acc[parent] = merged
            acc[child] = None
        out: list = [None] * self.p
        out[root] = acc[root]
        return out

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload, kind: str = "p2p"):
        """Transfer ``payload`` from PE ``src`` to PE ``dst``."""
        if not (0 <= src < self.p and 0 <= dst < self.p):
            raise ValueError(f"ranks out of range: {src} -> {dst} with p={self.p}")
        w = payload_words(payload)
        if src != dst:
            self.metrics.record_p2p(src, dst, w, kind)
            self.clock.charge_p2p(src, dst, self.cost.p2p(w))
        return payload

    # ------------------------------------------------------------------
    # Phases & reporting
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def phase(self, name: str):
        """Attribute the metrics/time of a ``with`` block to ``name``."""
        snap0 = self.metrics.snapshot()
        t0 = self.clock.makespan
        yield
        diff = self.metrics.snapshot() - snap0
        self._phases.append(
            PhaseStats(
                name=name,
                time=self.clock.makespan - t0,
                bottleneck_words=diff.bottleneck_words,
                bottleneck_startups=diff.bottleneck_startups,
                total_traffic=diff.total_traffic,
            )
        )

    def report(self) -> MachineReport:
        """Snapshot of modeled time and communication for this run."""
        return MachineReport(
            p=self.p,
            makespan=self.clock.makespan,
            work_time=float(self.clock.work_time.max()),
            comm_time=float(self.clock.comm_time.max()),
            bottleneck_words=self.metrics.bottleneck_words,
            bottleneck_startups=self.metrics.bottleneck_startups,
            total_traffic=self.metrics.total_traffic,
            imbalance=self.clock.imbalance,
            phases=tuple(self._phases),
        )

    def reset(self) -> None:
        """Zero clocks, metrics and phase records (RNG streams keep going)."""
        self.clock.reset()
        self.metrics.reset()
        self._phases.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(p={self.p}, makespan={self.clock.makespan:.3e}s)"
