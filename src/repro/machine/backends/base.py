"""The execution-backend protocol: who actually moves the bytes.

A :class:`~repro.machine.comm.Machine` splits every collective into two
planes:

* the **control plane** (cost charging, per-PE clocks, communication
  metering) stays in :class:`~repro.machine.comm.Machine` -- it is what
  makes the alpha-beta model's predictions reportable regardless of how
  the data plane is executed;
* the **data plane** (computing the per-PE result values of a
  collective) is delegated to a :class:`Backend`.

Backends implement the same list-in/list-out SPMD convention as the
machine itself: each data-plane method receives one contribution per PE
and returns one result per PE.  Three backends ship with the package:

``sim`` (:class:`~repro.machine.backends.sim.SimBackend`)
    Computes results in-process with deterministic combination orders
    (binomial-tree reductions, linear prefix scans).  The default; all
    reported *time* is modeled alpha-beta cost.

``mp`` (:class:`~repro.machine.backends.mp.MultiprocessingBackend`)
    Runs one OS worker process per PE; collectives physically move
    pickled payloads between the workers.  Combination orders replicate
    the simulated backend exactly, so results are bit-identical for the
    package's integer/array payloads.  Reported *wall-clock* reflects
    genuine parallel execution (the modeled cost is still charged, so
    both metrics stay available).

``tcp`` (:class:`~repro.machine.backends.tcp.TcpBackend`)
    The same worker runtime over length-framed stream sockets, so
    workers can live on other hosts (host list via ``hosts=`` /
    ``REPRO_TCP_HOSTS``; loopback by default).  Bit-identical to the
    other two backends as well.

Real backends share one three-layer architecture: the *transport*
(:mod:`repro.machine.backends.transport`) frames objects onto byte
streams, the *worker runtime* (:mod:`repro.machine.backends.runtime`)
owns the command loop, resident chunk store, exchange schedules and
driver dispatch, and a thin *launcher* per transport (``mp.py``,
``tcp.py``) wires workers to channels.

Reduction ``op`` arguments follow :data:`repro.machine.collectives.
REDUCTION_OPS`: the strings ``"sum"``/``"min"``/``"max"`` or a callable.
Real backends require ops and payloads to be picklable; the named
string ops always are.
"""

from __future__ import annotations

import abc
import contextlib
import weakref
from typing import Callable, Sequence

__all__ = ["Backend", "ChunkRef", "LockstepError", "PendingValues"]


class PendingValues:
    """Handle to the per-PE values of a submitted backend command.

    Returned by :meth:`Backend.submit_spmd` /
    :meth:`Backend.submit_map_resident`.  ``wait()`` blocks until the
    command completed and returns the values (idempotent; a failed
    command keeps raising on every wait).  Eager backends hand out
    pre-resolved handles, so call sites written against the submit API
    overlap commands where the backend pipelines and degrade to exact
    serial execution where it does not.

    Contract for overlapped call sites: wait handles in **submit
    order** before consuming their values, so charge-log replay
    observes the same order as serial execution (the bit-identity
    guarantee across backends; draws are counter-addressed at command
    build, so randomness is settle-order-free by construction).
    """

    __slots__ = ("_thunk", "_values")

    def __init__(self, thunk: Callable[[], object]):
        self._thunk = thunk
        self._values = None

    @classmethod
    def resolved(cls, values) -> "PendingValues":
        """A handle whose command already completed (eager backends)."""
        pending = cls(None)
        pending._values = values
        return pending

    @property
    def done(self) -> bool:
        return self._thunk is None

    def wait(self):
        if self._thunk is not None:
            self._values = self._thunk()
            self._thunk = None
        return self._values


class LockstepError(ValueError):
    """SPMD ranks diverged from the lockstep collective sequence.

    Raised by the sim data plane (which drives every rank's generator
    and sees all yields at once) and by real backends running with
    ``verify=True`` (which compare per-rank collective traces after
    each command).  Subclasses :class:`ValueError` because a divergent
    kernel is a caller bug, not a transport failure.
    """


class ChunkRef:
    """Opaque handle to per-PE chunks pinned inside a backend.

    A ``ChunkRef`` names one resident object per PE (for real backends
    the objects live in the worker processes; for in-process backends
    they live in a driver-side store).  The handle frees its slots
    automatically when garbage collected, so intermediate arrays built
    by recursive algorithms never leak worker memory.
    """

    __slots__ = ("id", "p", "_finalizer", "__weakref__")

    def __init__(self, ref_id: int, p: int, free_fn: Callable[[int], None]):
        self.id = ref_id
        self.p = p
        self._finalizer = weakref.finalize(self, free_fn, ref_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkRef(id={self.id}, p={self.p})"


class Backend(abc.ABC):
    """Data-plane executor for the collectives of one :class:`Machine`.

    Attributes
    ----------
    name:
        Registry key (``"sim"``, ``"mp"``, ...).
    is_real:
        True when collectives physically move data between OS processes
        (wall-clock is then a meaningful parallel-execution metric).
    wall_time:
        Cumulative seconds spent inside data-plane calls.
    """

    name: str = "abstract"
    is_real: bool = False
    #: transport capability flags (the zero-copy data plane).  In-process
    #: backends move no bytes and leave both False; real transports that
    #: frame messages as protocol-5 pickles with out-of-band buffers set
    #: ``supports_oob_pickle``, and those that additionally route large
    #: buffers through shared-memory segments set ``supports_shm``.
    #: Future socket/MPI backends opt out simply by not setting them.
    supports_oob_pickle: bool = False
    supports_shm: bool = False

    @property
    def supports_native_kernels(self) -> bool:
        """Whether ``kernels="native"`` runs *compiled* twins here (numba
        importable).  The mode itself works everywhere -- without numba
        the native twins execute interpreted, bit-identically."""
        from ...kernels import numba_available

        return numba_available()

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"need at least one PE, got p={p}")
        self.p = int(p)
        self.wall_time: float = 0.0
        #: driver-side resident store (default data plane for in-process
        #: backends; real backends override the resident methods and keep
        #: the chunks in their workers instead)
        self._store: dict[int, list] = {}
        self._next_ref_id: int = 0

    # ------------------------------------------------------------------
    # Value collectives (list-in, list-out; one entry per PE)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def broadcast(self, value, root: int = 0) -> list:
        """Every PE receives ``value`` (held by ``root``)."""

    @abc.abstractmethod
    def reduce(self, values: Sequence, op, root: int = 0) -> list:
        """Binomial-tree-order reduction to ``root``; others get ``None``."""

    @abc.abstractmethod
    def allreduce(self, values: Sequence, op) -> list:
        """Binomial-tree-order reduction, result replicated on every PE."""

    @abc.abstractmethod
    def scan(self, values: Sequence, op) -> list:
        """Inclusive prefix combine in rank order."""

    @abc.abstractmethod
    def allreduce_exscan(self, values: Sequence, op, initial=0) -> tuple[list, list]:
        """Fused total + exclusive prefix (one schedule, two outputs).

        Returns ``(totals, prefixes)`` where ``totals[i]`` is the
        tree-order reduction of all contributions and ``prefixes[i]``
        is ``op(values[0..i-1])`` (``initial`` on PE 0).
        """

    @abc.abstractmethod
    def gather(self, values: Sequence, root: int = 0) -> list:
        """``root`` receives the rank-ordered list; others get ``None``."""

    @abc.abstractmethod
    def allgather(self, values: Sequence) -> list:
        """Every PE receives the rank-ordered list of all contributions."""

    @abc.abstractmethod
    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        """PE ``i`` receives ``pieces[i]`` (held by ``root``)."""

    @abc.abstractmethod
    def alltoall(self, matrix: Sequence[Sequence]) -> list[list]:
        """Personalized exchange: ``out[j][i] == matrix[i][j]``."""

    @abc.abstractmethod
    def p2p(self, src: int, dst: int, payload):
        """Move ``payload`` from PE ``src`` to PE ``dst``; returns it."""

    def reduce_allgather(self, values: Sequence, payloads: Sequence, op) -> tuple[list, list]:
        """Fused ``allreduce(values)`` + ``allgather(payloads)``.

        Returns ``(totals, gathered)``: ``totals[i]`` is the binomial-
        tree-order reduction of ``values``, ``gathered[i]`` the
        rank-ordered payload list, both replicated on every PE.  Real
        backends override this to run one schedule instead of two.
        """
        return self.allreduce(values, op), self.allgather(payloads)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def map(self, fn: Callable[[int, object], object], items: Sequence) -> list:
        """Apply ``fn(rank, items[rank])`` on every PE, in parallel where
        the backend can (falls back to in-process application when ``fn``
        cannot cross a process boundary)."""

    # ------------------------------------------------------------------
    # Resident chunks (the SPMD data plane of DistArray)
    # ------------------------------------------------------------------
    # Per-PE chunks are pinned behind ChunkRef handles so per-PE
    # algorithm callbacks execute where the data lives and only small
    # values travel.  The default implementations below keep the store
    # in the driver process -- correct for any backend and free for the
    # in-process ``sim`` backend; ``mp`` overrides them to pin the
    # chunks inside its worker processes.

    def put_chunks(self, chunks: Sequence) -> ChunkRef:
        """Pin one object per PE; returns the opaque handle."""
        if len(chunks) != self.p:
            raise ValueError(f"need one chunk per PE, got {len(chunks)} for p={self.p}")
        ref_id = self._next_ref_id
        self._next_ref_id += 1
        self._store[ref_id] = list(chunks)
        return ChunkRef(ref_id, self.p, self._free_ref)

    def get_chunks(self, ref: ChunkRef) -> list:
        """Fetch the per-PE objects back to the driver (result assembly)."""
        return self._store[ref.id]

    def _free_ref(self, ref_id: int) -> None:
        """Release one handle's slots (called by ChunkRef finalizers)."""
        self._store.pop(ref_id, None)

    def map_resident(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
        collect: tuple | None = None,
    ) -> tuple[list[ChunkRef], list, list | None]:
        """Apply ``fn(rank, *chunks, *args[rank])`` where the chunks live.

        ``fn`` must return ``n_out`` new chunks followed by a small
        per-PE value (just the value when ``n_out == 0``); the chunks
        stay resident behind fresh handles and only the values return.
        ``collect`` optionally fuses a value collective into the same
        backend round trip: ``("allgather",)`` or ``("allreduce", op)``.

        Returns ``(out_refs, values, collected)`` where ``collected`` is
        ``None`` without ``collect``, the replicated rank-ordered value
        list for ``"allgather"``, or the replicated reduction for
        ``"allreduce"`` (one entry per PE in both cases).
        """
        chunk_lists = [self._store[r.id] for r in refs]
        outs, values = _apply_resident(self.p, fn, chunk_lists, n_out, args)
        out_refs = [self.put_chunks(chunks) for chunks in outs]
        return out_refs, values, _collect_values(values, collect, self.p)

    def run_spmd(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
    ) -> tuple[list[ChunkRef], list]:
        """Run a *generator* callback as one SPMD step on every PE.

        ``fn(rank, *chunks, *args[rank])`` must be a generator that
        ``yield``s collective requests and receives their results::

            sample = chunk[idx]
            gathered = yield ("allgather", sample)
            ...
            totals = yield ("allreduce", counts, "sum")
            received = yield ("alltoall", row)  # row[j] -> PE j
            return part_a, part_b, value        # n_out chunks + a value

        Every rank must issue the identical yield sequence (standard
        SPMD discipline).  Real backends execute the whole step -- local
        work *and* the embedded collectives -- inside the workers in a
        single command round trip; chunks never leave the workers.  The
        embedded collectives use the same combination orders as the
        machine's, so results are bit-identical across backends.  Cost
        charging stays with the caller (the driver re-plays the model
        from the small returned values).

        Returns ``(out_refs, values)``.
        """
        chunk_lists = [self._store[r.id] for r in refs]
        outs, values = _run_spmd_inprocess(self.p, fn, chunk_lists, n_out, args)
        out_refs = [self.put_chunks(chunks) for chunks in outs]
        return out_refs, values

    def submit_spmd(
        self,
        fn: Callable,
        refs: Sequence["ChunkRef"],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
    ) -> tuple[list["ChunkRef"], PendingValues]:
        """Non-blocking :meth:`run_spmd`: returns ``(out_refs, pending)``
        with ``pending.wait()`` yielding the per-PE values.

        The default executes eagerly and returns a resolved handle --
        in-process backends have no issue/execution overlap to expose;
        pipelined backends override this to keep the command in flight
        until ``wait()``.  See :class:`PendingValues` for the ordering
        contract overlapped call sites must follow.
        """
        out_refs, values = self.run_spmd(fn, refs, n_out=n_out, args=args)
        return out_refs, PendingValues.resolved(values)

    def submit_map_resident(
        self,
        fn: Callable,
        refs: Sequence["ChunkRef"],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
        collect: tuple | None = None,
    ) -> tuple[list["ChunkRef"], PendingValues]:
        """Non-blocking :meth:`map_resident` (same eager default);
        ``pending.wait()`` returns ``(values, collected)``."""
        out_refs, values, collected = self.map_resident(
            fn, refs, n_out=n_out, args=args, collect=collect
        )
        return out_refs, PendingValues.resolved((values, collected))

    @contextlib.contextmanager
    def coalesced(self):
        """Hint: the commands submitted inside this block are issued
        back-to-back with no intervening wait, so a pipelined backend
        may pack them into a single command frame (one fan-out, one
        worker wake for the whole batch).  Semantics are unchanged --
        commands still execute in issue order on every rank -- so the
        in-process default is a no-op."""
        yield

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_message_counts(self) -> list[int]:
        """Per-PE count of peer-to-peer transport messages sent so far.

        In-process backends move no physical messages and report zeros;
        real backends report their actual worker-exchange traffic (the
        quantity the O(p log p) schedules bound).
        """
        return [0] * self.p

    def transport_bytes(self) -> dict[str, dict[str, int]]:
        """Measured driver-side transport bytes per command kind:
        ``{kind: {"wire": ..., "shm": ...}}`` where ``wire`` counts bytes
        that physically crossed the command/result pipes and ``shm``
        counts payload bytes that rode shared-memory blocks instead.
        In-process backends move no bytes and return ``{}``; the machine
        mirrors these counters into :class:`~repro.machine.metrics.
        CommMetrics` (``wire_bytes``/``shm_bytes``).
        """
        return {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker processes, queues).

        The driver-side resident store is deliberately left intact so
        results remain readable after close (real backends salvage
        their live worker-resident chunks into it before shutdown).
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.p})"


def _apply_resident(
    p: int, fn: Callable, chunk_lists: Sequence[Sequence], n_out: int,
    args: Sequence[tuple] | None,
) -> tuple[list[list], list]:
    """Driver-side reference semantics of :meth:`Backend.map_resident`:
    returns ``(out_chunk_lists, values)`` with ``out_chunk_lists[j][i]``
    the j-th output chunk of PE ``i``.  Shared by the in-process default
    and by real backends' fallback path for unpicklable callbacks."""
    outs: list[list] = [[None] * p for _ in range(n_out)]
    values: list = [None] * p
    for rank in range(p):
        ins = [chunks[rank] for chunks in chunk_lists]
        extra = tuple(args[rank]) if args is not None else ()
        res = fn(rank, *ins, *extra)
        if n_out:
            if not isinstance(res, tuple) or len(res) != n_out + 1:
                raise ValueError(
                    f"resident callback must return {n_out} chunks + 1 value, "
                    f"got {type(res).__name__}"
                )
            for j in range(n_out):
                outs[j][rank] = res[j]
            values[rank] = res[n_out]
        else:
            values[rank] = res
    return outs, values


def spmd_collective(requests: Sequence[tuple]) -> object:
    """Reference data plane of one in-step SPMD collective.

    ``requests[i]`` is rank i's yielded tuple; all ranks must agree on
    the kind.  Returns the (shared) result every rank receives --
    combination orders match the plain collectives exactly.
    """
    from ..collectives import inclusive_scan, tree_reduce_order

    kinds = {req[0] for req in requests}
    if len(kinds) != 1:
        raise LockstepError(
            f"SPMD ranks diverged: mixed collectives {sorted(kinds)}"
        )
    kind = kinds.pop()
    payloads = [req[1] for req in requests]
    if kind == "allgather":
        return [list(payloads)] * len(requests)
    if kind == "allreduce":
        return [tree_reduce_order(payloads, requests[0][2])] * len(requests)
    if kind == "allreduce_exscan":
        op, initial = requests[0][2], requests[0][3]
        total = tree_reduce_order(payloads, op)
        inc = inclusive_scan(payloads, op)
        return [(total, initial if i == 0 else inc[i - 1]) for i in range(len(requests))]
    if kind == "alltoall":
        p = len(requests)
        return [[payloads[i][j] for i in range(p)] for j in range(p)]
    if kind == "sendrecv":
        # Sparse personalized exchange: rank i yields ("sendrecv", row,
        # srcs) where row[j] is its payload for j (None = no message)
        # and srcs lists the ranks it expects messages from (driver-
        # derived, so real backends can deliver directly in one hop
        # without a discovery round).  Result: row indexed by source.
        # The declared srcs must match the non-None row entries exactly
        # -- a mismatch would silently drop or indefinitely await a
        # message on a real backend, so the reference path fails loudly.
        p = len(requests)
        out: list[list] = []
        for j in range(p):
            declared = set(requests[j][2])
            actual = {i for i in range(p) if i != j and payloads[i][j] is not None}
            if declared - {j} != actual:
                raise ValueError(
                    f"sendrecv mismatch at rank {j}: declared senders "
                    f"{sorted(declared)} but actual senders {sorted(actual)}"
                )
            out.append(
                [payloads[i][j] if (i == j or i in declared) else None for i in range(p)]
            )
        return out
    raise ValueError(f"unknown SPMD collective {kind!r}")


def _run_spmd_inprocess(
    p: int, fn: Callable, chunk_lists: Sequence[Sequence], n_out: int,
    args: Sequence[tuple] | None,
) -> tuple[list[list], list]:
    """Drive p SPMD generators in lockstep in the driver process."""
    gens = []
    for rank in range(p):
        ins = [chunks[rank] for chunks in chunk_lists]
        extra = tuple(args[rank]) if args is not None else ()
        gens.append(fn(rank, *ins, *extra))
    results: list = [None] * p
    requests: list = [None] * p
    done = 0
    # advance every rank to its first yield
    for rank, gen in enumerate(gens):
        try:
            requests[rank] = gen.send(None)
        except StopIteration as stop:
            results[rank] = stop.value
            done += 1
    while done == 0:
        shared = spmd_collective(requests)
        for rank, gen in enumerate(gens):
            try:
                requests[rank] = gen.send(shared[rank])
            except StopIteration as stop:
                results[rank] = stop.value
                done += 1
    if done != p:
        raise LockstepError(
            "SPMD ranks diverged: some returned while others yielded"
        )
    outs: list[list] = [[None] * p for _ in range(n_out)]
    values: list = [None] * p
    for rank, res in enumerate(results):
        if n_out:
            if not isinstance(res, tuple) or len(res) != n_out + 1:
                raise ValueError(
                    f"SPMD callback must return {n_out} chunks + 1 value, "
                    f"got {type(res).__name__}"
                )
            for j in range(n_out):
                outs[j][rank] = res[j]
            values[rank] = res[n_out]
        else:
            values[rank] = res
    return outs, values


def _collect_values(values: list, collect: tuple | None, p: int) -> list | None:
    """Reference semantics of the fused value collective of
    :meth:`Backend.map_resident` (identical combination orders to the
    plain collectives, so results stay bit-identical across backends)."""
    if collect is None:
        return None
    from ..collectives import tree_reduce_order

    if collect[0] == "allgather":
        return [list(values)] * p
    if collect[0] == "allreduce":
        return [tree_reduce_order(values, collect[1])] * p
    raise ValueError(f"unknown collect spec {collect!r}")
