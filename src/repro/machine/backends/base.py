"""The execution-backend protocol: who actually moves the bytes.

A :class:`~repro.machine.comm.Machine` splits every collective into two
planes:

* the **control plane** (cost charging, per-PE clocks, communication
  metering) stays in :class:`~repro.machine.comm.Machine` -- it is what
  makes the alpha-beta model's predictions reportable regardless of how
  the data plane is executed;
* the **data plane** (computing the per-PE result values of a
  collective) is delegated to a :class:`Backend`.

Backends implement the same list-in/list-out SPMD convention as the
machine itself: each data-plane method receives one contribution per PE
and returns one result per PE.  Two backends ship with the package:

``sim`` (:class:`~repro.machine.backends.sim.SimBackend`)
    Computes results in-process with deterministic combination orders
    (binomial-tree reductions, linear prefix scans).  The default; all
    reported *time* is modeled alpha-beta cost.

``mp`` (:class:`~repro.machine.backends.mp.MultiprocessingBackend`)
    Runs one OS worker process per PE; collectives physically move
    pickled payloads between the workers through queues.  Combination
    orders replicate the simulated backend exactly, so results are
    bit-identical for the package's integer/array payloads.  Reported
    *wall-clock* reflects genuine parallel execution (the modeled cost
    is still charged, so both metrics stay available).

Reduction ``op`` arguments follow :data:`repro.machine.collectives.
REDUCTION_OPS`: the strings ``"sum"``/``"min"``/``"max"`` or a callable.
Real backends require ops and payloads to be picklable; the named
string ops always are.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

__all__ = ["Backend"]


class Backend(abc.ABC):
    """Data-plane executor for the collectives of one :class:`Machine`.

    Attributes
    ----------
    name:
        Registry key (``"sim"``, ``"mp"``, ...).
    is_real:
        True when collectives physically move data between OS processes
        (wall-clock is then a meaningful parallel-execution metric).
    wall_time:
        Cumulative seconds spent inside data-plane calls.
    """

    name: str = "abstract"
    is_real: bool = False

    def __init__(self, p: int):
        if p < 1:
            raise ValueError(f"need at least one PE, got p={p}")
        self.p = int(p)
        self.wall_time: float = 0.0

    # ------------------------------------------------------------------
    # Value collectives (list-in, list-out; one entry per PE)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def broadcast(self, value, root: int = 0) -> list:
        """Every PE receives ``value`` (held by ``root``)."""

    @abc.abstractmethod
    def reduce(self, values: Sequence, op, root: int = 0) -> list:
        """Binomial-tree-order reduction to ``root``; others get ``None``."""

    @abc.abstractmethod
    def allreduce(self, values: Sequence, op) -> list:
        """Binomial-tree-order reduction, result replicated on every PE."""

    @abc.abstractmethod
    def scan(self, values: Sequence, op) -> list:
        """Inclusive prefix combine in rank order."""

    @abc.abstractmethod
    def allreduce_exscan(self, values: Sequence, op, initial=0) -> tuple[list, list]:
        """Fused total + exclusive prefix (one schedule, two outputs).

        Returns ``(totals, prefixes)`` where ``totals[i]`` is the
        tree-order reduction of all contributions and ``prefixes[i]``
        is ``op(values[0..i-1])`` (``initial`` on PE 0).
        """

    @abc.abstractmethod
    def gather(self, values: Sequence, root: int = 0) -> list:
        """``root`` receives the rank-ordered list; others get ``None``."""

    @abc.abstractmethod
    def allgather(self, values: Sequence) -> list:
        """Every PE receives the rank-ordered list of all contributions."""

    @abc.abstractmethod
    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        """PE ``i`` receives ``pieces[i]`` (held by ``root``)."""

    @abc.abstractmethod
    def alltoall(self, matrix: Sequence[Sequence]) -> list[list]:
        """Personalized exchange: ``out[j][i] == matrix[i][j]``."""

    @abc.abstractmethod
    def p2p(self, src: int, dst: int, payload):
        """Move ``payload`` from PE ``src`` to PE ``dst``; returns it."""

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def map(self, fn: Callable[[int, object], object], items: Sequence) -> list:
        """Apply ``fn(rank, items[rank])`` on every PE, in parallel where
        the backend can (falls back to in-process application when ``fn``
        cannot cross a process boundary)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker processes, queues)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.p})"
