"""Pluggable execution backends for the machine layer.

See :mod:`repro.machine.backends.base` for the protocol.  Real backends
are layered: a *transport* (:mod:`.transport`: framing over pipes or
sockets), the shared *worker runtime* (:mod:`.runtime`: command loop,
resident chunks, exchange schedules, driver dispatch), and thin
*launchers* (:mod:`.mp`, :mod:`.tcp`).  Select a backend by name when
building a machine::

    >>> from repro.machine import Machine
    >>> m = Machine(p=4, backend="sim")      # modeled, in-process (default)
    >>> m = Machine(p=4, backend="mp")       # one worker process per PE
    >>> m = Machine(p=4, backend="tcp")      # socket workers (multi-host capable)

or pass a :class:`Backend` instance for full control.  New backends
(e.g. async or MPI transports) register by name via
:func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable

from .base import Backend, ChunkRef, LockstepError, PendingValues
from .mp import MultiprocessingBackend
from .runtime import WorkerFailure
from .sim import SimBackend
from .tcp import TcpBackend

__all__ = [
    "Backend",
    "ChunkRef",
    "LockstepError",
    "PendingValues",
    "SimBackend",
    "MultiprocessingBackend",
    "TcpBackend",
    "WorkerFailure",
    "available_backends",
    "make_backend",
    "register_backend",
]

_REGISTRY: dict[str, Callable[[int], Backend]] = {
    SimBackend.name: SimBackend,
    MultiprocessingBackend.name: MultiprocessingBackend,
    TcpBackend.name: TcpBackend,
}


def register_backend(name: str, factory: Callable[[int], Backend]) -> None:
    """Register ``factory(p) -> Backend`` under ``name`` (overwrites)."""
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Names accepted by ``Machine(backend=...)``."""
    return sorted(_REGISTRY)


def make_backend(
    spec, p: int, verify: bool = False, pipeline_depth: int | None = None,
    command_timeout: float | None = None, faults=None, journal: bool = False,
    kernels: str | None = None,
) -> Backend:
    """Resolve a backend spec: a name, a ``Backend`` instance, or None.

    Instances are checked for a matching PE count; names are looked up
    in the registry (``None`` means the default ``"sim"``).

    ``verify=True`` asks the backend to assert SPMD lockstep (every PE
    issuing the identical collective sequence, see
    :class:`LockstepError`).  ``pipeline_depth`` bounds how many
    commands the backend keeps in flight at once (``1`` forces serial
    issue).  ``command_timeout`` is the per-command deadline before a
    non-answering pool raises :class:`WorkerFailure`; ``faults``
    installs a deterministic :class:`~repro.machine.faults.FaultPlan`
    (or spec string); ``journal=True`` records chunk provenance for
    automatic pool recovery.  Backends whose factory does not take one
    of these keywords -- notably ``sim``, which has no processes to
    lose -- are built without it.
    """
    if spec is None:
        spec = SimBackend.name
    if isinstance(spec, Backend):
        if spec.p != p:
            raise ValueError(
                f"backend was built for p={spec.p}, machine has p={p}"
            )
        if verify and hasattr(spec, "verify"):
            spec.verify = True
        if pipeline_depth is not None and hasattr(spec, "pipeline_depth"):
            spec.pipeline_depth = max(1, int(pipeline_depth))
        if command_timeout is not None and hasattr(spec, "command_timeout"):
            spec.command_timeout = float(command_timeout)
        return spec
    try:
        factory = _REGISTRY[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {spec!r}; available: {available_backends()}"
        ) from None
    kwargs: dict = {}
    if verify:
        kwargs["verify"] = True
    if pipeline_depth is not None:
        kwargs["pipeline_depth"] = max(1, int(pipeline_depth))
    if command_timeout is not None:
        kwargs["command_timeout"] = float(command_timeout)
    if faults is not None:
        kwargs["faults"] = faults
    if journal:
        kwargs["journal"] = True
    if kernels is not None:
        kwargs["kernels"] = kernels
    while True:
        try:
            return factory(p, **kwargs)
        except TypeError:
            # factory predates a knob: drop the optional ones in turn
            # (sim-style backends take none of them -- they verify and
            # serialize by construction and have no processes to lose;
            # sim also needs no kernels plumbing: its workers share the
            # driver process, where Machine already set the mode)
            for knob in ("kernels", "journal", "faults", "command_timeout",
                         "pipeline_depth", "verify"):
                if knob in kwargs:
                    del kwargs[knob]
                    break
            else:
                raise
