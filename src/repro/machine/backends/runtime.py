"""Transport-agnostic worker runtime shared by every real backend.

A real backend is three layers:

* the **transport** (:mod:`repro.machine.backends.transport`) frames
  objects onto byte streams -- pipes for ``mp``, sockets for ``tcp``;
* this **runtime** owns everything above the bytes: the per-worker
  command loop (:func:`worker_loop`), the resident ``ChunkRef`` store,
  the logarithmic worker-exchange schedules, the SPMD generator driver,
  the broadcast-command fan-out and the driver-side command dispatch
  (:class:`RuntimeBackend`);
* the **launcher** (``mp.py`` / ``tcp.py``) wires the two together:
  it starts workers, builds their :class:`WorkerLinks`, and tears the
  pool down.

Because every real backend executes this same runtime, results and
modeled costs are bit-identical across ``sim``, ``mp`` and ``tcp`` for
every pipeline in the package (see
``tests/integration/test_resident_parity.py``).

Protocol
--------
The driver issues one command per operation, tagged with a
monotonically increasing sequence number.  Full-pool commands ride the
**broadcast command channel**: the driver writes a single frame (spec +
the per-PE locals map) to rank 0's inbox and the workers fan it out
along the binomial tree, each forwarding its children their subtree's
slice of the locals -- O(1) driver sends (:attr:`RuntimeBackend.
driver_sends`) and exactly ``p - 1`` worker forwards
(:meth:`RuntimeBackend.command_fanout_counts`) instead of ``p``
serialized driver writes.  Partial-participant commands (``p2p``) keep
the direct per-worker path.  Workers exchange peer messages tagged with
the same sequence number (plus a per-schedule round tag) and stash
anything that arrives early, so fast workers can run ahead without
confusing slow ones.  Worker-to-worker exchanges follow logarithmic
schedules instead of direct O(p^2) delivery:

Pipelined issue
---------------
The driver may keep several broadcast-channel commands in flight at
once (:meth:`RuntimeBackend._submit` / :class:`CommandFuture`, up to
``pipeline_depth``).  This is safe for exactly the tree-forwarded
commands: links are FIFO and every rank forwards frames in arrival
order, so pipelined ``bcmd`` frames execute in *seq order on every
worker* even though their results may interleave at the driver (a fast
worker's seq ``n+1`` result can beat a slow worker's seq ``n``).  The
driver demultiplexes the shared result channel by seq
(:meth:`RuntimeBackend._pump`).  Direct per-worker frames (``put``,
partial-participant ``p2p``) could overtake a tree hop still in
flight, so they fence -- drain every in-flight command -- before
issue.  Each command envelope carries the driver's *ack frontier* (the
highest seq whose results are all collected); shm pools recycle a
segment only once every block in it is flagged dead by its zero-copy
consumer *and* the frontier has passed the newest round that allocated
in it (:meth:`~repro.machine.backends.shm.ShmPool.release_through`) --
under pipelining the arrival of a newer command proves nothing about
an older round's blocks, and with in-place consumption even a settled
command's blocks may outlive it (resident chunks decoded straight out
of the segment).

* rooted collectives (broadcast, reduce, gather, scatter) walk a
  binomial tree -- ``p - 1`` messages, ``log p`` depth;
* symmetric collectives (allgather, allreduce, scan, the fused
  ``allreduce_exscan``/``reduce_allgather`` and the value collectives
  fused into ``map_resident``) use the dissemination (Bruck) schedule
  -- ``p * ceil(log2 p)`` messages on any ``p``, power of two or not;
* ``alltoall`` store-and-forwards along the same hop sequence
  (hypercube routing, Leighton Thm 3.24) -- ``p * ceil(log2 p)``
  messages instead of ``p * (p - 1)``.

Every worker counts its sends; :meth:`RuntimeBackend.
worker_message_counts` exposes the totals so tests can assert the
O(p log p) bound.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import os
import pickle
import queue as queue_mod
import time
import weakref
from collections import deque
from typing import Callable, Sequence

from ..collectives import (
    binomial_edges,
    binomial_subtrees,
    bruck_hops,
    bruck_send_blocks,
    inclusive_scan,
    tree_reduce_order,
)
from .base import (
    Backend,
    ChunkRef,
    LockstepError,
    PendingValues,
    _apply_resident,
    _collect_values,
    _run_spmd_inprocess,
)

__all__ = [
    "Comm",
    "CommandFuture",
    "LockstepError",
    "PendingValues",
    "RuntimeBackend",
    "WorkerError",
    "WorkerFailure",
    "WorkerLinks",
    "worker_loop",
]

#: default per-command deadline (overridable per backend via
#: ``command_timeout``); also the worker-side peer-wait bound
_TIMEOUT = 120.0

#: how often a blocked worker re-checks driver liveness while waiting
_LIVENESS_INTERVAL = 5.0

#: how often the blocked driver probes worker liveness while waiting
_PROBE_INTERVAL = 0.25

#: pools that still own live worker processes (for the atexit guard)
_LIVE_POOLS: "weakref.WeakSet[RuntimeBackend]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_leaked_pools() -> None:  # pragma: no cover - interpreter exit path
    for backend in list(_LIVE_POOLS):
        try:
            backend.close()
        except Exception:
            pass


class WorkerFailure(RuntimeError):
    """A worker died or stopped answering during a command.

    Structured replacement for the raw ``EOFError`` / indefinite wait a
    dead rank used to cause: ``rank`` is the first known-affected rank
    (``None`` when it could not be attributed), ``seq`` the command it
    happened in, and ``phase`` is ``"dead"`` (the process is gone --
    EOF / waitpid) or ``"hung"`` (alive but past the command deadline).
    ``ranks`` lists every implicated rank.
    """

    def __init__(self, rank: int | None, seq: int, phase: str,
                 detail: str = "", ranks: tuple[int, ...] = ()):
        self.rank = rank
        self.seq = seq
        self.phase = phase
        self.ranks = tuple(ranks) if ranks else (
            (rank,) if rank is not None else ())
        who = (f"rank {rank}" if len(self.ranks) <= 1
               else f"ranks {list(self.ranks)}")
        if rank is None:
            who = "unknown rank"
        msg = f"worker {phase}: {who} during command seq {seq}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class WorkerLinks:
    """Transport binding of one worker: where its bytes come from and go.

    The runtime never touches fds or frames; it sends runtime *items*
    (tagged tuples) to peers and the driver and receives its own inbox
    through this object.  Launchers subclass it per transport:

    * ``send(dst, item, drain)`` -- deliver ``item`` to peer ``dst``'s
      inbox (pipes: write the peer's pipe; sockets: write the pair's
      socket);
    * ``send_result(item, drain, pool)`` -- deliver to the driver
      (``pool=False`` forces the inline lane -- used for error markers
      and the stop acknowledgement, which must not depend on a
      shared-memory pool about to close);
    * ``recv(timeout)`` -- next item from this worker's own inbox, any
      source (raises ``queue.Empty`` on timeout, ``EOFError`` when the
      driver hung up).
    """

    def __init__(self, rank: int, p: int, pool=None, parent_pid: int | None = None,
                 faults=None):
        self.rank = rank
        self.p = p
        self.pool = pool
        self.parent_pid = parent_pid
        #: this rank's slice of an installed fault plan (None = no faults)
        self.faults = faults
        self.counters = {"msgs": 0, "cmd_fwd": 0, "wire_tx": 0, "shm_tx": 0}

    # -- liveness --------------------------------------------------------
    def orphaned(self) -> bool:
        """True when the spawning driver process is gone (fork-launched
        workers only; externally launched workers rely on driver EOF)."""
        return self.parent_pid is not None and os.getppid() != self.parent_pid

    def check_parent(self) -> None:
        """Hard-exit if orphaned: a worker spinning on a full channel or
        a contended lock would otherwise outlive a killed driver forever
        (inherited pipe/socket ends keep EOF from ever firing)."""
        if self.orphaned():
            os._exit(1)

    # -- transport hooks (subclass responsibility) -----------------------
    def send(self, dst: int, item, drain: Callable | None = None) -> None:
        raise NotImplementedError

    def send_result(self, item, drain: Callable | None = None,
                    pool: bool = True) -> None:
        raise NotImplementedError

    def recv(self, timeout: float | None = None):
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (called as the loop exits)."""

    # -- fault-injection hooks (optional per transport) ------------------
    def sever(self, peer: int) -> None:
        """Cut this worker's link to ``peer`` (injected ``sever`` fault);
        transports without a severable lane treat it as a no-op."""

    def send_result_truncated(self, item) -> None:
        """Write only a prefix of ``item``'s result frame (injected
        ``truncate`` fault); the caller hard-exits right after.  The
        default writes nothing, degrading to a plain mid-command kill."""


class Comm:
    """Per-collective messaging context of one worker.

    Messages are addressed by ``(seq, tag, src)`` where ``tag`` is the
    schedule round, so multi-round schedules can never confuse two
    messages from the same peer, and out-of-order arrivals from
    run-ahead peers are stashed for their own collective.
    """

    __slots__ = ("rank", "p", "seq", "links", "backlog", "stash", "counters")

    def __init__(self, links: WorkerLinks, backlog: deque, stash: dict):
        self.rank = links.rank
        self.p = links.p
        self.seq = 0
        self.links = links
        self.backlog = backlog
        self.stash = stash
        self.counters = links.counters

    def send(self, dst: int, tag: int, payload) -> None:
        self.links.send(dst, ("msg", self.seq, tag, self.rank, payload),
                        drain=self.drain)
        self.counters["msgs"] += 1

    def drain(self) -> None:
        """Consume whatever already sits in this worker's inbox (called
        while a send waits on a full channel, keeping the mesh live).

        Doubles as the liveness check of every blocked wait loop.
        """
        self.links.check_parent()
        while True:
            try:
                item = self.links.recv(timeout=0)
            except queue_mod.Empty:
                return
            if item[0] != "msg":
                self.backlog.append(item)
            else:
                _, mseq, mtag, msrc, payload = item
                self.stash[(mseq, mtag, msrc)] = payload

    def recv(self, src: int, tag: int):
        key = (self.seq, tag, src)
        if key in self.stash:
            return self.stash.pop(key)
        # wait in liveness-interval slices rather than one long block, so
        # a worker stuck mid-collective still notices a vanished driver
        # within one cycle (and a dead peer within the overall bound)
        deadline = time.monotonic() + _TIMEOUT
        while True:
            try:
                item = self.links.recv(timeout=_LIVENESS_INTERVAL)
            except queue_mod.Empty:
                self.links.check_parent()
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"rank {self.rank}: no message from peer {src} "
                        f"(seq {self.seq}, tag {tag}) within {_TIMEOUT:.0f}s"
                    ) from None
                continue
            if item[0] != "msg":
                self.backlog.append(item)
                continue
            _, mseq, mtag, msrc, payload = item
            if (mseq, mtag, msrc) == key:
                return payload
            self.stash[(mseq, mtag, msrc)] = payload


# -- logarithmic worker schedules --------------------------------------

def _tree_bcast(comm: Comm, root: int, value, tag: int = 0):
    """Binomial-tree broadcast: p-1 messages, log p depth."""
    edges = binomial_edges(comm.p, root)
    if comm.rank != root:
        parent = next(s for _, s, d in edges if d == comm.rank)
        value = comm.recv(parent, tag)
    for _, s, d in edges:
        if s == comm.rank:
            comm.send(d, tag, value)
    return value


def _tree_gather(comm: Comm, root: int, local, tag: int = 1):
    """Binomial-tree gather of subtree bundles; rank-ordered list at
    ``root``, ``None`` elsewhere."""
    bundle = {comm.rank: local}
    for _, s, d in reversed(binomial_edges(comm.p, root)):
        if s == comm.rank:
            bundle.update(comm.recv(d, tag))
        elif d == comm.rank:
            comm.send(s, tag, bundle)
            return None
    return [bundle[j] for j in range(comm.p)]


def _tree_allgather(comm: Comm, myval, tag_base: int = 1) -> list:
    """Gather-to-root + broadcast composition: ``2 (p - 1)`` messages,
    ``2 log p`` depth.  The message-count winner for the small values
    the reduction-type collectives combine; the payload-heavy allgather
    and alltoall use the dissemination/hypercube schedules instead."""
    vals = _tree_gather(comm, 0, myval, tag_base)
    return _tree_bcast(comm, 0, vals, tag_base + 16)


def _tree_scatter(comm: Comm, root: int, pieces, tag: int = 2):
    """Binomial-tree scatter: parents forward each child its subtree's
    bundle; returns this PE's piece."""
    edges = binomial_edges(comm.p, root)
    if comm.rank == root:
        bundle = {j: pieces[j] for j in range(comm.p)}
    else:
        parent = next(s for _, s, d in edges if d == comm.rank)
        bundle = comm.recv(parent, tag)
    subtrees = binomial_subtrees(comm.p, root)
    for _, s, d in edges:
        if s == comm.rank:
            comm.send(d, tag, {j: bundle[j] for j in subtrees[d]})
    return bundle[comm.rank]


def _bruck_allgather(comm: Comm, myval, tag_base: int = 3) -> list:
    """Dissemination allgather: ceil(log2 p) rounds on any p, one
    message per PE per round; returns the rank-ordered value list."""
    rank, p = comm.rank, comm.p
    blocks = {rank: myval}
    for tag, hop in enumerate(bruck_hops(p)):
        dst = (rank + hop) % p
        src = (rank - hop) % p
        send = bruck_send_blocks(p, rank, hop, list(blocks))
        comm.send(dst, tag_base + tag, {b: blocks[b] for b in send})
        blocks.update(comm.recv(src, tag_base + tag))
    return [blocks[j] for j in range(p)]


def _bruck_alltoall(comm: Comm, row, tag_base: int = 20) -> list:
    """Store-and-forward personalized exchange along the dissemination
    hop sequence: each payload travels the binary decomposition of its
    rank offset, p * ceil(log2 p) messages total."""
    rank, p = comm.rank, comm.p
    # (src, remaining_offset, payload); offset 0 means delivered
    pending = [(rank, (j - rank) % p, row[j]) for j in range(p) if j != rank]
    delivered = {rank: row[rank]}
    for tag, hop in enumerate(bruck_hops(p)):
        dst = (rank + hop) % p
        src = (rank - hop) % p
        moving = [(s, d - hop, v) for s, d, v in pending if d & hop]
        pending = [e for e in pending if not (e[1] & hop)]
        comm.send(dst, tag_base + tag, moving)
        for s, d, v in comm.recv(src, tag_base + tag):
            if d == 0:
                delivered[s] = v
            else:
                pending.append((s, d, v))
    return [delivered[j] for j in range(p)]


def _collective_signature(req: tuple) -> tuple:
    """Rank-comparable signature of one yielded collective.

    Kind plus whatever shapes the exchange: the reduction op for the
    reducing collectives (named ops compare as strings, callables by
    their ``__name__``) and the declared sender set for ``sendrecv``.
    Payload contents stay out -- they legitimately differ per rank.
    """
    kind = req[0]
    if kind in ("allreduce", "allreduce_exscan"):
        op = req[2]
        return (kind, op if isinstance(op, str)
                else getattr(op, "__name__", type(op).__name__))
    if kind == "sendrecv":
        return (kind, tuple(sorted(req[2])))
    return (kind,)


class _VerifiedValue:
    """Worker result of a ``verify=True`` SPMD command: the kernel's
    value plus this rank's collective trace and its digest (module-level
    so it pickles across the transport)."""

    def __init__(self, value, trace: tuple):
        self.value = value
        self.trace = trace
        # content digest rather than hash(): stable across worker
        # processes regardless of PYTHONHASHSEED
        self.digest = hashlib.sha1(repr(trace).encode()).hexdigest()


def _run_spmd_step(comm: Comm, gen, trace: list | None = None):
    """Drive one SPMD generator inside the worker: every yielded
    collective becomes a tree exchange with its own tag block.

    With ``trace`` (a list), record each yield's signature so the
    driver can assert lockstep across ranks after the command.
    """
    tag_base = 100
    try:
        req = gen.send(None)
        while True:
            if trace is not None:
                trace.append(_collective_signature(req))
            kind = req[0]
            if kind == "alltoall":
                res = _bruck_alltoall(comm, list(req[1]), tag_base)
                tag_base += 32
                req = gen.send(res)
                continue
            if kind == "sendrecv":
                # sparse direct exchange: payloads travel exactly one
                # hop (the plan's p2p schedule), message count = number
                # of non-empty pairs; the expected-sender lists come
                # from the driver so no discovery round is needed
                row, srcs = list(req[1]), req[2]
                for dst, payload in enumerate(row):
                    if dst != comm.rank and payload is not None:
                        comm.send(dst, tag_base, payload)
                res = [None] * comm.p
                res[comm.rank] = row[comm.rank]
                for src in srcs:
                    if src != comm.rank:
                        res[src] = comm.recv(src, tag_base)
                tag_base += 32
                req = gen.send(res)
                continue
            gathered = _tree_allgather(comm, req[1], tag_base)
            tag_base += 32
            if kind == "allgather":
                res = gathered
            elif kind == "allreduce":
                res = tree_reduce_order(gathered, req[2])
            elif kind == "allreduce_exscan":
                op, initial = req[2], req[3]
                total = tree_reduce_order(gathered, op)
                res = (
                    total,
                    initial if comm.rank == 0 else inclusive_scan(gathered, op)[comm.rank - 1],
                )
            else:
                raise ValueError(f"unknown SPMD collective {kind!r}")
            req = gen.send(res)
    except StopIteration as stop:
        return stop.value


# -- command execution -------------------------------------------------

class WorkerError:
    """Marker wrapping an exception that happened inside a worker."""

    def __init__(self, message: str):
        self.message = message


def _execute(comm: Comm, spec, local, store):
    """Run one command on this worker; returns this PE's result."""
    rank, p = comm.rank, comm.p
    kind = spec[0]

    # -- resident chunk store ------------------------------------------
    if kind == "put":
        store[spec[1]] = local
        return None
    if kind == "get":
        return store[spec[1]]
    if kind == "mapres":
        fn = pickle.loads(spec[1])
        in_ids, out_ids, collect = spec[2], spec[3], spec[4]
        ins = [store[i] for i in in_ids]
        extra = tuple(local) if local is not None else ()
        res = fn(rank, *ins, *extra)
        if out_ids:
            if not isinstance(res, tuple) or len(res) != len(out_ids) + 1:
                raise ValueError(
                    f"resident callback must return {len(out_ids)} chunks "
                    f"+ 1 value, got {type(res).__name__}"
                )
            for oid, chunk in zip(out_ids, res):
                store[oid] = chunk
            value = res[len(out_ids)]
        else:
            value = res
        if collect is None:
            return value
        gathered = _tree_allgather(comm, value, 40)
        if collect[0] == "allgather":
            return value, gathered
        return value, tree_reduce_order(gathered, collect[1])
    if kind == "spmd":
        fn = pickle.loads(spec[1])
        in_ids, out_ids = spec[2], spec[3]
        # specs from pre-verify drivers are 4-tuples; treat them as
        # verify-off rather than indexing past the end
        verify = len(spec) > 4 and bool(spec[4])
        ins = [store[i] for i in in_ids]
        extra = tuple(local) if local is not None else ()
        trace: list | None = [] if verify else None
        res = _run_spmd_step(comm, fn(rank, *ins, *extra), trace)
        if out_ids:
            if not isinstance(res, tuple) or len(res) != len(out_ids) + 1:
                raise ValueError(
                    f"SPMD callback must return {len(out_ids)} chunks + 1 "
                    f"value, got {type(res).__name__}"
                )
            for oid, chunk in zip(out_ids, res):
                store[oid] = chunk
            res = res[len(out_ids)]
        if verify:
            return _VerifiedValue(res, tuple(trace))
        return res
    if kind == "stats":
        return {
            "msgs": comm.counters["msgs"],
            "cmd_fwd": comm.counters["cmd_fwd"],
            "wire_tx": comm.counters["wire_tx"],
            "shm_tx": comm.counters["shm_tx"],
            "resident": len(store),
            "stash": len(comm.stash),
        }
    if kind == "map":
        fn = pickle.loads(spec[1])
        return fn(rank, local)

    # -- collectives ---------------------------------------------------
    if kind == "bcast":
        return _tree_bcast(comm, spec[1], local)
    if kind == "reduce":
        op, root = spec[1], spec[2]
        recv = _tree_gather(comm, root, local)
        return None if recv is None else tree_reduce_order(recv, op)
    if kind == "allreduce":
        return tree_reduce_order(_tree_allgather(comm, local), spec[1])
    if kind == "scan":
        return inclusive_scan(_tree_allgather(comm, local), spec[1])[rank]
    if kind == "allreduce_exscan":
        op, initial = spec[1], spec[2]
        recv = _tree_allgather(comm, local)
        total = tree_reduce_order(recv, op)
        prefix = initial if rank == 0 else inclusive_scan(recv, op)[rank - 1]
        return total, prefix
    if kind == "reduce_allgather":
        op = spec[1]
        pairs = _tree_allgather(comm, local)
        total = tree_reduce_order([rv for rv, _ in pairs], op)
        return total, [gv for _, gv in pairs]
    if kind == "gather":
        return _tree_gather(comm, spec[1], local)
    if kind == "allgather":
        return _bruck_allgather(comm, local)
    if kind == "scatter":
        return _tree_scatter(comm, spec[1], local)
    if kind == "alltoall":
        return _bruck_alltoall(comm, list(local))
    if kind == "p2p":
        # pair operation: only src and dst receive this command, so the
        # rest of the pool keeps working undisturbed
        src, dst = spec[1], spec[2]
        if rank == src:
            comm.send(dst, 0, local)
            return None
        return comm.recv(src, 0)
    raise ValueError(f"unknown backend command {kind!r}")


def worker_loop(links: WorkerLinks) -> None:
    """Command loop of one PE worker, over any transport.

    Runs until a ``stop`` command, driver EOF, or orphaning.  Owns this
    worker's resident chunk store and drives the broadcast-command
    fan-out: a ``bcmd`` frame is forwarded to the binomial-tree children
    *first* (they must not wait on our execution), pruned to each
    child's subtree so every edge carries only the locals its subtree
    needs.
    """
    rank, p = links.rank, links.p
    backlog: deque = deque()
    stash: dict = {}
    store: dict = {}
    pool = links.pool
    faults = links.faults
    comm = Comm(links, backlog, stash)
    # broadcast-command fan-out tree: the driver hands a full-pool command
    # to rank 0 only; every rank forwards its binomial-tree children their
    # subtree's slice of the per-PE locals
    tree_children = [d for _, s, d in binomial_edges(p, 0) if s == rank]
    subtree_of = binomial_subtrees(p, 0)
    try:
        while True:
            if backlog:
                item = backlog.popleft()
            else:
                try:
                    item = links.recv(timeout=5.0)
                except queue_mod.Empty:
                    # daemon workers survive a SIGKILL'd driver; bail out
                    # once the parent is gone instead of blocking forever
                    if links.orphaned():
                        return
                    continue
                except EOFError:
                    return  # driver closed the channel
            if item[0] == "msg":
                _, mseq, mtag, msrc, payload = item
                stash[(mseq, mtag, msrc)] = payload
                continue
            if item[0] == "bcmds":
                # coalesced frame: several back-to-back commands packed
                # into one fan-out.  Forward the whole batch to each
                # child once, then unpack into the per-command loop --
                # head entry now, the rest ahead of anything queued
                # behind this frame (they carry lower seqs).
                entries = item[1]
                if pool is not None:
                    pool.release_through(entries[0][5])
                    # forward blocks are tagged with the *newest*
                    # batched seq: a grandchild may decode the tail
                    # entries long after the head ones are acked
                    pool.begin_round(entries[-1][1])
                for child in tree_children:
                    sub_entries = [
                        ("bcmd", seq, spec,
                         {r: lm[r] for r in subtree_of[child] if r in lm},
                         free_ids, acked)
                        for _, seq, spec, lm, free_ids, acked in entries
                    ]
                    links.send(child, ("bcmds", sub_entries),
                               drain=comm.drain)
                    comm.counters["cmd_fwd"] += len(entries)
                converted = [
                    ("cmd", seq, spec, lm.get(rank), free_ids, acked)
                    for _, seq, spec, lm, free_ids, acked in entries
                ]
                backlog.extendleft(reversed(converted[1:]))
                item = converted[0]
            if item[0] == "bcmd":
                # forward first (children must not wait on our execution),
                # pruned to each child's subtree (a rank's local still hops
                # once per tree edge on its root path -- which is why the
                # arg-heavy "put" command keeps the direct driver path)
                _, seq, spec, locals_map, free_ids, acked = item
                if pool is not None:
                    # recycle what the consumers' release flags allow,
                    # bounded by the driver's ack frontier; under
                    # pipelined issue a newer seq alone proves nothing
                    # (the driver may not have collected yet)
                    pool.release_through(acked)
                    pool.begin_round(seq)
                for child in tree_children:
                    sub = {r: locals_map[r] for r in subtree_of[child] if r in locals_map}
                    links.send(child, ("bcmd", seq, spec, sub, free_ids, acked),
                               drain=comm.drain)
                    comm.counters["cmd_fwd"] += 1
                item = ("cmd", seq, spec, locals_map.get(rank), free_ids, acked)
            _, seq, spec, local, free_ids, acked = item
            if pool is not None:
                pool.release_through(acked)
                pool.begin_round(seq)
            for ref_id in free_ids:
                store.pop(ref_id, None)
            if stash:
                # commands execute in seq order, so a stashed message
                # addressed to an older seq can only be the leftover of a
                # failed collective -- evict it.  This bounds the stash to
                # live seqs under pipelined issue (run-ahead peers' newer
                # messages stay put).
                for key in [k for k in stash if k[0] < seq]:
                    del stash[key]
            if spec[0] == "stop":
                links.send_result((rank, seq, None), drain=comm.drain,
                                  pool=False)
                return
            comm.seq = seq
            if faults is not None:
                faults.fire("before", seq, links)
            try:
                result = _execute(comm, spec, local, store)
                corrupt = False
                if faults is not None:
                    faults.fire("after", seq, links)
                    if faults.truncate_at(seq):
                        from ..faults import FAULT_EXIT

                        links.send_result_truncated((rank, seq, result))
                        os._exit(FAULT_EXIT)
                    corrupt = faults.corrupt_at(seq) and links.pool is not None
                if corrupt:
                    from ..faults import CorruptingPool

                    real_pool = links.pool
                    links.pool = CorruptingPool(real_pool)
                    try:
                        links.send_result((rank, seq, result), drain=comm.drain)
                    finally:
                        links.pool = real_pool
                else:
                    links.send_result((rank, seq, result), drain=comm.drain)
            except Exception as exc:  # surface worker failures to the driver
                try:
                    links.send_result((rank, seq, WorkerError(repr(exc))),
                                      drain=comm.drain, pool=False)
                except (EOFError, OSError):
                    return  # driver is gone; nothing left to report to
    finally:
        links.close()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

class CommandFuture:
    """Driver-side handle to one in-flight command (a single seq).

    Created by :meth:`RuntimeBackend._submit`; resolved by the seq-
    demultiplexing completion loop (:meth:`RuntimeBackend._pump`).
    Futures may *complete* in any order -- a fast worker's seq ``n+1``
    result can arrive before a slow worker's seq ``n`` -- but because
    workers execute commands in seq order and each worker's result
    channel is FIFO, a resolved future implies every lower seq is
    resolved too.
    """

    __slots__ = ("seq", "kind", "out", "failures", "remaining", "done",
                 "wire_rx", "shm_rx", "ref_ids", "pending", "poisoned",
                 "_backend")

    def __init__(self, backend: "RuntimeBackend", seq: int, kind: str,
                 p: int, nranks: int, participants=None):
        self._backend = backend
        self.seq = seq
        self.kind = kind
        self.out: list = [None] * p
        self.failures: list[tuple[int, str]] = []
        self.remaining = nranks
        self.done = False
        self.wire_rx = 0
        self.shm_rx = 0
        #: resident refs this command reads or writes (dependency tracker)
        self.ref_ids: tuple[int, ...] = ()
        #: ranks that have not answered yet (hang attribution)
        self.pending: set[int] = set(
            range(p) if participants is None else participants
        )
        #: the WorkerFailure that poisoned this still-in-flight future
        #: when the pool broke (re-waits re-raise it)
        self.poisoned: WorkerFailure | None = None

    def wait(self) -> list:
        """Block until every participant answered; returns the per-PE
        results (worker failures raise, and keep raising on re-wait)."""
        return self._backend._wait(self)


class RuntimeBackend(Backend):
    """Shared driver half of the worker runtime.

    Owns command sequencing, the broadcast command channel, result
    collection, resident ``ChunkRef`` bookkeeping, close-time salvage
    and transport byte accounting.  Launcher subclasses provide the
    transport and lifecycle through four hooks:

    * ``_start_pool()`` -- start the workers and set ``self._inboxes``
      (one frame channel per rank, ``put``-capable) and
      ``self._results`` (the driver's result inbox, ``get``-capable);
      optionally set ``self._pool`` to a driver-side shm pool.
    * ``_join_workers()`` -- wait for workers after the stop command.
    * ``_teardown()`` -- release transport resources (always runs).
    * ``_teardown_idle()`` -- release resources of a never-started pool.
    """

    is_real = True

    #: pinned callback pickles kept for reuse (LRU bound of ``_blob``)
    _BLOB_CACHE = 256

    def __init__(self, p: int, verify: bool = False,
                 pipeline_depth: int = 8,
                 command_timeout: float | None = None,
                 faults=None, journal: bool = False,
                 kernels: str | None = None):
        super().__init__(p)
        #: kernel dispatch mode plumbed to every worker process at
        #: startup (None = workers follow their own REPRO_KERNELS/auto)
        self.kernels_mode = kernels
        #: per-command deadline: a command whose results have not fully
        #: arrived after this many seconds fails with a structured
        #: :class:`WorkerFailure` (phase ``"hung"``) instead of waiting
        #: forever; worker deaths are detected much sooner by the
        #: liveness probe (phase ``"dead"``).
        self.command_timeout = (
            float(command_timeout) if command_timeout else _TIMEOUT
        )
        # -- deterministic fault injection ------------------------------
        if faults is None:
            faults = os.environ.get("REPRO_FAULTS") or None
        if isinstance(faults, str):
            from ..faults import FaultPlan

            faults = FaultPlan.parse(faults)
        #: installed fault plan (dropped on the first recovery so an
        #: injected death cannot re-fire on the respawned pool)
        self.faults = faults
        # -- chunk journal / recovery -----------------------------------
        #: opt-in driver-side provenance journal: every ``put`` and every
        #: resident/SPMD command is recorded so a lost pool can be
        #: rebuilt bit-identically (:meth:`recover`).  Also enables
        #: automatic recovery on the next command after a failure.
        self.journal_enabled = bool(journal)
        self._journal: list[tuple] = []
        #: refs that could not be restored after a worker failure
        self._lost_ids: set[int] = set()
        #: the failure that broke the pool (None = healthy)
        self._failure: WorkerFailure | None = None
        self._recovering = False
        #: completed pool recoveries (restart + restore)
        self.recoveries = 0
        #: lockstep verification: when set, every SPMD command also
        #: collects each rank's collective trace and the driver raises
        #: :class:`LockstepError` on divergence.  Off by default -- it
        #: adds a per-command trace payload to every result frame.
        self.verify = bool(verify)
        #: maximum commands in flight at once.  ``1`` restores the
        #: strictly serial issue-wait-issue engine; the default keeps a
        #: small window so :meth:`submit_spmd`/:meth:`submit_map_resident`
        #: call sites overlap issue with worker execution.
        self.pipeline_depth = max(1, int(pipeline_depth))
        self._seq = 0
        #: ack frontier: highest seq with *every* seq up to it fully
        #: collected; piggybacked on command envelopes for the workers'
        #: shm round recycling
        self._acked = 0
        self._done_seqs: set[int] = set()
        #: in-flight commands by seq (insertion order == seq order)
        self._inflight: dict[int, CommandFuture] = {}
        #: in-flight writer of each resident ref id -- the driver-side
        #: dependency tracker; reads go through :meth:`_wait_ref`
        self._ref_seq: dict[int, int] = {}
        #: high-water mark of concurrently in-flight commands (proof of
        #: real overlap for the benchmarks and parity tests)
        self.max_inflight = 0
        self._inboxes: list = []
        self._results = None
        self._started = False
        self._closed = False
        self._dead_refs: list[int] = []
        #: broadcast commands built but not yet framed (non-empty only
        #: inside a :meth:`coalesced` block): ``(seq, spec, locals_map,
        #: free_ids)`` tuples that the next flush packs into one frame
        self._cmd_buf: list[tuple] = []
        self._coalescing = False
        self._live_ids: set[int] = set()
        self._fn_blobs: dict[int, tuple[Callable, bytes]] = {}
        #: driver-side shm pool (``None`` for transports without a
        #: shared-memory lane; every payload then rides the wire inline)
        self._pool = None
        #: driver-side channel writes issued for commands -- the fan-out
        #: the broadcast command channel bounds at O(1) per full-pool
        #: command (one frame to rank 0; workers tree-forward the rest)
        self.driver_sends: int = 0
        #: driver-side transport accounting per command kind:
        #: ``{kind: {"wire": bytes_on_the_wire, "shm": bytes_via_shm}}``
        self._transport: dict[str, dict[str, int]] = {}
        self._tx = {"wire_tx": 0, "shm_tx": 0}

    def transport_bytes(self) -> dict[str, dict[str, int]]:
        return self._transport

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _start_pool(self) -> None:
        raise NotImplementedError

    def _join_workers(self) -> None:
        raise NotImplementedError

    def _teardown(self) -> None:
        raise NotImplementedError

    def _teardown_idle(self) -> None:
        """Release resources of a pool closed before it ever started."""

    def _dead_workers(self) -> list[str]:
        """Names of workers known to have died (timeout diagnostics)."""
        return []

    def _dead_ranks(self) -> list[int]:
        """Ranks whose worker process is known dead (liveness probe);
        launchers override.  The default cannot observe deaths."""
        return []

    def _reset_for_restart(self) -> None:
        """Drop transport state so ``_start_pool`` can run again
        (recovery path); launchers override to also rotate shm families,
        worker lists etc."""
        self._inboxes = []
        self._results = None

    @property
    def broken(self) -> bool:
        """True after a :class:`WorkerFailure` until the pool recovers."""
        return self._failure is not None

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("backend already closed")
        if self._failure is not None and not self._recovering:
            # auto-recovery: with the journal on, the next command after
            # a failure transparently restarts and restores the pool
            if self.journal_enabled:
                self.recover()
            else:
                raise RuntimeError(
                    "worker pool is broken (journal off -- enable "
                    "Machine(..., journal=True) for automatic recovery, "
                    "or call recover() explicitly)"
                ) from self._failure
        if self._started:
            return
        self._start_pool()
        self._started = True
        global _ATEXIT_REGISTERED
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_leaked_pools)
            _ATEXIT_REGISTERED = True
        _LIVE_POOLS.add(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the worker pool down; safe to call any number of times.

        Live resident chunks are salvaged into the driver-side store
        first, so a ``DistArray`` result stays readable after its
        machine's context exits.  A broken pool (post-failure) skips the
        fence/stop handshake -- it would block on dead workers -- and
        goes straight to best-effort salvage plus teardown.
        """
        if self._closed:
            return
        if self._started and self._failure is not None:
            self._closed = True
            _LIVE_POOLS.discard(self)
            try:
                self._salvage_broken()
            finally:
                self._teardown()
            return
        if self._started:
            try:
                # collect every in-flight command first: a worker still
                # blocked writing an unharvested result must not meet a
                # stop frame (and salvage reads require the frontier)
                self._fence()
                self._salvage_resident()
            except WorkerFailure:
                # the pool died under the close fence: fall through to
                # the broken-pool path below
                pass
            except Exception:  # pragma: no cover - dead-pool cleanup path
                pass
        self._closed = True
        _LIVE_POOLS.discard(self)
        if not self._started:
            self._teardown_idle()
            return
        if self._failure is not None:
            try:
                self._salvage_broken()
            finally:
                self._teardown()
            return
        try:
            self._seq += 1
            for rank in range(self.p):
                try:
                    self._inboxes[rank].put(
                        ("cmd", self._seq, ("stop",), None, (), self._acked)
                    )
                except OSError:  # pragma: no cover - worker already dead
                    pass
            self._join_workers()
        finally:
            self._teardown()

    # ------------------------------------------------------------------
    # Recovery: pool restart + chunk restore
    # ------------------------------------------------------------------
    def recover(self) -> None:
        """Restart the broken pool and restore its resident chunks.

        The transport meshes (inherited pipe ends on mp, rank-ordered
        sockets on tcp) are fixed at launch, so recovery is a full pool
        restart rather than a single-rank respawn: terminate what is
        left, reap the old shm segments, fork/register a fresh pool, and
        re-materialize every live ref -- from the driver-side store for
        driver-born chunks, from the journal replay for worker-computed
        ones.  Refs that cannot be restored land in ``_lost_ids`` and
        raise a clear error at their next read.
        """
        if self._closed:
            raise RuntimeError("backend already closed")
        if self._recovering:  # pragma: no cover - re-entrancy guard
            return
        self._recovering = True
        try:
            failure = self._failure
            if self._started:
                self._teardown()
            self._reset_for_restart()
            # fresh pool, fresh protocol state: seqs restart at 0
            self._seq = 0
            self._acked = 0
            self._done_seqs.clear()
            self._inflight.clear()
            self._ref_seq.clear()
            self._failure = None
            # injected faults must not re-fire on the respawned pool
            # (seqs restart, so the same plan would kill it again)
            self.faults = None
            self._started = False
            self._ensure_started()
            if failure is not None:
                self._restore_live_refs()
            self.recoveries += 1
        finally:
            self._recovering = False

    def _restore_live_refs(self) -> None:
        """Re-materialize every live ref on the fresh pool: driver-held
        chunks are re-put directly; worker-computed chunks are replayed
        from the journal (bit-identical -- recorded args carry the
        counter-addressed ``DrawAddress`` of any randomness the
        original issue consumed).  Anything else is lost."""
        replayed = self._replay_journal() if self.journal_enabled else set()
        for ref_id in sorted(self._live_ids):
            if ref_id in replayed:
                continue
            chunks = self._store.get(ref_id)
            if chunks is not None:
                self._run(("put", ref_id), list(chunks))
            else:
                self._lost_ids.add(ref_id)

    def _replay_journal(self) -> set[int]:
        """Replay the journal entries a live ref transitively depends on;
        returns the set of ref ids restored worker-side."""
        # backward pass: mark the entries needed to rebuild live refs.
        # An entry is needed if it touches any needed id -- inputs count
        # too, because resident kernels may mutate them in place.
        needed = set(self._live_ids)
        keep = [False] * len(self._journal)
        for i in range(len(self._journal) - 1, -1, -1):
            entry = self._journal[i]
            if entry[0] == "put":
                _, ref_id, _ = entry
                if ref_id in needed:
                    keep[i] = True
            else:
                _, _, in_ids, out_ids = entry[0], entry[1], entry[2], entry[3]
                if needed & (set(in_ids) | set(out_ids)):
                    keep[i] = True
                    needed.update(in_ids)
        restored: set[int] = set()
        for i, entry in enumerate(self._journal):
            if not keep[i]:
                continue
            kind = entry[0]
            if kind == "put":
                _, ref_id, chunks = entry
                self._run(("put", ref_id), list(chunks))
                restored.add(ref_id)
            elif kind == "mapres":
                _, blob, in_ids, out_ids, args, collect = entry
                spec = ("mapres", blob, in_ids, out_ids, collect)
                self._run(spec, args)
                restored.update(in_ids)
                restored.update(out_ids)
            else:  # "spmd"
                _, blob, in_ids, out_ids, args = entry
                spec = ("spmd", blob, in_ids, out_ids)
                self._run(spec, args)
                restored.update(in_ids)
                restored.update(out_ids)
        # replay may have re-created refs freed since; free them again
        dead = restored - self._live_ids
        if dead:
            self._dead_refs.extend(sorted(dead))
        return restored & self._live_ids

    def _record(self, entry: tuple) -> None:
        """Append one provenance entry (suppressed during replay)."""
        if not self.journal_enabled or self._recovering:
            return
        self._journal.append(entry)
        if len(self._journal) % 256 == 0:
            self._prune_journal()

    def _prune_journal(self) -> None:
        """Drop journal entries no live ref transitively depends on."""
        needed = set(self._live_ids)
        kept: list[tuple] = []
        for entry in reversed(self._journal):
            if entry[0] == "put":
                if entry[1] in needed:
                    kept.append(entry)
            else:
                in_ids, out_ids = entry[2], entry[3]
                if needed & (set(in_ids) | set(out_ids)):
                    kept.append(entry)
                    needed.update(in_ids)
        kept.reverse()
        self._journal = kept

    def _salvage_broken(self) -> None:
        """Best-effort chunk salvage from a broken pool: ask each
        surviving rank directly (short timeout, direct frames -- the
        broadcast tree may route through the dead rank).  Only refs
        recovered from *every* rank become readable; the rest are lost."""
        dead = set(self._dead_ranks())
        want = [rid for rid in sorted(self._live_ids)
                if rid not in self._store]
        if not want:
            return
        alive = [r for r in range(self.p) if r not in dead]
        salvaged: dict[int, list] = {rid: [None] * self.p for rid in want}
        got: dict[int, set[int]] = {rid: set() for rid in want}
        try:
            for rid in want:
                self._seq += 1
                for rank in alive:
                    self._inboxes[rank].put(
                        ("cmd", self._seq, ("get", rid), None, (),
                         self._acked)
                    )
            deadline = time.monotonic() + 5.0
            expect = len(want) * len(alive)
            seen = 0
            while seen < expect and time.monotonic() < deadline:
                try:
                    rank, rseq, value = self._results.get(
                        timeout=0.25, pool=self._pool
                    )
                except queue_mod.Empty:
                    continue
                for rid, fut_seq in zip(
                    want, range(self._seq - len(want) + 1, self._seq + 1)
                ):
                    if rseq == fut_seq:
                        if not isinstance(value, WorkerError):
                            salvaged[rid][rank] = value
                            got[rid].add(rank)
                        seen += 1
                        break
        except Exception:  # pragma: no cover - salvage is best-effort
            pass
        for rid in want:
            # partial rows are useless: a chunked structure with a hole
            # would silently mis-answer, so only full covers count
            if got[rid] == set(range(self.p)):
                self._store[rid] = salvaged[rid]
            else:
                self._lost_ids.add(rid)

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Driver-side dispatch: pipelined submit / demultiplexed completion
    # ------------------------------------------------------------------
    def _pump(self, timeout: float | None) -> None:
        """Receive ONE result frame and demultiplex it onto its command's
        future by seq.  Completion may be out of issue order across
        workers; receive-side transport bytes are attributed to the seq
        that actually arrived."""
        wire0, shm0 = self._results.wire_rx, self._results.shm_rx
        rank, rseq, value = self._results.get(timeout=timeout, pool=self._pool)
        fut = self._inflight.get(rseq)
        if fut is None:  # pragma: no cover - protocol violation
            raise RuntimeError(
                f"backend protocol error: result for unknown seq {rseq}"
            )
        fut.wire_rx += self._results.wire_rx - wire0
        fut.shm_rx += self._results.shm_rx - shm0
        if isinstance(value, WorkerError):
            fut.failures.append((rank, value.message))
        else:
            fut.out[rank] = value
        fut.pending.discard(rank)
        fut.remaining -= 1
        if fut.remaining == 0:
            self._finish(fut)

    def _finish(self, fut: CommandFuture) -> None:
        """Resolve one future: book its transport bytes, release its
        dependency-tracker entries, and advance the ack frontier."""
        fut.done = True
        del self._inflight[fut.seq]
        tb = self._transport.setdefault(fut.kind, {"wire": 0, "shm": 0})
        tb["wire"] += fut.wire_rx
        tb["shm"] += fut.shm_rx
        for ref_id in fut.ref_ids:
            if self._ref_seq.get(ref_id) == fut.seq:
                del self._ref_seq[ref_id]
        self._done_seqs.add(fut.seq)
        while self._acked + 1 in self._done_seqs:
            self._done_seqs.discard(self._acked + 1)
            self._acked += 1
        if self._pool is not None:
            # recycle the segments whose blocks the workers flagged
            # dead, up to the collected-results frontier
            self._pool.release_through(self._acked)

    def _drain_results(self) -> None:
        """Demultiplex whatever already sits in the result inbox (called
        while a command send waits on a full channel -- a worker blocked
        writing a large result would otherwise hold the driver and
        worker in a two-party cycle)."""
        while True:
            try:
                self._pump(timeout=0)
            except queue_mod.Empty:
                return

    def _declare_failure(self, fut: CommandFuture, phase: str,
                         ranks: Sequence[int], detail: str = "") -> None:
        """Convert a detected worker death / hang into a structured
        :class:`WorkerFailure`: mark the pool broken, poison every
        in-flight future (the whole seq window -- workers execute in seq
        order, so nothing behind the failure can complete), and raise."""
        ranks = tuple(ranks)
        failure = WorkerFailure(
            rank=ranks[0] if ranks else None,
            seq=fut.seq, phase=phase, detail=detail, ranks=ranks,
        )
        self._failure = failure
        for f in list(self._inflight.values()):
            f.done = True
            f.poisoned = failure
        self._inflight.clear()
        raise failure

    def _wait(self, fut: CommandFuture) -> list:
        """Completion loop of one command: pump the shared result inbox
        (any seq) until this future resolves, then surface its failures.
        Waiting a future implicitly resolves every lower seq first.

        The loop doubles as the failure detector: between short pump
        slices it probes worker liveness (a dead process surfaces within
        ``_PROBE_INTERVAL`` seconds as phase ``"dead"``) and enforces
        the per-command deadline (``command_timeout`` -> phase
        ``"hung"``).  Either way the caller gets a structured
        :class:`WorkerFailure`, never an indefinite block."""
        if fut.poisoned is not None:
            raise fut.poisoned
        if self._cmd_buf:
            # a wait inside a coalesced block: whatever is buffered must
            # hit the wire now or this future can never resolve
            self._flush_cmds()
        if not fut.done:
            t0 = time.perf_counter()
            deadline = t0 + self.command_timeout
            while not fut.done:
                try:
                    self._pump(timeout=_PROBE_INTERVAL)
                    continue
                except queue_mod.Empty:
                    pass
                except WorkerFailure:
                    raise
                except Exception as exc:
                    # EOF, a dead socket, a corrupted frame, a bogus shm
                    # descriptor: transport-level loss of a worker
                    self.wall_time += time.perf_counter() - t0
                    dead = self._dead_ranks()
                    # the death that corrupted the stream may not be
                    # reapable yet (the garbage arrives before the exit
                    # is visible); give attribution a moment
                    for _ in range(20):
                        if dead:
                            break
                        time.sleep(0.05)
                        dead = self._dead_ranks()
                    self._declare_failure(fut, "dead", dead, detail=repr(exc))
                dead = self._dead_ranks()
                if dead:
                    self.wall_time += time.perf_counter() - t0
                    self._declare_failure(fut, "dead", dead)
                if time.perf_counter() >= deadline:
                    self.wall_time += time.perf_counter() - t0
                    oldest = next(iter(self._inflight.values()), fut)
                    self._declare_failure(
                        fut, "hung", sorted(oldest.pending),
                        detail=f"no result within command_timeout="
                               f"{self.command_timeout:.0f}s",
                    )
            self.wall_time += time.perf_counter() - t0
        if fut.poisoned is not None:
            raise fut.poisoned
        if fut.failures:
            detail = "; ".join(
                f"worker {r} failed: {m}" for r, m in fut.failures
            )
            raise RuntimeError(detail)
        return fut.out

    def _fence(self) -> None:
        """Wait out every in-flight command, oldest first.  Required
        before any frame that bypasses the broadcast tree (it could
        overtake a tree hop) and before driver reads of worker state."""
        while self._inflight:
            self._wait(next(iter(self._inflight.values())))

    def _wait_ref(self, ref_id: int) -> None:
        """Dependency tracker: block until the in-flight command that
        reads or writes ``ref_id`` (if any) completed, so driver-side
        chunk reads never observe state a pipelined command is still
        producing -- and a failed producer surfaces at the read."""
        seq = self._ref_seq.get(ref_id)
        if seq is not None:
            fut = self._inflight.get(seq)
            if fut is not None:
                self._wait(fut)

    def _track_refs(self, fut: CommandFuture, refs, out_refs) -> None:
        # input chunks count as written too: resident kernels may mutate
        # them in place (the bulk PQ's trees do)
        ids = tuple(r.id for r in refs) + tuple(r.id for r in out_refs)
        fut.ref_ids = ids
        for ref_id in ids:
            self._ref_seq[ref_id] = fut.seq

    def _submit(
        self, spec: tuple, locals_per_pe: Sequence, participants=None
    ) -> CommandFuture:
        """Issue one command without collecting results.

        Only full-pool broadcast-channel commands may overlap: FIFO
        links and in-order tree forwarding deliver pipelined ``bcmd``
        frames to every worker in seq order, so execution order equals
        issue order on each rank.  Direct per-worker frames (``put``,
        partial-participant ``p2p``) have no such guarantee and fence
        first.
        """
        self._ensure_started()
        t0 = time.perf_counter()
        if participants is not None or spec[0] == "put":
            self._fence()
        else:
            while len(self._inflight) >= self.pipeline_depth:
                self._wait(next(iter(self._inflight.values())))
        # Fail fast on unpicklable specs (e.g. a lambda reduction op):
        # the command would otherwise surface as an opaque worker-side
        # decode failure or a collective timeout.  Probed before the seq
        # is consumed -- a burnt seq would stall the ack frontier.
        try:
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                f"backend command {spec[0]!r} is not picklable (op/arguments "
                f"must cross a process boundary; use a named op like 'sum' "
                f"or a module-level callable): {exc}"
            ) from None
        self._seq += 1
        seq = self._seq
        # freed handles piggyback only on full-pool commands -- a partial-
        # participant command (p2p) would free the slots on two workers
        # and leak them on the rest
        if participants is None:
            free_ids = tuple(self._dead_refs)
            self._dead_refs.clear()
        else:
            free_ids = ()
        nranks = self.p if participants is None else len(participants)
        fut = CommandFuture(self, seq, spec[0], self.p, nranks,
                            participants=participants)
        self._inflight[seq] = fut
        if len(self._inflight) > self.max_inflight:
            self.max_inflight = len(self._inflight)
        # broadcast command channel: one driver send regardless of p;
        # rank 0 fans the frame out along the binomial tree.  Chunk
        # uploads ("put") keep the direct path -- their per-PE locals
        # are the one arg-heavy payload, and tree forwarding would
        # re-serialize each rank's chunk once per edge on its root path
        # (~(log2 p)/2 times on average) for no latency benefit.
        if participants is None and spec[0] != "put":
            locals_map = {r: locals_per_pe[r] for r in range(self.p)}
            self._cmd_buf.append((seq, spec, locals_map, free_ids))
            # inside a coalesced block the frame is held back so the
            # next back-to-back submit can ride the same fan-out;
            # everywhere else framing stays immediate
            if not self._coalescing or len(self._cmd_buf) >= self.pipeline_depth:
                self._flush_cmds()
        else:
            wire0, shm0 = self._tx["wire_tx"], self._tx["shm_tx"]
            if self._pool is not None:
                self._pool.begin_round(seq)
            for rank in (range(self.p) if participants is None else participants):
                self._inboxes[rank].put(
                    ("cmd", seq, spec, locals_per_pe[rank], free_ids,
                     self._acked),
                    drain=self._drain_results, pool=self._pool,
                    counters=self._tx,
                )
                self.driver_sends += 1
            tb = self._transport.setdefault(spec[0], {"wire": 0, "shm": 0})
            tb["wire"] += self._tx["wire_tx"] - wire0
            tb["shm"] += self._tx["shm_tx"] - shm0
        self.wall_time += time.perf_counter() - t0
        return fut

    def _flush_cmds(self) -> None:
        """Frame and send the buffered broadcast command(s).

        One buffered command goes out as a plain ``bcmd`` (the steady
        state); two or more -- queued back-to-back inside a
        :meth:`coalesced` block -- pack into a single ``bcmds`` frame,
        so the whole batch costs one driver send, one tree fan-out and
        one wake per worker.  That makes pipelined issue *cheaper* per
        command than serial issue, not merely overlapped."""
        buf = self._cmd_buf
        if not buf:
            return
        self._cmd_buf = []
        wire0, shm0 = self._tx["wire_tx"], self._tx["shm_tx"]
        if self._pool is not None:
            # blocks shared for this frame must outlive the *newest*
            # batched command's ack (a child may decode the frame's tail
            # entries well after the head ones settle)
            self._pool.begin_round(buf[-1][0])
        if len(buf) == 1:
            seq, spec, locals_map, free_ids = buf[0]
            frame = ("bcmd", seq, spec, locals_map, free_ids, self._acked)
            kind = spec[0]
        else:
            frame = ("bcmds", [
                ("bcmd", seq, spec, locals_map, free_ids, self._acked)
                for seq, spec, locals_map, free_ids in buf
            ])
            kind = "bcmds"
        self._inboxes[0].put(
            frame, drain=self._drain_results, pool=self._pool,
            counters=self._tx,
        )
        self.driver_sends += 1
        tb = self._transport.setdefault(kind, {"wire": 0, "shm": 0})
        tb["wire"] += self._tx["wire_tx"] - wire0
        tb["shm"] += self._tx["shm_tx"] - shm0

    @contextlib.contextmanager
    def coalesced(self):
        """Pack the broadcast commands submitted inside this block into
        as few command frames as possible (capped at ``pipeline_depth``
        commands per frame).  Execution order and results are identical
        -- workers unpack a batch into the same per-command loop -- so
        call sites opt in purely as a transport optimization where they
        know two submits run back to back with no driver work between
        (e.g. the two halves of a multi-selection recursion level)."""
        if self._coalescing or self.pipeline_depth <= 1:
            yield
            return
        self._coalescing = True
        try:
            yield
        finally:
            self._coalescing = False
            self._flush_cmds()

    def _run(
        self, spec: tuple, locals_per_pe: Sequence, participants=None
    ) -> list:
        """Issue one command to the participating workers (default: all)
        and collect their results: submit + wait."""
        return self._wait(self._submit(spec, locals_per_pe, participants))

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def broadcast(self, value, root: int = 0) -> list:
        locals_per_pe = [value if i == root else None for i in range(self.p)]
        return self._run(("bcast", root), locals_per_pe)

    def reduce(self, values: Sequence, op, root: int = 0) -> list:
        return self._run(("reduce", op, root), values)

    def allreduce(self, values: Sequence, op) -> list:
        return self._run(("allreduce", op), values)

    def scan(self, values: Sequence, op) -> list:
        return self._run(("scan", op), values)

    def allreduce_exscan(self, values: Sequence, op, initial=0) -> tuple[list, list]:
        pairs = self._run(("allreduce_exscan", op, initial), values)
        totals = [t for t, _ in pairs]
        prefixes = [pre for _, pre in pairs]
        return totals, prefixes

    def reduce_allgather(self, values: Sequence, payloads: Sequence, op) -> tuple[list, list]:
        pairs = self._run(
            ("reduce_allgather", op), list(zip(values, payloads))
        )
        return [t for t, _ in pairs], [g for _, g in pairs]

    def gather(self, values: Sequence, root: int = 0) -> list:
        return self._run(("gather", root), values)

    def allgather(self, values: Sequence) -> list:
        return self._run(("allgather",), values)

    def scatter(self, pieces: Sequence, root: int = 0) -> list:
        locals_per_pe = [list(pieces) if i == root else None for i in range(self.p)]
        return self._run(("scatter", root), locals_per_pe)

    def alltoall(self, matrix: Sequence[Sequence]) -> list[list]:
        return self._run(("alltoall",), [list(row) for row in matrix])

    def p2p(self, src: int, dst: int, payload):
        if src == dst:
            return payload
        locals_per_pe = [payload if i == src else None for i in range(self.p)]
        out = self._run(("p2p", src, dst), locals_per_pe, participants=(src, dst))
        return out[dst]

    def map(self, fn: Callable[[int, object], object], items: Sequence) -> list:
        try:
            blob = self._blob(fn)
        except Exception:
            # closures/lambdas cannot cross the process boundary; degrade
            # gracefully to in-process application
            return [fn(i, x) for i, x in enumerate(items)]
        return self._run(("map", blob), items)

    # ------------------------------------------------------------------
    # Resident chunks
    # ------------------------------------------------------------------
    def _blob(self, fn) -> bytes:
        """Pickle a callback once per identity (hot loops reuse it).

        The cache pins the callable itself so its ``id`` cannot be
        recycled by the allocator while the entry is alive.  It is
        LRU-bounded at ``_BLOB_CACHE`` entries so a long-running serve
        pool cycling through distinct callbacks cannot grow it without
        limit (evicting is always safe: the blob bytes of an in-flight
        command already left with its envelope).
        """
        key = id(fn)
        entry = self._fn_blobs.get(key)
        if entry is not None and entry[0] is fn:
            self._fn_blobs[key] = self._fn_blobs.pop(key)  # LRU touch
            return entry[1]
        entry = (fn, pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL))
        self._fn_blobs[key] = entry
        while len(self._fn_blobs) > self._BLOB_CACHE:
            del self._fn_blobs[next(iter(self._fn_blobs))]
        return entry[1]

    def _new_ref(self) -> ChunkRef:
        ref_id = self._next_ref_id
        self._next_ref_id += 1
        self._live_ids.add(ref_id)
        return ChunkRef(ref_id, self.p, self._free_ref)

    def _free_ref(self, ref_id: int) -> None:
        # freeing piggybacks on the next command's envelope; nothing to
        # send eagerly (and the pool may already be closed)
        self._live_ids.discard(ref_id)
        self._store.pop(ref_id, None)
        self._dead_refs.append(ref_id)

    def _salvage_resident(self) -> None:
        """Pull live worker-resident chunks into the driver store so
        handles stay readable after the pool shuts down."""
        for ref_id in sorted(self._live_ids):
            if ref_id not in self._store:
                self._store[ref_id] = self._run(("get", ref_id), [None] * self.p)

    def put_chunks(self, chunks: Sequence) -> ChunkRef:
        if len(chunks) != self.p:
            raise ValueError(f"need one chunk per PE, got {len(chunks)} for p={self.p}")
        ref = self._new_ref()
        self._run(("put", ref.id), list(chunks))
        # keep an alias to the driver-born objects (read-only convention):
        # get_chunks then never re-fetches them and close() never pays to
        # salvage data the driver already holds
        self._store[ref.id] = list(chunks)
        self._record(("put", ref.id, list(chunks)))
        return ref

    def get_chunks(self, ref: ChunkRef) -> list:
        if ref.id in self._lost_ids:
            raise RuntimeError(
                f"resident chunks of ref {ref.id} were lost in a worker "
                f"failure and could not be salvaged or replayed (enable "
                f"Machine(..., journal=True) to make worker-computed "
                f"chunks recoverable)"
            )
        # dependency tracker: a pipelined command still producing (or
        # mutating) this ref must land before the driver reads it
        self._wait_ref(ref.id)
        if ref.id in self._store:  # driver-born or salvaged at close
            return self._store[ref.id]
        return self._run(("get", ref.id), [None] * self.p)

    def submit_map_resident(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
        collect: tuple | None = None,
    ) -> tuple[list[ChunkRef], PendingValues]:
        """Non-blocking :meth:`map_resident`: the command goes out and
        stays in flight until ``pending.wait()`` (which returns
        ``(values, collected)``).  Overlapping call sites must wait
        their pendings in submit order before consuming values, so
        charge replay stays in seq order (draws are counter-addressed
        at build time, so settling order itself is free)."""
        try:
            blob = self._blob(fn)
        except Exception:
            # driver-side fallback: fetch, apply, re-pin.  Slow (the
            # chunks make a round trip) but correct, and only hit by
            # closures that cannot cross the process boundary.
            chunk_lists = [self.get_chunks(r) for r in refs]
            outs, values = _apply_resident(self.p, fn, chunk_lists, n_out, args)
            out_refs = [self.put_chunks(chunks) for chunks in outs]
            return out_refs, PendingValues.resolved(
                (values, _collect_values(values, collect, self.p))
            )
        out_refs = [self._new_ref() for _ in range(n_out)]
        spec = ("mapres", blob, tuple(r.id for r in refs),
                tuple(r.id for r in out_refs), collect)
        locals_per_pe = list(args) if args is not None else [None] * self.p
        self._record(("mapres", blob, spec[2], spec[3],
                      list(locals_per_pe), collect))
        fut = self._submit(spec, locals_per_pe)
        self._track_refs(fut, refs, out_refs)

        def settle():
            out = self._wait(fut)
            if collect is None:
                return out, None
            return [v for v, _ in out], [c for _, c in out]

        return out_refs, PendingValues(settle)

    def map_resident(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
        collect: tuple | None = None,
    ) -> tuple[list[ChunkRef], list, list | None]:
        out_refs, pending = self.submit_map_resident(
            fn, refs, n_out=n_out, args=args, collect=collect
        )
        values, collected = pending.wait()
        return out_refs, values, collected

    def submit_spmd(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
    ) -> tuple[list[ChunkRef], PendingValues]:
        """Non-blocking :meth:`run_spmd`: returns the output handles
        immediately while the command executes; ``pending.wait()``
        yields the per-PE values (lockstep-checked under ``verify``).
        Same wait-in-submit-order contract as
        :meth:`submit_map_resident`."""
        try:
            blob = self._blob(fn)
        except Exception:
            chunk_lists = [self.get_chunks(r) for r in refs]
            outs, values = _run_spmd_inprocess(self.p, fn, chunk_lists, n_out, args)
            out_refs = [self.put_chunks(chunks) for chunks in outs]
            return out_refs, PendingValues.resolved(values)
        out_refs = [self._new_ref() for _ in range(n_out)]
        spec = ("spmd", blob, tuple(r.id for r in refs),
                tuple(r.id for r in out_refs))
        if self.verify:
            spec = spec + (True,)
        locals_per_pe = list(args) if args is not None else [None] * self.p
        self._record(("spmd", blob, spec[2], spec[3], list(locals_per_pe)))
        fut = self._submit(spec, locals_per_pe)
        self._track_refs(fut, refs, out_refs)

        def settle():
            values = self._wait(fut)
            if self.verify:
                values = self._check_lockstep(values, fut.seq)
            return values

        return out_refs, PendingValues(settle)

    def run_spmd(
        self,
        fn: Callable,
        refs: Sequence[ChunkRef],
        n_out: int = 0,
        args: Sequence[tuple] | None = None,
    ) -> tuple[list[ChunkRef], list]:
        out_refs, pending = self.submit_spmd(fn, refs, n_out=n_out, args=args)
        return out_refs, pending.wait()

    def _check_lockstep(self, values: list, seq: int) -> list:
        """Unwrap ``verify=True`` SPMD results, asserting every rank ran
        the same collective sequence (digest compare; traces are only
        walked to build the diagnostic)."""
        wrapped = [v for v in values if isinstance(v, _VerifiedValue)]
        if len(wrapped) != self.p:  # pragma: no cover - protocol violation
            raise RuntimeError(
                "backend protocol error: verify=True SPMD command returned "
                f"{len(wrapped)}/{self.p} traced results"
            )
        ref = wrapped[0]
        bad = [r for r in range(1, self.p) if wrapped[r].digest != ref.digest]
        if bad:
            rank = bad[0]
            a, b = ref.trace, wrapped[rank].trace
            step = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y),
                min(len(a), len(b)),
            )
            mine = b[step] if step < len(b) else "<kernel returned>"
            theirs = a[step] if step < len(a) else "<kernel returned>"
            raise LockstepError(
                f"SPMD lockstep violation in command seq {seq}: rank(s) "
                f"{bad} diverged from rank 0; first divergence at "
                f"collective #{step}: rank {rank} issued {mine} where "
                f"rank 0 issued {theirs}"
            )
        return [v.value for v in wrapped]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_message_counts(self) -> list[int]:
        if not self._started or self._closed:
            return [0] * self.p
        stats = self._run(("stats",), [None] * self.p)
        return [s["msgs"] for s in stats]

    def command_fanout_counts(self) -> list[int]:
        """Per-worker count of forwarded broadcast-command frames.

        Every full-pool command costs exactly ``p - 1`` forwards in total
        (the binomial-tree edges), paid by the workers instead of the
        driver; the driver's own channel writes are
        :attr:`driver_sends`.  Note the ``stats`` round trip used to read
        these counters is itself a broadcast command, so a delta between
        two reads includes the forwards of one stats command.
        """
        if not self._started or self._closed:
            return [0] * self.p
        stats = self._run(("stats",), [None] * self.p)
        return [s["cmd_fwd"] for s in stats]

    def worker_transport_counts(self) -> list[dict[str, int]]:
        """Per-worker cumulative transport bytes: ``wire_tx`` (frames
        written to the wire, peer messages + forwarded commands +
        results) and ``shm_tx`` (payload bytes shared out of that
        worker's shm pool, if any).  Complements the driver-side
        :meth:`transport_bytes`."""
        if not self._started or self._closed:
            return [{"wire_tx": 0, "shm_tx": 0} for _ in range(self.p)]
        stats = self._run(("stats",), [None] * self.p)
        return [{"wire_tx": s["wire_tx"], "shm_tx": s["shm_tx"]} for s in stats]
